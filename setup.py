"""Setuptools shim for environments without PEP 660 editable support.

``pip install -e .`` normally uses pyproject.toml alone; offline
environments missing the ``wheel`` package can fall back to
``python setup.py develop`` through this shim.
"""

from setuptools import setup

setup()
