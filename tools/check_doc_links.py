#!/usr/bin/env python
"""Documentation link checker.

Checks three properties, all enforced in CI and by
``tests/test_docs_links.py``:

1. every relative markdown link in the repo's ``*.md`` files (repo root
   and ``docs/``) resolves to an existing file;
2. every ``#fragment`` — in a pure-anchor link (``#section``) or a
   cross-file link (``file.md#section``) — resolves to a heading in
   the target document, using GitHub's anchor-slug rules;
3. every document under ``docs/`` is reachable from ``docs/index.md``
   by following relative links — the index really is a complete map.

External (``http(s)://``, ``mailto:``) links are skipped.  Exits
non-zero with one line per problem.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Set

#: Inline markdown links: [text](target).  Reference-style links are not
#: used in this repo.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:")

_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^(```|~~~)")

#: Stripped from heading text before slugging: inline code markers,
#: emphasis, and link syntax (``[text](target)`` keeps ``text``).
_INLINE_LINK = re.compile(r"\[([^\]]*)\]\([^)]*\)")


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def markdown_files(root: Path) -> List[Path]:
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def relative_links(path: Path) -> Iterable[str]:
    for match in _LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(_SKIP_PREFIXES):
            continue
        yield target


def resolve(source: Path, target: str) -> Path:
    return (source.parent / target.split("#", 1)[0]).resolve()


def heading_slug(text: str) -> str:
    """GitHub's anchor slug for one heading's text: strip inline
    markup, lowercase, drop everything but word characters, hyphens,
    and spaces, then hyphenate the spaces."""
    text = _INLINE_LINK.sub(r"\1", text)
    text = text.replace("`", "").replace("*", "")
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return text.strip().replace(" ", "-")


def anchors(path: Path) -> Set[str]:
    """Every anchor a markdown file exposes, with GitHub's ``-N``
    suffixing for duplicate headings.  Fenced code blocks are skipped
    (a ``# comment`` inside one is not a heading)."""
    seen: Dict[str, int] = {}
    out: Set[str] = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = heading_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        out.add(slug if count == 0 else f"{slug}-{count}")
    return out


def check_links(root: Path) -> List[str]:
    """All broken relative links and anchors under ``root``, one
    message each."""
    problems = []
    anchor_cache: Dict[Path, Set[str]] = {}
    for path in markdown_files(root):
        for target in relative_links(path):
            file_part, _, fragment = target.partition("#")
            resolved = resolve(path, target) if file_part else path
            if file_part and not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: broken link {target!r}"
                )
                continue
            if not fragment or resolved.suffix != ".md":
                continue
            if resolved not in anchor_cache:
                anchor_cache[resolved] = anchors(resolved)
            if fragment not in anchor_cache[resolved]:
                problems.append(
                    f"{path.relative_to(root)}: broken anchor {target!r} "
                    f"(no heading slugs to {fragment!r} in "
                    f"{resolved.relative_to(root)})"
                )
    return problems


def check_index_coverage(root: Path) -> List[str]:
    """Docs not reachable from ``docs/index.md`` via relative links."""
    docs = root / "docs"
    index = docs / "index.md"
    if not index.is_file():
        return ["docs/index.md does not exist"]
    reachable: Set[Path] = {index}
    frontier = [index]
    while frontier:
        current = frontier.pop()
        for target in relative_links(current):
            if target.startswith("#"):
                continue
            resolved = resolve(current, target)
            if (
                resolved.suffix == ".md"
                and resolved.is_file()
                and docs in resolved.parents
                and resolved not in reachable
            ):
                reachable.add(resolved)
                frontier.append(resolved)
    return [
        f"docs/{path.name} is not reachable from docs/index.md"
        for path in sorted(docs.glob("*.md"))
        if path not in reachable
    ]


def main() -> int:
    root = repo_root()
    problems = check_links(root) + check_index_coverage(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        count = len(markdown_files(root))
        print(f"doc links OK ({count} markdown files checked)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
