#!/usr/bin/env python
"""Documentation link checker.

Checks two properties, both enforced in CI and by
``tests/test_docs_links.py``:

1. every relative markdown link in the repo's ``*.md`` files (repo root
   and ``docs/``) resolves to an existing file;
2. every document under ``docs/`` is reachable from ``docs/index.md``
   by following relative links — the index really is a complete map.

External (``http(s)://``, ``mailto:``) and pure-anchor (``#...``)
links are skipped; fragments are stripped before resolution.  Exits
non-zero with one line per problem.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Set

#: Inline markdown links: [text](target).  Reference-style links are not
#: used in this repo.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def markdown_files(root: Path) -> List[Path]:
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def relative_links(path: Path) -> Iterable[str]:
    for match in _LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(_SKIP_PREFIXES):
            continue
        yield target


def resolve(source: Path, target: str) -> Path:
    return (source.parent / target.split("#", 1)[0]).resolve()


def check_links(root: Path) -> List[str]:
    """All broken relative links under ``root``, one message each."""
    problems = []
    for path in markdown_files(root):
        for target in relative_links(path):
            resolved = resolve(path, target)
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: broken link {target!r}"
                )
    return problems


def check_index_coverage(root: Path) -> List[str]:
    """Docs not reachable from ``docs/index.md`` via relative links."""
    docs = root / "docs"
    index = docs / "index.md"
    if not index.is_file():
        return ["docs/index.md does not exist"]
    reachable: Set[Path] = {index}
    frontier = [index]
    while frontier:
        current = frontier.pop()
        for target in relative_links(current):
            resolved = resolve(current, target)
            if (
                resolved.suffix == ".md"
                and resolved.is_file()
                and docs in resolved.parents
                and resolved not in reachable
            ):
                reachable.add(resolved)
                frontier.append(resolved)
    return [
        f"docs/{path.name} is not reachable from docs/index.md"
        for path in sorted(docs.glob("*.md"))
        if path not in reachable
    ]


def main() -> int:
    root = repo_root()
    problems = check_links(root) + check_index_coverage(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        count = len(markdown_files(root))
        print(f"doc links OK ({count} markdown files checked)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
