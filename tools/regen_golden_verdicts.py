#!/usr/bin/env python
"""Regenerate the golden verdict table (``tests/fixtures/golden_verdicts.json``).

The table pins, for every test in the 56-test paper suite:

* the **model verdicts** — SC-allowed, TSO-allowed, axiomatic-allowed,
  the SC outcome-set size, and operational/axiomatic set agreement;
* the **RTL verdicts** — whether exhaustive Multi-V-scale enumeration
  matches the SC outcome set, on the fixed and buggy memories;
* the **verifier verdicts** — RTLCheck ``bug_found`` /
  ``verified_by_cover`` on both memories.

``tests/test_golden_verdicts.py`` replays the cheap columns on every
tier-1 run and the expensive ones under ``RTLCHECK_GOLDEN_FULL=1``; any
behaviour change in an oracle layer shows up as a diff against this
fixture.  Run this script (and eyeball the diff!) when such a change is
intentional:

    PYTHONPATH=src python tools/regen_golden_verdicts.py [--jobs N]

The full regeneration verifies every test twice with RTLCheck and
enumerates both memory variants — expect tens of minutes on one core.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

FIXTURE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..",
    "tests",
    "fixtures",
    "golden_verdicts.json",
)

GOLDEN_KIND = "rtlcheck-golden-verdicts"


def compute_row(name: str) -> dict:
    """All golden columns for one suite test (module-level so it runs
    in worker processes)."""
    from repro import RTLCheck, get_test
    from repro.difftest.oracles import (
        axiomatic_verdicts,
        operational_verdicts,
        rtl_verdicts,
    )

    test = get_test(name)
    op_set, sc_ok, tso_ok = operational_verdicts(test)
    ax_set, ax_ok = axiomatic_verdicts(test)
    row = {
        "test": name,
        "threads": test.num_threads,
        "instructions": test.instruction_count(),
        "sc_allowed": sc_ok,
        "tso_allowed": tso_ok,
        "axiomatic_allowed": ax_ok,
        "outcome_count": len(op_set),
        "axiomatic_matches_operational": op_set == ax_set,
    }
    checker = RTLCheck()
    for variant in ("fixed", "buggy"):
        rtl = rtl_verdicts(test, variant)
        row[f"rtl_{variant}_complete"] = rtl.complete
        row[f"rtl_{variant}_matches_sc"] = rtl.complete and (
            rtl.outcomes == op_set
        )
        result = checker.verify_test(test, variant)
        row[f"verifier_{variant}_bug_found"] = result.bug_found
        row[f"verifier_{variant}_verified_by_cover"] = result.verified_by_cover
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=os.cpu_count() or 1, metavar="N"
    )
    parser.add_argument("-o", "--output", default=FIXTURE, metavar="FILE")
    args = parser.parse_args(argv)

    from repro import paper_suite

    names = [test.name for test in paper_suite()]
    rows = {}
    if args.jobs > 1:
        with ProcessPoolExecutor(max_workers=args.jobs) as pool:
            futures = {pool.submit(compute_row, name): name for name in names}
            for future in as_completed(futures):
                row = future.result()
                rows[row["test"]] = row
                print(f"[{len(rows)}/{len(names)}] {row['test']}", flush=True)
    else:
        for name in names:
            rows[name] = compute_row(name)
            print(f"[{len(rows)}/{len(names)}] {name}", flush=True)

    document = {
        "schema_version": 1,
        "kind": GOLDEN_KIND,
        "tests": [rows[name] for name in names],
    }
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    print(f"wrote {len(names)} golden rows to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
