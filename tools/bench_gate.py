#!/usr/bin/env python
"""CI benchmark-regression gate.

Runs a pinned, fast benchmark subset — cold reachability-graph builds,
random-schedule simulation, and difftest oracle throughput — and writes
the measurements to a JSON trajectory point (``BENCH_ci.json``).  With
``--baseline``/``--check`` it compares against the committed baseline
(``benchmarks/baselines/ci_baseline.json``) and exits non-zero when any
metric slowed down by more than the threshold (default 25%).

Raw wall-clock seconds are useless across heterogeneous CI machines,
so every metric is reported in **calibrated units**: the metric's
best-of-N seconds divided by the best-of-N seconds of a fixed
pure-Python calibration workload run in the same process.  A machine
that is uniformly 2x slower scores the same units; only *relative*
regressions (an algorithmic or representation change in this repo)
move the ratio.

Usage:

    PYTHONPATH=src python tools/bench_gate.py --output BENCH_ci.json \
        --baseline benchmarks/baselines/ci_baseline.json --check

Refresh the baseline after an intentional performance change with
``tools/regen_bench_baseline.py`` (and commit the diff).

``--inject-slowdown METRIC`` artificially slows one metric (a sleep
sized at ~60% of its measured time) — used once per pipeline change to
demonstrate that the gate actually fails, never in a committed config.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

SCHEMA_VERSION = 1
DEFAULT_THRESHOLD = 0.25
DEFAULT_REPEATS = 3

#: Pinned workloads: small enough for a CI minute, large enough
#: (hundreds of milliseconds each) that timer noise is negligible.
REACHGRAPH_TESTS = ("mp", "sb", "iwp24", "iriw", "n4", "amd3")
REACHGRAPH_VARIANTS = ("fixed", "buggy")
SIMULATION_TESTS = ("mp", "iwp24")
SIMULATION_SCHEDULES = 600
#: The memoized kernel path replays schedules orders of magnitude
#: faster, so its metric needs a much larger campaign to clear the
#: timer-noise floor the gate threshold assumes.
KERNEL_SIMULATION_TESTS = ("mp", "sb", "iwp24", "iriw")
KERNEL_SIMULATION_SCHEDULES = 6000
DIFFTEST_TESTS = ("mp", "sb", "iwp24", "iriw", "amd3")
COVERAGE_TESTS = ("mp", "sb", "iwp24")
POLYCHECK_TESTS = ("mp", "sb", "iriw")
POLYCHECK_SAMPLES = 8
POLYCHECK_LONG_THREAD_OPS = 16


def _calibration_workload() -> int:
    """Fixed pure-Python workload (dict/tuple churn plus arithmetic,
    the same operation mix the benchmarks stress)."""
    total = 0
    table: Dict[int, int] = {}
    for i in range(400_000):
        total += (i * i) % 7919
        table[i & 1023] = total
        if i & 1023 == 0:
            total += sum(table.values()) % 104729
    return total


def _bench_reachgraph() -> None:
    """Cold full ReachGraph builds on the array backend."""
    from repro import get_test
    from repro.litmus import compile_test
    from repro.mapping import MultiVScaleProgramMapping
    from repro.sva import AssumptionChecker
    from repro.verifier.reach import ReachGraph
    from repro.vscale.soc import MultiVScale

    for name in REACHGRAPH_TESTS:
        compiled = compile_test(get_test(name))
        assumptions = MultiVScaleProgramMapping(compiled).all_assumptions()
        for variant in REACHGRAPH_VARIANTS:
            graph = ReachGraph(
                MultiVScale(compiled, variant), AssumptionChecker(assumptions)
            )
            frontier = [graph.root]
            seen = {graph.root}
            while frontier:
                node = frontier.pop()
                for _i, _inputs, _frame, child in graph.live_successors(node):
                    if child not in seen:
                        seen.add(child)
                        frontier.append(child)


def _bench_simulation() -> None:
    """Random-schedule simulation campaign on the fixed design."""
    from repro import get_test
    from repro.litmus import compile_test
    from repro.mapping import MultiVScaleProgramMapping
    from repro.verifier.simulation import simulate_check
    from repro.vscale.soc import MultiVScale

    for name in SIMULATION_TESTS:
        compiled = compile_test(get_test(name))
        mapping = MultiVScaleProgramMapping(compiled)
        simulate_check(
            MultiVScale(compiled, "fixed"),
            mapping.all_assumptions(),
            [],
            num_schedules=SIMULATION_SCHEDULES,
            max_cycles=60,
        )


def _bench_kernel_reachgraph() -> None:
    """Cold full ReachGraph builds on the compiled-kernel backend —
    the same workload as ``reachgraph_build`` so the two trajectories
    stay directly comparable.  Compile time is inside the measurement
    (the kernel cache is process-global, so only the first build of
    each design shape pays it — exactly what a verify run sees)."""
    from repro import get_test
    from repro.litmus import compile_test
    from repro.mapping import MultiVScaleProgramMapping
    from repro.sva import AssumptionChecker
    from repro.verifier.reach import ReachGraph
    from repro.vscale.soc import MultiVScale

    for name in REACHGRAPH_TESTS:
        compiled = compile_test(get_test(name))
        assumptions = MultiVScaleProgramMapping(compiled).all_assumptions()
        for variant in REACHGRAPH_VARIANTS:
            graph = ReachGraph(
                MultiVScale(compiled, variant, state_backend="kernel"),
                AssumptionChecker(assumptions),
            )
            frontier = [graph.root]
            seen = {graph.root}
            while frontier:
                node = frontier.pop()
                for _i, _inputs, _frame, child in graph.live_successors(node):
                    if child not in seen:
                        seen.add(child)
                        frontier.append(child)


def _bench_kernel_simulation() -> None:
    """Random-schedule simulation on the compiled-kernel backend
    (memoized per-(state, first) transition replay).  The campaign is
    10x the interpreted ``simulation`` workload: the memoized path is
    fast enough that the interpreted schedule count would measure
    timer noise, not the replay machinery this metric gates."""
    from repro import get_test
    from repro.litmus import compile_test
    from repro.mapping import MultiVScaleProgramMapping
    from repro.verifier.simulation import simulate_check
    from repro.vscale.soc import MultiVScale

    for name in KERNEL_SIMULATION_TESTS:
        compiled = compile_test(get_test(name))
        mapping = MultiVScaleProgramMapping(compiled)
        simulate_check(
            MultiVScale(compiled, "fixed", state_backend="kernel"),
            mapping.all_assumptions(),
            [],
            num_schedules=KERNEL_SIMULATION_SCHEDULES,
            max_cycles=60,
        )


def _bench_difftest() -> None:
    """Uncached difftest oracle sweep (operational + axiomatic + RTL)."""
    from repro import get_test
    from repro.difftest.oracles import evaluate_oracles

    for name in DIFFTEST_TESTS:
        evaluate_oracles(
            get_test(name), oracles=("operational", "axiomatic", "rtl")
        )


def _polycheck_long_test():
    """Deterministic 16-ops-per-thread program (trace-oracle-only
    territory: the exhaustive layers cannot touch it)."""
    from repro.litmus.test import LitmusTest, Outcome, load, store

    threads = [
        [store("x", i + 1) for i in range(8)]
        + [load("y", f"r{i}") for i in range(8)],
        [store("y", i + 1) for i in range(8)]
        + [load("x", f"r{i + 8}") for i in range(8)],
    ]
    return LitmusTest.of("bench-long16", threads, Outcome.of({}))


def _bench_polycheck() -> None:
    """Trace-oracle sweep: seeded RTL harvest + per-execution polycheck
    on the classic shapes plus one long program."""
    from repro import get_test
    from repro.difftest.oracles import trace_verdicts

    for name in POLYCHECK_TESTS:
        trace_verdicts(get_test(name), "fixed", samples=POLYCHECK_SAMPLES)
    trace_verdicts(_polycheck_long_test(), "fixed", samples=POLYCHECK_SAMPLES)


def _bench_coverage() -> None:
    """End-to-end verification with coverage maps on (uncached).

    Gates the cost of microarchitectural coverage collection: the
    per-test reach-graph walk, slot-vector signature hashing, and
    shape/assumption key extraction all ride this metric, so a
    collection-path regression shows up here even while the plain
    verification metrics stay flat.  The absolute <3% overhead bar
    lives in ``benchmarks/test_bench_coverage.py``.
    """
    from repro import RTLCheck, get_test

    rtlcheck = RTLCheck(coverage=True)
    for name in COVERAGE_TESTS:
        rtlcheck.verify_test(get_test(name), "fixed")


METRICS: Dict[str, Callable[[], None]] = {
    "reachgraph_build": _bench_reachgraph,
    "simulation": _bench_simulation,
    "kernel_reachgraph": _bench_kernel_reachgraph,
    "kernel_simulation": _bench_kernel_simulation,
    "difftest": _bench_difftest,
    "polycheck": _bench_polycheck,
    "coverage_overhead": _bench_coverage,
}


def _best_of(fn: Callable[[], None], repeats: int, extra: float = 0.0) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if extra:
            time.sleep(extra)
            elapsed += extra
        best = min(best, elapsed)
    return best


def run_gate(repeats: int, inject_slowdown: Optional[str] = None) -> Dict:
    calibration = _best_of(_calibration_workload, repeats)
    metrics = {}
    for name, fn in METRICS.items():
        warm_seconds = _best_of(fn, 1)  # one warm-up: imports, caches
        extra = 0.6 * warm_seconds if name == inject_slowdown else 0.0
        seconds = _best_of(fn, repeats, extra=extra)
        metrics[name] = {
            "seconds": round(seconds, 4),
            "units": round(seconds / calibration, 4),
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "calibration_seconds": round(calibration, 4),
        "repeats": repeats,
        "metrics": metrics,
    }


def check_against_baseline(
    current: Dict, baseline: Dict, threshold: float
) -> int:
    """Print a comparison table; return the number of regressions."""
    regressions = 0
    print(f"{'metric':18s} {'baseline':>9s} {'current':>9s} {'ratio':>7s}")
    for name, entry in current["metrics"].items():
        base = baseline.get("metrics", {}).get(name)
        if base is None:
            print(f"{name:18s} {'—':>9s} {entry['units']:>9.3f}   (new metric)")
            continue
        ratio = entry["units"] / base["units"]
        flag = ""
        if ratio > 1.0 + threshold:
            flag = f"  REGRESSION (> {1.0 + threshold:.2f}x)"
            regressions += 1
        print(
            f"{name:18s} {base['units']:>9.3f} {entry['units']:>9.3f} "
            f"{ratio:>6.2f}x{flag}"
        )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_ci.json", help="trajectory point to write"
    )
    parser.add_argument(
        "--baseline", default=None, help="committed baseline JSON to compare"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when a metric regresses past the threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional slowdown (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS, help="best-of-N runs"
    )
    parser.add_argument(
        "--inject-slowdown",
        choices=sorted(METRICS),
        default=None,
        help="artificially slow one metric (gate self-test only)",
    )
    args = parser.parse_args(argv)

    current = run_gate(args.repeats, inject_slowdown=args.inject_slowdown)
    with open(args.output, "w") as handle:
        json.dump(current, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    for name, entry in current["metrics"].items():
        print(f"  {name:18s} {entry['seconds']:>8.3f}s  {entry['units']:.3f} units")

    if args.baseline is None:
        return 0
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    regressions = check_against_baseline(current, baseline, args.threshold)
    if regressions and args.check:
        print(f"bench gate: {regressions} metric(s) regressed", file=sys.stderr)
        return 1
    print("bench gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
