#!/usr/bin/env python
"""Refresh the committed bench-gate baseline.

Re-runs the pinned :mod:`tools.bench_gate` metric set and rewrites
``benchmarks/baselines/ci_baseline.json``.  Run this (and commit the
diff, with a sentence in the PR about *why* the trajectory moved) only
when a performance change is intentional:

    PYTHONPATH=src python tools/regen_bench_baseline.py

The baseline stores calibrated units (metric seconds / calibration
seconds), so it does not need to be regenerated on a particular
machine class — see ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_gate import DEFAULT_REPEATS, run_gate  # noqa: E402

BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..",
    "benchmarks",
    "baselines",
    "ci_baseline.json",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--output", default=BASELINE)
    args = parser.parse_args(argv)

    baseline = run_gate(args.repeats)
    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    for name, entry in baseline["metrics"].items():
        print(f"  {name:18s} {entry['seconds']:>8.3f}s  {entry['units']:.3f} units")
    return 0


if __name__ == "__main__":
    sys.exit(main())
