"""The persistent content-addressed verification cache (`repro.cache`).

Covers the contracts docs/caching.md promises:

* key stability — the same inputs digest identically within a process,
  across processes, and regardless of ``--jobs``;
* invalidation — a different memory variant, µspec model, or engine
  configuration is a different key (never a wrong hit);
* robustness — corrupt and stale entries are dropped and recomputed,
  never crash a run;
* observability — a warm hit replays complete spans/counters, and a
  warm run's report validates with aggregates equal to the cold run's;
* resume — re-running after a mid-campaign ``kill -9`` produces
  verdicts byte-identical (modulo wall-clock) to an uninterrupted run;
* maintenance — LRU ``gc`` evicts oldest-touched entries first.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cache import (
    CacheStats,
    CheckpointManifest,
    VerificationCache,
    keys,
)
from repro.core.rtlcheck import RTLCheck
from repro.litmus.suite import get_test
from repro.obs.report import suite_report, validate_report
from repro.uspec.model import load_model
from repro.verifier.config import CONFIGS, FULL_PROOF

SRC = Path(__file__).resolve().parent.parent / "src"


def _strip_timings(value):
    """Recursively zero every run-dependent field: wall-clock timings
    (``seconds`` / ``*_seconds``) and ``reach.cache_hits`` (which
    counts transitions *replayed* from a memoized graph instead of
    simulated — a measure of reuse, not of the verified result).
    Everything else in a verdict is deterministic."""
    if isinstance(value, dict):
        return {
            k: 0.0
            if k == "seconds"
            or k.endswith("_seconds")
            or k == "reach.cache_hits"
            else _strip_timings(v)
            for k, v in value.items()
        }
    if isinstance(value, list):
        return [_strip_timings(v) for v in value]
    return value


# ---------------------------------------------------------------------------
# key derivation
# ---------------------------------------------------------------------------


class TestKeys:
    def test_stable_within_process(self):
        rc = RTLCheck()
        test = get_test("mp")
        assert rc.verdict_key(test, "fixed") == rc.verdict_key(test, "fixed")

    def test_stable_across_processes(self):
        test = get_test("mp")
        here = RTLCheck().verdict_key(test, "fixed")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        script = (
            "from repro.core.rtlcheck import RTLCheck\n"
            "from repro.litmus.suite import get_test\n"
            "print(RTLCheck().verdict_key(get_test('mp'), 'fixed'))\n"
        )
        there = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.strip()
        assert here == there

    def test_memory_variant_invalidates(self):
        rc = RTLCheck()
        test = get_test("mp")
        assert rc.verdict_key(test, "fixed") != rc.verdict_key(test, "buggy")

    def test_engine_config_invalidates(self):
        test = get_test("mp")
        assert RTLCheck(config=CONFIGS["Hybrid"]).verdict_key(
            test, "fixed"
        ) != RTLCheck(config=FULL_PROOF).verdict_key(test, "fixed")

    def test_uspec_model_invalidates(self):
        test = get_test("mp")
        assert RTLCheck(model=load_model("multi_vscale")).verdict_key(
            test, "fixed"
        ) != RTLCheck(model=load_model("multi_vscale_tso")).verdict_key(
            test, "fixed"
        )

    def test_litmus_test_invalidates(self):
        rc = RTLCheck()
        assert rc.verdict_key(get_test("mp"), "fixed") != rc.verdict_key(
            get_test("sb"), "fixed"
        )

    def test_explorer_choice_invalidates(self):
        test = get_test("mp")
        assert RTLCheck(use_reach_graph=True).verdict_key(
            test, "fixed"
        ) != RTLCheck(use_reach_graph=False).verdict_key(test, "fixed")

    def test_reach_key_shared_across_configs(self):
        # One reach graph serves every engine configuration: its key
        # does not involve the config or the µspec model.
        test = get_test("mp")
        key = keys.reach_key(
            test=test,
            memory_variant="fixed",
            design_factory=RTLCheck().design_factory,
            program_mapping_factory=RTLCheck().program_mapping_factory,
        )
        assert "config" not in key  # keys are opaque digests
        assert len(key) == 64 and int(key, 16) >= 0


# ---------------------------------------------------------------------------
# verdict tier: hits, byte identity, observability replay
# ---------------------------------------------------------------------------


class TestVerdictTier:
    def test_warm_hit_is_byte_identical(self, tmp_path):
        cache = VerificationCache(tmp_path)
        rc = RTLCheck(cache=cache)
        test = get_test("mp")
        cold = rc.verify_test(test, "fixed")
        warm = rc.verify_test(test, "fixed")
        assert cache.stats.get("cache.verdict.hits") == 1
        assert json.dumps(cold.to_dict(), sort_keys=True) == json.dumps(
            warm.to_dict(), sort_keys=True
        )
        assert warm.sva_text == cold.sva_text

    def test_observed_hit_replays_obs(self, tmp_path):
        cache = VerificationCache(tmp_path)
        rc = RTLCheck(cache=cache, observe=True)
        test = get_test("sb")
        cold = rc.verify_test(test, "fixed")
        warm = rc.verify_test(test, "fixed")
        assert warm.obs is not None
        assert warm.obs == cold.obs

    def test_unobserved_entry_upgraded_for_observed_run(self, tmp_path):
        cache = VerificationCache(tmp_path)
        test = get_test("mp")
        RTLCheck(cache=cache).verify_test(test, "fixed")
        # The observed run must not accept the unobserved entry ...
        observed = RTLCheck(cache=cache, observe=True)
        result = observed.verify_test(test, "fixed")
        assert result.obs is not None
        assert cache.stats.get("cache.verdict.unobserved_misses") == 1
        # ... and its recompute upgrades the entry in place.
        again = observed.verify_test(test, "fixed")
        assert again.obs == result.obs
        assert cache.stats.get("cache.verdict.hits") == 1

    def test_warm_report_validates_and_matches_cold(self, tmp_path):
        # Satellite regression: a warm run's --report must still carry
        # complete per-test counters, validate, and aggregate exactly
        # like the cold run that populated the cache.
        cache = VerificationCache(tmp_path)
        rc = RTLCheck(cache=cache, observe=True)
        tests = [get_test(n) for n in ("mp", "sb")]
        cold = rc.verify_suite(tests)
        warm = rc.verify_suite(tests)
        cold_report = suite_report(cold, jobs=1)
        warm_report = suite_report(warm, jobs=1, cache=cache.stats.snapshot())
        assert validate_report(cold_report) == []
        assert validate_report(warm_report) == []
        assert json.dumps(cold_report["tests"], sort_keys=True) == json.dumps(
            warm_report["tests"], sort_keys=True
        )
        assert cold_report["aggregates"] == warm_report["aggregates"]
        assert warm_report["cache"]["cache.verdict.hits"] == 2

    def test_corrupt_entry_recomputed(self, tmp_path):
        cache = VerificationCache(tmp_path)
        rc = RTLCheck(cache=cache)
        test = get_test("mp")
        cold = rc.verify_test(test, "fixed")
        [entry] = (tmp_path / "verdicts").rglob("*.json")
        entry.write_bytes(b'{"truncated')
        recomputed = rc.verify_test(test, "fixed")
        assert cache.stats.get("cache.verdict.corrupt") == 1
        assert json.dumps(
            _strip_timings(cold.to_dict()), sort_keys=True
        ) == json.dumps(_strip_timings(recomputed.to_dict()), sort_keys=True)
        # The corrupt file was dropped and rewritten by the recompute.
        assert rc.verify_test(test, "fixed").verified
        assert cache.stats.get("cache.verdict.hits") == 1

    def test_stale_format_dropped(self, tmp_path):
        cache = VerificationCache(tmp_path)
        rc = RTLCheck(cache=cache)
        test = get_test("mp")
        rc.verify_test(test, "fixed")
        [entry] = (tmp_path / "verdicts").rglob("*.json")
        data = json.loads(entry.read_text())
        data["format"] = -1
        entry.write_text(json.dumps(data))
        rc.verify_test(test, "fixed")
        assert cache.stats.get("cache.verdict.stale") == 1
        assert cache.stats.get("cache.verdict.hits") == 0


# ---------------------------------------------------------------------------
# suite: jobs-independence, pool bypass, checkpointing
# ---------------------------------------------------------------------------


class TestSuiteCaching:
    TESTS = ("mp", "sb", "lb")

    def test_warm_hits_regardless_of_jobs(self, tmp_path):
        tests = [get_test(n) for n in self.TESTS]
        cold_rc = RTLCheck(cache=VerificationCache(tmp_path))
        cold = cold_rc.verify_suite(tests, jobs=2)
        # A different jobs value must still hit every verdict.
        warm_rc = RTLCheck(cache=VerificationCache(tmp_path))
        warm = warm_rc.verify_suite(tests, jobs=1)
        assert warm_rc.cache.stats.get("cache.verdict.hits") == len(tests)
        for name in cold:
            assert json.dumps(cold[name].to_dict(), sort_keys=True) == json.dumps(
                warm[name].to_dict(), sort_keys=True
            )

    def test_fully_warm_parallel_run_skips_pool(self, tmp_path, monkeypatch):
        tests = [get_test(n) for n in self.TESTS]
        rc = RTLCheck(cache=VerificationCache(tmp_path))
        rc.verify_suite(tests, jobs=1)
        # A fully-warm run must never spawn a worker.
        import repro.core.rtlcheck as rtlcheck_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("process pool dispatched on a warm run")

        monkeypatch.setattr(rtlcheck_mod, "ProcessPoolExecutor", boom)
        warm = rc.verify_suite(tests, jobs=4)
        assert set(warm) == {t.name for t in tests}

    def test_checkpoint_manifest_written_and_finished(self, tmp_path):
        tests = [get_test(n) for n in self.TESTS]
        cache = VerificationCache(tmp_path)
        RTLCheck(cache=cache).verify_suite(tests)
        [manifest_path] = (tmp_path / "checkpoints").glob("*.json")
        manifest = json.loads(manifest_path.read_text())
        assert manifest["complete"] is True
        assert sorted(manifest["completed"]) == sorted(self.TESTS)
        assert manifest["total"] == len(tests)

    def test_checkpoint_disabled(self, tmp_path):
        tests = [get_test(n) for n in self.TESTS[:1]]
        cache = VerificationCache(tmp_path)
        RTLCheck(cache=cache).verify_suite(tests, checkpoint=False)
        assert not (tmp_path / "checkpoints").exists()


# ---------------------------------------------------------------------------
# resume after kill (the CLI end to end, SIGKILL mid-campaign)
# ---------------------------------------------------------------------------


class TestResumeAfterKill:
    def _run_suite(self, cache_dir, report, extra=()):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        return subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "suite",
                "--only",
                "mp",
                "sb",
                "lb",
                "--jobs",
                "1",
                "--report",
                str(report),
                *extra,
            ],
            capture_output=True,
            text=True,
            env=env,
        )

    def test_resume_produces_byte_identical_verdicts(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CACHE_DIR"] = str(tmp_path / "killed")
        # Start a campaign and SIGKILL it after the first completed test.
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "suite",
                "--only",
                "mp",
                "sb",
                "lb",
                "--jobs",
                "1",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        deadline = time.time() + 120
        for line in proc.stdout:
            if line.startswith("[1/") or time.time() > deadline:
                break
        proc.send_signal(signal.SIGKILL)
        proc.wait()

        resumed = self._run_suite(tmp_path / "killed", tmp_path / "resumed.json")
        assert resumed.returncode == 0, resumed.stderr
        fresh = self._run_suite(tmp_path / "fresh", tmp_path / "fresh.json")
        assert fresh.returncode == 0, fresh.stderr

        resumed_report = json.loads((tmp_path / "resumed.json").read_text())
        fresh_report = json.loads((tmp_path / "fresh.json").read_text())
        assert validate_report(resumed_report) == []
        # Verdicts byte-identical modulo wall-clock timings; counters
        # (part of each test snapshot) must match exactly.
        assert json.dumps(
            _strip_timings(resumed_report["tests"]), sort_keys=True
        ) == json.dumps(_strip_timings(fresh_report["tests"]), sort_keys=True)


# ---------------------------------------------------------------------------
# checkpoint manifests
# ---------------------------------------------------------------------------


class TestCheckpointManifest:
    def test_mark_done_idempotent_and_persistent(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = CheckpointManifest(path, "campaign-a", total=3)
        manifest.mark_done("u1")
        manifest.mark_done("u1")
        manifest.mark_done("u2")
        reloaded = CheckpointManifest(path, "campaign-a")
        assert reloaded.completed == ["u1", "u2"]
        assert reloaded.resumed == 2
        assert reloaded.total == 3
        assert not reloaded.complete

    def test_campaign_mismatch_resets(self, tmp_path):
        path = tmp_path / "m.json"
        CheckpointManifest(path, "campaign-a").mark_done("u1")
        other = CheckpointManifest(path, "campaign-b")
        assert other.completed == []
        assert other.resumed == 0

    def test_finish(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = CheckpointManifest(path, "campaign-a")
        manifest.finish()
        assert CheckpointManifest(path, "campaign-a").complete


# ---------------------------------------------------------------------------
# monitor (NFA) and reach tiers
# ---------------------------------------------------------------------------


class TestArtifactTiers:
    def test_monitor_roundtrip_clears_memos(self, tmp_path):
        from repro.sva.monitor import PropertyMonitor

        cache = VerificationCache(tmp_path)
        rc = RTLCheck(cache=cache)
        generated = rc.generate(get_test("mp"))
        directive = generated.assertions[0]
        fresh = PropertyMonitor(directive)
        cache.store_monitor(keys.monitor_key(directive), fresh)
        loaded = cache.load_monitor(keys.monitor_key(directive))
        assert loaded is not None
        assert loaded.verdict_memo_hits == 0
        assert loaded.verdict_memo_misses == 0
        assert all(n.memo_hits == 0 and n.memo_misses == 0 for n in loaded.nfas)

    def test_reach_tier_serves_other_config(self, tmp_path):
        # The graph stored by a Full_Proof run is loaded by a Hybrid
        # run (different verdict key, same reach key) — the config
        # sweep pays design simulation once.
        cache = VerificationCache(tmp_path)
        test = get_test("sb")
        RTLCheck(config=FULL_PROOF, cache=cache).verify_test(test, "fixed")
        assert cache.stats.get("cache.reach.puts") == 1
        hybrid = RTLCheck(config=CONFIGS["Hybrid"], cache=cache)
        result = hybrid.verify_test(test, "fixed")
        assert cache.stats.get("cache.reach.hits") == 1
        assert cache.stats.get("cache.verdict.misses") == 2
        # Warm-graph verdicts report the same totals as a cold run.
        cold = RTLCheck(config=CONFIGS["Hybrid"]).verify_test(test, "fixed")
        assert result.graph_transitions == cold.graph_transitions
        assert result.graph_states == cold.graph_states

    def test_warm_graph_verdict_identical_when_observed(self, tmp_path):
        # Same check under observability: counters recorded off a warm
        # graph must equal the cold run's (graph pickles carry their
        # accumulated counters).
        cache = VerificationCache(tmp_path)
        test = get_test("mp")
        RTLCheck(config=FULL_PROOF, cache=cache).verify_test(test, "fixed")
        warm = RTLCheck(
            config=CONFIGS["Hybrid"], cache=cache, observe=True
        ).verify_test(test, "fixed")
        cold = RTLCheck(config=CONFIGS["Hybrid"], observe=True).verify_test(
            test, "fixed"
        )
        warm_counters = dict(warm.obs["counters"])
        cold_counters = dict(cold.obs["counters"])
        # reach.cache_hits is reuse telemetry: the warm graph replays
        # transitions the cold run simulates.
        warm_counters.pop("reach.cache_hits", None)
        cold_counters.pop("reach.cache_hits", None)
        assert warm_counters == cold_counters


# ---------------------------------------------------------------------------
# difftest oracle tier
# ---------------------------------------------------------------------------


class TestOracleTier:
    def test_oracle_outcomes_cached_and_identical(self, tmp_path):
        from repro.difftest.oracles import evaluate_oracles

        cache = VerificationCache(tmp_path)
        test = get_test("mp")
        cold = evaluate_oracles(test, "fixed", cache=cache)
        warm = evaluate_oracles(test, "fixed", cache=cache)
        # operational + axiomatic + rtl + trace (the verifier layer is
        # cached through the verdict tier, not the oracle tier).
        assert cache.stats.get("cache.oracle.hits") == 4
        assert warm.op_outcomes == cold.op_outcomes
        assert warm.ax_outcomes == cold.ax_outcomes
        assert warm.rtl.outcomes == cold.rtl.outcomes
        assert warm.rtl.states == cold.rtl.states
        assert warm.trace_checks == cold.trace_checks
        assert warm.to_dict() == cold.to_dict()

    def test_design_independent_layers_shared_across_variants(self, tmp_path):
        from repro.difftest.oracles import evaluate_oracles

        cache = VerificationCache(tmp_path)
        test = get_test("mp")
        evaluate_oracles(test, "fixed", oracles=("operational", "axiomatic"), cache=cache)
        evaluate_oracles(test, "buggy", oracles=("operational", "axiomatic"), cache=cache)
        # The buggy-variant run reuses both design-independent entries.
        assert cache.stats.get("cache.oracle.hits") == 2
        assert cache.stats.get("cache.oracle.puts") == 2

    def test_fuzz_campaign_warm_and_resumable(self, tmp_path):
        from repro.difftest import FuzzConfig, run_fuzz

        config = FuzzConfig(
            seed=9,
            budget=3,
            memory_variant="fixed",
            shrink=False,
            cache_dir=str(tmp_path),
        )
        cold = run_fuzz(config)
        assert cold.resumed == 0
        assert cold.cache_stats.get("cache.oracle.puts", 0) > 0
        warm = run_fuzz(config)
        assert warm.resumed == config.budget
        assert warm.cache_stats.get("cache.verdict.hits") == config.budget
        assert warm.verdict_tally == cold.verdict_tally
        assert warm.verdicts == cold.verdicts


# ---------------------------------------------------------------------------
# maintenance: gc / LRU / clear / stats plumbing
# ---------------------------------------------------------------------------


class TestMaintenance:
    def _put(self, cache, name, age):
        key = keys.digest_payload({"entry": name})
        cache.store_oracle(key, {"name": name})
        path = cache._path("oracle", key)
        stamp = time.time() - age
        os.utime(path, (stamp, stamp))
        return key

    def test_gc_evicts_lru_first(self, tmp_path):
        cache = VerificationCache(tmp_path)
        old = self._put(cache, "old", age=1000)
        new = self._put(cache, "new", age=0)
        entry_bytes = cache._path("oracle", new).stat().st_size
        evicted = cache.gc(max_bytes=entry_bytes)
        assert evicted == 1
        assert cache.load_oracle(new) is not None
        assert cache.load_oracle(old) is None
        assert cache.stats.get("cache.evictions") == 1

    def test_hit_touches_entry(self, tmp_path):
        cache = VerificationCache(tmp_path)
        old = self._put(cache, "old", age=1000)
        new = self._put(cache, "new", age=500)
        # Touch the older entry via a hit; the *other* one now evicts.
        assert cache.load_oracle(old) is not None
        entry_bytes = cache._path("oracle", old).stat().st_size
        cache.gc(max_bytes=entry_bytes)
        assert cache.load_oracle(old) is not None
        assert cache.load_oracle(new) is None

    def test_clear_removes_everything(self, tmp_path):
        cache = VerificationCache(tmp_path)
        self._put(cache, "a", age=0)
        removed = cache.clear()
        assert removed == 1
        assert cache.usage()["total"]["entries"] == 0

    def test_max_bytes_bound_self_enforces(self, tmp_path):
        # An instance bound triggers eviction after every write.
        cache = VerificationCache(tmp_path, max_bytes=1)
        cache.store_oracle(keys.digest_payload({"entry": "a"}), {"name": "a"})
        cache.store_oracle(keys.digest_payload({"entry": "b"}), {"name": "b"})
        assert cache.usage()["total"]["entries"] <= 1
        assert cache.stats.get("cache.evictions") >= 1

    def test_stats_pickle_zeroed_for_workers(self, tmp_path):
        import pickle

        cache = VerificationCache(tmp_path)
        cache.stats.bump("cache.verdict.hits", 5)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.root == cache.root
        assert clone.stats.snapshot() == {}

    def test_stats_merge_and_summary(self):
        stats = CacheStats()
        stats.merge({"cache.verdict.hits": 2, "cache.verdict.misses": 1})
        stats.merge({"cache.verdict.hits": 1})
        assert stats.get("cache.verdict.hits") == 3
        assert stats.tier_total("hits") == 3
        assert "verdict 3/4 hits" in stats.summary()
