"""Tests for µspec grounding and the check/rtl evaluation modes."""

import pytest

from repro.errors import UspecError
from repro.litmus import LitmusTest, Outcome, compile_test, get_test, load, store
from repro.uspec import (
    EvalContext,
    GroundEdge,
    LoadValue,
    evaluate_axiom,
    evaluate_formula,
    micros_from_compiled,
    multi_vscale_model,
    parse_formula,
    parse_uspec,
)
from repro.uspec.ast import And, Not, Or, Truth


@pytest.fixture(scope="module")
def model():
    return multi_vscale_model()


def context_for(name, mode="check"):
    return EvalContext.for_compiled(compile_test(get_test(name)), mode=mode)


class TestMicroExtraction:
    def test_mp_micros(self):
        micros = micros_from_compiled(compile_test(get_test("mp")))
        assert [m.uid for m in micros] == [1, 2, 3, 4]
        assert micros[0].is_store and micros[2].is_load
        assert micros[2].out == "r1"

    def test_cores_derived(self):
        ctx = context_for("wrc")
        assert ctx.cores == [0, 1, 2]


class TestPredicates:
    def test_program_order(self, model):
        ctx = context_for("mp")
        f = parse_formula('forall microops "a", "b", ProgramOrder a b => SameCore a b')
        assert evaluate_formula(model, f, ctx) == Truth(True)

    def test_same_address(self, model):
        ctx = context_for("mp")
        # In mp, i1 (St x) and i4 (Ld x) share an address.
        f = parse_formula('exists microops "a", "b", (IsAnyWrite a /\\ IsAnyRead b /\\ SameAddress a b)')
        assert evaluate_formula(model, f, ctx) == Truth(True)

    def test_on_core_with_core_quantifier(self, model):
        ctx = context_for("mp")
        f = parse_formula('forall microop "i", exists core "c", OnCore c i')
        assert evaluate_formula(model, f, ctx) == Truth(True)

    def test_unknown_predicate(self, model):
        ctx = context_for("mp")
        with pytest.raises(UspecError):
            evaluate_formula(model, parse_formula("Bogus a a"), ctx)

    def test_unbound_variable(self, model):
        ctx = context_for("mp")
        with pytest.raises(UspecError):
            evaluate_formula(model, parse_formula("IsAnyRead q"), ctx)

    def test_unknown_stage_rejected(self, model):
        ctx = context_for("mp")
        f = parse_formula('forall microop "i", NodeExists (i, Retire)')
        with pytest.raises(UspecError):
            evaluate_formula(model, f, ctx)


class TestCheckModeOmniscience:
    def test_same_data_concrete_for_pinned_load(self, model):
        """mp's outcome pins r2=0, so SameData(St x=1, Ld x) is False."""
        ctx = context_for("mp", mode="check")
        f = parse_formula(
            'exists microops "w", "i", '
            "(IsAnyWrite w /\\ IsAnyRead i /\\ SameAddress w i /\\ SameData w i "
            "/\\ SameCore i i)"
        )
        # St y=1 and Ld y (r1=1) DO have the same data.
        assert evaluate_formula(model, f, ctx) == Truth(True)

    def test_data_from_initial_state(self, model):
        ctx = context_for("mp", mode="check")
        # r2=0 = initial value of x.
        f = parse_formula('exists microop "i", (IsAnyRead i /\\ DataFromInitialStateAtPA i)')
        assert evaluate_formula(model, f, ctx) == Truth(True)

    def test_unpinned_load_raises_in_check_mode(self, model):
        test = LitmusTest.of(
            "unpinned",
            [[store("x", 1)], [load("x", "r1")]],
            Outcome.of({}),  # r1 not pinned
        )
        ctx = EvalContext.for_compiled(compile_test(test), mode="check")
        f = parse_formula(
            'forall microops "w", "i", (IsAnyWrite w /\\ IsAnyRead i) => SameData w i'
        )
        with pytest.raises(UspecError):
            evaluate_formula(model, f, ctx)

    def test_data_from_final_state_check_mode(self, model):
        # n1 pins final x=1, so DataFromFinalStateAtPA holds for St x=1.
        ctx = context_for("n1", mode="check")
        f = parse_formula('exists microop "w", (IsAnyWrite w /\\ DataFromFinalStateAtPA w)')
        assert evaluate_formula(model, f, ctx) == Truth(True)
        # mp pins no finals: predicate is False for every write.
        ctx_mp = context_for("mp", mode="check")
        assert evaluate_formula(model, f, ctx_mp) == Truth(False)


class TestRtlModeSymbolic:
    def test_same_data_becomes_load_value_atom(self, model):
        ctx = context_for("mp", mode="rtl")
        f = parse_formula(
            'exists microops "w", "i", '
            "(IsAnyWrite w /\\ IsAnyRead i /\\ SameAddress w i /\\ SameData w i)"
        )
        ground = evaluate_formula(model, f, ctx)
        atoms = _collect(ground, LoadValue)
        assert atoms  # symbolic constraints survive
        assert all(isinstance(a, LoadValue) for a in atoms)

    def test_data_from_final_conservatively_false(self, model):
        ctx = context_for("n1", mode="rtl")
        f = parse_formula('exists microop "w", (IsAnyWrite w /\\ DataFromFinalStateAtPA w)')
        assert evaluate_formula(model, f, ctx) == Truth(False)

    def test_initial_state_symbolic_for_loads(self, model):
        ctx = context_for("mp", mode="rtl")
        f = parse_formula('forall microop "i", IsAnyRead i => DataFromInitialStateAtPA i')
        ground = evaluate_formula(model, f, ctx)
        atoms = _collect(ground, LoadValue)
        assert {a.value for a in atoms} == {0}

    def test_bad_mode_rejected(self):
        with pytest.raises(UspecError):
            EvalContext.for_compiled(compile_test(get_test("mp")), mode="weird")


class TestMacros:
    def test_macro_argument_binding(self, model):
        source = (
            'Stages "Writeback".\n'
            'DefineMacro "Rf" "w" "i": EdgeExists ((w, Writeback), (i, Writeback)).\n'
            'Axiom "A": forall microops "a", "b", '
            "(IsAnyWrite a /\\ IsAnyRead b) => ExpandMacro Rf a b."
        )
        m = parse_uspec(source)
        ctx = context_for("mp")
        ground = evaluate_axiom(m, m.axiom("A"), ctx)
        edges = _collect(ground, GroundEdge)
        assert edges
        assert all(e.src[1] == "Writeback" for e in edges)

    def test_macro_free_variable_capture(self, model):
        """Figure 5's macros reference the axiom's ``i`` without
        declaring it as a parameter — dynamic capture."""
        source = (
            'Stages "Writeback".\n'
            'DefineMacro "IsR": IsAnyRead i.\n'
            'Axiom "A": forall microop "i", IsAnyRead i => ExpandMacro IsR.'
        )
        m = parse_uspec(source)
        ground = evaluate_axiom(m, m.axiom("A"), context_for("mp"))
        assert ground == Truth(True)

    def test_undefined_macro(self, model):
        source = 'Stages "S".\nAxiom "A": ExpandMacro Missing.'
        m = parse_uspec(source)
        with pytest.raises(UspecError):
            evaluate_axiom(m, m.axiom("A"), context_for("mp"))

    def test_macro_arity_mismatch(self):
        source = (
            'Stages "S".\n'
            'DefineMacro "M" "x": IsAnyRead x.\n'
            'Axiom "A": forall microop "i", ExpandMacro M i i.'
        )
        m = parse_uspec(source)
        with pytest.raises(UspecError):
            evaluate_axiom(m, m.axiom("A"), context_for("mp"))

    def test_macro_recursion_guard(self):
        source = (
            'Stages "S".\n'
            'DefineMacro "Loop": ExpandMacro Loop.\n'
            'Axiom "A": ExpandMacro Loop.'
        )
        m = parse_uspec(source)
        with pytest.raises(UspecError):
            evaluate_axiom(m, m.axiom("A"), context_for("mp"))


class TestGroundShapes:
    def test_wb_fifo_grounding_is_horn_like(self, model):
        ctx = context_for("mp", mode="check")
        ground = evaluate_axiom(model, model.axiom("WB_FIFO"), ctx)
        # For mp: two same-core po pairs -> a conjunction of two
        # (~dx-edge \/ wb-edge) clauses.
        assert isinstance(ground, And)
        assert len(ground.operands) == 2
        for clause in ground.operands:
            assert isinstance(clause, Or)

    def test_read_values_grounding_mentions_both_loads(self, model):
        ctx = context_for("mp", mode="rtl")
        ground = evaluate_axiom(model, model.axiom("Read_Values"), ctx)
        atoms = _collect(ground, LoadValue)
        assert {a.uid for a in atoms} == {3, 4}
        # Outcome-aware: both values 0 and 1 appear for the loads.
        assert {a.value for a in atoms} == {0, 1}


def _collect(formula, kind):
    found = []

    def walk(f):
        if isinstance(f, kind):
            found.append(f)
        elif isinstance(f, (And, Or)):
            for op in f.operands:
                walk(op)
        elif isinstance(f, Not):
            walk(f.body)

    walk(formula)
    return found
