"""Tests for the SC / TSO oracles (operational and axiomatic)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.litmus import LitmusTest, Outcome, get_test, load, paper_suite, store
from repro.memodel import (
    axiomatic_sc_allowed,
    axiomatic_sc_witness,
    enumerate_sc_outcomes,
    enumerate_tso_outcomes,
    extract_events,
    is_acyclic,
    program_order_pairs,
    sc_allowed,
    sc_forbidden,
    tso_allowed,
)


class TestClassicVerdicts:
    def test_mp_forbidden_everywhere(self):
        assert sc_forbidden(get_test("mp"))
        assert not tso_allowed(get_test("mp"))

    def test_sb_distinguishes_sc_from_tso(self):
        sb = get_test("sb")
        assert sc_forbidden(sb)
        assert tso_allowed(sb)  # the classic store-buffering relaxation

    def test_lb_forbidden_under_tso(self):
        lb = get_test("lb")
        assert sc_forbidden(lb)
        assert not tso_allowed(lb)  # TSO does not reorder loads with later stores

    def test_iriw_forbidden(self):
        assert sc_forbidden(get_test("iriw"))

    def test_allowed_outcomes_exist(self):
        assert sc_allowed(get_test("iwp24"))
        assert sc_allowed(get_test("n5"))

    def test_coherence_tests_forbidden_under_tso_too(self):
        assert not tso_allowed(get_test("co-mp"))
        assert not tso_allowed(get_test("co-iriw"))

    def test_single_core_staleness_forbidden(self):
        assert sc_forbidden(get_test("ssl"))
        assert not tso_allowed(get_test("ssl"))  # store buffer forwards


class TestEnumeration:
    def test_mp_has_three_sc_register_outcomes(self):
        outcomes = {dict(f[0]) for f in ()}
        finals = enumerate_sc_outcomes(get_test("mp"))
        regs = {tuple(sorted(dict(f[0]).items())) for f in finals}
        assert regs == {
            (("r1", 0), ("r2", 0)),
            (("r1", 0), ("r2", 1)),
            (("r1", 1), ("r2", 1)),
        }

    def test_tso_outcomes_superset_of_sc(self):
        for name in ("mp", "sb", "lb", "wrc"):
            test = get_test(name)
            assert enumerate_sc_outcomes(test) <= enumerate_tso_outcomes(test)

    def test_final_memory_tracked(self):
        test = LitmusTest.of(
            "two-writes",
            [[store("x", 1)], [store("x", 2)]],
            Outcome.of({}, {"x": 1}),
        )
        finals = {dict(f[1])["x"] for f in enumerate_sc_outcomes(test)}
        assert finals == {1, 2}

    def test_fence_drains_tso_buffer(self):
        from repro.litmus import fence

        test = LitmusTest.of(
            "sb+fences",
            [[store("x", 1), fence(), load("y", "r1")],
             [store("y", 1), fence(), load("x", "r2")]],
            Outcome.of({"r1": 0, "r2": 0}),
        )
        assert sc_forbidden(test)
        assert not tso_allowed(test)  # fences restore SC for sb


class TestAxiomatic:
    def test_witness_for_allowed_outcome(self):
        witness = axiomatic_sc_witness(get_test("iwp24"))
        assert witness is not None
        assert witness.is_sc()

    def test_no_witness_for_forbidden_outcome(self):
        assert axiomatic_sc_witness(get_test("mp")) is None

    def test_candidate_load_values(self):
        test = get_test("mp")
        for candidate in __import__("repro.memodel.axiomatic", fromlist=["enumerate_candidates"]).enumerate_candidates(test):
            events = candidate.events
            for event in events:
                if event.is_load:
                    assert candidate.load_value(event.eid) in (0, 1)
            break

    def test_agreement_with_operational_on_paper_suite(self):
        for test in paper_suite():
            assert axiomatic_sc_allowed(test) == sc_allowed(test), test.name


class TestGraphHelpers:
    def test_is_acyclic_trivial(self):
        assert is_acyclic(3, [(0, 1), (1, 2)])

    def test_is_acyclic_detects_cycle(self):
        assert not is_acyclic(3, [(0, 1), (1, 2), (2, 0)])

    def test_self_loop_is_cycle(self):
        assert not is_acyclic(1, [(0, 0)])

    def test_program_order_is_transitive(self):
        events = extract_events(get_test("mp"))
        pairs = set(program_order_pairs(events))
        assert (0, 1) in pairs  # core 0: i1 -> i2
        assert (2, 3) in pairs  # core 1: i3 -> i4
        assert (0, 2) not in pairs  # cross-core


# ---------------------------------------------------------------------------
# Property-based: the two SC oracles are equivalent on random tests.
# ---------------------------------------------------------------------------

_ADDRS = ("x", "y")


@st.composite
def small_litmus_tests(draw):
    num_threads = draw(st.integers(min_value=1, max_value=3))
    reg_counter = 0
    threads = []
    loads = []
    for _t in range(num_threads):
        ops = []
        for _i in range(draw(st.integers(min_value=1, max_value=2))):
            addr = draw(st.sampled_from(_ADDRS))
            if draw(st.booleans()):
                ops.append(store(addr, draw(st.integers(min_value=1, max_value=2))))
            else:
                reg_counter += 1
                reg = f"r{reg_counter}"
                ops.append(load(addr, reg))
                loads.append((reg, addr))
        threads.append(ops)
    outcome_regs = {}
    for reg, _addr in loads:
        if draw(st.booleans()):
            outcome_regs[reg] = draw(st.integers(min_value=0, max_value=2))
    return LitmusTest.of("random", threads, Outcome.of(outcome_regs))


@settings(max_examples=60, deadline=None)
@given(small_litmus_tests())
def test_operational_and_axiomatic_sc_agree(test):
    assert sc_allowed(test) == axiomatic_sc_allowed(test)


@settings(max_examples=40, deadline=None)
@given(small_litmus_tests())
def test_tso_admits_every_sc_outcome(test):
    if sc_allowed(test):
        assert tso_allowed(test)
