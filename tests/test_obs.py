"""Tests for the :mod:`repro.obs` observability layer.

Covers the recorder substrate (spans, counters, gauges, state
merging), the Chrome trace and run-report exporters, and — most
importantly — the two load-bearing invariants:

* suite aggregates equal the sum of per-test counters regardless of
  job count (the process-pool merge is lossless);
* observability never changes verification: verdicts, bounds,
  transition counts, and modeled hours are bit-identical with the
  recorder on or off.
"""

import json
import time

import pytest

from repro import CONFIGS, RTLCheck, get_test, obs
from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    chrome_trace,
    get_recorder,
    merge_counters,
    merge_states,
    suite_report,
    use_recorder,
    validate_report,
)
from repro.core.results import TestVerification


class TestRecorder:
    def test_default_recorder_is_null(self):
        assert get_recorder() is NULL_RECORDER
        assert not get_recorder().enabled

    def test_null_span_still_times(self):
        with NullRecorder().span("work") as span:
            time.sleep(0.002)
        assert span.seconds >= 0.002

    def test_null_recorder_stores_nothing(self):
        recorder = NullRecorder()
        recorder.count("x", 5)
        recorder.gauge("y", 3.0)
        recorder.add_span("z", 0.0, 1.0)
        assert not hasattr(recorder, "events")
        assert not hasattr(recorder, "counters")

    def test_trace_recorder_records_span(self):
        recorder = TraceRecorder()
        with recorder.span("phase", test="mp"):
            pass
        assert len(recorder.events) == 1
        event = recorder.events[0]
        assert event["name"] == "phase"
        assert event["args"] == {"test": "mp"}
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0

    def test_spans_nest(self):
        recorder = TraceRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        # Inner span finishes (and is recorded) first.
        assert [e["name"] for e in recorder.events] == ["inner", "outer"]

    def test_counters_sum(self):
        recorder = TraceRecorder()
        recorder.count("hits")
        recorder.count("hits", 4)
        assert recorder.counters["hits"] == 5

    def test_use_recorder_restores_previous(self):
        recorder = TraceRecorder()
        with use_recorder(recorder):
            assert get_recorder() is recorder
            obs.count("via.module.helper", 2)
        assert get_recorder() is NULL_RECORDER
        assert recorder.counters["via.module.helper"] == 2

    def test_merge_state_sums_counters_and_maxes_gauges(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.count("hits", 3)
        a.gauge("states", 10)
        b.count("hits", 4)
        b.count("misses", 1)
        b.gauge("states", 7)
        merged = merge_states([a.to_state(), b.to_state()])
        assert merged.counters == {"hits": 7, "misses": 1}
        assert merged.gauges == {"states": 10}

    def test_merge_state_gauge_semantics_pinned(self):
        # Gauges are level samples, not increments: merging worker
        # snapshots must never sum them.  Plain gauges take the max
        # across workers; ``.last``-suffixed gauges take the value from
        # the latest snapshot merged (in merge order).
        a, b = TraceRecorder(), TraceRecorder()
        a.gauge("depth", 10)
        a.gauge("phase.last", 1)
        b.gauge("depth", 7)
        b.gauge("phase.last", 2)
        merged = merge_states([a.to_state(), b.to_state()])
        assert merged.gauges["depth"] == 10  # max, not 17
        assert merged.gauges["phase.last"] == 2  # last write wins
        reversed_merge = merge_states([b.to_state(), a.to_state()])
        assert reversed_merge.gauges["depth"] == 10
        assert reversed_merge.gauges["phase.last"] == 1

    def test_merge_gauges_matches_recorder_merge(self):
        from repro.obs import merge_gauges

        states = [
            {"gauges": {"depth": 4, "phase.last": 1}},
            {"gauges": {"depth": 9, "phase.last": 3}},
            {"gauges": {"depth": 2}},
        ]
        assert merge_gauges(states) == {"depth": 9, "phase.last": 3}

    def test_state_is_json_safe(self):
        recorder = TraceRecorder()
        with recorder.span("phase", test="mp"):
            recorder.count("hits")
            recorder.gauge("states", 4)
        json.dumps(recorder.to_state())


class TestChromeTrace:
    def test_shape(self):
        recorder = TraceRecorder()
        with recorder.span("cover", test="mp"):
            pass
        doc = chrome_trace({"mp": recorder.to_state(), "skipped": None})
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(phases) == 1
        assert phases[0]["name"] == "cover"
        assert phases[0]["pid"] == 1
        # The None track contributes no metadata event.
        assert [m["args"]["name"] for m in metas] == ["mp"]
        json.dumps(doc)


@pytest.fixture(scope="module")
def observed_results():
    """mp + sb verified with observability on (sb exercises the proof
    phase; mp is discharged by the covering trace)."""
    rtlcheck = RTLCheck(observe=True)
    tests = [get_test("mp"), get_test("sb")]
    return rtlcheck.verify_suite(tests, memory_variant="fixed")


class TestInstrumentation:
    def test_obs_snapshot_attached(self, observed_results):
        for result in observed_results.values():
            assert result.obs is not None
            assert result.obs["counters"]

    def test_phase_spans_present_per_test(self, observed_results):
        for result in observed_results.values():
            names = {e["name"] for e in result.obs["events"]}
            assert {"generate", "cover", "graph-build", "proof"} <= names

    def test_cover_shortcut_records_zero_duration_proof_span(
        self, observed_results
    ):
        mp = observed_results["mp"]
        assert mp.verified_by_cover
        proof = [e for e in mp.obs["events"] if e["name"] == "proof"]
        assert len(proof) == 1
        assert proof[0]["dur"] == 0.0
        assert proof[0]["args"]["skipped_by_cover"] is True

    def test_expected_counters_recorded(self, observed_results):
        sb = observed_results["sb"]
        counters = sb.obs["counters"]
        for name in (
            "generator.assumptions",
            "generator.assertions",
            "explorer.cover_walks",
            "explorer.property_walks",
            "explorer.transitions",
            "reach.cache_hits",
            "reach.sim_transitions",
            "rtl.frames_simulated",
            "monitor.verdict_memo_hits",
            "nfa.predicate_memo_misses",
            "assumptions.antecedent_firings",
        ):
            assert counters.get(name, 0) > 0, name

    def test_recorder_not_leaked(self, observed_results):
        assert get_recorder() is NULL_RECORDER

    def test_observability_does_not_change_results(self, observed_results):
        plain = RTLCheck().verify_suite(
            [get_test("mp"), get_test("sb")], memory_variant="fixed"
        )
        for name, observed in observed_results.items():
            baseline = plain[name]
            assert observed.verified_by_cover == baseline.verified_by_cover
            assert observed.cover.verdict == baseline.cover.verdict
            assert observed.cover.transitions == baseline.cover.transitions
            assert observed.modeled_hours == baseline.modeled_hours
            assert len(observed.properties) == len(baseline.properties)
            for obs_prop, base_prop in zip(
                observed.properties, baseline.properties
            ):
                assert obs_prop.name == base_prop.name
                assert obs_prop.status == base_prop.status
                assert obs_prop.verdict.bound == base_prop.verdict.bound
                assert (
                    obs_prop.verdict.transitions == base_prop.verdict.transitions
                )
                assert (
                    obs_prop.ground_truth.layer_transitions
                    == base_prop.ground_truth.layer_transitions
                )


class TestReport:
    def test_suite_report_validates(self, observed_results):
        report = suite_report(
            observed_results,
            config_name="Full_Proof",
            memory_variant="fixed",
            jobs=1,
        )
        assert validate_report(report) == []
        json.dumps(report)

    def test_aggregates_equal_sum_of_tests(self, observed_results):
        report = suite_report(observed_results)
        totals = merge_counters(report["tests"])
        assert report["aggregates"]["counters"] == totals
        assert report["aggregates"]["modeled_hours_total"] == pytest.approx(
            sum(t["modeled_hours"] for t in report["tests"])
        )

    def test_tampered_report_rejected(self, observed_results):
        report = suite_report(observed_results)
        report["aggregates"]["properties_proven"] += 1
        assert validate_report(report)
        del report["aggregates"]
        assert validate_report(report)

    def test_jobs_invariance(self):
        """The acceptance invariant: aggregates are identical whether
        counters were merged from one process or from pool workers."""
        tests = [get_test("mp"), get_test("sb"), get_test("lb")]
        rtlcheck = RTLCheck(observe=True)
        serial = rtlcheck.verify_suite(tests, memory_variant="fixed", jobs=1)
        parallel = rtlcheck.verify_suite(tests, memory_variant="fixed", jobs=2)
        agg1 = suite_report(serial)["aggregates"]
        agg2 = suite_report(parallel)["aggregates"]
        assert agg1["counters"] == agg2["counters"]
        for key in (
            "properties_total",
            "properties_proven",
            "properties_bounded",
            "bugs_found",
            "verified_by_cover",
            "bounded_bounds",
        ):
            assert agg1[key] == agg2[key]
        assert agg1["modeled_hours_total"] == pytest.approx(
            agg2["modeled_hours_total"]
        )

    def test_round_trip(self, observed_results):
        for result in observed_results.values():
            snapshot = result.to_dict()
            rebuilt = TestVerification.from_dict(snapshot)
            assert rebuilt.to_dict() == snapshot
            assert rebuilt.summary() == result.summary()

    def test_failure_report_still_carries_counterexamples(self):
        rtlcheck = RTLCheck(config=CONFIGS["Full_Proof"], observe=True)
        results = rtlcheck.verify_suite(
            [get_test("mp")], memory_variant="buggy"
        )
        report = suite_report(results, memory_variant="buggy")
        assert validate_report(report) == []
        assert report["aggregates"]["bugs_found"] == 1
        rebuilt = TestVerification.from_dict(report["tests"][0])
        assert rebuilt.bug_found
        assert rebuilt.counterexamples[0].counterexample
