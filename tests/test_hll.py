"""Tests for the full-stack HLL (C11) layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LitmusError
from repro.hll import (
    ACQUIRE,
    RELAXED,
    RELEASE,
    SC_MAPPING,
    SEQ_CST,
    TSO_MAPPING,
    TSO_MAPPING_BROKEN,
    HllLitmusTest,
    atomic_load,
    atomic_store,
    c11_allowed,
    c11_corr,
    c11_forbidden,
    c11_mp,
    c11_sb,
    check_full_stack,
    compile_hll,
)
from repro.litmus.test import LitmusTest, Outcome
from repro.memodel import sc_allowed


class TestProgramConstruction:
    def test_load_orders_validated(self):
        with pytest.raises(LitmusError):
            atomic_load("x", "r1", RELEASE)

    def test_store_orders_validated(self):
        with pytest.raises(LitmusError):
            atomic_store("x", 1, ACQUIRE)

    def test_outcome_register_must_exist(self):
        with pytest.raises(LitmusError):
            HllLitmusTest.of("t", [[atomic_store("x", 1)]], {"r9": 1})

    def test_acquire_release_flags(self):
        assert atomic_store("x", 1, SEQ_CST).is_release
        assert atomic_load("x", "r", SEQ_CST).is_acquire
        assert not atomic_store("x", 1, RELAXED).is_release

    def test_pretty(self):
        text = c11_mp().pretty()
        assert "x.store(1, seq_cst)" in text
        assert "r1 = y.load(seq_cst)" in text

    def test_with_order_rewrites(self):
        relaxed = c11_mp().with_order(RELAXED)
        assert all(
            op.order == RELAXED for t in relaxed.threads for op in t
        )


class TestC11Oracle:
    def test_mp_seq_cst_forbidden(self):
        assert c11_forbidden(c11_mp())

    def test_mp_release_acquire_forbidden(self):
        assert c11_forbidden(c11_mp(RELEASE, ACQUIRE))

    def test_mp_relaxed_allowed(self):
        """Without synchronization there is no happens-before across
        threads: the stale read is allowed."""
        assert c11_allowed(c11_mp(RELAXED, RELAXED))

    def test_mp_release_relaxed_allowed(self):
        # A release store synchronizes only with an *acquire* load.
        assert c11_allowed(c11_mp(RELEASE, RELAXED))

    def test_sb_needs_seq_cst(self):
        assert c11_forbidden(c11_sb(SEQ_CST))
        assert c11_allowed(c11_sb(RELEASE))
        assert c11_allowed(c11_sb(RELAXED))

    def test_coherence_holds_even_relaxed(self):
        assert c11_forbidden(c11_corr(RELAXED))
        assert c11_forbidden(c11_corr(SEQ_CST))

    def test_read_own_thread_write(self):
        test = HllLitmusTest.of(
            "own",
            [[atomic_store("x", 1, RELAXED), atomic_load("x", "r1", RELAXED)]],
            {"r1": 0},
        )
        assert c11_forbidden(test)  # CoWR via sequenced-before


def _to_sc_litmus(hll: HllLitmusTest) -> LitmusTest:
    return compile_hll(hll, SC_MAPPING)


@st.composite
def small_seq_cst_tests(draw):
    num_threads = draw(st.integers(min_value=1, max_value=3))
    reg = 0
    threads = []
    outs = []
    for _t in range(num_threads):
        ops = []
        for _i in range(draw(st.integers(min_value=1, max_value=2))):
            var = draw(st.sampled_from(("x", "y")))
            if draw(st.booleans()):
                ops.append(atomic_store(var, draw(st.integers(1, 2)), SEQ_CST))
            else:
                reg += 1
                ops.append(atomic_load(var, f"r{reg}", SEQ_CST))
                outs.append(f"r{reg}")
        threads.append(ops)
    outcome = {name: draw(st.integers(0, 2)) for name in outs}
    return HllLitmusTest.of("rand-sc", threads, outcome)


@settings(max_examples=40, deadline=None)
@given(small_seq_cst_tests())
def test_all_seq_cst_c11_equals_sc(hll):
    """For all-seq_cst programs the simplified C11 model must coincide
    with sequential consistency (checked against the independent SC
    oracle through the trivial SC mapping)."""
    assert c11_allowed(hll) == sc_allowed(_to_sc_litmus(hll))


class TestCompile:
    def test_sc_mapping_is_plain(self):
        isa = compile_hll(c11_mp(), SC_MAPPING)
        kinds = [op.kind for t in isa.threads for op in t]
        assert "F" not in kinds

    def test_tso_mapping_adds_trailing_fences(self):
        isa = compile_hll(c11_sb(), TSO_MAPPING)
        # Each seq_cst store is followed by a fence.
        for thread in isa.threads:
            assert thread[0].is_store
            assert thread[1].is_fence

    def test_tso_mapping_leaves_relaxed_plain(self):
        isa = compile_hll(c11_sb(RELAXED), TSO_MAPPING)
        assert all(not op.is_fence for t in isa.threads for op in t)

    def test_broken_mapping_drops_fences(self):
        isa = compile_hll(c11_sb(), TSO_MAPPING_BROKEN)
        assert all(not op.is_fence for t in isa.threads for op in t)

    def test_outcome_carries_over(self):
        isa = compile_hll(c11_mp(), TSO_MAPPING)
        assert isa.outcome.register_map == {"r1": 1, "r2": 0}


class TestFullStack:
    def test_correct_tso_mapping_is_sound(self):
        result = check_full_stack(c11_sb(), TSO_MAPPING, "tso")
        assert not result.hll_allowed
        assert not result.rtl_reachable
        assert result.stack_sound
        assert result.design_keeps_its_contract
        assert not result.mapping_bug

    def test_broken_tso_mapping_caught(self):
        """The miniature TriCheck result: the hardware verifies against
        its own axioms, yet the compiled Dekker exhibits an outcome the
        source forbids — a compiler-mapping bug."""
        result = check_full_stack(c11_sb(), TSO_MAPPING_BROKEN, "tso")
        assert not result.hll_allowed
        assert result.rtl_reachable
        assert result.design_keeps_its_contract
        assert result.mapping_bug
        assert "COMPILER MAPPING BUG" in result.summary()

    def test_sc_platform_needs_no_fences(self):
        result = check_full_stack(c11_sb(), SC_MAPPING, "sc")
        assert result.stack_sound and not result.mapping_bug

    def test_relaxed_source_is_sound_even_unfenced(self):
        # The source allows the outcome, so reachability is fine.
        result = check_full_stack(c11_sb(RELAXED), TSO_MAPPING_BROKEN, "tso")
        assert result.hll_allowed
        assert result.stack_sound

    def test_mp_release_acquire_on_tso(self):
        # TSO provides acquire/release for free: plain mapping suffices.
        result = check_full_stack(c11_mp(RELEASE, ACQUIRE), TSO_MAPPING, "tso")
        assert not result.hll_allowed
        assert result.stack_sound

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            check_full_stack(c11_mp(), SC_MAPPING, "arm")
