"""Tests for the explicit-state explorer and the engine model."""

import pytest

from repro.litmus import compile_test, get_test
from repro.mapping import MultiVScaleProgramMapping
from repro.sva import (
    AssumptionChecker,
    Directive,
    PConst,
    PImpl,
    PSeq,
    PropertyMonitor,
    SBool,
    SRepeat,
    Sig,
    SigEq,
    scat,
)
from repro.sva.ast import BNot, band, bor
from repro.rtl.design import Simulator
from repro.sva.monitor import run_monitor_on_trace
from repro.verifier import (
    BOUNDED,
    Budget,
    Explorer,
    FAILED,
    GraphExplorer,
    PROVEN,
    ReachGraph,
)
from repro.verifier.config import CONFIGS, EXPLORER_BUDGET, FULL_PROOF, HYBRID
from repro.verifier.engines import (
    EngineModel,
    EngineVerdict,
    engine_jitter,
    modeled_hours,
    proof_hours,
    transitions_within,
)
from repro.verifier.explorer import ExplorationResult
from repro.vscale.soc import MultiVScale


def make_explorer(test_name, variant="fixed", cls=Explorer):
    compiled = compile_test(get_test(test_name))
    design = MultiVScale(compiled, variant)
    assumptions = MultiVScaleProgramMapping(compiled).all_assumptions()
    return cls(design, AssumptionChecker(assumptions)), compiled


@pytest.fixture(params=[Explorer, GraphExplorer], ids=["per-property", "graph"])
def explorer_cls(request):
    """Both explorer backends must satisfy the same contract."""
    return request.param


def halted_assert(compiled):
    """An assertion that core 0 eventually halts (should be proven)."""
    seq = scat(
        SRepeat(BNot(Sig("core[0].halted")), 0, None),
        SBool(SigEq("core[0].halted", 1)),
    )
    return Directive(kind="assert", name="halts", prop=PImpl(Sig("first"), PSeq(seq)))


def never_halts_assert():
    """A property that is false: core 0 stays unhalted forever."""
    seq = scat(SBool(Sig("core[0].halted")), SBool(Sig("core[0].halted")))
    # 'halted' in the first cycle after reset: impossible... invert:
    return Directive(
        kind="assert",
        name="no_halt",
        prop=PImpl(
            Sig("first"),
            PSeq(
                scat(
                    SRepeat(BNot(Sig("core[0].halted")), 0, None),
                    SBool(SigEq("core[0].halted", 0)),
                    SBool(SigEq("core[0].halted", 1)),
                    SBool(SigEq("core[0].halted", 0)),  # halt is sticky: false
                )
            ),
        ),
    )


class TestExplorerProperties:
    # iwp24's outcome is SC-allowed, so the assumption-constrained state
    # space contains completed executions (unlike forbidden-outcome
    # tests, where the load-value assumptions prune every execution
    # before the cores halt).

    def test_proven_property(self, explorer_cls):
        explorer, compiled = make_explorer("iwp24", cls=explorer_cls)
        result = explorer.check_property(
            PropertyMonitor(halted_assert(compiled)), EXPLORER_BUDGET
        )
        assert result.verdict == PROVEN
        assert result.exhausted
        assert result.states_explored > 0
        assert sum(result.layer_transitions) == result.transitions

    def test_failing_property_gives_counterexample(self, explorer_cls):
        explorer, compiled = make_explorer("iwp24", cls=explorer_cls)
        result = explorer.check_property(
            PropertyMonitor(never_halts_assert()), EXPLORER_BUDGET
        )
        assert result.verdict == FAILED
        assert result.counterexample
        # The trace is replayable: inputs + frames per cycle.
        for inputs, frame in result.counterexample:
            assert "arb_select" in inputs
            assert "first" in frame

    def test_bounded_verdict_on_tiny_budget(self, explorer_cls):
        explorer, compiled = make_explorer("iwp24", cls=explorer_cls)
        result = explorer.check_property(
            PropertyMonitor(halted_assert(compiled)), Budget(max_states=5, max_depth=3)
        )
        assert result.verdict == BOUNDED
        assert result.depth_completed <= 3

    def test_const_true_property(self, explorer_cls):
        explorer, _ = make_explorer("iwp24", cls=explorer_cls)
        directive = Directive(kind="assert", name="t", prop=PConst(True))
        result = explorer.check_property(PropertyMonitor(directive), EXPLORER_BUDGET)
        assert result.verdict == PROVEN

    def test_forbidden_outcome_assumptions_prune_all_executions(self, explorer_cls):
        """On a forbidden-outcome test (ssl) the load-value assumption
        prunes every branch at the load's WB, so no core ever halts and
        even a 'core 0 never halts' assertion is (vacuously) proven."""
        explorer, compiled = make_explorer("ssl", cls=explorer_cls)
        result = explorer.check_property(
            PropertyMonitor(never_halts_assert()), EXPLORER_BUDGET
        )
        assert result.verdict == PROVEN


class TestExplorerCover:
    def test_forbidden_outcome_final_assumption_unreachable(self):
        explorer, _ = make_explorer("mp")
        result = explorer.cover_assumptions(EXPLORER_BUDGET)
        assert result.exhausted
        assert "final_values" not in result.fired_assumptions

    def test_allowed_outcome_final_assumption_fires(self):
        explorer, _ = make_explorer("iwp24")
        result = explorer.cover_assumptions(EXPLORER_BUDGET)
        assert result.exhausted
        assert "final_values" in result.fired_assumptions

    def test_buggy_design_reaches_forbidden_outcome(self):
        explorer, _ = make_explorer("mp", variant="buggy")
        result = explorer.cover_assumptions(EXPLORER_BUDGET)
        assert "final_values" in result.fired_assumptions

    def test_budget_exhaustion_is_inconclusive(self):
        explorer, _ = make_explorer("mp")
        result = explorer.cover_assumptions(Budget(max_states=10, max_depth=2))
        assert result.verdict == "unknown"
        assert not result.exhausted


class TestBudgetEnforcement:
    """Regression tests: ``max_states`` is enforced per expansion, not
    per layer, so a wide layer can no longer blow past the cap and
    ``states_explored`` reports the true count."""

    def test_states_cap_never_exceeded(self, explorer_cls):
        explorer, compiled = make_explorer("iwp24", cls=explorer_cls)
        result = explorer.check_property(
            PropertyMonitor(halted_assert(compiled)),
            Budget(max_states=5, max_depth=1000),
        )
        assert result.verdict == BOUNDED
        assert result.states_explored <= 5
        assert sum(result.layer_transitions) == result.transitions

    def test_cover_states_cap_never_exceeded(self, explorer_cls):
        explorer, _ = make_explorer("iwp24", cls=explorer_cls)
        result = explorer.cover_assumptions(Budget(max_states=10, max_depth=2000))
        assert result.verdict == "unknown"
        assert not result.exhausted
        assert result.states_explored <= 10

    def test_wide_layer_regression(self):
        """iriw's layers are far wider than 50 states; before the fix
        a single layer overshot the cap by its whole width."""
        explorer, _ = make_explorer("iriw")
        result = explorer.cover_assumptions(Budget(max_states=50, max_depth=2000))
        assert result.states_explored <= 50

    def test_depth_cap_still_reported_at_layer_boundary(self, explorer_cls):
        explorer, compiled = make_explorer("iwp24", cls=explorer_cls)
        result = explorer.check_property(
            PropertyMonitor(halted_assert(compiled)),
            Budget(max_states=2_000_000, max_depth=3),
        )
        assert result.verdict == BOUNDED
        assert result.depth_completed == 3


class TestCounterexampleReplay:
    def test_rebuilt_trace_replays_through_simulator(self, explorer_cls):
        """The root-to-failure trace's inputs replay to the same failing
        frame through a fresh Simulator."""
        explorer, compiled = make_explorer("iwp24", cls=explorer_cls)
        monitor = PropertyMonitor(never_halts_assert())
        result = explorer.check_property(monitor, EXPLORER_BUDGET)
        assert result.verdict == FAILED
        sim = Simulator(MultiVScale(compiled, "fixed"))
        for inputs, frame in result.counterexample:
            assert sim.step(inputs) == frame
        # The replayed trace refutes the monitor at the trace's last cycle.
        verdict, cycle = run_monitor_on_trace(monitor, sim.trace)
        assert verdict is False
        assert cycle == len(result.counterexample) - 1

    def test_trace_depth_matches_depth_completed(self, explorer_cls):
        explorer, _ = make_explorer("iwp24", cls=explorer_cls)
        result = explorer.check_property(
            PropertyMonitor(never_halts_assert()), EXPLORER_BUDGET
        )
        assert len(result.counterexample) == result.depth_completed


class TestReachGraph:
    def test_lazy_expansion_counts_only_cache_misses(self):
        explorer, _ = make_explorer("iwp24", cls=GraphExplorer)
        graph = explorer.graph
        assert graph.sim_transitions == 0
        explorer.cover_assumptions(EXPLORER_BUDGET)
        built = graph.sim_transitions
        assert built == graph.expanded_nodes * len(graph.input_space)
        # A second walk (different monitor, same design) is a pure
        # cache read: zero further design simulation.
        explorer.check_property(
            PropertyMonitor(Directive(kind="assert", name="t", prop=PConst(True))),
            EXPLORER_BUDGET,
        )
        assert graph.sim_transitions == built

    def test_graph_shared_between_explorers(self):
        compiled = compile_test(get_test("mp"))
        design = MultiVScale(compiled, "fixed")
        checker = AssumptionChecker(
            MultiVScaleProgramMapping(compiled).all_assumptions()
        )
        graph = ReachGraph(design, checker)
        first = GraphExplorer(design, checker, graph=graph)
        first.cover_assumptions(EXPLORER_BUDGET)
        built = graph.sim_transitions
        second = GraphExplorer(design, checker, graph=graph)
        second.cover_assumptions(EXPLORER_BUDGET)
        assert graph.sim_transitions == built

    def test_root_first_flag_distinct_from_revisits(self):
        """Node 0 carries first=1; every child lookup uses first=0, so
        frames cached for the root are never reused for a re-reached
        reset snapshot."""
        explorer, _ = make_explorer("mp", cls=GraphExplorer)
        graph = explorer.graph
        edges = graph.successors(graph.root)
        for edge in edges:
            if edge is not None:
                assert edge[0]["first"] == 1
                for child_edge in graph.successors(edge[1]):
                    if child_edge is not None:
                        assert child_edge[0]["first"] == 0


class TestEngineModel:
    def test_cover_hours_anchor(self):
        # mp's ~404-transition cover run costs about 3 modeled minutes.
        assert 0.02 < modeled_hours(404) < 0.08
        # The one-hour anchor.
        assert abs(modeled_hours(550) - 1.0) < 1e-9

    def test_proof_hours_monotone(self):
        assert proof_hours(500) < proof_hours(1000) < proof_hours(2000)

    def test_transitions_within_inverts_proof_hours(self):
        for hours in (1.0, 7.0, 9.5):
            assert abs(proof_hours(transitions_within(hours)) - hours) < 1e-6

    def test_jitter_deterministic_and_bounded(self):
        a = engine_jitter("Hybrid", "I_N_AM_AD", "mp_Read_Values_0")
        b = engine_jitter("Hybrid", "I_N_AM_AD", "mp_Read_Values_0")
        assert a == b
        assert 0.8 <= a <= 1.2
        assert a != engine_jitter("Full_Proof", "I_N_AM_AD", "mp_Read_Values_0")

    def _exhausted(self, transitions, depth):
        result = ExplorationResult(verdict=PROVEN)
        result.transitions = transitions
        result.depth_completed = depth
        result.exhausted = True
        return result

    def test_cheap_property_proven(self):
        verdict = EngineModel(FULL_PROOF).judge_property(self._exhausted(300, 9), "p")
        assert verdict.proven
        assert verdict.engine == "I_N_AM_AD"

    def test_expensive_property_bounded_with_depth_cap(self):
        verdict = EngineModel(FULL_PROOF).judge_property(self._exhausted(5000, 9), "p")
        assert verdict.status == BOUNDED
        assert verdict.bound == 22  # Full_Proof's preprocess depth cap

    def test_hybrid_bounded_depth_cap(self):
        verdict = EngineModel(HYBRID).judge_property(self._exhausted(5000, 9), "p")
        assert verdict.status == BOUNDED
        assert verdict.bound == 43

    def test_hybrid_autoprover_induction(self):
        """A shallow saturation diameter lets the Hybrid autoprover close
        an otherwise-too-expensive proof — the §7.2 cases where Hybrid
        beats Full_Proof."""
        shallow = self._exhausted(5000, 6)
        assert EngineModel(HYBRID).judge_property(shallow, "p").proven
        assert EngineModel(FULL_PROOF).judge_property(shallow, "p").status == BOUNDED

    def test_counterexample_reported_fast(self):
        result = ExplorationResult(verdict=FAILED)
        result.transitions = 5000
        result.depth_completed = 4
        verdict = EngineModel(FULL_PROOF).judge_property(result, "p")
        assert verdict.failed
        assert verdict.modeled_hours <= FULL_PROOF.proof_hours

    def test_counterexample_priced_from_layer_profile(self):
        """Regression: a cex is priced from the transitions actually
        spent up to the failing layer (via ``layer_transitions``), not
        from a hypothetical full exploration."""
        result = ExplorationResult(verdict=FAILED)
        result.transitions = 5000
        result.depth_completed = 2
        result.layer_transitions = [100, 50]
        verdict = EngineModel(FULL_PROOF).judge_property(result, "p")
        assert verdict.failed
        assert verdict.modeled_hours == min(
            proof_hours(150), FULL_PROOF.proof_hours
        )
        # The whole-exploration price would have pinned the allotment.
        assert verdict.modeled_hours < min(
            proof_hours(5000), FULL_PROOF.proof_hours
        )


class TestConfigs:
    def test_table1_rows(self):
        assert set(CONFIGS) == {"Hybrid", "Full_Proof"}
        assert HYBRID.cores_per_test == 5
        assert HYBRID.memory_gb_per_test == 64
        assert FULL_PROOF.cores_per_test == 4
        assert FULL_PROOF.memory_gb_per_test == 120

    def test_phase_budgets(self):
        assert HYBRID.cover_hours == 1.0
        assert HYBRID.proof_hours == 10.0
        assert FULL_PROOF.proof_hours == 10.0

    def test_engine_styles(self):
        assert [e.name for e in HYBRID.bounded_engines] == ["Autoprover", "K"]
        assert [e.name for e in FULL_PROOF.full_engines] == ["I_N_AM_AD"]
