"""Tests for the per-phase timing fields on :class:`TestVerification`.

These fields (added alongside the shared reachability-graph cache)
profile where verification wall-clock goes; the invariants here pin
their meaning: phases are disjoint slices of the wall time, graph
counters are populated exactly when the graph-backed explorer runs,
and every property carries its own check time.
"""

import pytest

from repro import RTLCheck, get_test


@pytest.fixture(scope="module")
def sb_graph():
    """sb under the graph explorer — it survives the cover shortcut, so
    both cover and proof phases run."""
    return RTLCheck(use_reach_graph=True).verify_test(
        get_test("sb"), memory_variant="fixed"
    )


@pytest.fixture(scope="module")
def sb_per_property():
    return RTLCheck(use_reach_graph=False).verify_test(
        get_test("sb"), memory_variant="fixed"
    )


class TestPhaseBudget:
    def test_phases_fit_inside_wall(self, sb_graph):
        assert (
            sb_graph.cover_seconds + sb_graph.proof_seconds
            <= sb_graph.wall_seconds
        )

    def test_phases_fit_inside_wall_per_property(self, sb_per_property):
        result = sb_per_property
        assert result.cover_seconds + result.proof_seconds <= result.wall_seconds

    def test_phases_fit_inside_wall_cover_shortcut(self):
        result = RTLCheck().verify_test(get_test("mp"), memory_variant="fixed")
        assert result.verified_by_cover
        assert result.proof_seconds == 0.0
        assert result.cover_seconds <= result.wall_seconds


class TestGraphCounters:
    def test_graph_explorer_populates_graph_fields(self, sb_graph):
        assert sb_graph.graph_states > 0
        assert sb_graph.graph_transitions > 0
        assert 0.0 < sb_graph.graph_build_seconds < sb_graph.wall_seconds

    def test_per_property_explorer_leaves_graph_fields_zero(
        self, sb_per_property
    ):
        assert sb_per_property.graph_states == 0
        assert sb_per_property.graph_transitions == 0
        assert sb_per_property.graph_build_seconds == 0.0


class TestPropertyTiming:
    def test_every_property_has_check_seconds(self, sb_graph):
        assert sb_graph.properties  # sb runs the full proof phase
        for prop in sb_graph.properties:
            assert prop.check_seconds > 0.0, prop.name

    def test_property_times_fit_inside_proof_phase(self, sb_graph):
        total = sum(p.check_seconds for p in sb_graph.properties)
        assert total <= sb_graph.proof_seconds
