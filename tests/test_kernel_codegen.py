"""Property tests for the compiled step-kernel codegen.

The kernel backend's compiled step must be a bit-exact replacement for
the interpreter over *every* reachable slot vector — including the
``-1``-for-None sentinel slots (no pending writeback register, no
in-flight memory transaction) and the buggy memory's write-capture
slots.  Hypothesis drives randomly generated litmus programs through
random arbiter schedules on the kernel and array backends in lockstep
and requires the same frames, the same successor slot vectors, and the
same quiescence verdicts at every cycle, for both the scalar kernel
and the numpy matrix path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import get_test
from repro.difftest.generate import FuzzGenerator
from repro.litmus import compile_test
from repro.rtl.design import _keep_all
from repro.rtl.kernel import MATRIX_MIN_ROWS
from repro.sva import AssumptionChecker
from repro.vscale.soc import MultiVScale

#: One deterministic generator: ``test_at(i)`` is a pure function of
#: ``(seed, i)``, so hypothesis shrinks over a stable test stream.
_GENERATOR = FuzzGenerator(20260808)


def _designs(index, variant):
    test = _GENERATOR.test_at(index)
    compiled = compile_test(test)
    kernel = MultiVScale(compiled, variant, state_backend="kernel")
    array = MultiVScale(compiled, variant, state_backend="array")
    kernel.reset()
    array.reset()
    return kernel, array


class TestScalarKernel:
    @given(
        index=st.integers(0, 150),
        schedule=st.lists(st.integers(0, 3), min_size=1, max_size=10),
        variant=st.sampled_from(["fixed", "buggy"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_steps_match_interpreter(self, index, schedule, variant):
        """Frame-for-frame, slot-for-slot agreement along one walk."""
        kernel, array = _designs(index, variant)
        k_state, a_state = kernel.snapshot(), array.snapshot()
        assert kernel.state_vector(k_state) == array.state_vector(a_state)
        inputs = kernel.input_space()
        for select in schedule:
            k_edges = kernel.step_batch(k_state, inputs, _keep_all)
            a_edges = array.step_batch(a_state, inputs, _keep_all)
            assert len(k_edges) == len(a_edges)
            for (k_frame, k_child), (a_frame, a_child) in zip(
                k_edges, a_edges
            ):
                assert dict(k_frame) == dict(a_frame)
                assert list(k_frame.keys()) == list(a_frame.keys())
                assert kernel.state_vector(k_child) == array.state_vector(
                    a_child
                )
            assert kernel.state_drained(k_state) == array.state_drained(
                a_state
            )
            pick = select % len(k_edges)
            k_state = k_edges[pick][1]
            a_state = a_edges[pick][1]

    @given(
        index=st.integers(0, 150),
        schedule=st.lists(st.integers(0, 3), min_size=0, max_size=8),
        variant=st.sampled_from(["fixed", "buggy"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_fused_check_matches_hook(self, index, schedule, variant):
        """The fused compiled assumption check prunes exactly the edges
        the interpreter hook prunes, with identical counter effects."""
        test = _GENERATOR.test_at(index)
        compiled = compile_test(test)
        from repro.mapping import MultiVScaleProgramMapping

        assumptions = MultiVScaleProgramMapping(compiled).all_assumptions()
        kernel = MultiVScale(compiled, variant, state_backend="kernel")
        array = MultiVScale(compiled, variant, state_backend="array")
        kernel.reset()
        array.reset()
        k_checker = AssumptionChecker(assumptions)
        a_checker = AssumptionChecker(assumptions)
        k_state, a_state = kernel.snapshot(), array.snapshot()
        inputs = kernel.input_space()
        first = 1
        for select in schedule:
            k_steps = kernel.step_batch_checked(
                k_state, inputs, k_checker, first
            )
            a_steps = array.step_batch_checked(
                a_state, inputs, a_checker, first
            )
            assert [s is None for s in k_steps] == [
                s is None for s in a_steps
            ]
            assert k_checker.antecedent_firings == a_checker.antecedent_firings
            assert k_checker.pruned_frames == a_checker.pruned_frames
            for k_step, a_step in zip(k_steps, a_steps):
                if k_step is None:
                    continue
                assert dict(k_step[0]) == dict(a_step[0])
                assert kernel.state_vector(k_step[1]) == array.state_vector(
                    a_step[1]
                )
            live = [s for s in k_steps if s is not None]
            if not live:
                break
            k_state = live[select % len(live)][1]
            a_state = [s for s in a_steps if s is not None][
                select % len(live)
            ][1]
            first = 0


class TestMatrixKernel:
    @given(
        index=st.integers(0, 150),
        layers=st.integers(1, 4),
        variant=st.sampled_from(["fixed", "buggy"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_matrix_path_matches_scalar(self, index, layers, variant):
        """BFS frontiers large enough to engage the numpy path produce
        the same successors as the per-state scalar batch."""
        kernel, array = _designs(index, variant)
        pytest.importorskip("numpy")
        if kernel.step_kernel.step_matrix is None:
            pytest.skip("matrix kernel unavailable for this design")
        inputs = kernel.input_space()
        frontier = [kernel.snapshot()]
        seen = set(frontier)
        for _ in range(layers):
            batches = kernel.successor_batch(frontier, inputs)
            scalar = [
                [edge[1] for edge in kernel.step_batch(s, inputs, _keep_all)]
                for s in frontier
            ]
            assert batches == scalar
            nxt = []
            for succ in batches:
                for child in succ:
                    if child not in seen:
                        seen.add(child)
                        nxt.append(child)
            if not nxt:
                break
            frontier = nxt

    def test_matrix_drained_matches_scalar(self):
        """``drained_matrix`` agrees with the scalar predicate over a
        frontier wide enough to engage the matrix path."""
        np = pytest.importorskip("numpy")
        compiled = compile_test(get_test("iwp24"))
        kernel = MultiVScale(compiled, "fixed", state_backend="kernel")
        kern = kernel.step_kernel
        if kern.drained_matrix is None:
            pytest.skip("matrix kernel unavailable")
        kernel.reset()
        inputs = kernel.input_space()
        frontier = [kernel.snapshot()]
        seen = set(frontier)
        while len(frontier) < MATRIX_MIN_ROWS:
            nxt = []
            for succ in kernel.successor_batch(frontier, inputs):
                for child in succ:
                    if child not in seen:
                        seen.add(child)
                        nxt.append(child)
            if not nxt:
                break
            frontier = nxt
        mat = np.array(
            [kernel.state_vector(s) for s in frontier], dtype=np.int64
        )
        matrix_verdicts = list(kern.drained_matrix(mat))
        scalar_verdicts = [kernel.state_drained(s) for s in frontier]
        assert [bool(v) for v in matrix_verdicts] == scalar_verdicts


class TestSentinelSlots:
    def test_none_sentinels_round_trip(self):
        """States with no pending writeback/memory transaction encode
        ``None`` as ``-1`` in the slot vector; the kernel must decode
        and re-encode them exactly."""
        compiled = compile_test(get_test("mp"))
        kernel = MultiVScale(compiled, "fixed", state_backend="kernel")
        kernel.reset()
        root = kernel.snapshot()
        vec = kernel.state_vector(root)
        assert -1 in vec, "reset state must carry None sentinels"
        # Stepping the reset vector through the compiled kernel and the
        # interpreter produces identical sentinel placements.
        array = MultiVScale(compiled, "fixed", state_backend="array")
        array.reset()
        inputs = kernel.input_space()
        k_edges = kernel.step_batch(root, inputs, _keep_all)
        a_edges = array.step_batch(array.snapshot(), inputs, _keep_all)
        for (k_frame, k_child), (_a_frame, a_child) in zip(k_edges, a_edges):
            assert kernel.state_vector(k_child) == array.state_vector(a_child)
