"""Kernel vs. array vs. dict state-backend equivalence.

The kernel backend (``repro.rtl.kernel`` / ``repro.vscale.kernel``)
keeps the array backend's interned flat slot vectors but steps them
with a per-design *compiled* function — closure-compiled straight-line
Python generated from the design's slot layout, plus a fused compiled
assumption check and an optional numpy whole-frontier matrix path.  It
is a pure execution-strategy change: verdicts, reach graphs, simulated
traces, VCD waveforms, architectural enumerations, and fuzz reports
must be bit-identical to both interpreter backends.  These tests prove
that contract end to end.

Normalization: wall-clock fields (``*seconds``), the vector-backend
``state.*`` counters, and the kernel-only ``kernel.*`` counters are
stripped before comparison — the only permitted divergence.

Set ``RTLCHECK_STATE_BACKEND_FULL=1`` to sweep the full 56-test suite
on both memory variants (minutes); the default subset keeps CI fast.
"""

import json
import os
import pickle

import pytest

from repro import RTLCheck, get_test, paper_suite
from repro.errors import ReproError
from repro.litmus import compile_test
from repro.mapping import MultiVScaleProgramMapping
from repro.rtl.vcd import render_vcd
from repro.sva import AssumptionChecker
from repro.verifier.outcomes import enumerate_design_outcomes
from repro.verifier.reach import ReachGraph
from repro.verifier.simulation import simulate_check
from repro.vscale.soc import MultiVScale
from repro.vscale.trace import harvest_traces

BACKENDS = ["kernel", "array", "dict"]
SUBSET = ["mp", "sb", "lb", "iwp24", "n4"]
VARIANTS = ["fixed", "buggy"]

FULL_SWEEP = os.environ.get("RTLCHECK_STATE_BACKEND_FULL") == "1"
SWEEP = [t.name for t in paper_suite()] if FULL_SWEEP else SUBSET


def _scrub(obj):
    """Drop wall-clock fields and backend-only counters, recursively."""
    if isinstance(obj, dict):
        return {
            key: _scrub(value)
            for key, value in obj.items()
            if not (
                isinstance(key, str)
                and (
                    key.endswith("seconds")
                    or key.startswith("state.")
                    or key.startswith("kernel.")
                )
            )
        }
    if isinstance(obj, list):
        return [_scrub(item) for item in obj]
    return obj


def _canonical(verification) -> str:
    return json.dumps(_scrub(verification.to_dict()), sort_keys=True)


def _build_full_graph(name, variant, backend):
    """Fully expand a ReachGraph under ``backend``; return (graph, design)."""
    compiled = compile_test(get_test(name))
    design = MultiVScale(compiled, variant, state_backend=backend)
    assumptions = MultiVScaleProgramMapping(compiled).all_assumptions()
    graph = ReachGraph(design, AssumptionChecker(assumptions))
    frontier = [graph.root]
    seen = {graph.root}
    while frontier:
        node = frontier.pop()
        for _index, _inputs, _frame, child in graph.live_successors(node):
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return graph, design


def _edge_shape(graph):
    """Backend-independent structural view (frames + child node ids)."""
    return [
        [
            None if edge is None else (dict(edge[0]), edge[1])
            for edge in graph.successors(node)
        ]
        for node in range(graph.num_nodes)
    ]


class TestVerdictEquivalence:
    """Full-pipeline agreement: graphs, verdicts, modeled hours."""

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("name", SWEEP)
    def test_serialized_verdicts_identical(self, name, variant):
        results = {}
        for backend in BACKENDS:
            rc = RTLCheck(state_backend=backend, observe=True)
            results[backend] = rc.verify_test(
                get_test(name), memory_variant=variant
            )
        kernel, array, dict_ = (results[b] for b in BACKENDS)
        assert _canonical(kernel) == _canonical(array), f"{name}/{variant}"
        assert _canonical(kernel) == _canonical(dict_), f"{name}/{variant}"
        assert kernel.modeled_hours == dict_.modeled_hours
        assert kernel.graph_states == dict_.graph_states
        assert kernel.graph_transitions == dict_.graph_transitions

    def test_per_property_explorer_agrees(self):
        """The non-graph (per-property) explorer batches through the
        fused kernel check too."""
        for name in ["mp", "sb"]:
            canon = {}
            for backend in BACKENDS:
                rc = RTLCheck(state_backend=backend, use_reach_graph=False)
                canon[backend] = _canonical(rc.verify_test(get_test(name)))
            assert canon["kernel"] == canon["array"] == canon["dict"], name

    def test_counterexample_vcd_identical(self):
        """Buggy-memory counterexamples render to byte-identical VCD."""
        traces = {}
        for backend in BACKENDS:
            rc = RTLCheck(state_backend=backend)
            result = rc.verify_test(get_test("mp"), memory_variant="buggy")
            failed = [
                p
                for p in result.properties
                if p.ground_truth.counterexample is not None
            ]
            assert failed, "buggy mp must produce a counterexample"
            traces[backend] = [
                [frame for _inputs, frame in p.ground_truth.counterexample]
                for p in failed
            ]
        assert len(traces["kernel"]) == len(traces["dict"])
        for kernel_trace, array_trace, dict_trace in zip(
            traces["kernel"], traces["array"], traces["dict"]
        ):
            rendered = render_vcd(kernel_trace)
            assert rendered == render_vcd(array_trace)
            assert rendered == render_vcd(dict_trace)

    def test_outcome_enumeration_agrees(self):
        """The architectural enumeration behind difftest's RTL oracle —
        on the kernel backend this is the numpy whole-frontier matrix
        walk plus the compiled drained predicate."""
        for variant in VARIANTS:
            compiled = compile_test(get_test("sb"))
            enums = {
                backend: enumerate_design_outcomes(
                    MultiVScale(compiled, variant, state_backend=backend)
                )
                for backend in BACKENDS
            }
            kernel, array, dict_ = (enums[b] for b in BACKENDS)
            assert kernel.outcomes == array.outcomes == dict_.outcomes, variant
            assert kernel.complete == dict_.complete
            assert kernel.states == array.states == dict_.states
            assert kernel.transitions == dict_.transitions
            assert kernel.drained_states == dict_.drained_states


class TestGraphStructure:
    """Node-for-node, edge-for-edge agreement of the built graphs."""

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_graphs_isomorphic_by_construction_order(self, variant):
        kernel_graph, _ = _build_full_graph("mp", variant, "kernel")
        dict_graph, _ = _build_full_graph("mp", variant, "dict")
        assert kernel_graph.num_nodes == dict_graph.num_nodes
        assert kernel_graph.expanded_nodes == dict_graph.expanded_nodes
        assert kernel_graph.sim_transitions == dict_graph.sim_transitions
        assert _edge_shape(kernel_graph) == _edge_shape(dict_graph)

    def test_kernel_graph_pickle_round_trips(self):
        """Compiled kernels never pickle (the closure is rebuilt on
        demand); a kernel-backend graph still round-trips with its
        structure intact and keeps expanding afterwards."""
        kernel_graph, design = _build_full_graph("mp", "fixed", "kernel")
        revived = pickle.loads(pickle.dumps(kernel_graph))
        assert revived.num_nodes == kernel_graph.num_nodes
        assert _edge_shape(revived) == _edge_shape(kernel_graph)
        assert revived.design.state_backend == "kernel"
        # The revived design recompiles its kernel lazily and resolves
        # every interned node.
        assert revived.design.step_kernel is not None
        for node in range(revived.num_nodes):
            assert revived.design._interner.state(revived.snap(node))

    def test_kernel_object_refuses_pickle(self):
        design = MultiVScale(
            compile_test(get_test("mp")), "fixed", state_backend="kernel"
        )
        with pytest.raises(TypeError):
            pickle.dumps(design.step_kernel)
        # The design itself pickles by dropping the compiled closures.
        revived = pickle.loads(pickle.dumps(design))
        assert revived.state_backend == "kernel"


class TestSimulation:
    """The memoized kernel simulation path: identical campaigns."""

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_simulate_check_reports_equal(self, variant):
        rc = RTLCheck()
        for name in ["mp", "sb"]:
            test = get_test(name)
            props = rc.generate(test)
            compiled = compile_test(test)
            reports = {}
            for backend in BACKENDS:
                design = MultiVScale(compiled, variant, state_backend=backend)
                reports[backend] = simulate_check(
                    design,
                    props.assumptions,
                    props.assertions,
                    num_schedules=60,
                    max_cycles=40,
                    seed=7,
                )
            kernel, array, dict_ = (reports[b] for b in BACKENDS)
            for other in (array, dict_):
                assert kernel.schedules_run == other.schedules_run
                assert kernel.cycles_simulated == other.cycles_simulated
                assert kernel.truncated_traces == other.truncated_traces
                assert kernel.violations == other.violations
                assert (
                    kernel.first_violation_schedule
                    == other.first_violation_schedule
                )
                assert (
                    kernel.first_violation_trace == other.first_violation_trace
                )


class TestHarvestDeterminism:
    """The trace oracle's sampled schedules are backend-independent and
    deterministic in ``(test, seed, samples)``."""

    def test_harvest_identical_across_backends(self):
        for variant in VARIANTS:
            harvests = {
                backend: harvest_traces(
                    get_test("mp"),
                    variant,
                    samples=6,
                    seed=3,
                    state_backend=backend,
                )
                for backend in BACKENDS
            }
            kernel, array, dict_ = (harvests[b] for b in BACKENDS)
            assert kernel.traces == array.traces == dict_.traces, variant
            assert kernel.sampled == dict_.sampled
            assert kernel.undrained == dict_.undrained
            assert kernel.cycles == dict_.cycles

    def test_harvest_deterministic_on_kernel(self):
        first = harvest_traces(
            get_test("sb"), "buggy", samples=5, seed=11, state_backend="kernel"
        )
        second = harvest_traces(
            get_test("sb"), "buggy", samples=5, seed=11, state_backend="kernel"
        )
        assert first.traces == second.traces
        assert first.cycles == second.cycles


class TestBackendSelection:
    """Plumbing: the kernel backend is chosen at the RTLCheck/CLI layer
    and keyed separately in the on-disk cache."""

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            RTLCheck(state_backend="jit")

    def test_cli_flag_accepts_kernel(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["verify", "mp", "--state-backend", "kernel"]
        )
        assert args.state_backend == "kernel"
        args = build_parser().parse_args(
            ["fuzz", "--state-backend", "kernel"]
        )
        assert args.state_backend == "kernel"

    def test_fuzz_config_validates_backend(self):
        from repro.difftest.runner import FuzzConfig

        assert FuzzConfig(state_backend="kernel").state_backend == "kernel"
        with pytest.raises(ReproError):
            FuzzConfig(state_backend="jit")

    def test_cache_keys_distinguish_all_backends(self):
        from repro.cache.keys import reach_key
        from repro.mapping import MultiVScaleProgramMapping as Mapping

        test = get_test("mp")
        keys = {
            reach_key(
                test=test,
                memory_variant="fixed",
                design_factory=MultiVScale,
                program_mapping_factory=Mapping,
                state_backend=backend,
            )
            for backend in BACKENDS
        }
        assert len(keys) == 3

    def test_kernel_degrades_gracefully_without_slot_layout(self):
        """A design with no slot layout (variable-size store buffers)
        stays on dict snapshots even when kernel is requested."""
        from repro.vscale.tso import MultiVScaleTSO

        design = MultiVScaleTSO(compile_test(get_test("mp")))
        assert design.enable_kernel_state() is False
        assert design.state_backend == "dict"

    def test_kernel_counters_recorded(self):
        rc = RTLCheck(state_backend="kernel", observe=True)
        result = rc.verify_test(get_test("mp"))
        counters = result.obs["counters"]
        assert counters.get("kernel.batched_steps", 0) > 0
        assert "kernel.compile_seconds" in counters
