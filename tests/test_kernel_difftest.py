"""Fuzz-campaign regression: kernel backend == array backend.

The differential fuzzer is the repo's broadest consumer of the design
step path — every oracle layer, the shrinker, and the report writer sit
downstream of it.  A seeded campaign on the kernel backend must
therefore produce a byte-identical report to the same campaign on the
array backend, once wall-clock fields and the campaign's own
``state_backend`` echo are scrubbed.

The default budget keeps CI fast; set ``RTLCHECK_STATE_BACKEND_FULL=1``
for the 200-test campaign from the issue's acceptance checklist.
"""

import json
import os

from repro.difftest import FuzzConfig, run_fuzz, validate_fuzz_report
from repro.vscale.trace import harvest_traces
from repro import get_test

FULL = os.environ.get("RTLCHECK_STATE_BACKEND_FULL") == "1"
BUDGET = 200 if FULL else 30

ORACLES = ("operational", "axiomatic", "rtl", "trace")


def _scrub(obj):
    if isinstance(obj, dict):
        return {
            key: _scrub(value)
            for key, value in obj.items()
            if not (
                isinstance(key, str)
                and (key.endswith("seconds") or key == "state_backend")
            )
        }
    if isinstance(obj, list):
        return [_scrub(item) for item in obj]
    return obj


def _campaign(backend):
    result = run_fuzz(
        FuzzConfig(
            seed=0,
            budget=BUDGET,
            oracles=ORACLES,
            memory_variant="buggy",
            shrink_limit=2,
            state_backend=backend,
        )
    )
    report = result.report()
    assert validate_fuzz_report(report) == []
    return report


class TestFuzzBackendEquivalence:
    def test_seeded_campaign_byte_identical(self):
        kernel = _campaign("kernel")
        array = _campaign("array")
        assert kernel["state_backend"] == "kernel"
        assert array["state_backend"] == "array"
        kernel_text = json.dumps(_scrub(kernel), sort_keys=True)
        array_text = json.dumps(_scrub(array), sort_keys=True)
        assert kernel_text == array_text

    def test_trace_oracle_harvest_deterministic(self):
        """The trace oracle's sampling inside a kernel campaign replays
        exactly: same (test, variant, seed, samples) → same traces."""
        for _ in range(2):
            harvest = harvest_traces(
                get_test("mp"),
                "buggy",
                samples=4,
                seed=0,
                state_backend="kernel",
            )
            if _ == 0:
                first = harvest
        assert first.traces == harvest.traces
        assert first.sampled == harvest.sampled
        assert first.cycles == harvest.cycles
