"""Tests for artifact emission: µspec linting, VCD dumps, Verilog."""

import pytest

from repro import RTLCheck, get_test
from repro.litmus import compile_test
from repro.rtl import Simulator, render_vcd, write_vcd
from repro.uspec import lint_model, lint_source, load_model, parse_uspec
from repro.uspec.lint import ERROR, WARNING
from repro.vscale import (
    MultiVScale,
    emit_design,
    emit_top_module,
    emit_verification_bundle,
)


class TestLinter:
    def test_bundled_models_are_synthesizable(self):
        for name in ("multi_vscale", "multi_vscale_tso"):
            report = lint_model(load_model(name))
            assert report.synthesizable, report.render()

    def test_final_state_dependence_warned(self):
        report = lint_model(load_model("multi_vscale"))
        assert any(f.rule == "final-state-dependence" for f in report.warnings)
        assert any(f.axiom == "Write_Final_Value" for f in report.warnings)

    def test_unknown_stage_flagged(self):
        report = lint_source(
            'Stages "WB".\nAxiom "A": forall microop "i", NodeExists (i, Retire).'
        )
        assert not report.synthesizable
        assert any(f.rule == "unknown-stage" for f in report.errors)

    def test_unknown_predicate_flagged(self):
        report = lint_source('Stages "WB".\nAxiom "A": forall microop "i", Bogus i.')
        assert any(f.rule == "unknown-predicate" for f in report.errors)

    def test_predicate_arity_flagged(self):
        report = lint_source(
            'Stages "WB".\nAxiom "A": forall microop "i", SameData i.'
        )
        assert any(f.rule == "predicate-arity" for f in report.errors)

    def test_negated_same_data_flagged(self):
        report = lint_source(
            'Stages "WB".\n'
            'Axiom "A": forall microops "a", "b", ~SameData a b.'
        )
        assert any(f.rule == "negated-non-edge" for f in report.errors)

    def test_double_negation_is_fine(self):
        # An implication negates its premise, so ~SameData in a premise
        # ends up positive.
        report = lint_source(
            'Stages "WB".\n'
            'Axiom "A": forall microops "a", "b", '
            "(~SameData a b) => AddEdge ((a, WB), (b, WB))."
        )
        assert report.synthesizable

    def test_negated_node_exists_flagged(self):
        report = lint_source(
            'Stages "WB".\nAxiom "A": forall microop "i", ~NodeExists (i, WB).'
        )
        assert any(f.rule == "negated-non-edge" for f in report.errors)

    def test_negated_edge_is_fine(self):
        report = lint_source(
            'Stages "WB".\n'
            'Axiom "A": forall microops "a", "b", '
            "~EdgeExists ((a, WB), (b, WB)) \\/ AddEdge ((b, WB), (a, WB))."
        )
        assert report.synthesizable

    def test_undefined_macro_flagged(self):
        report = lint_source('Stages "WB".\nAxiom "A": ExpandMacro Nope.')
        assert any(f.rule == "undefined-macro" for f in report.errors)

    def test_macro_recursion_flagged(self):
        report = lint_source(
            'Stages "WB".\n'
            'DefineMacro "Loop": ExpandMacro Loop.\n'
            'Axiom "A": ExpandMacro Loop.'
        )
        assert any(f.rule == "macro-recursion" for f in report.errors)

    def test_macro_arity_flagged(self):
        report = lint_source(
            'Stages "WB".\n'
            'DefineMacro "M" "x": IsAnyRead x.\n'
            'Axiom "A": forall microop "i", ExpandMacro M i i.'
        )
        assert any(f.rule == "macro-arity" for f in report.errors)

    def test_render_mentions_rules(self):
        report = lint_source('Stages "WB".\nAxiom "A": ExpandMacro Nope.')
        assert "undefined-macro" in report.render()

    def test_clean_model_renders_ok(self):
        report = lint_source('Stages "WB".\nAxiom "A": True.')
        assert "synthesizable" in report.render()


@pytest.fixture(scope="module")
def mp_trace():
    compiled = compile_test(get_test("mp"))
    soc = MultiVScale(compiled, "fixed")
    sim = Simulator(soc)
    for _ in range(12):
        sim.step({"arb_select": 0})
    return sim.trace


class TestVcd:
    def test_header_and_definitions(self, mp_trace):
        text = render_vcd(mp_trace)
        assert "$timescale 1ns $end" in text
        assert "$enddefinitions $end" in text
        assert "$scope module core[1] $end" in text
        assert "PC_WB" in text

    def test_only_changes_dumped(self, mp_trace):
        text = render_vcd(mp_trace, signals=["core[0].halted"])
        # halted flips once: initial #0 dump plus one change.
        change_lines = [l for l in text.splitlines() if l.startswith(("0", "1", "b"))]
        assert 1 <= len(change_lines) <= 3

    def test_signal_selection(self, mp_trace):
        text = render_vcd(mp_trace, signals=["first"])
        assert "PC_WB" not in text

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            render_vcd([])

    def test_write_vcd(self, mp_trace, tmp_path):
        path = tmp_path / "mp.vcd"
        write_vcd(str(path), mp_trace)
        assert path.read_text().startswith("$date")

    def test_identifiers_unique(self, mp_trace):
        from repro.rtl.vcd import _identifier

        idents = {_identifier(i) for i in range(500)}
        assert len(idents) == 500

    def test_negative_values_twos_complement(self):
        """Negatives render as two's complement at the signal width —
        a bare "b-101" is not valid VCD."""
        text = render_vcd([{"x": -1}, {"x": -4}, {"x": 3}])
        assert "-" not in text.split("$enddefinitions $end")[1]
        # -1 and -4 need 1 and 3 magnitude bits + sign; 3 needs 2 bits:
        # width is 3, so -1 -> 111 and -4 -> 100.
        assert "b111 " in text
        assert "b100 " in text
        assert "b11 " in text

    def test_width_capped_at_64(self):
        from repro.rtl.vcd import _width_for

        assert _width_for([1 << 100]) == 64
        assert _width_for([0]) == 1
        assert _width_for([-1]) == 1

    def test_negative_single_bit_signal(self):
        text = render_vcd([{"flag": 0}, {"flag": -1}])
        dumped = text.split("$enddefinitions $end")[1]
        assert "-" not in dumped


class TestVerilogEmission:
    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_test(get_test("mp"))

    def test_design_contains_all_modules(self, compiled):
        text = emit_design(compiled, "fixed")
        for module in ("vscale_core", "arbiter", "vscale_memory_fixed", "multi_vscale"):
            assert f"module {module}" in text

    def test_buggy_variant_has_wdata_buffer(self, compiled):
        text = emit_design(compiled, "buggy")
        assert "vscale_memory_buggy" in text
        assert "wdata" in text
        assert "BUG: wdata may be stale" in text
        assert "vscale_memory_fixed" not in text

    def test_fixed_variant_has_no_wdata_register(self, compiled):
        text = emit_design(compiled, "fixed")
        assert "reg [31:0] wdata;" not in text
        assert "vscale_memory_buggy" not in text

    def test_figure3c_wb_update_shape(self, compiled):
        """The emitted WB update mirrors Figure 3c: bubble on
        (reset | stall_DX & ~stall_WB), update on ~stall_WB."""
        text = emit_design(compiled, "fixed")
        assert "if (reset | (stall_DX & ~stall_WB)) begin" in text
        assert "end else if (~stall_WB) begin" in text

    def test_top_module_initializes_litmus_program(self, compiled):
        from repro.isa import encode

        text = emit_top_module(compiled)
        first_instr = encode(compiled.programs[0][0])
        assert f"32'h{first_instr:08x}" in text
        # Data and register initialization too.
        assert f"mem.mem[{compiled.address_map['x']}] = 32'd0;" in text
        assert "core_gen[0].core.regs[1]" in text

    def test_ready_hardcoded_high_in_both_variants(self, compiled):
        for variant in ("buggy", "fixed"):
            assert "assign ready = 1'b1;" in emit_design(compiled, variant)

    def test_bundle_concatenates_properties(self, compiled):
        rtlcheck = RTLCheck()
        generated = rtlcheck.generate(get_test("mp"))
        bundle = emit_verification_bundle(compiled, generated.sva_text)
        assert "module multi_vscale" in bundle
        assert bundle.count("assert property") == len(generated.assertions)
        assert bundle.index("module multi_vscale") < bundle.index("assert property")

    def test_balanced_module_endmodule(self, compiled):
        import re

        text = emit_design(compiled, "buggy")
        opens = len(re.findall(r"^module ", text, flags=re.MULTILINE))
        closes = text.count("endmodule")
        assert opens == closes == 4
