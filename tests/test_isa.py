"""Unit and property tests for the RV32I subset encoder/decoder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa import Addi, Fence, Halt, Lui, Lw, Nop, Sw, decode, encode
from repro.isa.encoding import (
    OPCODE_HALT,
    OPCODE_LOAD,
    OPCODE_STORE,
)


class TestEncodeKnownValues:
    def test_store_matches_paper_figure8_encoding(self):
        # Figure 8 initializes core 0's first instruction to
        # {7'b0, 5'd2, 5'd1, 3'd2, 5'b0, RV32_STORE}: sw x2, 0(x1).
        word = encode(Sw(rs1=1, rs2=2, imm=0))
        expected = (0 << 25) | (2 << 20) | (1 << 15) | (2 << 12) | (0 << 7) | OPCODE_STORE
        assert word == expected

    def test_load_opcode_field(self):
        word = encode(Lw(rd=3, rs1=1, imm=0))
        assert word & 0x7F == OPCODE_LOAD
        assert (word >> 7) & 0x1F == 3
        assert (word >> 15) & 0x1F == 1

    def test_halt_uses_custom0_opcode(self):
        assert encode(Halt()) == OPCODE_HALT

    def test_nop_is_addi_x0_x0_0(self):
        assert encode(Nop()) == encode(Addi(rd=0, rs1=0, imm=0))

    def test_store_negative_offset(self):
        word = encode(Sw(rs1=5, rs2=6, imm=-4))
        decoded = decode(word)
        assert decoded == Sw(rs1=5, rs2=6, imm=-4)

    def test_load_negative_offset_sign_extends(self):
        word = encode(Lw(rd=7, rs1=2, imm=-2048))
        assert decode(word) == Lw(rd=7, rs1=2, imm=-2048)


class TestDecodeErrors:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(EncodingError):
            decode(0x7F)  # not a supported opcode

    def test_word_out_of_range(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)
        with pytest.raises(EncodingError):
            decode(-1)

    def test_unsupported_load_width(self):
        # funct3=0 (lb) is outside the subset.
        word = (1 << 15) | (0 << 12) | (2 << 7) | OPCODE_LOAD
        with pytest.raises(EncodingError):
            decode(word)

    def test_unsupported_store_width(self):
        word = (1 << 15) | (1 << 12) | OPCODE_STORE  # sh
        with pytest.raises(EncodingError):
            decode(word)


class TestConstructorValidation:
    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Lw(rd=32, rs1=0)
        with pytest.raises(ValueError):
            Sw(rs1=-1, rs2=0)

    def test_immediate_range_checked(self):
        with pytest.raises(ValueError):
            Addi(rd=1, rs1=0, imm=2048)
        with pytest.raises(ValueError):
            Lw(rd=1, rs1=0, imm=-2049)

    def test_lui_immediate_range(self):
        with pytest.raises(ValueError):
            Lui(rd=1, imm20=1 << 20)


@st.composite
def instructions(draw):
    kind = draw(st.sampled_from(["lw", "sw", "addi", "lui", "fence", "halt"]))
    reg = st.integers(min_value=0, max_value=31)
    imm = st.integers(min_value=-2048, max_value=2047)
    if kind == "lw":
        return Lw(rd=draw(reg), rs1=draw(reg), imm=draw(imm))
    if kind == "sw":
        return Sw(rs1=draw(reg), rs2=draw(reg), imm=draw(imm))
    if kind == "addi":
        instr = Addi(rd=draw(reg), rs1=draw(reg), imm=draw(imm))
        # addi x0,x0,0 canonically decodes as Nop.
        return Nop() if instr == Addi(rd=0, rs1=0, imm=0) else instr
    if kind == "lui":
        return Lui(rd=draw(reg), imm20=draw(st.integers(min_value=0, max_value=(1 << 20) - 1)))
    if kind == "fence":
        return Fence()
    return Halt()


class TestRoundTrip:
    @given(instructions())
    def test_encode_decode_roundtrip(self, instr):
        word = encode(instr)
        assert 0 <= word < (1 << 32)
        assert decode(word) == instr

    @given(instructions(), instructions())
    def test_distinct_instructions_encode_distinctly(self, a, b):
        if a != b:
            assert encode(a) != encode(b)
