"""Tests for the property monitor and assumption checker."""

import pytest

from repro.errors import SvaError
from repro.sva import (
    AssumptionChecker,
    BNot,
    Directive,
    PAnd,
    PConst,
    PImpl,
    POr,
    PSeq,
    PropertyMonitor,
    SBool,
    SRepeat,
    Sig,
    SigEq,
    band,
    run_monitor_on_trace,
    scat,
)


def seq_ab():
    return scat(SBool(Sig("a")), SBool(Sig("b")))


def directive(prop, name="p"):
    return Directive(kind="assert", name=name, prop=prop)


class TestPropertyMonitor:
    def test_simple_sequence_matches(self):
        mon = PropertyMonitor(directive(PImpl(Sig("first"), PSeq(seq_ab()))))
        verdict, cycle = run_monitor_on_trace(mon, [{"a": 1}, {"b": 1}])
        assert verdict is True and cycle == 1

    def test_simple_sequence_fails(self):
        mon = PropertyMonitor(directive(PImpl(Sig("first"), PSeq(seq_ab()))))
        verdict, cycle = run_monitor_on_trace(mon, [{"a": 1}, {"a": 1}])
        assert verdict is False and cycle == 1

    def test_unguarded_property_accepted(self):
        mon = PropertyMonitor(directive(PSeq(seq_ab())))
        verdict, _ = run_monitor_on_trace(mon, [{"a": 1}, {"b": 1}])
        assert verdict is True

    def test_pending_returns_none(self):
        mon = PropertyMonitor(directive(PSeq(seq_ab())))
        verdict, _ = run_monitor_on_trace(mon, [{"a": 1}])
        assert verdict is None

    def test_and_needs_both(self):
        prop = PAnd((PSeq(SBool(Sig("a"))), PSeq(SBool(Sig("b")))))
        mon = PropertyMonitor(directive(prop))
        verdict, _ = run_monitor_on_trace(mon, [{"a": 1, "b": 1}])
        assert verdict is True
        verdict, _ = run_monitor_on_trace(mon, [{"a": 1}])
        assert verdict is False

    def test_or_needs_one(self):
        prop = POr((PSeq(SBool(Sig("a"))), PSeq(SBool(Sig("b")))))
        mon = PropertyMonitor(directive(prop))
        verdict, _ = run_monitor_on_trace(mon, [{"b": 1}])
        assert verdict is True
        verdict, _ = run_monitor_on_trace(mon, [{}])
        assert verdict is False

    def test_or_stays_pending_until_resolvable(self):
        # Branch 1 fails immediately; branch 2 is a two-cycle sequence.
        prop = POr((PSeq(SBool(Sig("a"))), PSeq(seq_ab())))
        mon = PropertyMonitor(directive(prop))
        state = mon.initial()
        state = mon.step(state, {"a": 0})  # branch1 fails; branch2 needs 'a'
        assert mon.verdict(state) is False  # branch2's first cycle also failed

    def test_three_valued_and_short_circuits_false(self):
        prop = PAnd((PSeq(SBool(Sig("a"))), PSeq(seq_ab())))
        mon = PropertyMonitor(directive(prop))
        state = mon.step(mon.initial(), {})
        assert mon.verdict(state) is False

    def test_const_property(self):
        mon = PropertyMonitor(directive(PConst(True)))
        verdict, _ = run_monitor_on_trace(mon, [{}])
        assert verdict is True

    def test_empty_match_sequence_rejected(self):
        with pytest.raises(SvaError):
            PropertyMonitor(directive(PSeq(SRepeat(Sig("a"), 0, None))))

    def test_monitor_state_is_hashable(self):
        mon = PropertyMonitor(directive(PSeq(seq_ab())))
        state = mon.step(mon.initial(), {"a": 1})
        hash(state)
        assert state == mon.step(mon.initial(), {"a": 1})

    def test_resolve_at_quiescence_weak_pass(self):
        """A pending match at quiescence is not a failure (weak
        sequence semantics)."""
        mon = PropertyMonitor(directive(PSeq(seq_ab())))
        state = mon.step(mon.initial(), {"a": 1})
        assert mon.verdict(state) is None
        assert mon.resolve_at_quiescence(state, {}) is True

    def test_resolve_at_quiescence_keeps_failure(self):
        mon = PropertyMonitor(directive(PSeq(seq_ab())))
        state = mon.step(mon.initial(), {})
        assert mon.resolve_at_quiescence(state, {}) is False


class TestAssumptionChecker:
    def make(self):
        at_wb = SigEq("pc", 24)
        good = band(at_wb, SigEq("data", 1))
        return AssumptionChecker(
            [
                Directive(
                    kind="assume",
                    name="load_value",
                    prop=PImpl(at_wb, PSeq(SBool(good))),
                ),
                Directive(
                    kind="assume",
                    name="structural",
                    prop=PConst(True),
                    structural=True,
                ),
            ]
        )

    def test_ok_when_antecedent_idle(self):
        checker = self.make()
        assert checker.frame_ok({"pc": 0, "data": 0})

    def test_ok_when_consequent_holds(self):
        checker = self.make()
        assert checker.frame_ok({"pc": 24, "data": 1})

    def test_violation_pruned_at_the_offending_cycle(self):
        checker = self.make()
        assert not checker.frame_ok({"pc": 24, "data": 0})
        assert checker.violated_names({"pc": 24, "data": 0}) == ["load_value"]

    def test_structural_assumptions_not_monitored(self):
        checker = self.make()
        assert len(checker.checks) == 1

    def test_non_implication_assumption_rejected(self):
        with pytest.raises(SvaError):
            AssumptionChecker(
                [Directive(kind="assume", name="bad", prop=PSeq(seq_ab()))]
            )

    def test_nested_implication_consequent(self):
        inner = PImpl(Sig("b"), PSeq(SBool(Sig("c"))))
        checker = AssumptionChecker(
            [Directive(kind="assume", name="n", prop=PImpl(Sig("a"), inner))]
        )
        assert checker.frame_ok({"a": 1, "b": 0})
        assert checker.frame_ok({"a": 1, "b": 1, "c": 1})
        assert not checker.frame_ok({"a": 1, "b": 1, "c": 0})
