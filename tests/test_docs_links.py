"""Documentation-tree integrity (tools/check_doc_links.py).

Tier-1 enforcement of the docs contract: no broken relative links OR
``#anchor`` fragments anywhere, and ``docs/index.md`` reaches every
document under ``docs/`` — adding a doc without indexing it, renaming
one without fixing its referrers, or rewording a heading without
fixing the anchors that point at it, fails the suite, not just CI.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_doc_links  # noqa: E402


def test_no_broken_relative_links():
    assert check_doc_links.check_links(REPO) == []


def test_every_doc_reachable_from_index():
    assert check_doc_links.check_index_coverage(REPO) == []


def test_index_exists_and_links_all_docs_directly():
    # The index is a *map*, not merely a root: every doc should be one
    # hop away.
    index = (REPO / "docs" / "index.md").read_text()
    for path in sorted((REPO / "docs").glob("*.md")):
        if path.name == "index.md":
            continue
        assert f"({path.name})" in index, f"{path.name} not linked from index"


def test_checker_cli_exits_zero():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_doc_links.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr


def test_checker_detects_broken_link(tmp_path):
    # The checker must actually fail on a broken link (guards against a
    # regex that never matches anything).
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "index.md").write_text("[gone](missing.md)\n")
    problems = check_doc_links.check_links(tmp_path)
    assert any("missing.md" in p for p in problems)


class TestAnchors:
    def test_heading_slugs_follow_github_rules(self):
        slug = check_doc_links.heading_slug
        assert slug("Compiled step kernels") == "compiled-step-kernels"
        assert slug("Job identity, dedup, and coalescing") == (
            "job-identity-dedup-and-coalescing"
        )
        assert slug("The `kernel` backend") == "the-kernel-backend"
        assert slug("Checkpoint / resume") == "checkpoint--resume"
        assert slug("What's *new*?") == "whats-new"

    def test_anchor_extraction(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# Title\n"
            "## Repeated\n"
            "## Repeated\n"
            "```\n"
            "# not a heading (code fence)\n"
            "```\n"
            "## The `code` heading\n"
        )
        assert check_doc_links.anchors(doc) == {
            "title",
            "repeated",
            "repeated-1",
            "the-code-heading",
        }

    def test_broken_same_file_anchor_is_reported(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "index.md").write_text(
            "# Top\n[jump](#no-such-section)\n"
        )
        problems = check_doc_links.check_links(tmp_path)
        assert any("no-such-section" in p for p in problems)

    def test_broken_cross_file_anchor_is_reported(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "index.md").write_text("[other](other.md#missing)\n")
        (docs / "other.md").write_text("# Only Heading\n")
        problems = check_doc_links.check_links(tmp_path)
        assert any("missing" in p for p in problems)

    def test_valid_anchors_pass(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "index.md").write_text(
            "# Top\n## A Section\n[self](#a-section)\n"
            "[there](other.md#only-heading)\n"
        )
        (docs / "other.md").write_text("# Only Heading\n[back](index.md)\n")
        assert check_doc_links.check_links(tmp_path) == []

    def test_repo_docs_use_at_least_one_anchor_link(self):
        # The feature must stay exercised by the real tree (performance
        # and serving docs both use intra-doc anchors).
        targets = [
            target
            for path in check_doc_links.markdown_files(REPO)
            for target in check_doc_links.relative_links(path)
        ]
        assert any("#" in target for target in targets)
