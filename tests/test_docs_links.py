"""Documentation-tree integrity (tools/check_doc_links.py).

Tier-1 enforcement of the docs contract: no broken relative links
anywhere, and ``docs/index.md`` reaches every document under ``docs/``
— adding a doc without indexing it, or renaming one without fixing its
referrers, fails the suite, not just CI.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_doc_links  # noqa: E402


def test_no_broken_relative_links():
    assert check_doc_links.check_links(REPO) == []


def test_every_doc_reachable_from_index():
    assert check_doc_links.check_index_coverage(REPO) == []


def test_index_exists_and_links_all_docs_directly():
    # The index is a *map*, not merely a root: every doc should be one
    # hop away.
    index = (REPO / "docs" / "index.md").read_text()
    for path in sorted((REPO / "docs").glob("*.md")):
        if path.name == "index.md":
            continue
        assert f"({path.name})" in index, f"{path.name} not linked from index"


def test_checker_cli_exits_zero():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_doc_links.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr


def test_checker_detects_broken_link(tmp_path):
    # The checker must actually fail on a broken link (guards against a
    # regex that never matches anything).
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "index.md").write_text("[gone](missing.md)\n")
    problems = check_doc_links.check_links(tmp_path)
    assert any("missing.md" in p for p in problems)
