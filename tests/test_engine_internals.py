"""Unit tests for engine-model internals and solver corner cases."""

import pytest

from repro.uspec import GroundEdge
from repro.uspec.ast import Or
from repro.uhb.solver import UhbSolver
from repro.verifier.engines import _depth_within
from repro.verifier.explorer import ExplorationResult, PROVEN

A, B, C = (1, "WB"), (2, "WB"), (3, "WB")


def add(src, dst):
    return GroundEdge(kind="add", src=src, dst=dst)


class TestDepthWithin:
    def _result(self, layers):
        result = ExplorationResult(verdict=PROVEN)
        result.layer_transitions = list(layers)
        result.transitions = sum(layers)
        result.depth_completed = len(layers)
        return result

    def test_full_budget_reaches_full_depth(self):
        result = self._result([10, 10, 10])
        assert _depth_within(result, 30) == 3

    def test_partial_budget_cuts_layers(self):
        result = self._result([10, 10, 10])
        assert _depth_within(result, 25) == 2
        assert _depth_within(result, 9) == 1  # floor of one layer

    def test_no_profile_falls_back_proportionally(self):
        result = ExplorationResult(verdict=PROVEN)
        result.transitions = 100
        result.depth_completed = 10
        assert _depth_within(result, 50) == 5

    def test_zero_budget_still_reports_one(self):
        result = self._result([10])
        assert _depth_within(result, 0) == 1


class TestSolverCornerCases:
    def test_stop_on_cyclic(self):
        solver = UhbSolver({"a": add(A, B), "b": add(B, A)})
        result = solver.solve(prune_cycles=False, stop_on_cyclic=True)
        assert result.cyclic_witness is not None
        assert not result.cyclic_witness.is_acyclic()

    def test_find_cyclic_witness_none_when_acyclic_only(self):
        solver = UhbSolver({"a": add(A, B)})
        # Only one satisfying graph exists and it is acyclic.
        assert solver.find_cyclic_witness() is None

    def test_duplicate_edges_across_axioms(self):
        solver = UhbSolver({"a": add(A, B), "b": add(A, B)})
        result = solver.solve(find_all=True)
        assert result.observable
        assert result.acyclic_graphs == 1

    def test_find_all_counts_every_order(self):
        solver = UhbSolver(
            {
                "o1": Or((add(A, B), add(B, A))),
                "o2": Or((add(B, C), add(C, B))),
            }
        )
        result = solver.solve(find_all=True)
        # 4 combinations, all acyclic (no chain closes a cycle).
        assert result.acyclic_graphs == 4

    def test_prune_cycles_false_still_finds_acyclic(self):
        solver = UhbSolver({"o": Or((add(A, B), add(B, A)))})
        result = solver.solve(prune_cycles=False, find_all=True)
        assert result.acyclic_graphs == 2
