"""Tests for simulation-based (dynamic ABV) assertion checking."""

import pytest

from repro import RTLCheck, get_test
from repro.verifier import simulate_check
from repro.vscale import MultiVScale


@pytest.fixture(scope="module")
def mp_generated():
    return RTLCheck().generate(get_test("mp"))


class TestSimulationChecking:
    def test_fixed_design_clean(self, mp_generated):
        report = simulate_check(
            MultiVScale(mp_generated.compiled, "fixed"),
            mp_generated.assumptions,
            mp_generated.assertions,
            num_schedules=60,
            seed=2,
        )
        assert not report.bug_found
        assert report.schedules_run == 60
        assert report.cycles_simulated > 0

    def test_buggy_design_eventually_caught(self, mp_generated):
        report = simulate_check(
            MultiVScale(mp_generated.compiled, "buggy"),
            mp_generated.assumptions,
            mp_generated.assertions,
            num_schedules=5000,
            seed=3,
        )
        assert report.bug_found
        assert any("Read_Values" in name for name in report.violations)
        assert report.first_violation_trace

    def test_stop_on_violation_halts_campaign(self, mp_generated):
        report = simulate_check(
            MultiVScale(mp_generated.compiled, "buggy"),
            mp_generated.assumptions,
            mp_generated.assertions,
            num_schedules=5000,
            seed=3,
            stop_on_violation=True,
        )
        assert report.schedules_run == report.first_violation_schedule + 1

    def test_deterministic_for_a_seed(self, mp_generated):
        kwargs = dict(num_schedules=40, seed=7)
        a = simulate_check(
            MultiVScale(mp_generated.compiled, "buggy"),
            mp_generated.assumptions,
            mp_generated.assertions,
            **kwargs,
        )
        b = simulate_check(
            MultiVScale(mp_generated.compiled, "buggy"),
            mp_generated.assumptions,
            mp_generated.assertions,
            **kwargs,
        )
        assert a.first_violation_schedule == b.first_violation_schedule
        assert a.violations == b.violations

    def test_assumptions_truncate_traces(self, mp_generated):
        """Forbidden-outcome load-value assumptions fire constantly on
        the fixed design, so many traces get truncated mid-run."""
        report = simulate_check(
            MultiVScale(mp_generated.compiled, "fixed"),
            mp_generated.assumptions,
            mp_generated.assertions,
            num_schedules=40,
            seed=1,
        )
        assert report.truncated_traces > 0

    def test_incompleteness_with_few_schedules(self, mp_generated):
        """The paper's §1 point: a small simulation campaign can miss
        the bug entirely (this seed/count finds nothing on the buggy
        design, while the formal explorer finds it deterministically)."""
        report = simulate_check(
            MultiVScale(mp_generated.compiled, "buggy"),
            mp_generated.assumptions,
            mp_generated.assertions,
            num_schedules=5,
            seed=0,
        )
        assert not report.bug_found

    def test_summary_strings(self, mp_generated):
        clean = simulate_check(
            MultiVScale(mp_generated.compiled, "fixed"),
            mp_generated.assumptions,
            mp_generated.assertions,
            num_schedules=5,
            seed=0,
        )
        assert "no assertion violated" in clean.summary()
