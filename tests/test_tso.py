"""Tests for the x86-TSO extension: Multi-V-scale-TSO, its µspec model,
and the end-to-end RTLCheck flow on a weaker memory model.

The paper's method claims support for "arbitrary ISA-level MCMs,
including ones as sophisticated as x86-TSO" (§1); these tests exercise
that claim end to end on the store-buffer variant.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RTLCheck, get_test, paper_suite
from repro.errors import MappingError, RtlError
from repro.litmus import LitmusTest, Outcome, compile_test, fence, load, store
from repro.mapping import MultiVScaleTsoNodeMapping
from repro.memodel import enumerate_tso_outcomes, sc_allowed, tso_allowed
from repro.rtl import Simulator
from repro.uhb import microarch_observable
from repro.uspec import load_model
from repro.vscale import STORE_BUFFER_CAPACITY, MultiVScaleTSO


def run_to_drain(soc, schedule, max_cycles=150):
    sim = Simulator(soc)
    iterator = iter(schedule)
    for _ in range(max_cycles):
        sim.step({"arb_select": next(iterator, 0)})
        if soc.drained():
            return sim
    raise AssertionError("TSO SoC did not drain")


def sb_fences_test():
    return LitmusTest.of(
        "sb+fences",
        [[store("x", 1), fence(), load("y", "r1")],
         [store("y", 1), fence(), load("x", "r2")]],
        Outcome.of({"r1": 0, "r2": 0}),
    )


class TestTsoDesignBehaviour:
    def test_store_buffering_relaxation_observable(self):
        """The defining TSO behaviour: sb's SC-forbidden outcome occurs."""
        compiled = compile_test(get_test("sb"))
        rng = random.Random(7)
        seen = set()
        for _ in range(400):
            soc = MultiVScaleTSO(compiled)
            sim = run_to_drain(soc, [rng.randrange(4) for _ in range(150)])
            seen.add(tuple(sorted(soc.register_results().items())))
            if (("r1", 0), ("r2", 0)) in seen:
                break
        assert (("r1", 0), ("r2", 0)) in seen

    @pytest.mark.parametrize("name", ["mp", "lb", "iriw", "co-mp", "ssl", "n4"])
    def test_outcomes_within_tso_oracle(self, name):
        test = get_test(name)
        compiled = compile_test(test)
        allowed = {
            tuple(sorted(dict(f[0]).items()))
            for f in enumerate_tso_outcomes(test)
        }
        rng = random.Random(3)
        for _ in range(150):
            soc = MultiVScaleTSO(compiled)
            run_to_drain(soc, [rng.randrange(4) for _ in range(150)])
            regs = tuple(sorted(soc.register_results().items()))
            assert regs in allowed, (name, regs)

    def test_forwarding_from_store_buffer(self):
        """A load po-after an own same-address store forwards (ssl's
        forbidden outcome is impossible even before the drain)."""
        compiled = compile_test(get_test("ssl"))
        soc = MultiVScaleTSO(compiled)
        # Never grant core 0 until its load must forward.
        sim = run_to_drain(soc, [0, 0, 0, 0] + [0] * 60)
        assert soc.register_results() == {"r1": 1}

    def test_fence_drains_buffer(self):
        test = sb_fences_test()
        compiled = compile_test(test)
        rng = random.Random(11)
        for _ in range(200):
            soc = MultiVScaleTSO(compiled)
            run_to_drain(soc, [rng.randrange(4) for _ in range(150)])
            regs = soc.register_results()
            assert (regs["r1"], regs["r2"]) != (0, 0)

    def test_store_buffer_capacity_stalls(self):
        # Three stores back to back: the third must stall until a drain.
        test = LitmusTest.of(
            "3w",
            [[store("x", 1), store("y", 1), store("z", 1)]],
            Outcome.of({}),
        )
        compiled = compile_test(test)
        soc = MultiVScaleTSO(compiled)
        sim = Simulator(soc)
        stalled = False
        for cycle in range(20):
            frame = sim.step({"arb_select": 3})  # never grant core 0
            if frame["core[0].stall_DX"] and frame["core[0].dmem_type_DX"] == 2:
                stalled = True
                # Occupancy = buffered entries plus the store in WB
                # about to push; the stall holds it at capacity.
                assert frame["core[0].sb_count"] in (
                    STORE_BUFFER_CAPACITY - 1,
                    STORE_BUFFER_CAPACITY,
                )
                break
        assert stalled

    def test_drained_memory_holds_all_stores(self):
        compiled = compile_test(get_test("mp"))
        soc = MultiVScaleTSO(compiled)
        run_to_drain(soc, [0, 1, 2, 3] * 30)
        assert soc.memory_results() == {"x": 1, "y": 1}

    def test_commit_signals_expose_memory_stage(self):
        compiled = compile_test(get_test("ssl"))
        soc = MultiVScaleTSO(compiled)
        sim = Simulator(soc)
        commits = []
        for _ in range(40):
            frame = sim.step({"arb_select": 0})
            if frame["core[0].commit_valid"]:
                commits.append(frame["core[0].commit_pc"])
            if soc.drained():
                break
        assert commits  # the store's Memory-stage event occurred
        from repro.vscale.params import core_base_pc

        assert commits == [core_base_pc(0)]

    def test_bad_drain_order_rejected(self):
        with pytest.raises(RtlError):
            MultiVScaleTSO(compile_test(get_test("mp")), drain_order="random")

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=5, max_size=25))
    def test_snapshot_restore_determinism(self, schedule):
        compiled = compile_test(get_test("sb"))
        soc = MultiVScaleTSO(compiled)
        for select in schedule:
            soc.eval_comb({"arb_select": select})
            soc.tick()
        snap = soc.snapshot()
        soc.reset()
        for select in schedule:
            soc.eval_comb({"arb_select": select})
            soc.tick()
        assert soc.snapshot() == snap


class TestTsoNodeMapping:
    def test_memory_stage_maps_to_commit_signals(self):
        compiled = compile_test(get_test("mp"))
        mapping = MultiVScaleTsoNodeMapping(compiled)
        text = mapping.map_node((1, "Memory"), None).emit()
        assert "commit_valid" in text and "commit_pc" in text

    def test_memory_stage_on_load_rejected(self):
        compiled = compile_test(get_test("mp"))
        mapping = MultiVScaleTsoNodeMapping(compiled)
        with pytest.raises(MappingError):
            mapping.map_node((3, "Memory"), None)  # i3 is a load

    def test_other_stages_unchanged(self):
        compiled = compile_test(get_test("mp"))
        mapping = MultiVScaleTsoNodeMapping(compiled)
        assert "PC_WB" in mapping.map_node((1, "Writeback"), None).emit()


class TestTsoMicroarchModel:
    @pytest.mark.parametrize(
        "name", ["mp", "sb", "lb", "iriw", "co-mp", "ssl", "n6", "rwc", "n2"]
    )
    def test_uhb_verdict_matches_tso_oracle(self, name):
        model = load_model("multi_vscale_tso")
        test = get_test(name)
        result = microarch_observable(model, test)
        assert result.observable == tso_allowed(test), name

    def test_sb_observable_under_tso_but_not_sc(self):
        model = load_model("multi_vscale_tso")
        sb = get_test("sb")
        assert microarch_observable(model, sb).observable
        assert not sc_allowed(sb)

    def test_fences_restore_order(self):
        model = load_model("multi_vscale_tso")
        result = microarch_observable(model, sb_fences_test())
        assert not result.observable

    @pytest.mark.slow
    def test_uhb_matches_tso_oracle_on_full_suite(self):
        model = load_model("multi_vscale_tso")
        for test in paper_suite():
            result = microarch_observable(model, test)
            assert result.observable == tso_allowed(test), test.name


class TestTsoRtlCheck:
    @pytest.fixture(scope="class")
    def rtlcheck(self):
        return RTLCheck.for_tso()

    def test_sb_verified_despite_relaxation(self, rtlcheck):
        """sb's SC-forbidden outcome is reachable (so no covering-trace
        shortcut), yet every TSO axiom assertion is satisfied."""
        result = rtlcheck.verify_test(get_test("sb"))
        assert not result.verified_by_cover
        assert "final_values" in result.cover.fired_assumptions
        assert result.verified
        assert not result.bug_found

    @pytest.mark.parametrize("name", ["mp", "lb", "ssl", "co-mp", "n4", "rfi000"])
    def test_suite_slice_verifies(self, rtlcheck, name):
        result = rtlcheck.verify_test(get_test(name))
        assert result.verified, result.summary()

    def test_lifo_drain_bug_caught(self, rtlcheck):
        result = rtlcheck.verify_test(get_test("mp"), memory_variant="buggy")
        assert result.bug_found
        assert any("Store_Buffer_FIFO" in p.name for p in result.counterexamples)

    def test_generated_sva_uses_commit_signals(self, rtlcheck):
        generated = rtlcheck.generate(get_test("mp"))
        assert "commit_valid" in generated.sva_text
        assert any("Store_Buffer_FIFO" in d.name for d in generated.assertions)

    @pytest.mark.slow
    def test_full_suite_verifies_under_tso(self, rtlcheck):
        for test in paper_suite():
            result = rtlcheck.verify_test(test)
            assert result.verified, result.summary()
