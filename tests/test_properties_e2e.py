"""Cross-cutting property-based tests: the invariants that tie the
whole stack together.

* For random small litmus tests, the fixed SC design's covering-trace
  reachability equals the SC oracle's verdict, and RTLCheck never finds
  a counterexample on the fixed design.
* For random arbiter schedules, RTL executions produce only
  oracle-allowed outcomes (SC design vs SC oracle, TSO design vs TSO
  oracle).
* The µhb layer and the RTL cover phase agree on observability.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RTLCheck
from repro.litmus import LitmusTest, Outcome, compile_test, load, store
from repro.memodel import (
    enumerate_sc_outcomes,
    enumerate_tso_outcomes,
    sc_allowed,
    tso_allowed,
)
from repro.rtl import Simulator
from repro.uhb import microarch_observable
from repro.uspec import load_model, multi_vscale_model
from repro.vscale import MultiVScale, MultiVScaleTSO

_ADDRS = ("x", "y")


@st.composite
def small_tests_with_outcome(draw):
    """Random 1-3 thread tests; the candidate outcome pins every load
    (required by check-mode omniscience) to a value that is at least
    plausible (0..2)."""
    num_threads = draw(st.integers(min_value=1, max_value=3))
    reg = 0
    threads = []
    loads = []
    for _t in range(num_threads):
        ops = []
        for _i in range(draw(st.integers(min_value=1, max_value=2))):
            addr = draw(st.sampled_from(_ADDRS))
            if draw(st.booleans()):
                ops.append(store(addr, draw(st.integers(min_value=1, max_value=2))))
            else:
                reg += 1
                name = f"r{reg}"
                ops.append(load(addr, name))
                loads.append(name)
        threads.append(ops)
    outcome = {name: draw(st.integers(min_value=0, max_value=2)) for name in loads}
    return LitmusTest.of("random", threads, Outcome.of(outcome))


@settings(max_examples=25, deadline=None)
@given(small_tests_with_outcome())
def test_cover_reachability_equals_sc_oracle(test):
    rtlcheck = RTLCheck()
    result = rtlcheck.verify_test(test)
    reachable = "final_values" in result.cover.fired_assumptions
    assert result.cover.exhausted
    assert reachable == sc_allowed(test)


@settings(max_examples=15, deadline=None)
@given(small_tests_with_outcome())
def test_fixed_design_never_fails_assertions(test):
    rtlcheck = RTLCheck()
    result = rtlcheck.verify_test(test, skip_cover_shortcut=True)
    assert not result.bug_found, result.summary()


@settings(max_examples=25, deadline=None)
@given(small_tests_with_outcome())
def test_microarch_agrees_with_sc_oracle(test):
    result = microarch_observable(multi_vscale_model(), test)
    assert result.observable == sc_allowed(test)


@settings(max_examples=15, deadline=None)
@given(small_tests_with_outcome())
def test_tso_microarch_agrees_with_tso_oracle(test):
    result = microarch_observable(load_model("multi_vscale_tso"), test)
    assert result.observable == tso_allowed(test)


@settings(max_examples=20, deadline=None)
@given(
    small_tests_with_outcome(),
    st.lists(st.integers(min_value=0, max_value=3), min_size=40, max_size=60),
)
def test_sc_rtl_outcomes_within_sc_oracle(test, schedule):
    compiled = compile_test(test)
    soc = MultiVScale(compiled, "fixed")
    sim = Simulator(soc)
    iterator = iter(schedule)
    for _ in range(80):
        sim.step({"arb_select": next(iterator, 0)})
        if soc.drained():
            break
    if not soc.drained():
        return  # starved by the schedule; nothing to check
    allowed = {
        (tuple(sorted(dict(f[0]).items())), tuple(sorted(dict(f[1]).items())))
        for f in enumerate_sc_outcomes(test)
    }
    regs = tuple(sorted(soc.register_results().items()))
    mem = soc.memory_results()
    assert any(
        dict(f_regs) == dict(regs)
        and all(dict(f_mem).get(k, 0) == v for k, v in mem.items())
        for f_regs, f_mem in allowed
    )


@settings(max_examples=20, deadline=None)
@given(
    small_tests_with_outcome(),
    st.lists(st.integers(min_value=0, max_value=3), min_size=60, max_size=90),
)
def test_tso_rtl_outcomes_within_tso_oracle(test, schedule):
    compiled = compile_test(test)
    soc = MultiVScaleTSO(compiled)
    sim = Simulator(soc)
    iterator = iter(schedule)
    for _ in range(140):
        sim.step({"arb_select": next(iterator, 0)})
        if soc.drained():
            break
    if not soc.drained():
        return
    allowed_regs = {
        tuple(sorted(dict(f[0]).items())) for f in enumerate_tso_outcomes(test)
    }
    regs = tuple(sorted(soc.register_results().items()))
    assert regs in allowed_regs
