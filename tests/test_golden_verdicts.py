"""Golden verdict table for the 56-test paper suite.

``tests/fixtures/golden_verdicts.json`` pins, per test, the model
verdicts (SC/TSO/axiomatic), the exhaustive-RTL-enumeration agreement
with SC on both memory variants, and RTLCheck's bug_found /
verified_by_cover verdicts on both variants.  These tests replay the
pipeline against the fixture, so *any* behaviour change in an oracle
layer — model semantics, RTL simulation, property generation, verifier
engines — surfaces as a diff against a reviewed table rather than as a
silent drift.

The model columns replay for all 56 tests on every tier-1 run (~3s).
The verifier/RTL columns replay on a small fixed subset by default;
``RTLCHECK_GOLDEN_FULL=1`` replays them for the whole table (minutes —
CI's scheduled job, or after touching the verifier).  Regenerate an
intentionally-changed table with ``tools/regen_golden_verdicts.py``.
"""

import json
import os

import pytest

from repro import RTLCheck, get_test, paper_suite
from repro.difftest.oracles import (
    axiomatic_verdicts,
    operational_verdicts,
    rtl_verdicts,
)

FIXTURE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "golden_verdicts.json"
)

#: Small-but-diverse default subset for the expensive columns: a buggy
#: memory bug with and without cover-shortcut on fixed (mp, sb), two
#: clean tests (lb, n1 — n1 is the known verifier-blind-spot shape),
#: and the smallest test in the suite (ssl).
FAST_SUBSET = ("mp", "sb", "lb", "n1", "ssl")

GOLDEN_FULL = os.environ.get("RTLCHECK_GOLDEN_FULL") == "1"


def _table():
    with open(FIXTURE) as handle:
        document = json.load(handle)
    assert document["kind"] == "rtlcheck-golden-verdicts"
    assert document["schema_version"] == 1
    return {row["test"]: row for row in document["tests"]}


TABLE = _table()


class TestFixtureShape:
    def test_covers_whole_suite_exactly(self):
        suite_names = [test.name for test in paper_suite()]
        assert sorted(TABLE) == sorted(suite_names)
        assert len(suite_names) == 56

    def test_fast_subset_rows_exist(self):
        for name in FAST_SUBSET:
            assert name in TABLE

    def test_pinned_cross_layer_invariants(self):
        """The fixture itself must satisfy the difftest invariants: the
        two SC implementations agree everywhere, the fixed design is SC
        everywhere, and the verifier never flags the fixed design."""
        for row in TABLE.values():
            assert row["axiomatic_matches_operational"], row["test"]
            assert row["axiomatic_allowed"] == row["sc_allowed"], row["test"]
            assert row["rtl_fixed_matches_sc"], row["test"]
            assert not row["verifier_fixed_bug_found"], row["test"]
            # SC-allowed implies TSO-allowed (TSO only weakens SC).
            if row["sc_allowed"]:
                assert row["tso_allowed"], row["test"]

    def test_buggy_memory_diverges_everywhere(self):
        """Every suite test exercises at least one store, and the buggy
        memory drops its final buffered store — so exhaustive buggy
        enumeration never matches SC, while the verifier (which only
        sees the candidate-outcome slice) flags a strict subset."""
        for row in TABLE.values():
            assert not row["rtl_buggy_matches_sc"], row["test"]
        flagged = sum(1 for r in TABLE.values() if r["verifier_buggy_bug_found"])
        assert 0 < flagged < len(TABLE)


class TestModelColumns:
    """Replay the cheap columns for the full suite on every run."""

    @pytest.mark.parametrize("test", paper_suite(), ids=lambda t: t.name)
    def test_model_verdicts_match_golden(self, test):
        row = TABLE[test.name]
        op_set, sc_ok, tso_ok = operational_verdicts(test)
        ax_set, ax_ok = axiomatic_verdicts(test)
        assert sc_ok == row["sc_allowed"]
        assert tso_ok == row["tso_allowed"]
        assert ax_ok == row["axiomatic_allowed"]
        assert len(op_set) == row["outcome_count"]
        assert (op_set == ax_set) == row["axiomatic_matches_operational"]
        assert test.num_threads == row["threads"]
        assert test.instruction_count() == row["instructions"]


def _verifier_names():
    return sorted(TABLE) if GOLDEN_FULL else list(FAST_SUBSET)


class TestVerifierColumns:
    """Replay the expensive columns (RTL enumeration + RTLCheck) on the
    fast subset by default, everything under RTLCHECK_GOLDEN_FULL=1."""

    @pytest.mark.parametrize("name", _verifier_names())
    @pytest.mark.parametrize("variant", ["fixed", "buggy"])
    def test_rtl_and_verifier_match_golden(self, name, variant):
        row = TABLE[name]
        test = get_test(name)
        op_set, _sc, _tso = operational_verdicts(test)
        rtl = rtl_verdicts(test, variant)
        assert rtl.complete == row[f"rtl_{variant}_complete"]
        assert (rtl.complete and rtl.outcomes == op_set) == (
            row[f"rtl_{variant}_matches_sc"]
        )
        result = RTLCheck().verify_test(test, variant)
        assert result.bug_found == row[f"verifier_{variant}_bug_found"]
        assert (
            result.verified_by_cover
            == row[f"verifier_{variant}_verified_by_cover"]
        )
