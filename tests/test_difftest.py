"""Tests for :mod:`repro.difftest` — differential litmus fuzzing.

Covers the seeded generator (determinism across instances and global
RNG state, structural validity, size caps), the four oracle layers and
their cross-check invariants, the malformed-test error contract, the
delta-debugging shrinker (determinism, minimality, predicate
discipline), the campaign runner (jobs-independence, error capture),
and the report/reproducer artifacts (schema validation, byte-identical
replay)."""

import json
import random

import pytest

from repro import RTLCheck, get_test
from repro.difftest import (
    Discrepancy,
    FuzzConfig,
    FuzzGenerator,
    INVARIANTS,
    ORACLE_NAMES,
    cross_check,
    discrepancy_predicate,
    evaluate_oracles,
    generated_test,
    run_fuzz,
    shrink_test,
    validate_fuzz_report,
    write_reproducer,
)
from repro.difftest.generate import _OPS_CAP, _TOTAL_OPS_CAP
from repro.difftest.report import reproducer_document
from repro.difftest.shrink import _canonicalize
from repro.errors import LitmusError, ReproError
from repro.litmus.diy import random_cycle, validate_cycle
from repro.litmus.test import LitmusTest, Outcome, load, store

MP = LitmusTest.of(
    "mp-df",
    [[store("x", 1), store("y", 1)], [load("y", "r1"), load("x", "r2")]],
    Outcome.of({"r1": 1, "r2": 0}),
)


class TestGeneratorDeterminism:
    def test_same_seed_same_suite(self):
        a = [t.to_dict() for t in FuzzGenerator(42).suite(25)]
        b = [t.to_dict() for t in FuzzGenerator(42).suite(25)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [t.to_dict() for t in FuzzGenerator(1).suite(10)]
        b = [t.to_dict() for t in FuzzGenerator(2).suite(10)]
        assert a != b

    def test_independent_of_global_random_state(self):
        """No module-level randomness anywhere: perturbing the global
        RNG between generations must not change anything."""
        random.seed(123)
        a = [t.to_dict() for t in FuzzGenerator(7).suite(10)]
        random.seed(999)
        random.random()
        b = [t.to_dict() for t in FuzzGenerator(7).suite(10)]
        assert a == b

    def test_index_access_matches_suite_order(self):
        suite = FuzzGenerator(5).suite(8)
        for index, test in enumerate(suite):
            assert generated_test(5, index).to_dict() == test.to_dict()

    def test_random_cycle_uses_only_caller_rng(self):
        a = random_cycle(random.Random("s"))
        random.seed(0)
        b = random_cycle(random.Random("s"))
        assert a == b
        assert validate_cycle(a) is None


class TestGeneratorValidity:
    def test_generated_tests_are_wellformed_and_capped(self):
        for test in FuzzGenerator(0).suite(40):
            test.validate()  # raises on structural problems
            assert 1 <= test.num_threads <= 4
            assert 0 < test.instruction_count() <= _TOTAL_OPS_CAP
            for thread in test.threads:
                assert len(thread) <= max(_OPS_CAP.values()) + 2

    def test_names_are_unique_and_seed_tagged(self):
        suite = FuzzGenerator(9).suite(20)
        names = [t.name for t in suite]
        assert len(set(names)) == len(names)
        assert all(name.startswith("fz9-") for name in names)

    def test_max_procs_respected(self):
        for test in FuzzGenerator(0, max_procs=2).suite(20):
            assert test.num_threads <= 2

    def test_bad_max_procs_rejected(self):
        with pytest.raises(ReproError):
            FuzzGenerator(0, max_procs=9)


class TestMalformedCorners:
    """Satellite: structurally-bad tests raise errors naming the test
    instead of leaking KeyError/AssertionError from oracle internals."""

    def _bad_register_test(self):
        # Raw constructor bypasses .of() validation, mimicking a caller
        # that assembled the dataclass directly.
        return LitmusTest(
            name="bad-reg",
            threads=((store("x", 1),),),
            outcome=Outcome(registers=(("r9", 1),)),
        )

    def _bad_location_test(self):
        return LitmusTest(
            name="bad-loc",
            threads=((store("x", 1),),),
            outcome=Outcome(final_memory=(("zz", 1),)),
        )

    @pytest.mark.parametrize("maker", ["_bad_register_test", "_bad_location_test"])
    def test_oracles_name_the_offender(self, maker):
        bad = getattr(self, maker)()
        with pytest.raises(ReproError, match=bad.name):
            evaluate_oracles(bad, oracles=("operational",))

    @pytest.mark.parametrize("maker", ["_bad_register_test", "_bad_location_test"])
    def test_verifier_names_the_offender(self, maker):
        bad = getattr(self, maker)()
        with pytest.raises(ReproError, match=bad.name):
            RTLCheck().verify_test(bad)

    def test_from_dict_names_the_offender(self):
        with pytest.raises(LitmusError, match="half-baked"):
            LitmusTest.from_dict({"name": "half-baked", "threads": [[{"kind": "R"}]]})

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ReproError, match="psychic"):
            evaluate_oracles(MP, oracles=("psychic",))

    def test_duplicate_names_rejected_by_verify_suite(self):
        with pytest.raises(ReproError, match="mp-df"):
            RTLCheck().verify_suite([MP, MP])


class TestOraclesAndCrossCheck:
    def test_fixed_design_agrees_everywhere(self):
        verdicts = evaluate_oracles(MP, "fixed")
        assert verdicts.errors == {}
        assert verdicts.op_outcomes == verdicts.ax_outcomes
        assert verdicts.rtl.complete
        assert verdicts.rtl.outcomes == verdicts.op_outcomes
        assert not verdicts.verifier_bug_found
        assert cross_check(verdicts) == []

    def test_buggy_memory_rtl_divergence_detected(self):
        verdicts = evaluate_oracles(MP, "buggy")
        kinds = [d.kind for d in cross_check(verdicts)]
        assert "rtl-vs-model" in kinds
        assert all(kind in INVARIANTS for kind in kinds)

    def test_oracle_subset_skips_unrequested_layers(self):
        verdicts = evaluate_oracles(MP, oracles=("operational", "axiomatic"))
        assert verdicts.rtl is None
        assert verdicts.verifier_bug_found is None
        assert cross_check(verdicts) == []

    def test_verdict_summary_is_json_safe(self):
        summary = evaluate_oracles(MP, oracles=("operational",)).to_dict()
        json.dumps(summary)
        assert summary["operational"]["allowed"] is False
        assert summary["rtl"] is None


class TestShrinker:
    def test_shrinks_buggy_mp_to_single_store(self):
        predicate = discrepancy_predicate("rtl-vs-model", "buggy")
        minimized, stats = shrink_test(MP, predicate)
        assert minimized.instruction_count() <= 4  # acceptance bound
        assert minimized.instruction_count() == 1  # actually one store
        assert minimized.name == "mp-df-min"
        assert stats["final_instructions"] <= stats["initial_instructions"]
        # The minimal test must still reproduce the discrepancy.
        assert predicate(minimized)

    def test_shrink_is_deterministic(self):
        predicate = discrepancy_predicate("rtl-vs-model", "buggy")
        a, _ = shrink_test(MP, predicate)
        b, _ = shrink_test(MP, predicate)
        assert a.to_dict() == b.to_dict()

    def test_refuses_non_reproducing_input(self):
        predicate = discrepancy_predicate("rtl-vs-model", "fixed")
        with pytest.raises(ReproError, match="mp-df"):
            shrink_test(MP, predicate)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="warp-drive"):
            discrepancy_predicate("warp-drive")

    def test_canonicalization_renames_stably(self):
        scrambled = LitmusTest.of(
            "odd",
            [[store("q", 1)], [load("q", "r7")]],
            Outcome.of({"r7": 1}),
        )
        canon = _canonicalize(scrambled, "odd-min")
        assert canon.addresses == ["x"]
        assert canon.outcome.register_map == {"r1": 1}

    def test_evaluation_budget_is_respected(self):
        calls = []

        def predicate(test):
            calls.append(test.name)
            return True  # everything "reproduces" -> shrink runs long

        shrink_test(MP, predicate, max_evaluations=5)
        assert len(calls) <= 5


FAST_ORACLES = ("operational", "axiomatic", "rtl")


class TestRunner:
    def test_fixed_campaign_is_clean(self):
        result = run_fuzz(
            FuzzConfig(seed=11, budget=6, oracles=FAST_ORACLES)
        )
        assert result.tests_run == 6
        assert result.discrepancies == []
        assert result.oracle_errors == []
        assert validate_fuzz_report(result.report()) == []

    def test_buggy_campaign_finds_and_shrinks(self):
        result = run_fuzz(
            FuzzConfig(
                seed=11,
                budget=4,
                oracles=FAST_ORACLES,
                memory_variant="buggy",
                shrink_limit=2,
            )
        )
        assert len(result.discrepancies) >= 1
        shrunk = [e for e in result.discrepancies if e.minimized is not None]
        assert len(shrunk) == min(2, len(result.discrepancies))
        for entry in shrunk:
            assert entry.minimized.instruction_count() <= 4
            assert entry.discrepancy.seed == 11
            assert entry.discrepancy.index is not None

    def test_jobs_do_not_change_results(self):
        base = FuzzConfig(
            seed=13, budget=5, oracles=FAST_ORACLES, memory_variant="buggy",
            shrink=False,
        )
        r1 = run_fuzz(base)
        r2 = run_fuzz(
            FuzzConfig(
                seed=13, budget=5, oracles=FAST_ORACLES,
                memory_variant="buggy", shrink=False, jobs=2,
            )
        )
        d1 = [e.to_dict() for e in r1.discrepancies]
        d2 = [e.to_dict() for e in r2.discrepancies]
        assert d1 == d2
        assert r1.verdict_tally == r2.verdict_tally

    def test_config_validation(self):
        with pytest.raises(ReproError):
            FuzzConfig(budget=-1)
        with pytest.raises(ReproError):
            FuzzConfig(jobs=0)
        with pytest.raises(ReproError):
            FuzzConfig(memory_variant="chaotic")
        with pytest.raises(ReproError):
            FuzzConfig(oracles=("operational", "psychic"))


class TestReportsAndReproducers:
    def _buggy_result(self, seed=17):
        return run_fuzz(
            FuzzConfig(
                seed=seed, budget=3, oracles=FAST_ORACLES,
                memory_variant="buggy", shrink_limit=1,
            )
        )

    def test_report_validates_and_counts(self):
        result = self._buggy_result()
        report = result.report()
        assert validate_fuzz_report(report) == []
        assert report["kind"] == "rtlcheck-difftest-report"
        assert report["discrepancy_count"] == len(result.discrepancies)
        json.dumps(report)  # fully JSON-safe

    def test_validation_catches_corruption(self):
        report = self._buggy_result().report()
        report["discrepancy_count"] += 1
        assert any("discrepancy_count" in p for p in validate_fuzz_report(report))
        del report["seed"]
        assert any("seed" in p for p in validate_fuzz_report(report))

    def test_reproducers_are_byte_identical_across_replays(self):
        """The acceptance contract: re-running a campaign with its
        recorded seed regenerates minimized reproducers byte-for-byte."""
        a = self._buggy_result()
        b = self._buggy_result()
        docs_a = [
            json.dumps(reproducer_document(e), sort_keys=True)
            for e in a.discrepancies
        ]
        docs_b = [
            json.dumps(reproducer_document(e), sort_keys=True)
            for e in b.discrepancies
        ]
        assert docs_a and docs_a == docs_b

    def test_written_reproducer_replays(self, tmp_path):
        result = self._buggy_result()
        entry = next(e for e in result.discrepancies if e.minimized is not None)
        path = write_reproducer(str(tmp_path), entry)
        with open(path) as handle:
            document = json.load(handle)
        assert document["kind"] == "rtlcheck-difftest-reproducer"
        assert document["seed"] == 17
        replayed = LitmusTest.from_dict(document["minimized"])
        predicate = discrepancy_predicate(
            document["discrepancy"]["kind"], document["memory_variant"]
        )
        assert predicate(replayed)


class TestOracleErrorContract:
    """Regression: a ReproError from *any* layer — operational and
    axiomatic included — must land in ``verdicts.errors`` instead of
    aborting the evaluation (the documented contract; the first two
    layers used to leak)."""

    def test_operational_error_is_recorded_not_raised(self, monkeypatch):
        def boom(test):
            raise ReproError(f"{test.name}: injected operational failure")

        monkeypatch.setattr(
            "repro.difftest.oracles.operational_verdicts", boom
        )
        verdicts = evaluate_oracles(MP, oracles=("operational", "axiomatic"))
        assert "injected operational" in verdicts.errors["operational"]
        assert verdicts.op_outcomes is None
        # The healthy layer still answered, and comparisons involving
        # the broken one are skipped rather than crashed.
        assert verdicts.ax_outcomes is not None
        assert cross_check(verdicts) == []

    def test_axiomatic_error_is_recorded_not_raised(self, monkeypatch):
        def boom(test):
            raise ReproError(f"{test.name}: injected axiomatic failure")

        monkeypatch.setattr("repro.difftest.oracles.axiomatic_verdicts", boom)
        verdicts = evaluate_oracles(MP, oracles=("operational", "axiomatic"))
        assert "injected axiomatic" in verdicts.errors["axiomatic"]
        assert verdicts.ax_outcomes is None
        assert verdicts.op_outcomes is not None

    def test_oracle_error_reaches_campaign_report(self, monkeypatch):
        def boom(test):
            raise ReproError(f"{test.name}: injected axiomatic failure")

        monkeypatch.setattr("repro.difftest.oracles.axiomatic_verdicts", boom)
        result = run_fuzz(
            FuzzConfig(
                seed=11,
                budget=2,
                oracles=("operational", "axiomatic"),
                shrink=False,
            )
        )
        # The campaign completes, names the oracle per test, and still
        # produces a valid report.
        assert result.tests_run == 2
        assert len(result.oracle_errors) == 2
        for entry in result.oracle_errors:
            assert entry["oracle"] == "axiomatic"
            assert "injected" in entry["error"]
        assert validate_fuzz_report(result.report()) == []

    def test_malformed_test_still_raises(self):
        bad = LitmusTest(
            name="raw-bad",
            threads=((load("x", "r1"), load("y", "r1")),),
            outcome=Outcome.of({}),
        )
        with pytest.raises(ReproError):
            evaluate_oracles(bad, oracles=("operational",))


class TestCanonicalizationFixes:
    """Regression: `_canonicalize` used to crash past 12 addresses
    (IndexError) and silently split a reused load register into two;
    `shrink_test` used to ship canonicalized tests unchecked."""

    def test_many_addresses_get_derived_names(self):
        addrs = [f"loc{i}" for i in range(13)]
        test = LitmusTest.of(
            "wide",
            [[store(a, 1) for a in addrs]],
            Outcome.of({}, {addrs[-1]: 1}),
        )
        canon = _canonicalize(test, "wide-min")
        assert canon.addresses[:4] == ["x", "y", "z", "w"]
        assert canon.addresses[-1] == "v12"
        assert canon.outcome.final_memory_map == {"v12": 1}

    def test_duplicate_register_is_not_split(self):
        # Only constructible via the raw constructor (validation forbids
        # it); the stable map must collapse both uses onto one canonical
        # name, which the rebuild then rejects — never silently rename
        # them apart, which changes the outcome set.
        raw = LitmusTest(
            name="dup",
            threads=((load("x", "r7"), load("y", "r7")),),
            outcome=Outcome.of({}),
        )
        with pytest.raises(LitmusError, match="duplicate"):
            _canonicalize(raw, "dup-min")

    def test_shrink_falls_back_when_canonicalization_stops_reproducing(self):
        # A predicate sensitive to the concrete register name: renaming
        # r7 -> r1 breaks it, so the shipped reproducer must keep r7.
        test = LitmusTest.of(
            "odd2",
            [[store("q", 1)], [load("q", "r7")]],
            Outcome.of({"r7": 1}),
        )

        def predicate(candidate):
            return "r7" in candidate.outcome.register_map

        minimized, stats = shrink_test(test, predicate)
        assert stats["canonicalization_dropped"] is True
        assert minimized.name == "odd2-min"
        assert "r7" in minimized.outcome.register_map
        assert predicate(minimized)

    def test_canonicalization_kept_when_it_reproduces(self):
        predicate = discrepancy_predicate("rtl-vs-model", "buggy")
        minimized, stats = shrink_test(MP, predicate)
        assert stats["canonicalization_dropped"] is False
        assert minimized.addresses == ["x"]


class TestWorkerCrashContainment:
    """Regression: a non-ReproError escape from a pool worker used to
    propagate out of ``future.result()`` and kill the whole campaign."""

    def _crashing_campaign(self, monkeypatch, jobs, cache_dir=None):
        from repro.difftest.runner import CRASH_TEST_ENV

        config = FuzzConfig(
            seed=11,
            budget=3,
            oracles=("operational", "axiomatic"),
            jobs=jobs,
            shrink=False,
            cache_dir=cache_dir,
        )
        victim = FuzzGenerator(11).suite(3)[1].name
        monkeypatch.setenv(CRASH_TEST_ENV, victim)
        return run_fuzz(config), victim

    def _assert_contained(self, result, victim):
        assert result.tests_run == 3
        crashed = [e for e in result.oracle_errors if e.get("crashed")]
        assert len(crashed) == 1
        assert crashed[0]["test"] == victim
        assert "worker crashed" in crashed[0]["error"]
        assert result.skipped["worker_crashed"] == 1
        # The other two tests were evaluated normally.
        assert len(result.verdicts) == 2
        assert validate_fuzz_report(result.report()) == []

    def test_crash_contained_sequentially(self, monkeypatch):
        result, victim = self._crashing_campaign(monkeypatch, jobs=1)
        self._assert_contained(result, victim)

    def test_crash_contained_in_pool(self, monkeypatch):
        result, victim = self._crashing_campaign(monkeypatch, jobs=2)
        self._assert_contained(result, victim)

    def test_crashed_test_is_retried_on_resume(self, monkeypatch, tmp_path):
        result, victim = self._crashing_campaign(
            monkeypatch, jobs=1, cache_dir=str(tmp_path)
        )
        self._assert_contained(result, victim)
        # The crashed index was NOT checkpointed as done: a resumed run
        # (crash hook cleared) retries exactly that test and comes back
        # clean.
        from repro.difftest.runner import CRASH_TEST_ENV

        monkeypatch.delenv(CRASH_TEST_ENV)
        resumed = run_fuzz(
            FuzzConfig(
                seed=11,
                budget=3,
                oracles=("operational", "axiomatic"),
                shrink=False,
                cache_dir=str(tmp_path),
            )
        )
        assert resumed.resumed == 2
        assert resumed.oracle_errors == []
        assert len(resumed.verdicts) == 3


class TestTraceOracle:
    def test_fixed_memory_trace_layer_is_clean(self):
        verdicts = evaluate_oracles(
            MP, "fixed", oracles=("trace",), trace_samples=6
        )
        assert verdicts.errors == {}
        assert verdicts.trace_checks
        assert all(c.conformant for c in verdicts.trace_checks)
        assert cross_check(verdicts) == []

    def test_buggy_memory_flagged_by_trace_vs_sc(self):
        verdicts = evaluate_oracles(
            MP, "buggy", oracles=("trace",), trace_samples=8
        )
        kinds = [d.kind for d in cross_check(verdicts)]
        assert "trace-vs-sc" in kinds

    def test_trace_agrees_with_enumeration_when_both_run(self):
        verdicts = evaluate_oracles(
            MP, "fixed", oracles=("operational", "trace"), trace_samples=8
        )
        kinds = [d.kind for d in cross_check(verdicts)]
        assert "trace-vs-enumeration" not in kinds
        for check in verdicts.trace_checks:
            assert check.outcome in verdicts.op_outcomes

    def test_trace_discrepancy_shrinks(self):
        predicate = discrepancy_predicate(
            "trace-vs-sc", "buggy", trace_samples=6
        )
        minimized, stats = shrink_test(MP, predicate)
        assert predicate(minimized)
        assert minimized.instruction_count() <= MP.instruction_count()


class TestLongProgramMode:
    def test_long_programs_require_trace_oracle(self):
        with pytest.raises(ReproError, match="trace"):
            FuzzConfig(long_programs=True, oracles=("operational", "rtl"))

    def test_generator_emits_long_tests(self):
        tests = FuzzGenerator(7, long_programs=True).suite(10)
        long = [t for t in tests if t.instruction_count() > _TOTAL_OPS_CAP]
        assert long
        for test in long:
            assert max(len(t) for t in test.threads) >= 8
            assert test.outcome.register_map == {}
            # Unique store values per location (the polynomial case).
            for addr in test.addresses:
                values = [
                    op.value
                    for t in test.threads
                    for op in t
                    if op.is_store and op.addr == addr
                ]
                assert len(values) == len(set(values))

    def test_long_campaign_routes_to_trace_only(self):
        result = run_fuzz(
            FuzzConfig(
                seed=7,
                budget=6,
                oracles=("operational", "axiomatic", "trace"),
                long_programs=True,
                trace_samples=4,
                shrink=False,
            )
        )
        assert result.tests_run == 6
        assert result.skipped.get("long_program", 0) >= 1
        assert result.discrepancies == []
        assert result.oracle_errors == []
        long_names = [
            t.name
            for t in FuzzGenerator(7, long_programs=True).suite(6)
            if t.instruction_count() > _TOTAL_OPS_CAP
        ]
        for name in long_names:
            summary = result.verdicts[name]
            assert summary["operational"] is None
            assert summary["trace"] is not None
            assert summary["trace"]["nonconformant"] == 0
        assert validate_fuzz_report(result.report()) == []
