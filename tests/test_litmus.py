"""Tests for litmus representation, compilation, and the text format."""

import pytest

from repro.errors import LitmusError
from repro.isa import Halt, Lw, Sw
from repro.litmus import (
    LitmusTest,
    Outcome,
    compile_test,
    fence,
    format_litmus,
    load,
    parse_litmus,
    parse_suite,
    store,
)
from repro.litmus.test import DATA_BASE_WORD


def mp_test():
    return LitmusTest.of(
        "mp",
        [[store("x", 1), store("y", 1)], [load("y", "r1"), load("x", "r2")]],
        Outcome.of({"r1": 1, "r2": 0}),
    )


class TestMemOp:
    def test_store_repr(self):
        assert str(store("x", 1)) == "[x] <- 1"

    def test_load_repr(self):
        assert str(load("y", "r1")) == "r1 <- [y]"

    def test_fence_repr(self):
        assert str(fence()) == "fence"

    def test_load_requires_out(self):
        with pytest.raises(LitmusError):
            from repro.litmus.test import MemOp

            MemOp(kind="R", addr="x")

    def test_store_requires_value(self):
        with pytest.raises(LitmusError):
            from repro.litmus.test import MemOp

            MemOp(kind="W", addr="x")

    def test_bad_kind(self):
        with pytest.raises(LitmusError):
            from repro.litmus.test import MemOp

            MemOp(kind="X")


class TestLitmusTest:
    def test_addresses_in_first_use_order(self):
        assert mp_test().addresses == ["x", "y"]

    def test_initial_memory_defaults_to_zero(self):
        assert mp_test().initial_memory_map == {"x": 0, "y": 0}

    def test_explicit_initial_memory(self):
        test = LitmusTest.of(
            "init",
            [[load("x", "r1")]],
            Outcome.of({"r1": 7}),
            initial_memory={"x": 7},
        )
        assert test.initial_memory_map == {"x": 7}

    def test_duplicate_load_outputs_rejected(self):
        with pytest.raises(LitmusError):
            LitmusTest.of(
                "dup",
                [[load("x", "r1"), load("y", "r1")]],
                Outcome.of({"r1": 0}),
            )

    def test_outcome_register_must_have_load(self):
        with pytest.raises(LitmusError):
            LitmusTest.of("bad", [[store("x", 1)]], Outcome.of({"r9": 1}))

    def test_outcome_final_must_use_known_variable(self):
        with pytest.raises(LitmusError):
            LitmusTest.of(
                "bad", [[store("x", 1)]], Outcome.of({}, {"z": 1})
            )

    def test_no_threads_rejected(self):
        with pytest.raises(LitmusError):
            LitmusTest.of("empty", [], Outcome.of({}))

    def test_pretty_numbers_instructions_globally(self):
        text = mp_test().pretty()
        assert "(i1) [x] <- 1" in text
        assert "(i4) r2 <- [x]" in text


class TestCompile:
    def test_unused_cores_get_bare_halt(self):
        compiled = compile_test(mp_test())
        assert compiled.programs[2] == [Halt()]
        assert compiled.programs[3] == [Halt()]

    def test_each_op_is_one_instruction_plus_halt(self):
        compiled = compile_test(mp_test())
        assert len(compiled.programs[0]) == 3  # sw, sw, halt
        assert isinstance(compiled.programs[0][0], Sw)
        assert isinstance(compiled.programs[1][0], Lw)
        assert isinstance(compiled.programs[0][-1], Halt)

    def test_address_map_starts_at_data_base(self):
        compiled = compile_test(mp_test())
        assert compiled.address_map == {"x": DATA_BASE_WORD, "y": DATA_BASE_WORD + 1}
        assert compiled.byte_address("x") == DATA_BASE_WORD * 4

    def test_register_initialization_covers_addresses_and_data(self):
        compiled = compile_test(mp_test())
        regs0 = compiled.reg_init[0]
        # store x: addr reg x1 = &x, data reg x2 = 1
        assert regs0[1] == DATA_BASE_WORD * 4
        assert regs0[2] == 1
        # store y: addr reg x3 = &y, data reg x4 = 1
        assert regs0[3] == (DATA_BASE_WORD + 1) * 4
        assert regs0[4] == 1
        # loads on core 1 initialize only address registers
        regs1 = compiled.reg_init[1]
        assert regs1[1] == (DATA_BASE_WORD + 1) * 4
        assert 2 not in regs1

    def test_uids_are_global_and_ordered(self):
        compiled = compile_test(mp_test())
        assert [op.uid for op in compiled.ops] == [1, 2, 3, 4]
        assert compiled.op_by_uid(3).core == 1

    def test_pcs_are_word_aligned_and_sequential(self):
        compiled = compile_test(mp_test())
        assert [op.pc for op in compiled.ops_on_core(0)] == [0, 4]

    def test_initial_data_memory(self):
        compiled = compile_test(mp_test())
        assert compiled.initial_data_memory == {
            DATA_BASE_WORD: 0,
            DATA_BASE_WORD + 1: 0,
        }

    def test_too_many_threads_rejected(self):
        test = LitmusTest.of(
            "wide",
            [[store("x", 1)]] * 5,
            Outcome.of({}),
        )
        with pytest.raises(LitmusError):
            compile_test(test, num_cores=4)

    def test_fence_compiles_without_registers(self):
        test = LitmusTest.of(
            "fenced",
            [[store("x", 1), fence(), load("x", "r1")]],
            Outcome.of({"r1": 1}),
        )
        compiled = compile_test(test)
        assert compiled.ops[1].addr_reg is None

    def test_unknown_uid_raises(self):
        with pytest.raises(LitmusError):
            compile_test(mp_test()).op_by_uid(99)


MP_TEXT = """
litmus mp
core 0:
  [x] <- 1
  [y] <- 1
core 1:
  r1 <- [y]
  r2 <- [x]
outcome: r1=1, r2=0
"""


class TestParser:
    def test_parse_mp(self):
        test = parse_litmus(MP_TEXT)
        assert test.name == "mp"
        assert test.num_threads == 2
        assert test.outcome.register_map == {"r1": 1, "r2": 0}

    def test_roundtrip_through_format(self):
        test = parse_litmus(MP_TEXT)
        again = parse_litmus(format_litmus(test))
        assert again == test

    def test_parse_init_and_final(self):
        text = MP_TEXT + "final: x=1\n" + "init: x=0, y=0\n"
        test = parse_litmus(text)
        assert test.outcome.final_memory_map == {"x": 1}

    def test_parse_fence(self):
        test = parse_litmus(
            "litmus f\ncore 0:\n  [x] <- 1\n  fence\n  r1 <- [x]\noutcome: r1=1\n"
        )
        assert test.threads[0][1].is_fence

    def test_comments_ignored(self):
        test = parse_litmus(MP_TEXT.replace("[x] <- 1", "[x] <- 1  # store to x"))
        assert test.name == "mp"

    def test_missing_header_rejected(self):
        with pytest.raises(LitmusError):
            parse_litmus("core 0:\n  [x] <- 1\noutcome: r1=0")

    def test_missing_outcome_rejected(self):
        with pytest.raises(LitmusError):
            parse_litmus("litmus t\ncore 0:\n  [x] <- 1\n")

    def test_instruction_outside_core_rejected(self):
        with pytest.raises(LitmusError) as err:
            parse_litmus("litmus t\n[x] <- 1\noutcome: r1=0")
        assert "line 2" in str(err.value)

    def test_garbage_instruction_rejected(self):
        with pytest.raises(LitmusError):
            parse_litmus("litmus t\ncore 0:\n  add r1, r2\noutcome: r1=0")

    def test_parse_suite_splits_on_dashes(self):
        both = parse_suite(MP_TEXT + "\n---\n" + MP_TEXT.replace("litmus mp", "litmus mp2"))
        assert [t.name for t in both] == ["mp", "mp2"]
