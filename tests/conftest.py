"""Shared test fixtures.

Every test runs with ``REPRO_CACHE_DIR`` pointed at its own temporary
directory, so CLI invocations (which cache by default) never read or
write the developer's real ``~/.cache/rtlcheck-repro`` — tests stay
hermetic and order-independent, and a test that *wants* a warm cache
warms its own directory explicitly.
"""

import pytest

from repro.cache import CACHE_DIR_ENV


@pytest.fixture(autouse=True)
def _hermetic_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "repro-cache"))
