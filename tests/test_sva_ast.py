"""Tests for the SVA AST: emission and single-cycle evaluation."""

import pytest

from repro.errors import SvaError
from repro.sva import (
    BConst,
    BNot,
    Directive,
    PConst,
    PImpl,
    PSeq,
    SBool,
    SCat,
    SRepeat,
    Sig,
    SigEq,
    band,
    bor,
    pand,
    por,
    scat,
)


class TestBoolExprs:
    def test_sigeq_emits_verilog_literal(self):
        expr = SigEq("core[1].PC_WB", 24)
        assert expr.emit() == "core[1].PC_WB == 32'd24"

    def test_sigeq_evaluate(self):
        expr = SigEq("a", 3)
        assert expr.evaluate({"a": 3})
        assert not expr.evaluate({"a": 4})
        assert not expr.evaluate({})  # missing signals read as 0

    def test_not_emission_matches_paper_style(self):
        expr = BNot(Sig("core[1].stall_WB"))
        assert expr.emit() == "~(core[1].stall_WB)"

    def test_band_emission_and_eval(self):
        expr = band(SigEq("a", 1), BNot(Sig("b")))
        assert "&&" in expr.emit()
        assert expr.evaluate({"a": 1, "b": 0})
        assert not expr.evaluate({"a": 1, "b": 1})

    def test_band_simplifications(self):
        assert band() == BConst(True)
        assert band(BConst(True), Sig("x")) == Sig("x")
        assert band(BConst(False), Sig("x")) == BConst(False)

    def test_bor_simplifications(self):
        assert bor() == BConst(False)
        assert bor(BConst(False), Sig("x")) == Sig("x")
        assert bor(BConst(True), Sig("x")) == BConst(True)

    def test_nested_parenthesization(self):
        expr = bor(band(Sig("a"), Sig("b")), Sig("c"))
        assert expr.emit() == "(a && b) || c"


class TestSequences:
    def test_sbool_emit(self):
        assert SBool(Sig("x")).emit() == "(x)"

    def test_repeat_unbounded_emit(self):
        seq = SRepeat(Sig("x"), 0, None)
        assert seq.emit() == "(x) [*0:$]"

    def test_repeat_bounded_emit(self):
        assert SRepeat(Sig("x"), 1, 3).emit() == "(x) [*1:3]"

    def test_repeat_bad_bounds(self):
        with pytest.raises(SvaError):
            SRepeat(Sig("x"), 2, 1)
        with pytest.raises(SvaError):
            SRepeat(Sig("x"), -1, None)

    def test_concat_emit(self):
        seq = scat(SBool(Sig("a")), SBool(Sig("b")))
        assert seq.emit() == "(a) ##1 (b)"

    def test_concat_delay_validation(self):
        with pytest.raises(SvaError):
            SCat(SBool(Sig("a")), SBool(Sig("b")), delay=0)

    def test_scat_requires_parts(self):
        with pytest.raises(SvaError):
            scat()

    def test_paper_edge_shape_emits(self):
        """The §4.3 edge mapping shape renders as legal-looking SVA."""
        delay = BNot(bor(Sig("src_ev"), Sig("dst_ev")))
        seq = scat(
            SRepeat(delay, 0, None),
            SBool(Sig("src_ev")),
            SRepeat(delay, 0, None),
            SBool(Sig("dst_ev")),
        )
        text = seq.emit()
        assert text.count("[*0:$]") == 2
        assert text.count("##1") == 3


class TestProperties:
    def test_impl_emit(self):
        prop = PImpl(Sig("first"), PSeq(SBool(Sig("x"))))
        assert prop.emit() == "first |-> ((x))"

    def test_pand_por_emit(self):
        prop = pand(PSeq(SBool(Sig("a"))), por(PSeq(SBool(Sig("b"))), PConst(False)))
        text = prop.emit()
        assert " and " in text

    def test_pand_simplifications(self):
        assert pand() == PConst(True)
        assert pand(PConst(True), PSeq(SBool(Sig("a")))) == PSeq(SBool(Sig("a")))
        assert pand(PConst(False), PSeq(SBool(Sig("a")))) == PConst(False)

    def test_por_simplifications(self):
        assert por() == PConst(False)
        assert por(PConst(True), PSeq(SBool(Sig("a")))) == PConst(True)


class TestDirectives:
    def test_assert_emission(self):
        d = Directive(
            kind="assert",
            name="mp_check",
            prop=PImpl(Sig("first"), PSeq(SBool(SigEq("x", 1)))),
        )
        text = d.emit()
        assert text.startswith("mp_check: assert property (@(posedge clk) first |-> ")
        assert text.endswith(");")

    def test_assume_emission(self):
        d = Directive(kind="assume", name="", prop=PConst(True))
        assert d.emit() == "assume property (@(posedge clk) (1));"

    def test_bad_kind_rejected(self):
        with pytest.raises(SvaError):
            Directive(kind="check", name="x", prop=PConst(True))
