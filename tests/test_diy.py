"""Tests for the diy-style cycle-based litmus generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LitmusError
from repro.litmus.diy import (
    CYCLE_EDGES,
    cycle_signature,
    enumerate_cycles,
    generate_from_cycle,
    validate_cycle,
)
from repro.memodel import sc_forbidden


class TestEdgeAlphabet:
    def test_alphabet_complete(self):
        assert set(CYCLE_EDGES) == {
            "Rfe", "Rfi", "Wse", "Wsi", "Fre", "Fri",
            "PodWW", "PodWR", "PodRW", "PodRR",
        }

    def test_external_edges(self):
        assert CYCLE_EDGES["Rfe"].external
        assert not CYCLE_EDGES["Rfi"].external
        assert not CYCLE_EDGES["PodWR"].external

    def test_kinds(self):
        assert CYCLE_EDGES["Fre"].kind == "fr"
        assert CYCLE_EDGES["Wsi"].kind == "ws"
        assert CYCLE_EDGES["PodRR"].kind == "po"


class TestValidation:
    def test_sb_cycle_is_valid(self):
        assert validate_cycle(("PodWR", "Fre", "PodWR", "Fre")) is None

    def test_mp_cycle_is_valid(self):
        assert validate_cycle(("PodWW", "Rfe", "PodRR", "Fre")) is None

    def test_type_mismatch_rejected(self):
        reason = validate_cycle(("PodWW", "Fre", "PodWW", "Fre"))
        assert reason is not None and "type mismatch" in reason

    def test_internal_wrap_rejected(self):
        reason = validate_cycle(("Fre", "PodWR"))
        assert reason is not None

    def test_single_external_rejected(self):
        reason = validate_cycle(("PodWR", "Fri", "Wse"))
        # Either type-chaining or the external-count rule rejects it;
        # what matters is rejection.
        assert reason is not None

    def test_unconstrained_load_rejected(self):
        # A load with pod on both sides has no value constraint.
        reason = validate_cycle(("PodWR", "PodRW", "Wse", "Rfe", "PodRR", "Fre"))
        assert reason is None or "unconstrained" in reason or reason

    def test_unknown_edge_raises(self):
        with pytest.raises(LitmusError):
            validate_cycle(("PodWR", "Nope"))

    def test_short_cycle_rejected(self):
        assert validate_cycle(("Rfe",)) is not None

    def test_contradictory_coherence_rejected(self):
        # w0 -rf-> r1 -fr-> w2 requires w0 <co w2, but Wse w2 -> w0
        # says the opposite.
        reason = validate_cycle(("Rfi", "Fre", "Wse"))
        assert reason is not None and "coherence" in reason


class TestGeneration:
    def test_sb_shape(self):
        test = generate_from_cycle("sb-like", ("PodWR", "Fre", "PodWR", "Fre"))
        assert test.num_threads == 2
        assert [op.kind for op in test.threads[0]] == ["W", "R"]
        assert [op.kind for op in test.threads[1]] == ["W", "R"]
        assert test.outcome.register_map == {"r1": 0, "r2": 0}
        assert test.threads[0][0].addr != test.threads[0][1].addr

    def test_mp_shape(self):
        test = generate_from_cycle("mp-like", ("PodWW", "Rfe", "PodRR", "Fre"))
        assert test.num_threads == 2
        kinds = [[op.kind for op in thread] for thread in test.threads]
        assert kinds == [["W", "W"], ["R", "R"]]
        # One load observes a store (rf), the other reads stale 0 (fr).
        assert sorted(test.outcome.register_map.values()) == [0, 1]

    def test_ws_final_memory_pinned(self):
        # Two stores to one location: the final value witnesses ws.
        test = generate_from_cycle("2w", ("PodWW", "Wse", "PodWW", "Wse"))
        assert test.outcome.final_memory  # some location pinned

    def test_invalid_cycle_raises_with_reason(self):
        with pytest.raises(LitmusError) as err:
            generate_from_cycle("bad", ("PodWW", "Fre"))
        assert "bad" in str(err.value)

    def test_store_values_distinct_per_location(self):
        test = generate_from_cycle("co", ("PodWW", "Wse", "PodWW", "Wse"))
        by_loc = {}
        for thread in test.threads:
            for op in thread:
                if op.is_store:
                    by_loc.setdefault(op.addr, []).append(op.value)
        for values in by_loc.values():
            assert len(values) == len(set(values))


class TestEnumeration:
    def test_deterministic(self):
        a = enumerate_cycles(tuple(CYCLE_EDGES), 4, require=("PodWR",))
        b = enumerate_cycles(tuple(CYCLE_EDGES), 4, require=("PodWR",))
        assert a == b

    def test_all_enumerated_cycles_validate(self):
        for cycle in enumerate_cycles(tuple(CYCLE_EDGES), 4):
            assert validate_cycle(cycle) is None

    def test_require_filter(self):
        for cycle in enumerate_cycles(tuple(CYCLE_EDGES), 5, require=("Rfi",)):
            assert "Rfi" in cycle

    def test_forbid_filter(self):
        for cycle in enumerate_cycles(tuple(CYCLE_EDGES), 4, forbid=("Rfe",)):
            assert "Rfe" not in cycle

    def test_signatures_are_canonical(self):
        for cycle in enumerate_cycles(tuple(CYCLE_EDGES), 4):
            assert cycle_signature(cycle) == cycle

    def test_unknown_edge_in_filters(self):
        with pytest.raises(LitmusError):
            enumerate_cycles(("PodWR",), 3, require=("Bogus",))


class TestSignature:
    def test_rotation_invariance(self):
        cycle = ("PodWR", "Fre", "PodWW", "Wse")
        rotated = ("PodWW", "Wse", "PodWR", "Fre")
        assert cycle_signature(cycle) == cycle_signature(rotated)


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(enumerate_cycles(tuple(CYCLE_EDGES), 4)))
def test_every_valid_4cycle_generates_an_sc_forbidden_test(cycle):
    """A critical cycle's witness outcome must be forbidden under SC —
    the core guarantee of the diy construction, checked against the
    independent operational oracle."""
    test = generate_from_cycle("prop", cycle)
    assert sc_forbidden(test)
