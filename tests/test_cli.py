"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verify_defaults(self):
        args = build_parser().parse_args(["verify", "mp"])
        assert args.memory == "fixed"
        assert args.config == "Full_Proof"
        assert not args.no_cover_shortcut

    def test_unknown_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "mp", "--memory", "flaky"])

    def test_suite_defaults(self):
        args = build_parser().parse_args(["suite"])
        assert args.jobs == 1
        assert args.explorer == "graph"
        assert args.only is None

    def test_suite_jobs_and_subset(self):
        args = build_parser().parse_args(
            ["suite", "--jobs", "4", "--only", "mp", "sb"]
        )
        assert args.jobs == 4
        assert args.only == ["mp", "sb"]

    def test_verify_explorer_choice(self):
        args = build_parser().parse_args(["verify", "mp", "--explorer", "per-property"])
        assert args.explorer == "per-property"

    def test_observability_defaults_off(self):
        for command in (["verify", "mp"], ["suite"]):
            args = build_parser().parse_args(command)
            assert args.report is None
            assert args.trace is None
            assert not args.metrics

    def test_observability_flags(self):
        args = build_parser().parse_args(
            ["suite", "--report", "r.json", "--trace", "t.json", "--metrics"]
        )
        assert args.report == "r.json"
        assert args.trace == "t.json"
        assert args.metrics


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mp" in out and "forbidden" in out
        assert len(out.strip().splitlines()) == 57  # header + 56 tests

    def test_show(self, capsys):
        assert main(["show", "mp"]) == 0
        out = capsys.readouterr().out
        assert "(i1) [x] <- 1" in out
        assert "core 0:" in out

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "sb"]) == 0
        out = capsys.readouterr().out
        assert "assert property" in out

    def test_generate_to_file(self, tmp_path, capsys):
        target = tmp_path / "mp.sv"
        assert main(["generate", "mp", "-o", str(target)]) == 0
        assert "assume property" in target.read_text()

    def test_verify_fixed_exits_zero(self, capsys):
        assert main(["verify", "mp"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_verify_buggy_exits_nonzero(self, capsys):
        assert main(["verify", "mp", "--memory", "buggy"]) == 1
        assert "COUNTEREXAMPLE" in capsys.readouterr().out

    def test_verify_hybrid_config(self, capsys):
        assert main(["verify", "lb", "--config", "Hybrid"]) == 0

    def test_microarch(self, capsys):
        assert main(["microarch", "sb"]) == 0
        assert "unobservable" in capsys.readouterr().out

    def test_suite_subset(self, capsys):
        assert main(["suite", "--only", "mp", "sb"]) == 0
        out = capsys.readouterr().out
        assert "mp [fixed]: verified" in out
        assert "sb [fixed]: verified" in out

    def test_suite_subset_parallel(self, capsys):
        assert main(["suite", "--only", "mp", "lb", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "mp [fixed]: verified" in out
        assert "lb [fixed]: verified" in out

    def test_suite_per_property_explorer(self, capsys):
        assert main(["suite", "--only", "mp", "--explorer", "per-property"]) == 0
        assert "mp [fixed]: verified" in capsys.readouterr().out

    def test_suite_progress_lines(self, capsys):
        assert main(["suite", "--only", "mp", "lb"]) == 0
        out = capsys.readouterr().out
        assert "[1/2]" in out and "[2/2]" in out


class TestObservability:
    def _load_valid_report(self, path):
        import json

        from repro.obs import validate_report

        report = json.loads(path.read_text())
        assert validate_report(report) == []
        return report

    def test_suite_report_trace_metrics(self, tmp_path, capsys):
        report_path = tmp_path / "r.json"
        trace_path = tmp_path / "t.json"
        assert (
            main(
                [
                    "suite",
                    "--only",
                    "mp",
                    "sb",
                    "--jobs",
                    "2",
                    "--report",
                    str(report_path),
                    "--trace",
                    str(trace_path),
                    "--metrics",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "reach.cache_hits" in out
        report = self._load_valid_report(report_path)
        assert report["jobs"] == 2
        assert [t["test"] for t in report["tests"]] == ["mp", "sb"]
        import json

        trace = json.loads(trace_path.read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_suite_failure_still_writes_report(self, tmp_path, capsys):
        """Satellite: a bug-finding run exits 1 but the report is
        written first and carries the counterexamples."""
        report_path = tmp_path / "r.json"
        assert (
            main(
                [
                    "suite",
                    "--only",
                    "mp",
                    "--memory",
                    "buggy",
                    "--report",
                    str(report_path),
                ]
            )
            == 1
        )
        assert "COUNTEREXAMPLE" in capsys.readouterr().out
        report = self._load_valid_report(report_path)
        assert report["memory_variant"] == "buggy"
        assert report["aggregates"]["bugs_found"] == 1
        assert report["tests"][0]["counters"]

    def test_verify_report(self, tmp_path, capsys):
        report_path = tmp_path / "r.json"
        assert main(["verify", "lb", "--report", str(report_path)]) == 0
        report = self._load_valid_report(report_path)
        assert report["aggregates"]["num_tests"] == 1


class TestFuzzCommand:
    def test_fuzz_parser_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.seed == 0
        assert args.budget == 100
        assert args.memory == "fixed"
        assert args.jobs == 1
        assert not args.no_shrink
        assert args.oracles == [
            "operational", "axiomatic", "rtl", "verifier", "trace",
        ]
        assert not args.long_programs
        assert args.trace_samples is None

    def test_fuzz_parser_flags(self):
        args = build_parser().parse_args(
            [
                "fuzz", "--seed", "5", "--budget", "20", "--jobs", "2",
                "--oracles", "operational", "rtl", "--memory", "buggy",
                "--no-shrink", "--reproducers", "out",
            ]
        )
        assert (args.seed, args.budget, args.jobs) == (5, 20, 2)
        assert args.oracles == ["operational", "rtl"]
        assert args.no_shrink and args.reproducers == "out"

    def test_fuzz_rejects_unknown_oracle(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--oracles", "psychic"])

    def test_fuzz_fixed_clean_exit_zero(self, tmp_path, capsys):
        report_path = tmp_path / "fuzz.json"
        assert (
            main(
                [
                    "fuzz", "--seed", "11", "--budget", "3",
                    "--oracles", "operational", "axiomatic", "rtl",
                    "--report", str(report_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "0 discrepancies" in out
        import json

        from repro.difftest import validate_fuzz_report

        report = json.loads(report_path.read_text())
        assert validate_fuzz_report(report) == []
        assert report["seed"] == 11 and report["tests_run"] == 3

    def test_fuzz_buggy_exits_nonzero_with_reproducers(self, tmp_path, capsys):
        reproducer_dir = tmp_path / "repros"
        assert (
            main(
                [
                    "fuzz", "--seed", "11", "--budget", "2",
                    "--oracles", "operational", "axiomatic", "rtl",
                    "--memory", "buggy", "--shrink-limit", "1",
                    "--reproducers", str(reproducer_dir),
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "DISCREPANCY" in out and "minimized" in out
        import json

        artifacts = sorted(reproducer_dir.glob("fuzz-11-*.json"))
        assert artifacts
        document = json.loads(artifacts[0].read_text())
        assert document["kind"] == "rtlcheck-difftest-reproducer"
        assert document["minimized"]["threads"]


class TestCacheCLI:
    """The cache flags and the ``cache {stats,gc,clear}`` subcommand.

    The autouse conftest fixture points ``$REPRO_CACHE_DIR`` at a
    per-test temporary directory, so these runs are hermetic.
    """

    def test_cache_flags_default(self):
        for command in (["verify", "mp"], ["suite"], ["fuzz"]):
            args = build_parser().parse_args(command)
            assert args.cache_dir is None
            assert not args.no_cache

    def test_cache_subcommand_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_gc_requires_max_bytes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "gc"])

    def test_verify_warm_run_reports_hit(self, capsys):
        assert main(["verify", "mp"]) == 0
        assert "cache: verdict 0/1 hits" in capsys.readouterr().out
        assert main(["verify", "mp"]) == 0
        assert "cache: verdict 1/1 hits" in capsys.readouterr().out

    def test_no_cache_disables_summary_and_store(self, capsys):
        assert main(["verify", "mp", "--no-cache"]) == 0
        assert "cache:" not in capsys.readouterr().out
        # Nothing was stored: a later cached run still misses.
        assert main(["verify", "mp"]) == 0
        assert "cache: verdict 0/1 hits" in capsys.readouterr().out

    def test_stats_gc_clear_roundtrip(self, capsys):
        assert main(["verify", "mp"]) == 0
        capsys.readouterr()

        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "cache directory:" in out
        assert "verdict" in out and "total" in out
        assert "checkpoint manifests:" in out

        assert main(["cache", "gc", "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "evicted" in out and "0 entries (0 bytes) remain" in out

        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out

        # After clear, the next run is cold again.
        assert main(["verify", "mp"]) == 0
        assert "cache: verdict 0/1 hits" in capsys.readouterr().out

    def test_explicit_cache_dir_flag(self, tmp_path, capsys):
        cache_dir = tmp_path / "explicit"
        assert main(["verify", "mp", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert (cache_dir / "verdicts").is_dir()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert str(cache_dir) in capsys.readouterr().out

    def test_suite_warm_run_all_hits(self, capsys):
        assert main(["suite", "--only", "mp", "sb"]) == 0
        assert "cache: verdict 0/2 hits" in capsys.readouterr().out
        assert main(["suite", "--only", "mp", "sb"]) == 0
        assert "cache: verdict 2/2 hits" in capsys.readouterr().out


class TestCoverageCLI:
    """The ``--coverage`` surface and the ``coverage`` subcommand.

    The autouse conftest fixture gives every test a private
    ``$REPRO_CACHE_DIR``, so the default database path lands in a
    temporary directory.
    """

    def _metrics_tail(self, capsys, jobs):
        assert (
            main(
                [
                    "suite",
                    "--only",
                    "mp",
                    "sb",
                    "lb",
                    "--metrics",
                    "--coverage",
                    "--no-cache",
                    "--jobs",
                    str(jobs),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # Everything from the counters header on is the deterministic
        # machine-facing tail: counters, gauges, closure summary.
        return out[out.index("counters:") :]

    def test_metrics_output_byte_stable_across_jobs(self, capsys):
        serial = self._metrics_tail(capsys, 1)
        parallel = self._metrics_tail(capsys, 2)
        assert serial == parallel
        assert "coverage.state.keys" in serial
        assert "\ngauges:\n" in serial
        assert "coverage closure:" in serial

    def test_verify_coverage_prints_closure(self, capsys):
        assert main(["verify", "mp", "--coverage", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "coverage closure:" in out
        assert "transition" in out

    def test_suite_coverage_report_file_and_db(self, tmp_path, capsys):
        import json

        from repro.obs import validate_coverage_report
        from repro.obs.coverage import default_coverage_db_path

        closure_path = tmp_path / "closure.json"
        assert (
            main(
                [
                    "suite",
                    "--only",
                    "mp",
                    "sb",
                    "--coverage-report",
                    str(closure_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "coverage database updated:" in out
        closure = json.loads(closure_path.read_text())
        assert validate_coverage_report(closure) == []
        assert closure["tests"] == 2
        # --coverage-report implied --coverage; the run report's suite
        # database landed at the cache-derived default path.
        import os

        assert os.path.exists(default_coverage_db_path())

    def test_report_embeds_closure(self, tmp_path):
        import json

        report_path = tmp_path / "r.json"
        assert (
            main(
                [
                    "suite",
                    "--only",
                    "mp",
                    "--coverage",
                    "--no-cache",
                    "--report",
                    str(report_path),
                ]
            )
            == 0
        )
        report = json.loads(report_path.read_text())
        assert report["coverage"]["kind"] == "rtlcheck-coverage-report"

    def test_coverage_report_diff_merge_roundtrip(self, tmp_path, capsys):
        closure_a = tmp_path / "a.json"
        closure_b = tmp_path / "b.json"
        assert (
            main(
                [
                    "fuzz",
                    "--seed",
                    "5",
                    "--budget",
                    "6",
                    "--oracles",
                    "operational",
                    "axiomatic",
                    "--no-shrink",
                    "--coverage-report",
                    str(closure_a),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "fuzz",
                    "--seed",
                    "6",
                    "--budget",
                    "6",
                    "--oracles",
                    "operational",
                    "axiomatic",
                    "--no-shrink",
                    "--coverage-report",
                    str(closure_b),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "(+" in out and "new)" in out  # novelty progress column
        assert main(["coverage", "report"]) == 0
        out = capsys.readouterr().out
        assert "coverage database:" in out
        assert "campaigns merged: 2" in out
        assert main(["coverage", "diff", str(closure_a), str(closure_b)]) == 0
        assert "new in other" in capsys.readouterr().out
        merged_db = tmp_path / "merged.json"
        assert (
            main(
                [
                    "coverage",
                    "merge",
                    str(closure_a),
                    str(closure_b),
                    "--into",
                    str(merged_db),
                ]
            )
            == 0
        )
        assert "merged 2 document(s)" in capsys.readouterr().out
        assert main(["coverage", "report", "--db", str(merged_db)]) == 0
        assert "shape" in capsys.readouterr().out

    def test_coverage_diff_rejects_non_coverage_document(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        with pytest.raises(SystemExit):
            main(["coverage", "diff", str(bogus), str(bogus)])
        assert "not a coverage database" in capsys.readouterr().err

    def test_guided_fuzz_cli(self, capsys):
        assert (
            main(
                [
                    "fuzz",
                    "--seed",
                    "5",
                    "--budget",
                    "8",
                    "--oracles",
                    "operational",
                    "axiomatic",
                    "--no-shrink",
                    "--guided",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "scheduler: coverage-guided" in out
