"""Tests for atomic_mach (paper Figure 4): axiomatic vs temporal."""

import pytest

from repro.atomic import verify_axiomatic, verify_temporal
from repro.litmus import get_test, paper_suite
from repro.memodel import sc_allowed


class TestAxiomaticVerifier:
    def test_mp_unobservable(self):
        verdict = verify_axiomatic(get_test("mp"))
        assert not verdict.observable
        assert verdict.witnesses == 0
        # All candidate executions were struck out one way or the other.
        assert (
            verdict.excluded_by_outcome + verdict.excluded_by_axiom
            == verdict.executions_total
        )

    def test_mp_candidate_execution_count(self):
        """mp has 2 loads x 2 rf choices each = 4 candidate executions
        (no coherence choice: one store per location) — the four
        executions of Figure 4a."""
        verdict = verify_axiomatic(get_test("mp"))
        assert verdict.executions_total == 4

    def test_allowed_outcome_has_witness(self):
        verdict = verify_axiomatic(get_test("iwp24"))
        assert verdict.observable
        assert verdict.witnesses >= 1


class TestTemporalVerifier:
    def test_mp_unobservable(self):
        verdict = verify_temporal(get_test("mp"))
        assert not verdict.observable

    def test_assumption_prunes_only_when_event_occurs(self):
        """§3.1's key point: pruning happens at the offending load's own
        step, so partial executions that can no longer satisfy the
        outcome are still explored up to that point."""
        verdict = verify_temporal(get_test("mp"))
        assert verdict.partial_executions_pruned > 0
        assert verdict.steps_explored > verdict.partial_executions_pruned

    def test_allowed_outcome_has_witness(self):
        verdict = verify_temporal(get_test("iwp24"))
        assert verdict.observable
        assert verdict.full_executions >= 1


class TestAgreement:
    @pytest.mark.parametrize(
        "name", ["mp", "sb", "lb", "iriw", "co-mp", "iwp24", "n5", "wrc", "ssl"]
    )
    def test_both_verifiers_agree_with_oracle(self, name):
        test = get_test(name)
        expected = sc_allowed(test)
        assert verify_axiomatic(test).observable == expected
        assert verify_temporal(test).observable == expected

    @pytest.mark.slow
    def test_agreement_on_full_suite(self):
        for test in paper_suite():
            expected = sc_allowed(test)
            assert verify_axiomatic(test).observable == expected, test.name
            assert verify_temporal(test).observable == expected, test.name
