"""End-to-end tests for the verification job server (`repro.serve`).

These drive a real socket: a :class:`ThreadedServer` hosts the asyncio
:class:`JobServer` on its own event-loop thread, and the stdlib
:class:`ServeClient` talks to it over HTTP exactly as ``python -m
repro submit`` does.  The contracts under test are the ISSUE's
acceptance criteria:

* a job's report is byte-identical to an equivalent local
  (CLI-machinery) run sharing the same cache directory;
* identical concurrent submissions coalesce into one computation;
* a warm resubmission is a pure cache hit — a fresh server serving it
  never spawns a single worker process;
* a killed server restarted on the same cache directory resumes its
  pending jobs and converges to the same bytes;
* worker crashes are contained per unit with bounded retry, and an
  exhausted retry fails the job (resubmittable), never the server.
"""

import json
import threading

import pytest

from repro import CONFIGS, RTLCheck, get_test, obs
from repro.cache import VerificationCache
from repro.errors import ReproError
from repro.serve import (
    ServeClient,
    ServeError,
    ThreadedServer,
    job_key,
    make_event,
    validate_event,
    validate_spec,
)
from repro.serve import pool as serve_pool

SUITE_TESTS = ["mp", "sb"]
SUITE_SPEC = {"kind": "suite", "params": {"tests": SUITE_TESTS}}
FUZZ_SPEC = {"kind": "fuzz", "params": {"seed": 3, "budget": 8}}


def canonical(document):
    return json.dumps(document, sort_keys=True)


def scrub_volatile(document):
    """Drop run-relative keys from a difftest report for cross-run
    comparison: wall-clock timings, cache hit/miss statistics (a warm
    run hits where a cold run missed), and the checkpoint ``resumed``
    count.  Everything else — verdicts, tallies, discrepancies — is
    byte-stable."""
    if isinstance(document, dict):
        return {
            key: scrub_volatile(value)
            for key, value in document.items()
            if not key.endswith("seconds")
            and key not in ("cache", "resumed")
        }
    if isinstance(document, list):
        return [scrub_volatile(item) for item in document]
    return document


def cli_suite_report(cache_dir, test_names=SUITE_TESTS, observe=False):
    """The report the CLI machinery produces for the same request on
    the same cache directory — ``verify_suite`` plus ``suite_report``,
    exactly what ``python -m repro suite`` assembles (``observe=True``
    models a local run that passed ``--report``)."""
    rtlcheck = RTLCheck(
        config=CONFIGS["Full_Proof"],
        use_reach_graph=True,
        observe=observe,
        cache=VerificationCache(str(cache_dir)),
        state_backend="array",
    )
    results = rtlcheck.verify_suite([get_test(name) for name in test_names])
    return obs.suite_report(
        results, config_name="Full_Proof", memory_variant="fixed", jobs=None
    )


# ---------------------------------------------------------------------------
# Pure-function layer: spec validation, job identity, event shape.
# ---------------------------------------------------------------------------


class TestValidateSpec:
    def test_suite_defaults_are_canonicalized(self):
        spec = validate_spec({"kind": "suite", "params": {"tests": ["mp"]}})
        assert spec["kind"] == "suite"
        assert spec["params"]["tests"] == ["mp"]
        assert spec["params"]["memory_variant"] == "fixed"
        assert spec["params"]["config"] == "Full_Proof"
        assert spec["params"]["state_backend"] == "array"
        assert spec["params"]["observe"] is False

    def test_suite_defaults_to_full_paper_suite(self):
        spec = validate_spec({"kind": "suite"})
        assert len(spec["params"]["tests"]) >= 50

    def test_verify_canonicalizes_to_one_test_suite(self):
        verify = validate_spec({"kind": "verify", "params": {"test": "mp"}})
        suite = validate_spec({"kind": "suite", "params": {"tests": ["mp"]}})
        assert verify == suite
        assert job_key(verify) == job_key(suite)

    def test_observe_is_part_of_the_job_key(self):
        # An observed job does more work (spans/counters attach to every
        # verdict), so it must not be answered from an unobserved job's
        # stored record — `repro submit suite --observe` sets this flag.
        plain = validate_spec({"kind": "suite", "params": {"tests": ["mp"]}})
        observed = validate_spec(
            {"kind": "suite", "params": {"tests": ["mp"], "observe": True}}
        )
        assert job_key(plain) != job_key(observed)

    def test_fuzz_jobs_param_does_not_split_the_key(self):
        one = validate_spec({"kind": "fuzz", "params": {"seed": 1, "jobs": 1}})
        four = validate_spec({"kind": "fuzz", "params": {"seed": 1, "jobs": 4}})
        assert job_key(one) == job_key(four)
        other_seed = validate_spec({"kind": "fuzz", "params": {"seed": 2}})
        assert job_key(one) != job_key(other_seed)

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {"kind": "nope"},
            {"kind": "suite", "params": {"tests": []}},
            {"kind": "suite", "params": {"tests": ["mp", "mp"]}},
            {"kind": "suite", "params": {"tests": ["no-such-test"]}},
            {"kind": "suite", "params": {"tests": ["mp"], "bogus": 1}},
            {"kind": "suite", "params": {"tests": ["mp"]}, "extra": 1},
            {"kind": "suite", "params": {"tests": ["mp"], "config": "nope"}},
            {"kind": "verify", "params": {}},
            {"kind": "fuzz", "params": {"budget": -1}},
            {"kind": "fuzz", "params": {"budget": 10**9}},
            {"kind": "fuzz", "params": {"oracles": ["astrology"]}},
            {"kind": "fuzz", "params": {"jobs": 0}},
            {"kind": "fuzz", "params": {"long_programs": True, "oracles": ["operational"]}},
        ],
    )
    def test_malformed_specs_are_rejected(self, payload):
        with pytest.raises(Exception) as excinfo:
            validate_spec(payload)
        assert isinstance(excinfo.value, ReproError) or isinstance(
            excinfo.value, Exception
        )

    def test_suite_key_tracks_verification_inputs(self):
        base = validate_spec({"kind": "suite", "params": {"tests": ["mp"]}})
        buggy = validate_spec(
            {"kind": "suite", "params": {"tests": ["mp"], "memory_variant": "buggy"}}
        )
        kernel = validate_spec(
            {"kind": "suite", "params": {"tests": ["mp"], "state_backend": "kernel"}}
        )
        keys = {job_key(base), job_key(buggy), job_key(kernel)}
        assert len(keys) == 3


class TestEvents:
    def test_make_event_validates(self):
        event = make_event("k" * 64, 0, "started", job_kind="suite")
        assert validate_event(event) == []

    def test_payload_fields_cannot_shadow_the_envelope(self):
        # Regression: a ``kind=`` payload once clobbered the event kind.
        with pytest.raises(ReproError, match="shadow"):
            make_event("k", 0, "started", kind="suite")

    def test_validate_event_rejects_bad_shapes(self):
        assert validate_event("nope")
        assert validate_event({})
        good = make_event("k", 1, "unit")
        assert validate_event({**good, "event": "exploded"})
        assert validate_event({**good, "seq": -1})
        assert validate_event({**good, "schema_version": 999})
        assert validate_event({**good, "kind": "other"})


# ---------------------------------------------------------------------------
# One shared server for the happy-path lifecycle tests (spawn-started
# workers are expensive; these tests share the pool and the cache).
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    return tmp_path_factory.mktemp("serve-cache")


@pytest.fixture(scope="module")
def server(shared_cache):
    with ThreadedServer(cache_dir=str(shared_cache), jobs=2) as ts:
        yield ts


@pytest.fixture(scope="module")
def client(server):
    return ServeClient("127.0.0.1", server.port, timeout=300)


class TestJobLifecycle:
    def test_healthz(self, client, shared_cache):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["cache_dir"] == str(shared_cache)

    def test_suite_job_end_to_end(self, client):
        seen = []
        submission, report = client.run(SUITE_SPEC, on_event=seen.append)
        assert submission["source"] == "created"
        assert obs.validate_report(report) == []
        assert report["aggregates"]["num_tests"] == len(SUITE_TESTS)
        assert [t["test"] for t in report["tests"]] == SUITE_TESTS
        # The NDJSON stream: schema-valid events, one per unit, with
        # monotonically increasing seq and a terminal "done".
        assert [validate_event(e) for e in seen] == [[]] * len(seen)
        assert [e["seq"] for e in seen] == list(range(len(seen)))
        kinds = [e["event"] for e in seen]
        assert kinds[0] == "started" and kinds[-1] == "done"
        assert kinds.count("unit") == len(SUITE_TESTS)

    def test_warm_resubmission_is_a_cache_hit(self, client):
        first = client.run(SUITE_SPEC)[1]
        submission, report = client.run(SUITE_SPEC)
        assert submission["source"] == "cache"
        assert canonical(report) == canonical(first)

    def test_report_matches_cli_byte_for_byte(self, client, shared_cache):
        """The served verdicts ARE the CLI's verdicts: replaying the
        same request through ``verify_suite`` on the same cache
        directory reproduces the report byte-for-byte — including
        modeled timings, which the verdict cache replays verbatim."""
        server_report = client.run(SUITE_SPEC)[1]
        assert canonical(server_report) == canonical(
            cli_suite_report(shared_cache)
        )

    def test_observed_report_matches_observed_cli_run(
        self, client, shared_cache
    ):
        """An ``"observe": true`` job reproduces a local ``--report``
        run byte-for-byte: every served verdict carries the full
        span/counter snapshot the CLI would attach."""
        spec = {
            "kind": "suite",
            "params": {"tests": ["mp"], "observe": True},
        }
        report = client.run(spec)[1]
        (entry,) = [t for t in report["tests"] if t["test"] == "mp"]
        assert entry["counters"], "observed verdict carries no counters"
        assert canonical(report) == canonical(
            cli_suite_report(shared_cache, ["mp"], observe=True)
        )

    def test_concurrent_identical_submissions_coalesce(self, client):
        spec = {"kind": "suite", "params": {"tests": ["lb", "n1", "iwp24"]}}
        before = client.stats()["counters"]
        sources, errors = [], []

        def submit():
            try:
                sources.append(client.submit(spec)["source"])
            except Exception as exc:  # surfaces in the main thread
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # One submission creates the computation; the others attach to
        # it (either mid-flight or, if it already finished, as cache
        # hits) — never a second computation.
        assert sorted(sources)[:1] == ["created"] or "created" in sources
        assert sources.count("created") == 1
        after = client.stats()["counters"]
        assert after["submitted"] == before["submitted"] + 1
        assert (
            after["coalesced"] + after["cache_hits"]
            >= before["coalesced"] + before["cache_hits"] + 2
        )
        # Every submitter reads the same bytes.
        key = job_key(validate_spec(spec))
        client.wait(key, timeout=300)
        reports = [client.report(key) for _ in range(3)]
        assert len({canonical(r) for r in reports}) == 1

    def test_fuzz_job_end_to_end(self, client):
        from repro.difftest import validate_fuzz_report

        seen = []
        submission, report = client.run(FUZZ_SPEC, on_event=seen.append)
        assert submission["source"] == "created"
        assert validate_fuzz_report(report) == []
        assert report["tests_run"] == FUZZ_SPEC["params"]["budget"]
        assert [validate_event(e) for e in seen] == [[]] * len(seen)
        assert sum(1 for e in seen if e["event"] == "progress") > 0
        # Identical resubmission: pure cache hit, byte-identical.
        resubmission, again = client.run(FUZZ_SPEC)
        assert resubmission["source"] == "cache"
        assert canonical(again) == canonical(report)
        # Worker count is execution policy, not identity: the same
        # campaign at jobs=2 coalesces onto the stored record.
        parallel = dict(FUZZ_SPEC, params=dict(FUZZ_SPEC["params"], jobs=2))
        assert client.run(parallel)[0]["source"] == "cache"

    def test_fuzz_report_matches_cli_modulo_wall_clock(
        self, client, shared_cache
    ):
        from repro.difftest import ORACLE_NAMES, FuzzConfig, run_fuzz

        server_report = client.run(FUZZ_SPEC)[1]
        config = FuzzConfig(
            seed=FUZZ_SPEC["params"]["seed"],
            budget=FUZZ_SPEC["params"]["budget"],
            oracles=tuple(ORACLE_NAMES),
            cache_dir=str(shared_cache),
        )
        cli_report = run_fuzz(config).report()
        assert canonical(scrub_volatile(server_report)) == canonical(
            scrub_volatile(cli_report)
        )

    def test_status_and_listing(self, client):
        key = client.submit(SUITE_SPEC)["job"]
        summary = client.status(key)
        assert summary["job"] == key
        assert summary["state"] == "done"
        assert summary["kind"] == "suite"
        assert any(j["job"] == key for j in client.jobs()["jobs"])

    def test_event_replay_of_finished_job_terminates(self, client):
        key = client.submit(SUITE_SPEC)["job"]
        events = list(client.events(key))
        assert events, "finished job must replay its event log"
        assert events[-1]["event"] in ("done", "failed")

    def test_malformed_submission_is_a_client_error(self, client):
        with pytest.raises(ServeError, match="400"):
            client.submit({"kind": "suite", "params": {"tests": ["zzz-none"]}})
        with pytest.raises(ServeError, match="404"):
            client.status("not-a-job-key")

    def test_report_of_unknown_job_is_404(self, client):
        with pytest.raises(ServeError, match="404"):
            client.report("0" * 64)


# ---------------------------------------------------------------------------
# Warm-path contract: a fresh server on a warm cache never spawns a
# worker process.
# ---------------------------------------------------------------------------


def test_warm_job_on_fresh_server_spawns_no_workers(tmp_path):
    cache_dir = str(tmp_path / "cache")
    with ThreadedServer(cache_dir=cache_dir, jobs=2) as cold:
        cold_client = ServeClient("127.0.0.1", cold.port, timeout=300)
        cold_report = cold_client.run(SUITE_SPEC)[1]
        assert cold_client.stats()["pool"]["pools_spawned"] == 1
    with ThreadedServer(cache_dir=cache_dir, jobs=2) as warm:
        warm_client = ServeClient("127.0.0.1", warm.port, timeout=300)
        submission, warm_report = warm_client.run(SUITE_SPEC)
        assert submission["source"] == "cache"
        assert canonical(warm_report) == canonical(cold_report)
        pool = warm_client.stats()["pool"]
        assert pool["pools_spawned"] == 0
        assert pool["units_dispatched"] == 0


# ---------------------------------------------------------------------------
# Kill-and-restart resume.
# ---------------------------------------------------------------------------


def _wait_cache_quiesce(cache_dir, settle=2.0, timeout=60.0):
    """Wait until nothing writes to ``cache_dir`` for ``settle``
    seconds.  A hard server stop abandons in-flight pool workers
    (``shutdown(wait=False)`` models a kill); they may still finish
    their unit and write its verdict.  Those writes are valid cache
    entries, but a byte-identity test needs a stable disk state before
    the second server starts."""
    import os
    import time

    def snapshot():
        state = []
        for root, _dirs, files in os.walk(cache_dir):
            for name in files:
                path = os.path.join(root, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                state.append((path, stat.st_mtime_ns, stat.st_size))
        return sorted(state)

    deadline = time.monotonic() + timeout
    last = snapshot()
    stable_since = time.monotonic()
    while time.monotonic() < deadline:
        time.sleep(0.2)
        current = snapshot()
        if current != last:
            last = current
            stable_since = time.monotonic()
        elif time.monotonic() - stable_since >= settle:
            return
    raise AssertionError(f"cache dir {cache_dir} did not quiesce")


def test_killed_server_resumes_pending_jobs_byte_identically(tmp_path):
    cache_dir = str(tmp_path / "cache")
    spec = {"kind": "suite", "params": {"tests": ["mp", "sb", "lb"]}}
    first = ThreadedServer(cache_dir=cache_dir, jobs=2).start()
    try:
        submission = ServeClient("127.0.0.1", first.port, timeout=300).submit(
            spec
        )
        key = submission["job"]
        assert submission["source"] == "created"
    finally:
        # Hard stop mid-job: running tasks are cancelled, the pending
        # journal entry survives — this models a killed process.
        first.stop()
    _wait_cache_quiesce(cache_dir)
    with ThreadedServer(cache_dir=cache_dir, jobs=2) as second:
        client = ServeClient("127.0.0.1", second.port, timeout=300)
        assert client.stats()["counters"]["resumed_jobs"] == 1
        final = client.wait(key, timeout=300)
        assert final["state"] == "done"
        report = client.report(key)
        assert obs.validate_report(report) == []
        # Converges to the same bytes as a straight CLI replay over the
        # same cache — resume changed nothing observable.
        assert canonical(report) == canonical(
            cli_suite_report(cache_dir, ["mp", "sb", "lb"])
        )
        # ...and the journal entry is consumed: nothing left pending.
        assert second.server.store.pending() == []


# ---------------------------------------------------------------------------
# Crash containment and bounded retry.
# ---------------------------------------------------------------------------


def test_crashed_unit_is_retried_once_and_job_completes(tmp_path, monkeypatch):
    marker = tmp_path / "crash-once"
    marker.write_text("armed")
    monkeypatch.setenv(serve_pool.CRASH_ONCE_ENV, f"sb:{marker}")
    with ThreadedServer(cache_dir=str(tmp_path / "cache"), jobs=1) as ts:
        client = ServeClient("127.0.0.1", ts.port, timeout=300)
        submission, report = client.run(
            {"kind": "suite", "params": {"tests": ["sb"]}}
        )
        assert obs.validate_report(report) == []
        pool = client.stats()["pool"]
        assert pool["unit_retries"] == 1
        # A picklable exception is contained without breaking the pool
        # (``pools_broken`` counts hard worker deaths only).
        assert pool["pools_broken"] == 0
    assert not marker.exists(), "the injected crash must have fired"


def test_exhausted_retries_fail_the_job_not_the_server(tmp_path, monkeypatch):
    marker = tmp_path / "crash-once"
    marker.write_text("armed")
    monkeypatch.setenv(serve_pool.CRASH_ONCE_ENV, f"sb:{marker}")
    spec = {"kind": "suite", "params": {"tests": ["sb"]}}
    with ThreadedServer(cache_dir=str(tmp_path / "cache"), jobs=1, retries=0) as ts:
        client = ServeClient("127.0.0.1", ts.port, timeout=300)
        key = client.submit(spec)["job"]
        final = client.wait(key, timeout=300)
        assert final["state"] == "failed"
        assert "sb" in final["error"]
        with pytest.raises(ServeError, match="410"):
            client.report(key)
        # The server survives, and a failed job is resubmittable: the
        # crash marker is consumed, so the retry now succeeds.
        assert client.submit(spec)["source"] == "created"
        assert client.wait(key, timeout=300)["state"] == "done"
        assert obs.validate_report(client.report(key)) == []


def test_fuzz_crash_retries_recover_the_campaign(tmp_path, monkeypatch):
    from repro.difftest import FuzzConfig, run_fuzz
    from repro.difftest.runner import CRASH_ONCE_ENV
    from repro.difftest import FuzzGenerator

    victim = FuzzGenerator(11).suite(3)[1].name
    marker = tmp_path / "crash-once"
    marker.write_text("armed")
    monkeypatch.setenv(CRASH_ONCE_ENV, f"{victim}:{marker}")
    config = FuzzConfig(seed=11, budget=3, shrink=False, crash_retries=1)
    result = run_fuzz(config)
    assert not marker.exists(), "the injected crash must have fired"
    assert result.tests_run == 3
    assert not [e for e in result.oracle_errors if e.get("crashed")]
    assert result.skipped.get("worker_crashed", 0) == 0
