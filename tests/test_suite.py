"""Tests for the 56-test paper suite."""

import pytest

from repro.errors import LitmusError
from repro.litmus import (
    PAPER_TEST_NAMES,
    diy_cycle_of,
    get_test,
    paper_suite,
)
from repro.litmus.suite import MAX_CORES
from repro.memodel import sc_allowed


@pytest.fixture(scope="module")
def suite():
    return paper_suite()


class TestSuiteShape:
    def test_exactly_56_tests(self, suite):
        assert len(suite) == 56
        assert len(PAPER_TEST_NAMES) == 56

    def test_paper_name_order(self, suite):
        assert [t.name for t in suite] == PAPER_TEST_NAMES

    def test_family_counts(self):
        rfi = [n for n in PAPER_TEST_NAMES if n.startswith("rfi")]
        safe = [n for n in PAPER_TEST_NAMES if n.startswith("safe")]
        podwr = [n for n in PAPER_TEST_NAMES if n.startswith("podwr")]
        assert len(rfi) == 12
        assert len(safe) == 23
        assert len(podwr) == 2

    def test_all_tests_fit_on_four_cores(self, suite):
        for test in suite:
            assert 1 <= test.num_threads <= MAX_CORES

    def test_all_tests_compile(self, suite):
        from repro.litmus import compile_test

        for test in suite:
            compiled = compile_test(test)
            assert len(compiled.programs) == 4

    def test_names_unique(self, suite):
        names = [t.name for t in suite]
        assert len(names) == len(set(names))

    def test_get_test_roundtrip(self, suite):
        for test in suite:
            assert get_test(test.name) is test

    def test_get_test_unknown(self):
        with pytest.raises(LitmusError):
            get_test("nonexistent")


class TestGeneratedFamilies:
    def test_generated_tests_record_their_cycle(self, suite):
        for test in suite:
            cycle = diy_cycle_of(test.name)
            if test.name.startswith(("rfi", "safe", "podwr")):
                assert cycle is not None
            else:
                assert cycle is None

    def test_rfi_tests_contain_rfi_edge(self, suite):
        for test in suite:
            if test.name.startswith("rfi"):
                assert "Rfi" in diy_cycle_of(test.name)

    def test_safe_tests_avoid_tso_relaxations(self, suite):
        for test in suite:
            if test.name.startswith("safe"):
                cycle = diy_cycle_of(test.name)
                assert "Rfi" not in cycle
                assert "PodWR" not in cycle

    def test_podwr_tests_contain_podwr(self, suite):
        for test in suite:
            if test.name.startswith("podwr"):
                assert "PodWR" in diy_cycle_of(test.name)

    def test_generated_outcomes_are_sc_forbidden(self, suite):
        for test in suite:
            if diy_cycle_of(test.name) is not None:
                assert not sc_allowed(test), test.name


class TestOracleClassification:
    def test_verdict_snapshot(self, suite):
        """The suite contains exactly three SC-allowed candidate
        outcomes (iwp24's one-thread-first interleaving, n5's
        read-own-store, and amd3's 2+2W observation); everything else
        is forbidden — the shape RTLCheck's covering-trace shortcut
        depends on."""
        allowed = sorted(t.name for t in suite if sc_allowed(t))
        assert allowed == ["amd3", "iwp24", "n5"]

    def test_every_load_value_is_pinned(self, suite):
        """Check-mode omniscient evaluation needs every load's value in
        the outcome."""
        for test in suite:
            outs = {op.out for thread in test.threads for op in thread if op.is_load}
            assert outs <= set(test.outcome.register_map), test.name
