"""Bug-injection matrix: buggy vs fixed memory × litmus shapes.

The seeded store-drop bug in ``BuggyMemory`` must be flagged by the
difftest oracles on *exactly* the buggy configurations — never on the
fixed memory — across the four classic litmus shapes (message-passing,
store-buffering, load-buffering, coherence).  Two detection channels
with different sensitivities:

* **RTL enumeration vs model** — compares full outcome *sets*, so it
  catches the dropped store on every buggy configuration;
* **RTLCheck verifier** — constrained to the candidate-outcome slice,
  it flags the shapes whose µspec counterexample intersects that slice
  (``mp``, ``sb``) and is legitimately blind on the others (``lb``,
  ``co`` — their candidate outcomes don't require the dropped store).

The matrix pins both channels per configuration, and checks the
shrinker collapses every buggy discrepancy to a minimal (≤ 4, in fact
≤ 2 instruction) reproducer that still reproduces.
"""

import pytest

from repro.difftest import cross_check, discrepancy_predicate, evaluate_oracles, shrink_test
from repro.litmus.test import LitmusTest, Outcome, load, store

SHAPES = {
    "mp": LitmusTest.of(
        "mx-mp",
        [[store("x", 1), store("y", 1)], [load("y", "r1"), load("x", "r2")]],
        Outcome.of({"r1": 1, "r2": 0}),
    ),
    "sb": LitmusTest.of(
        "mx-sb",
        [[store("x", 1), load("y", "r1")], [store("y", 1), load("x", "r2")]],
        Outcome.of({"r1": 0, "r2": 0}),
    ),
    "lb": LitmusTest.of(
        "mx-lb",
        [[load("x", "r1"), store("y", 1)], [load("y", "r2"), store("x", 1)]],
        Outcome.of({"r1": 1, "r2": 1}),
    ),
    "co": LitmusTest.of(
        "mx-co",
        [[store("x", 1)], [store("x", 2)]],
        Outcome.of({}, {"x": 1}),
    ),
}

#: Shapes whose candidate outcome makes the store-drop visible to the
#: verifier's constrained exploration.
VERIFIER_SENSITIVE = {"mp", "sb"}


@pytest.mark.parametrize("variant", ["fixed", "buggy"])
@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_matrix_flags_exactly_the_buggy_configurations(shape, variant):
    verdicts = evaluate_oracles(SHAPES[shape], variant)
    assert verdicts.errors == {}
    kinds = {d.kind for d in cross_check(verdicts)}

    if variant == "fixed":
        # The fixed memory is SC: all four layers agree, nothing fires.
        assert kinds == set()
        assert verdicts.rtl.outcomes == verdicts.op_outcomes
        assert not verdicts.verifier_bug_found
    else:
        # Every buggy configuration drops a store architecturally.
        assert "rtl-vs-model" in kinds
        assert verdicts.rtl.outcomes != verdicts.op_outcomes
        # The verifier fires on exactly the sensitive shapes...
        assert verdicts.verifier_bug_found == (shape in VERIFIER_SENSITIVE)
        # ...and when it fires, the RTL genuinely diverges, so the
        # verifier-vs-rtl invariant must never fire alongside it.
        assert "verifier-vs-rtl" not in kinds

    # Operational and axiomatic SC agree on every configuration.
    assert verdicts.op_outcomes == verdicts.ax_outcomes


@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_shrinker_minimizes_every_buggy_discrepancy(shape):
    predicate = discrepancy_predicate("rtl-vs-model", "buggy")
    minimized, stats = shrink_test(SHAPES[shape], predicate)
    assert minimized.instruction_count() <= 2
    assert stats["final_instructions"] <= stats["initial_instructions"]
    assert predicate(minimized)
    # Deterministic: shrinking again lands on the identical test.
    again, _ = shrink_test(SHAPES[shape], predicate)
    assert again.to_dict() == minimized.to_dict()
