"""Tests for result aggregation and SVA file emission."""

import pytest

from repro import RTLCheck, get_test
from repro.core.results import PropertyResult, TestVerification
from repro.sva.ast import Directive, PConst
from repro.sva.emit import emit_sva_file
from repro.verifier.config import PROOF_PHASE_HOURS
from repro.verifier.engines import EngineVerdict
from repro.verifier.explorer import ExplorationResult, FAILED, PROVEN, BOUNDED


def _prop(name, status, bound=None, hours=1.0):
    verdict = EngineVerdict(status=status, bound=bound, modeled_hours=hours)
    ground = ExplorationResult(verdict="proven" if status != "cex" else "cex")
    return PropertyResult(name=name, verdict=verdict, ground_truth=ground)


def _verification(**overrides):
    base = dict(
        test=get_test("mp"),
        memory_variant="fixed",
        config_name="Full_Proof",
        assumptions=[],
        assertions=[],
        sva_text="",
        generation_seconds=0.01,
        cover=ExplorationResult(verdict="reachable", exhausted=True),
        cover_hours=0.5,
        verified_by_cover=False,
    )
    base.update(overrides)
    return TestVerification(**base)


class TestAggregation:
    def test_cover_verified_summary(self):
        result = _verification(verified_by_cover=True, cover_hours=0.05)
        assert result.verified
        assert result.modeled_hours == 0.05
        assert "unreachable" in result.summary()

    def test_all_proven(self):
        result = _verification()
        result.properties = [_prop("a", PROVEN, hours=2.0), _prop("b", PROVEN, hours=4.0)]
        assert result.verified
        assert result.proven_fraction == 1.0
        # cover + slowest property
        assert result.modeled_hours == pytest.approx(0.5 + 4.0)

    def test_bounded_pins_runtime_to_allotment(self):
        result = _verification()
        result.properties = [_prop("a", PROVEN), _prop("b", BOUNDED, bound=22)]
        assert result.verified
        assert result.bounded_count == 1
        assert result.bounded_bounds == [22]
        assert result.modeled_hours == pytest.approx(0.5 + PROOF_PHASE_HOURS)

    def test_counterexample_dominates(self):
        result = _verification()
        result.properties = [_prop("a", FAILED), _prop("b", PROVEN)]
        assert result.bug_found
        assert not result.verified
        assert "COUNTEREXAMPLE" in result.summary()
        assert [p.name for p in result.counterexamples] == ["a"]

    def test_empty_proof_phase(self):
        result = _verification()
        assert result.proven_fraction == 1.0
        assert result.modeled_hours == 0.5


class TestEmission:
    def test_sections_present(self):
        assume = Directive(kind="assume", name="a0", prop=PConst(True))
        check = Directive(kind="assert", name="c0", prop=PConst(True))
        text = emit_sva_file("mp", [assume, check])
        assert "assumptions (Assumption Generator)" in text
        assert "assertions (Assertion Generator)" in text
        assert text.index("assume property") < text.index("assert property")

    def test_first_signal_logic_included(self):
        text = emit_sva_file("mp", [])
        assert "reg first;" in text
        assert "if (reset) first <= 1'b1;" in text

    def test_real_generation_round(self):
        generated = RTLCheck().generate(get_test("lb"))
        text = generated.sva_text
        # Every directive's name appears as a label.
        for directive in generated.assertions[:5]:
            assert f"{directive.name}:" in text
