"""Tests for the µspec lexer and parser."""

import pytest

from repro.errors import UspecSyntaxError
from repro.uspec import ast, model_source, multi_vscale_model, parse_formula, parse_uspec, tokenize


class TestLexer:
    def test_symbols_and_idents(self):
        tokens = tokenize(r"AddEdge ((a, DX), (b, WB)) /\ ~X")
        kinds = [t.kind for t in tokens]
        assert kinds[-1] == "eof"
        texts = [t.text for t in tokens if t.kind == "symbol"]
        assert "/\\" in texts and "~" in texts

    def test_strings(self):
        tokens = tokenize('Axiom "WB_FIFO":')
        assert tokens[1].kind == "string"
        assert tokens[1].text == "WB_FIFO"

    def test_percent_comments(self):
        tokens = tokenize("% a comment\nforall")
        assert tokens[0].text == "forall"
        assert tokens[0].line == 2

    def test_slash_comments(self):
        tokens = tokenize("// note\nexists")
        assert tokens[0].text == "exists"

    def test_primed_identifiers(self):
        tokens = tokenize("w' w''")
        assert tokens[0].text == "w'"
        assert tokens[1].text == "w''"

    def test_unterminated_string(self):
        with pytest.raises(UspecSyntaxError):
            tokenize('Axiom "oops')

    def test_position_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(UspecSyntaxError):
            tokenize("a @ b")


class TestFormulaParsing:
    def test_precedence_and_binds_tighter_than_or(self):
        f = parse_formula("IsAnyRead a \\/ IsAnyWrite a /\\ IsAnyFence a")
        assert isinstance(f, ast.Or)
        assert isinstance(f.operands[1], ast.And) or isinstance(f.operands[0], ast.And)

    def test_implication_right_associative(self):
        f = parse_formula("IsAnyRead a => IsAnyWrite a => IsAnyFence a")
        assert isinstance(f, ast.Implies)
        assert isinstance(f.conclusion, ast.Implies)

    def test_negation(self):
        f = parse_formula("~SameMicroop a b")
        assert isinstance(f, ast.Not)
        assert isinstance(f.body, ast.Predicate)

    def test_quantifier_with_multiple_names(self):
        f = parse_formula('forall microops "a1", "a2", SameCore a1 a2')
        assert isinstance(f, ast.Quantifier)
        assert f.names == ("a1", "a2")
        assert f.domain == "microop"

    def test_core_quantifier(self):
        f = parse_formula('forall cores "c", OnCore c a')
        assert f.domain == "core"

    def test_nested_quantifier_in_conjunction(self):
        f = parse_formula(
            'IsAnyRead i /\\ forall microop "w", (IsAnyWrite w => SameAddress w i)'
        )
        assert isinstance(f, ast.And)

    def test_edge_with_label_and_colour(self):
        f = parse_formula('AddEdge ((i, Writeback), (w, Writeback), "fr", "red")')
        assert isinstance(f, ast.AddEdge)
        assert f.edge.label == "fr"
        assert f.edge.colour == "red"

    def test_edges_exist_list(self):
        f = parse_formula(
            'EdgesExist [((w, Writeback), (x, Writeback), "");'
            ' ((x, Writeback), (i, Writeback), "")]'
        )
        assert isinstance(f, ast.EdgesExist)
        assert len(f.edges) == 2

    def test_node_exists(self):
        f = parse_formula("NodeExists (i, Fetch)")
        assert isinstance(f, ast.NodeExists)
        assert f.node.stage == "Fetch"

    def test_expand_macro_with_args(self):
        f = parse_formula("ExpandMacro STBFwd w i")
        assert isinstance(f, ast.ExpandMacro)
        assert [a.name for a in f.args] == ["w", "i"]

    def test_truth_literals(self):
        assert parse_formula("True") == ast.Truth(True)
        assert parse_formula("False") == ast.Truth(False)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(UspecSyntaxError):
            parse_formula("IsAnyRead a extra ) junk")

    def test_predicate_without_args_rejected(self):
        with pytest.raises(UspecSyntaxError):
            parse_formula("IsAnyRead /\\ IsAnyWrite a")

    def test_figure_3b_axiom_parses(self):
        # The WB_FIFO axiom exactly as printed in paper Figure 3b
        # (modulo the paper's elided core binding).
        source = """
        Axiom "WB_FIFO":
        forall cores "c",
        forall microops "a1", "a2",
        (OnCore c a1 /\\ OnCore c a2 /\\
         ~SameMicroop a1 a2 /\\ ProgramOrder a1 a2) =>
        EdgeExists ((a1, DecodeExecute), (a2, DecodeExecute)) =>
        AddEdge ((a1, Writeback), (a2, Writeback)).
        """
        model = parse_uspec('Stages "DecodeExecute", "Writeback".\n' + source)
        assert model.axiom("WB_FIFO")


class TestModelParsing:
    def test_stages_declaration(self):
        model = parse_uspec('Stages "IF", "DX", "WB".')
        assert model.stages == ["IF", "DX", "WB"]
        assert model.stage_index("DX") == 1

    def test_macro_with_params(self):
        model = parse_uspec(
            'DefineMacro "M" "a" "b": SameAddress a b.'
        )
        macro = model.macro("M")
        assert macro.params == ("a", "b")

    def test_unknown_macro_lookup(self):
        model = parse_uspec('Stages "S".')
        with pytest.raises(KeyError):
            model.macro("missing")

    def test_bad_toplevel_rejected(self):
        with pytest.raises(UspecSyntaxError):
            parse_uspec("Bogus thing")

    def test_missing_dot_rejected(self):
        with pytest.raises(UspecSyntaxError):
            parse_uspec('Stages "A"')


class TestBundledModel:
    def test_multi_vscale_model_loads(self):
        model = multi_vscale_model()
        assert model.stages == ["Fetch", "DecodeExecute", "Writeback"]
        names = [a.name for a in model.axioms]
        assert "WB_FIFO" in names
        assert "Read_Values" in names
        assert "DX_Total_Order" in names

    def test_figure5_macros_present(self):
        model = multi_vscale_model()
        for name in ("NoInterveningWrite", "BeforeAllWrites", "BeforeOrAfterEveryWrite"):
            assert model.macro(name)

    def test_model_source_contains_figure5_axiom(self):
        assert "Read_Values" in model_source("multi_vscale")

    def test_model_is_cached(self):
        assert multi_vscale_model() is multi_vscale_model()
