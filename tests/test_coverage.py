"""Tests for :mod:`repro.obs.coverage` — microarchitectural coverage
maps, the persistent coverage database, closure reports, and the
coverage-guided fuzz scheduler.

The load-bearing invariants:

* coverage collection is deterministic in ``(seed, jobs)`` — a
  parallel campaign produces the same coverage state, novelty stream,
  and test order as a serial one;
* coverage-map merge is associative and commutative (property-tested),
  so worker deltas can be folded in any grouping;
* the on-disk database round-trips, and corrupt or schema-stale
  documents reset to fresh rather than poisoning later campaigns;
* collection never changes verification verdicts.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CONFIGS, RTLCheck, get_test, obs
from repro.cache import VerificationCache
from repro.difftest import FuzzConfig, FuzzGenerator, run_fuzz
from repro.difftest.schedule import CoverageScheduler
from repro.errors import ReproError
from repro.obs.coverage import (
    COVERAGE_DOMAINS,
    CoverageDB,
    CoverageMap,
    closure_report,
    coverage_diff,
    saturation_curve,
    shape_features,
    shape_key,
    state_signature,
    validate_coverage_report,
)

# ---------------------------------------------------------------------------
# CoverageMap
# ---------------------------------------------------------------------------


class TestCoverageMap:
    def test_add_and_counts(self):
        cov = CoverageMap()
        cov.add("state", "a")
        cov.add("state", "a")
        cov.add("state", "b")
        cov.add("shape", "threads:2")
        assert cov.unique("state") == 2
        assert cov.hits("state") == 3
        assert cov.total_unique() == 3
        assert bool(cov)

    def test_unknown_domain_rejected(self):
        with pytest.raises(ReproError, match="domain"):
            CoverageMap().add("branch", "x")

    def test_count_new_only_counts_unseen_keys(self):
        base = CoverageMap()
        base.add("state", "a")
        delta = CoverageMap()
        delta.add("state", "a")
        delta.add("state", "b")
        delta.add("transition", "a>b")
        new = base.count_new(delta)
        assert new["state"] == 1
        assert new["transition"] == 1
        # count_new does not mutate.
        assert base.unique("state") == 1
        assert base.unique("transition") == 0

    def test_state_round_trip(self):
        cov = CoverageMap()
        cov.add("arbiter", "g2:0.1", 5)
        cov.add("assumption", "fired:x")
        state = cov.to_state()
        json.dumps(state)  # JSON-safe
        assert CoverageMap.from_state(state) == cov

    def test_empty_map_is_falsy(self):
        assert not CoverageMap()
        assert CoverageMap().to_state() == {}


# -- merge algebra (property-tested) ----------------------------------------

_domain = st.sampled_from(sorted(COVERAGE_DOMAINS))
_keys = st.text(
    alphabet="abcdefg>:.0123456789", min_size=1, max_size=8
)
_coverage_states = st.dictionaries(
    _domain,
    st.dictionaries(_keys, st.integers(min_value=1, max_value=50), max_size=6),
    max_size=4,
)


def _as_map(state):
    return CoverageMap.from_state(state)


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(_coverage_states, _coverage_states)
    def test_merge_commutes(self, a, b):
        left = _as_map(a)
        left.merge(_as_map(b))
        right = _as_map(b)
        right.merge(_as_map(a))
        assert left == right

    @settings(max_examples=60, deadline=None)
    @given(_coverage_states, _coverage_states, _coverage_states)
    def test_merge_associates(self, a, b, c):
        ab_c = _as_map(a)
        ab_c.merge(_as_map(b))
        ab_c.merge(_as_map(c))
        bc = _as_map(b)
        bc.merge(_as_map(c))
        a_bc = _as_map(a)
        a_bc.merge(bc)
        assert ab_c == a_bc

    @settings(max_examples=60, deadline=None)
    @given(_coverage_states, _coverage_states)
    def test_count_new_matches_merge_growth(self, a, b):
        base = _as_map(a)
        delta = _as_map(b)
        new = base.count_new(delta)
        before = {d: base.unique(d) for d in COVERAGE_DOMAINS}
        base.merge(delta)
        for domain in COVERAGE_DOMAINS:
            assert base.unique(domain) - before[domain] == new.get(domain, 0)


# ---------------------------------------------------------------------------
# Signatures and shape features
# ---------------------------------------------------------------------------


class TestSignatures:
    def test_repr_fallback_is_stable_and_discriminating(self):
        class Dummy:
            state_backend = "dict"

        design = Dummy()
        assert state_signature(design, (1, 2)) == state_signature(design, (1, 2))
        assert state_signature(design, (1, 2)) != state_signature(design, (2, 1))

    def test_array_backend_signature_matches_across_designs(self):
        # Equal physical states hash equal regardless of interning
        # order: build the same graph twice and compare per-test
        # coverage states (signatures are embedded in the keys).
        states = []
        for _ in range(2):
            rc = RTLCheck(coverage=True)
            result = rc.verify_test(get_test("mp"), "fixed")
            states.append(result.obs["coverage"])
        assert states[0] == states[1]

    def test_shape_key_ignores_thread_order(self):
        test = get_test("mp")
        assert shape_key(test) == "|".join(sorted(shape_key(test).split("|")))

    def test_shape_features_deterministic(self):
        test = get_test("iriw")
        assert shape_features(test) == shape_features(test)
        assert f"threads:{test.num_threads}" in shape_features(test)


# ---------------------------------------------------------------------------
# Collection through RTLCheck
# ---------------------------------------------------------------------------


class TestCollection:
    def test_coverage_only_run_collects_all_verifier_domains(self):
        rc = RTLCheck(coverage=True)
        result = rc.verify_test(get_test("mp"), "fixed")
        state = result.obs["coverage"]
        for domain in ("state", "transition", "assumption", "shape"):
            assert state.get(domain), f"no {domain} coverage"
        # Coverage-only runs record no spans or counters.
        assert result.obs["events"] == []
        assert result.obs["counters"] == {}

    def test_coverage_does_not_change_verdicts(self):
        plain = RTLCheck().verify_test(get_test("sb"), "fixed")
        covered = RTLCheck(coverage=True).verify_test(get_test("sb"), "fixed")
        assert [
            (p.name, p.status) for p in plain.properties
        ] == [(p.name, p.status) for p in covered.properties]
        assert plain.bug_found == covered.bug_found

    def test_observe_and_coverage_compose(self):
        rc = RTLCheck(observe=True, coverage=True)
        result = rc.verify_test(get_test("mp"), "fixed")
        assert result.obs["events"]  # spans recorded
        assert result.obs["coverage"]["state"]
        # The per-domain key counters ride the ordinary counter stream.
        assert result.obs["counters"]["coverage.state.keys"] > 0

    def test_observed_and_coverage_only_agree_on_coverage(self):
        observed = RTLCheck(observe=True, coverage=True).verify_test(
            get_test("mp"), "fixed"
        )
        coverage_only = RTLCheck(coverage=True).verify_test(
            get_test("mp"), "fixed"
        )
        assert observed.obs["coverage"] == coverage_only.obs["coverage"]

    def test_suite_jobs_invariance(self):
        tests = [get_test(n) for n in ("mp", "sb", "lb")]
        serial = RTLCheck(coverage=True).verify_suite(tests, jobs=1)
        parallel = RTLCheck(coverage=True).verify_suite(tests, jobs=2)
        for test in tests:
            assert (
                serial[test.name].obs["coverage"]
                == parallel[test.name].obs["coverage"]
            )


# ---------------------------------------------------------------------------
# Cache gating
# ---------------------------------------------------------------------------


class TestCacheGating:
    def test_uncovered_entry_upgraded_for_coverage_run(self, tmp_path):
        cache = VerificationCache(tmp_path)
        test = get_test("mp")
        RTLCheck(cache=cache).verify_test(test, "fixed")
        # A coverage run must not accept the uncovered entry ...
        rc = RTLCheck(cache=cache, coverage=True)
        cold = rc.verify_test(test, "fixed")
        assert cold.obs["coverage"]
        assert cache.stats.get("cache.verdict.uncovered_misses") == 1
        # ... and its recompute upgrades the entry in place.
        warm = rc.verify_test(test, "fixed")
        assert cache.stats.get("cache.verdict.hits") == 1
        assert warm.obs == cold.obs

    def test_warm_coverage_hit_strips_observe_payload(self, tmp_path):
        cache = VerificationCache(tmp_path)
        test = get_test("sb")
        cold = RTLCheck(cache=cache, observe=True, coverage=True).verify_test(
            test, "fixed"
        )
        warm = RTLCheck(cache=cache, coverage=True).verify_test(test, "fixed")
        # Same coverage, no replayed spans/counters: the coverage-only
        # warm hit is byte-identical to a coverage-only cold run.
        assert warm.obs["coverage"] == cold.obs["coverage"]
        assert warm.obs["events"] == []
        assert warm.obs["counters"] == {}


# ---------------------------------------------------------------------------
# The persistent database
# ---------------------------------------------------------------------------


class TestCoverageDB:
    def _map(self, **domains):
        cov = CoverageMap()
        for domain, keys in domains.items():
            for key in keys:
                cov.add(domain, key)
        return cov

    def test_round_trip(self, tmp_path):
        db = CoverageDB(str(tmp_path / "cov.json"))
        db.merge(
            self._map(state=["a", "b"], shape=["threads:2"]),
            campaign={"seed": 1, "tests": 5},
        )
        document = db.load()
        assert db.reset_reason is None
        assert document["campaigns"][0]["seed"] == 1
        assert document["campaigns"][0]["new_keys"] == {"shape": 1, "state": 2}
        assert db.coverage_map() == self._map(
            state=["a", "b"], shape=["threads:2"]
        )

    def test_merge_accumulates_and_counts_only_new(self, tmp_path):
        db = CoverageDB(str(tmp_path / "cov.json"))
        db.merge(self._map(state=["a"]), campaign={"seed": 1})
        document = db.merge(
            self._map(state=["a", "b"]), campaign={"seed": 2}
        )
        assert document["campaigns"][1]["new_keys"] == {"state": 1}
        assert db.coverage_map().unique("state") == 2

    def test_corrupt_document_resets(self, tmp_path):
        path = tmp_path / "cov.json"
        path.write_text("{ not json")
        db = CoverageDB(str(path))
        document = db.load()
        assert db.reset_reason == "corrupt"
        assert document["domains"] == {}
        # A merge after the reset writes a valid fresh document.
        db.merge(self._map(state=["a"]))
        assert CoverageDB(str(path)).coverage_map().unique("state") == 1

    def test_stale_schema_resets(self, tmp_path):
        path = tmp_path / "cov.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        db = CoverageDB(str(path))
        assert db.load()["domains"] == {}
        assert db.reset_reason == "stale"

    def test_corpus_capped_by_energy(self, tmp_path):
        from repro.obs.coverage import DB_CORPUS_CAP

        db = CoverageDB(str(tmp_path / "cov.json"))
        corpus = [
            {"test": {"name": f"t{i}"}, "energy": float(i)}
            for i in range(DB_CORPUS_CAP + 10)
        ]
        document = db.merge(CoverageMap(), corpus=corpus)
        kept = document["corpus"]
        assert len(kept) == DB_CORPUS_CAP
        assert min(entry["energy"] for entry in kept) == 10.0


# ---------------------------------------------------------------------------
# Closure reports
# ---------------------------------------------------------------------------


class TestClosureReport:
    def test_validates_and_totals_match(self):
        cov = CoverageMap()
        cov.add("state", "a", 3)
        cov.add("shape", "threads:2")
        report = closure_report(cov, tests=10, novelty=[2, 0], guided=True)
        assert validate_coverage_report(report) == []
        assert report["domains"]["state"] == {"unique": 1, "hits": 3}
        assert report["new_keys"] == 2
        assert report["guided"] is True

    def test_tampered_report_rejected(self):
        cov = CoverageMap()
        cov.add("state", "a")
        report = closure_report(cov)
        report["total_unique"] = 99
        assert validate_coverage_report(report) != []

    def test_saturation_curve_windows(self):
        assert saturation_curve([1] * 250, window=100) == [100, 100, 50]
        assert saturation_curve([], window=100) == []

    def test_diff_counts_key_sets(self):
        a = CoverageMap()
        a.add("state", "x")
        a.add("state", "y")
        b = CoverageMap()
        b.add("state", "y")
        b.add("state", "z")
        b.add("arbiter", "g2:0.1")
        diff = coverage_diff(a.to_state(), b.to_state())
        assert diff["domains"]["state"]["shared"] == 1
        assert diff["domains"]["state"]["new_in_other"] == 1
        assert diff["new_in_other"] == 2
        assert diff["only_in_base"] == 1


# ---------------------------------------------------------------------------
# The guided scheduler
# ---------------------------------------------------------------------------


class TestScheduler:
    def _scheduler(self, seed=3):
        return CoverageScheduler(FuzzGenerator(seed=seed), seed=seed)

    def test_empty_corpus_draws_fresh_stream(self):
        sched = self._scheduler()
        batch = sched.next_batch(4)
        assert [t.name for t in batch] == [
            f"fz3-{i:05d}" for i in range(4)
        ]

    def test_novelty_admits_and_energizes(self):
        sched = self._scheduler()
        [test] = sched.next_batch(1)
        sched.feedback(test, {"state": 5, "transition": 10})
        assert len(sched._corpus) == 1
        assert sched._corpus[0].energy == 15.0

    def test_zero_novelty_builds_fatigue_and_novelty_clears_it(self):
        sched = self._scheduler()
        [test] = sched.next_batch(1)
        shape = shape_key(test)
        sched.feedback(test, {"state": 0})
        sched.feedback(test, {"state": 0})
        assert sched.fatigue[shape] == 2
        sched.feedback(test, {"state": 1})
        assert shape not in sched.fatigue

    def test_fatigue_halves_selection_weight(self):
        sched = self._scheduler()
        [test] = sched.next_batch(1)
        sched.feedback(test, {"state": 8})
        entry = sched._corpus[0]
        base = sched._weight(entry)
        sched.fatigue[entry.shape] = 2
        assert sched._weight(entry) == base / 4

    def test_batches_are_deterministic(self):
        names_a = [
            t.name for batch in range(3) for t in self._scheduler_run(batch_count=1)
        ]
        names_b = [
            t.name for batch in range(3) for t in self._scheduler_run(batch_count=1)
        ]
        assert names_a == names_b

    def _scheduler_run(self, batch_count):
        sched = self._scheduler()
        out = []
        for _ in range(batch_count):
            batch = sched.next_batch(6)
            out.extend(batch)
            for test in batch:
                sched.feedback(test, {"state": 3})
        return out

    def test_mutants_enter_after_feedback(self):
        sched = self._scheduler()
        batch = sched.next_batch(6)
        for test in batch:
            sched.feedback(test, {"state": 10, "transition": 10})
        second = sched.next_batch(8)
        mutants = [t for t in second if "-m" in t.name]
        assert mutants, "energized corpus produced no mutants"
        for mutant in mutants:
            meta = sched.generator.meta[mutant.name]
            assert meta["mode"] == "mutant"
            assert meta["parent"] in {t.name for t in batch}
            mutant.validate()

    def test_load_corpus_skips_bad_records(self):
        sched = self._scheduler()
        good = self._scheduler()
        [test] = good.next_batch(1)
        sched.load_corpus(
            [
                {"energy": 1.0},  # no test
                {"test": {"bogus": True}, "energy": 1.0},  # malformed
                {"test": test.to_dict(), "energy": "NaN-ish"},  # bad energy
                {"test": test.to_dict(), "energy": 4.0},  # valid
            ]
        )
        assert [e.test.name for e in sched._corpus] == [test.name]
        assert sched._corpus[0].energy == 4.0

    def test_corpus_state_round_trips_through_db(self, tmp_path):
        sched = self._scheduler()
        batch = sched.next_batch(3)
        for test in batch:
            sched.feedback(test, {"state": 2})
        db = CoverageDB(str(tmp_path / "cov.json"))
        db.merge(CoverageMap(), corpus=sched.corpus_state())
        resumed = self._scheduler()
        resumed.load_corpus(db.load()["corpus"])
        assert {e.test.name for e in resumed._corpus} == {
            t.name for t in batch
        }


# ---------------------------------------------------------------------------
# Campaign-level determinism and guidance
# ---------------------------------------------------------------------------

#: Fast oracle set that still feeds the arbiter + shape domains.
TRACE_ORACLES = ("operational", "axiomatic", "trace")


def _campaign(jobs=1, guided=True, budget=12, tmp=None, **kwargs):
    config = FuzzConfig(
        seed=29,
        budget=budget,
        oracles=TRACE_ORACLES,
        jobs=jobs,
        trace_samples=4,
        shrink=False,
        coverage=True,
        guided=guided,
        cache_dir=None if tmp is None else str(tmp),
        **kwargs,
    )
    return run_fuzz(config)


class TestCampaignCoverage:
    def test_guided_requires_coverage(self):
        with pytest.raises(ReproError, match="guided"):
            FuzzConfig(guided=True)

    def test_campaign_coverage_deterministic_in_jobs(self):
        serial = _campaign(jobs=1)
        parallel = _campaign(jobs=2)
        assert serial.coverage == parallel.coverage
        assert serial.novelty == parallel.novelty
        assert [d.test.name for d in serial.discrepancies] == [
            d.test.name for d in parallel.discrepancies
        ]

    def test_report_carries_valid_closure(self):
        result = _campaign(jobs=1)
        report = result.report()
        closure = report["coverage"]
        assert validate_coverage_report(closure) == []
        assert closure["guided"] is True
        assert closure["tests"] == result.tests_run
        assert closure["new_keys"] == sum(result.novelty)
        assert closure["new_keys"] > 0

    def test_blind_campaign_reports_unguided(self):
        result = _campaign(jobs=1, guided=False, budget=6)
        assert result.report()["coverage"]["guided"] is False

    def test_campaign_persists_database_and_corpus(self, tmp_path):
        result = _campaign(jobs=1, tmp=tmp_path)
        db = CoverageDB(str(tmp_path / "coverage" / "coverage.json"))
        document = db.load()
        assert db.reset_reason is None
        assert document["campaigns"][0]["seed"] == 29
        assert document["campaigns"][0]["guided"] is True
        assert db.coverage_map().to_state() == result.coverage
        assert document["corpus"], "guided campaign persisted no corpus"

    def test_guided_on_buggy_memory_still_finds_discrepancies(self):
        result = run_fuzz(
            FuzzConfig(
                seed=11,
                budget=6,
                oracles=("operational", "axiomatic", "rtl"),
                memory_variant="buggy",
                shrink=False,
                coverage=True,
                guided=True,
            )
        )
        assert result.discrepancies, "guidance must not mask the seeded bug"
        # No verifier oracle in the set, so coverage comes from the
        # shape domain alone — but it must still be there.
        assert result.coverage["shape"]
