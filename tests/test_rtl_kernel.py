"""Tests for the RTL simulation kernel (design protocol, traces)."""

import pytest

from repro.errors import RtlError
from repro.rtl import (
    Design,
    FreeInput,
    Simulator,
    changed_signals,
    render_timing_diagram,
    signal_values,
)


class Counter(Design):
    """A tiny design: counts up by the free input ``step`` each cycle,
    saturating at ``limit``."""

    def __init__(self, limit=5):
        self.limit = limit
        self.reset()

    def reset(self):
        self.value = 0
        self._next = None

    def free_inputs(self):
        return (FreeInput("step", 2),)

    def eval_comb(self, inputs):
        step = inputs.get("step", 0)
        self._next = min(self.value + step, self.limit)
        return {"value": self.value, "next": self._next}

    def tick(self):
        self.value = self._next

    def snapshot(self):
        return (self.value,)

    def restore(self, state):
        (self.value,) = state


class TestDesignProtocol:
    def test_input_space_enumerates_assignments(self):
        assert Counter().input_space() == [{"step": 0}, {"step": 1}]

    def test_input_space_empty_inputs(self):
        class Fixed(Counter):
            def free_inputs(self):
                return ()

        assert Fixed().input_space() == [{}]

    def test_free_input_cardinality_validated(self):
        with pytest.raises(RtlError):
            FreeInput("x", 0)

    def test_snapshot_restore_roundtrip(self):
        design = Counter()
        design.eval_comb({"step": 1})
        design.tick()
        snap = design.snapshot()
        design.eval_comb({"step": 1})
        design.tick()
        assert design.value == 2
        design.restore(snap)
        assert design.value == 1


class TestSimulator:
    def test_first_signal_only_on_cycle_zero(self):
        sim = Simulator(Counter())
        frames = sim.run(3, [{"step": 1}] * 3)
        assert [f["first"] for f in frames] == [1, 0, 0]

    def test_step_advances_state(self):
        sim = Simulator(Counter())
        sim.step({"step": 1})
        sim.step({"step": 1})
        assert sim.design.value == 2

    def test_run_defaults_missing_inputs_to_zero(self):
        sim = Simulator(Counter())
        sim.run(4, [{"step": 1}])
        assert sim.design.value == 1

    def test_run_until_quiescent(self):
        sim = Simulator(Counter(limit=3))

        class AlwaysStep(Counter):
            pass

        sim2 = Simulator(Counter(limit=3))
        # Default inputs are zero, so the counter is immediately stable.
        trace = sim2.run_until_quiescent()
        assert sim2.design.value == 0
        assert len(trace) >= 1

    def test_quiescence_timeout(self):
        class Diverges(Counter):
            def eval_comb(self, inputs):
                self._next = self.value + 1
                return {"value": self.value}

        with pytest.raises(RtlError):
            Simulator(Diverges()).run_until_quiescent(max_cycles=10)


class TestTraceHelpers:
    def make_trace(self):
        sim = Simulator(Counter())
        sim.run(4, [{"step": 1}, {"step": 0}, {"step": 1}, {"step": 1}])
        return sim.trace

    def test_signal_values(self):
        trace = self.make_trace()
        assert signal_values(trace, "value") == [0, 1, 1, 2]

    def test_signal_values_missing_signal_is_zero(self):
        trace = self.make_trace()
        assert signal_values(trace, "nope") == [0, 0, 0, 0]

    def test_render_timing_diagram_contains_signals_and_cycles(self):
        trace = self.make_trace()
        text = render_timing_diagram(trace, ["value", "next"])
        assert "value" in text and "next" in text
        # cycle headers
        assert " 0 " in text or "0" in text.splitlines()[0]

    def test_render_with_formatter(self):
        trace = self.make_trace()
        text = render_timing_diagram(
            trace, ["value"], formatters={"value": lambda v: f"V{v}"}
        )
        assert "V0" in text and "V1" in text

    def test_render_window(self):
        trace = self.make_trace()
        text = render_timing_diagram(trace, ["value"], first_cycle=2, last_cycle=3)
        assert "2" in text.splitlines()[0]

    def test_changed_signals(self):
        before = {"a": 0, "b": 1}
        after = {"a": 1, "b": 1, "c": 2}
        changes = changed_signals(before, after)
        assert ("a", 0, 1) in changes
        assert ("c", 0, 2) in changes
        assert all(name != "b" for name, _, _ in changes)
