"""Tests for the V-scale core pipeline and the Multi-V-scale SoC."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RtlError
from repro.isa import encode, Halt, Lw, Sw
from repro.litmus import Outcome, LitmusTest, compile_test, get_test, load, store
from repro.memodel import enumerate_sc_outcomes
from repro.rtl import Simulator
from repro.vscale import (
    DMEM_LOAD,
    DMEM_NONE,
    DMEM_STORE,
    MultiVScale,
    VScaleCore,
    core_base_pc,
    imem_base_word,
)


def run_to_drain(soc, schedule, max_cycles=80):
    sim = Simulator(soc)
    it = iter(schedule)
    for _ in range(max_cycles):
        sim.step({"arb_select": next(it, 0)})
        if soc.drained():
            return sim
    raise AssertionError("SoC did not drain")


class TestAddressMap:
    def test_core_base_pcs_skip_word_zero(self):
        assert core_base_pc(0) == 4
        assert imem_base_word(0) == 1
        assert core_base_pc(1) == 4 * imem_base_word(1)

    def test_pc_zero_reserved_for_bubbles(self):
        # No instruction may live at PC 0: PC_WB == 0 marks a bubble.
        for core in range(4):
            assert core_base_pc(core) != 0


class TestSingleCore:
    def test_ssl_executes_store_then_load(self):
        compiled = compile_test(get_test("ssl"))
        soc = MultiVScale(compiled, "fixed")
        sim = run_to_drain(soc, [0] * 40)
        # ssl: [x] <- 1; r1 <- [x].  SC requires r1 == 1.
        assert soc.register_results() == {"r1": 1}
        assert soc.memory_results() == {"x": 1}

    def test_halt_stops_fetch_and_quiesces(self):
        compiled = compile_test(get_test("ssl"))
        soc = MultiVScale(compiled, "fixed")
        sim = run_to_drain(soc, [0] * 40)
        snap = soc.snapshot()
        sim.step({"arb_select": 2})
        # After draining, only the arbiter registers may change.
        for core in soc.cores:
            assert core.halted
            assert not core.dx_valid and not core.wb_valid

    def test_pc_wb_zero_during_bubble(self):
        compiled = compile_test(get_test("mp"))
        soc = MultiVScale(compiled, "fixed")
        sim = Simulator(soc)
        frame = sim.step({"arb_select": 0})
        # Pipeline is empty right after reset: WB holds a bubble.
        assert frame["core[0].PC_WB"] == 0

    def test_fetch_past_end_raises(self):
        core = VScaleCore(0, [encode(Sw(rs1=1, rs2=2))])  # no halt!
        view = core.dx_view()
        core.tick(view, stall_dx=False, load_data=0)
        with pytest.raises(RtlError):
            for _ in range(4):
                core.tick(core.dx_view(), stall_dx=False, load_data=0)


class TestStallBehaviour:
    def test_ungranted_memory_op_stalls_in_dx(self):
        compiled = compile_test(get_test("mp"))
        soc = MultiVScale(compiled, "fixed")
        sim = Simulator(soc)
        # Grant core 3 (idle) forever; cores 0/1 must stall at their
        # first memory op.
        for _ in range(6):
            frame = sim.step({"arb_select": 3})
        assert frame["core[0].stall_DX"] == 1
        assert frame["core[0].dmem_type_DX"] == DMEM_STORE
        assert frame["core[1].stall_DX"] == 1
        assert frame["core[1].dmem_type_DX"] == DMEM_LOAD

    def test_stalled_core_makes_no_progress(self):
        compiled = compile_test(get_test("mp"))
        soc = MultiVScale(compiled, "fixed")
        sim = Simulator(soc)
        for _ in range(10):
            sim.step({"arb_select": 3})
        assert soc.memory_results() == {"x": 0, "y": 0}
        assert not soc.cores[0].halted

    def test_granted_core_proceeds(self):
        compiled = compile_test(get_test("mp"))
        soc = MultiVScale(compiled, "fixed")
        sim = Simulator(soc)
        for _ in range(12):
            sim.step({"arb_select": 0})
        # Core 0's two stores complete; memory holds x=1, y=1.
        assert soc.memory_results() == {"x": 1, "y": 1}


class TestArbiter:
    def test_grant_register_delays_one_cycle(self):
        compiled = compile_test(get_test("mp"))
        soc = MultiVScale(compiled, "fixed")
        sim = Simulator(soc)
        frame = sim.step({"arb_select": 2})
        assert frame["arbiter.cur_core"] == 0  # reset value
        frame = sim.step({"arb_select": 1})
        assert frame["arbiter.cur_core"] == 2
        assert frame["arbiter.prev_core"] == 0

    def test_select_wraps_modulo_cores(self):
        from repro.vscale.arbiter import Arbiter

        arb = Arbiter(4)
        arb.tick(7)
        assert arb.cur_core == 3


class TestSoCOutcomes:
    def test_fixed_memory_produces_only_sc_outcomes_mp(self):
        test = get_test("mp")
        compiled = compile_test(test)
        sc_regs = {dict(f[0]) for f in ()}
        sc = enumerate_sc_outcomes(test)
        allowed = {tuple(sorted(dict(f[0]).items())) for f in sc}
        rng = random.Random(42)
        soc = MultiVScale(compiled, "fixed")
        for _ in range(120):
            soc.reset()
            sim = run_to_drain(soc, [rng.randrange(4) for _ in range(80)])
            key = tuple(sorted(soc.register_results().items()))
            assert key in allowed

    def test_buggy_memory_can_violate_sc_on_mp(self):
        test = get_test("mp")
        compiled = compile_test(test)
        soc = MultiVScale(compiled, "buggy")
        rng = random.Random(0)
        seen = set()
        for _ in range(3000):
            soc.reset()
            sim = run_to_drain(soc, [rng.randrange(4) for _ in range(80)])
            seen.add(tuple(sorted(soc.register_results().items())))
            if (("r1", 1), ("r2", 0)) in seen:
                break
        assert (("r1", 1), ("r2", 0)) in seen  # the forbidden outcome

    def test_register_results_cover_all_loads(self):
        compiled = compile_test(get_test("iriw"))
        soc = MultiVScale(compiled, "fixed")
        run_to_drain(soc, [0, 1, 2, 2, 3, 3] + [0] * 40)
        assert set(soc.register_results()) == {"r1", "r2", "r3", "r4"}

    def test_unknown_memory_variant_rejected(self):
        with pytest.raises(RtlError):
            MultiVScale(compile_test(get_test("mp")), "broken")

    def test_tick_requires_eval(self):
        soc = MultiVScale(compile_test(get_test("mp")), "fixed")
        with pytest.raises(RtlError):
            soc.tick()


class TestSnapshotDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=20))
    def test_restore_replays_identically(self, schedule):
        compiled = compile_test(get_test("sb"))
        soc = MultiVScale(compiled, "fixed")
        frames = []
        for select in schedule:
            frames.append(soc.eval_comb({"arb_select": select}))
            soc.tick()
        snap = soc.snapshot()
        soc.reset()
        for select in schedule:
            frame = soc.eval_comb({"arb_select": select})
            soc.tick()
        assert soc.snapshot() == snap

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=5, max_size=30))
    def test_frames_deterministic_from_snapshot(self, schedule):
        compiled = compile_test(get_test("lb"))
        soc = MultiVScale(compiled, "buggy")
        mid = len(schedule) // 2
        for select in schedule[:mid]:
            soc.eval_comb({"arb_select": select})
            soc.tick()
        snap = soc.snapshot()
        tail_frames = []
        for select in schedule[mid:]:
            tail_frames.append(soc.eval_comb({"arb_select": select}))
            soc.tick()
        soc.restore(snap)
        for select, expected in zip(schedule[mid:], tail_frames):
            assert soc.eval_comb({"arb_select": select}) == expected
            soc.tick()
