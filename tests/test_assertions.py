"""Tests for the outcome-aware Assertion Generator (§4.2–4.4)."""

import pytest

from repro.core import AssertionGenerator, rewrite_negations
from repro.errors import SvaError
from repro.litmus import compile_test, get_test
from repro.mapping import MultiVScaleNodeMapping
from repro.sva.ast import PImpl, Sig
from repro.uspec import GroundEdge, LoadValue, multi_vscale_model
from repro.uspec.ast import And, Not, Or, Truth
from repro.vscale.params import core_base_pc

N1 = (1, "Writeback")
N2 = (2, "Writeback")


@pytest.fixture(scope="module")
def mp_generator():
    compiled = compile_test(get_test("mp"))
    return AssertionGenerator(
        model=multi_vscale_model(),
        compiled=compiled,
        node_mapping=MultiVScaleNodeMapping(compiled),
    )


class TestNegationRewrite:
    def test_negated_edge_reverses(self):
        out = rewrite_negations(Not(GroundEdge(kind="exists", src=N1, dst=N2)))
        assert isinstance(out, GroundEdge)
        assert out.src == N2 and out.dst == N1

    def test_negation_pushed_through_connectives(self):
        f = Or((Not(GroundEdge(kind="exists", src=N1, dst=N2)), Truth(False)))
        out = rewrite_negations(f)
        assert isinstance(out, GroundEdge)

    def test_negated_load_value_rejected(self):
        with pytest.raises(SvaError):
            rewrite_negations(Not(LoadValue(1, 0)))


class TestMpAssertions:
    def test_every_assertion_guarded_by_first(self, mp_generator):
        for directive in mp_generator.generate():
            assert isinstance(directive.prop, PImpl)
            assert directive.prop.antecedent == Sig("first")

    def test_read_values_covers_both_outcomes(self, mp_generator):
        """§4.2: the Read_Values assertion for mp's load of x must
        account for the load returning 0 (BeforeAllWrites) *and* 1
        (NoInterveningWrite), joined by a property `or`."""
        model = multi_vscale_model()
        props = mp_generator.axiom_properties(model.axiom("Read_Values"))
        texts = [p.emit() for p in props]
        ld_x = [t for t in texts if "load_data_WB == 32'd0" in t]
        assert ld_x, "no property constrains the stale load value"
        both = [
            t
            for t in texts
            if "load_data_WB == 32'd0" in t and "load_data_WB == 32'd1" in t
        ]
        assert both, "outcome-aware translation must cover both load values"
        assert " or " in both[0]

    def test_figure10_shape(self, mp_generator):
        """The BeforeAllWrites branch for mp's load of x is exactly
        Figure 10: delay cycles exclude both events, the load's WB is
        value-constrained, the store's WB is not."""
        model = multi_vscale_model()
        props = mp_generator.axiom_properties(model.axiom("Read_Values"))
        pc_store_x = core_base_pc(0)  # i1: St x on core 0
        pc_load_x = core_base_pc(1) + 4  # i4: Ld x on core 1
        text = next(
            t
            for t in (p.emit() for p in props)
            if "load_data_WB == 32'd0" in t and f"32'd{pc_load_x}" in t
        )
        assert f"core[0].PC_WB == 32'd{pc_store_x}" in text
        assert f"core[1].PC_WB == 32'd{pc_load_x}" in text
        assert "[*0:$]" in text
        # Delay cycles are negations of the events-of-interest.
        assert "~(" in text

    def test_wb_fifo_translates_premise_as_reversed_edge(self, mp_generator):
        model = multi_vscale_model()
        props = mp_generator.axiom_properties(model.axiom("WB_FIFO"))
        assert props
        for prop in props:
            text = prop.emit()
            # ~EdgeExists(a1 DX, a2 DX) became the reversed DX edge,
            # or-ed with the WB edge.
            assert " or " in text
            assert "PC_DX" in text and "PC_WB" in text

    def test_write_final_value_vacuous_at_rtl(self):
        """§4.2: DataFromFinalStateAtPA is conservatively false at RTL,
        so the Write_Final_Value axiom generates no assertions even for
        tests that pin final memory."""
        compiled = compile_test(get_test("n1"))
        generator = AssertionGenerator(
            model=multi_vscale_model(),
            compiled=compiled,
            node_mapping=MultiVScaleNodeMapping(compiled),
        )
        model = multi_vscale_model()
        assert generator.axiom_properties(model.axiom("Write_Final_Value")) == []

    def test_assertions_deduplicated(self, mp_generator):
        directives = mp_generator.generate()
        texts = [d.prop.emit() for d in directives]
        assert len(texts) == len(set(texts))

    def test_assertion_names_unique_and_sanitized(self, mp_generator):
        names = [d.name for d in mp_generator.generate()]
        assert len(names) == len(set(names))
        assert all(name.replace("_", "").isalnum() for name in names)

    def test_total_order_axiom_produces_or_properties(self, mp_generator):
        model = multi_vscale_model()
        props = mp_generator.axiom_properties(model.axiom("DX_Total_Order"))
        # mp has 4 memory ops -> 6 unordered pairs.
        assert len(props) == 6
        for prop in props:
            assert " or " in prop.emit()


class TestLoadConstraintScoping:
    def test_constraints_attach_only_within_their_conjunct(self, mp_generator):
        """A load-value constraint from one Or branch must not leak into
        a sibling branch (the two branches assume different values)."""
        model = multi_vscale_model()
        props = mp_generator.axiom_properties(model.axiom("Read_Values"))
        both = next(
            t
            for t in (p.emit() for p in props)
            if "load_data_WB == 32'd0" in t and "load_data_WB == 32'd1" in t
        )
        left, right = both.split(" or ", 1)
        # One branch constrains to 0, the other to 1 — never both in one.
        for side in (left, right):
            assert not (
                "load_data_WB == 32'd0" in side and "load_data_WB == 32'd1" in side
            )
