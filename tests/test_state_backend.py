"""Dict vs. array state-backend equivalence.

The array backend (flat interned slot vectors + batched frontier
expansion, ``repro.rtl.design``) is a pure representation change: it
must produce bit-identical reachability graphs, verdicts, modeled
hours, counterexample traces, and VCD waveforms to the classic
dict/deepcopy backend.  These tests prove that contract over the
golden-verdict fixture tests on both memory variants, and pin the
representation-level wins the backend exists for (hash-consing,
compact pickles, snapshot/restore round-trips).

Normalization: wall-clock fields (``*seconds``) and the array-only
``state.*`` observability counters are stripped before comparison —
they are the *only* permitted divergence between backends.

Set ``RTLCHECK_STATE_BACKEND_FULL=1`` to sweep the full 56-test suite
on both memory variants (minutes); the default subset keeps CI fast.
"""

import json
import os
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RTLCheck, get_test, paper_suite
from repro.errors import ReproError
from repro.litmus import compile_test
from repro.mapping import MultiVScaleProgramMapping
from repro.rtl.design import StateInterner
from repro.rtl.vcd import render_vcd
from repro.sva import AssumptionChecker
from repro.verifier.outcomes import enumerate_design_outcomes
from repro.verifier.reach import ReachGraph
from repro.vscale.soc import MultiVScale

#: Representative subset: message-passing and store-buffering (the
#: canonical forbidden/permitted pair), a load-buffer shape, a 4-core
#: write-atomicity test, and an n-test with fences.
SUBSET = ["mp", "sb", "lb", "iwp24", "n4"]
VARIANTS = ["fixed", "buggy"]

FULL_SWEEP = os.environ.get("RTLCHECK_STATE_BACKEND_FULL") == "1"
SWEEP = [t.name for t in paper_suite()] if FULL_SWEEP else SUBSET


def _scrub(obj):
    """Drop wall-clock fields and array-only counters, recursively."""
    if isinstance(obj, dict):
        return {
            key: _scrub(value)
            for key, value in obj.items()
            if not (isinstance(key, str) and key.endswith("seconds"))
            and not (isinstance(key, str) and key.startswith("state."))
        }
    if isinstance(obj, list):
        return [_scrub(item) for item in obj]
    return obj


def _canonical(verification) -> str:
    return json.dumps(_scrub(verification.to_dict()), sort_keys=True)


def _build_full_graph(name, variant, backend):
    """Fully expand a ReachGraph under ``backend``; return (graph, design)."""
    compiled = compile_test(get_test(name))
    design = MultiVScale(compiled, variant, state_backend=backend)
    assumptions = MultiVScaleProgramMapping(compiled).all_assumptions()
    graph = ReachGraph(design, AssumptionChecker(assumptions))
    frontier = [graph.root]
    seen = {graph.root}
    while frontier:
        node = frontier.pop()
        for _index, _inputs, _frame, child in graph.live_successors(node):
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return graph, design


def _edge_shape(graph):
    """Backend-independent structural view: per-node edge lists with
    frames as plain dicts and children as node ids (snapshots are
    interned ids on one backend and nested tuples on the other, so
    they are deliberately not part of the shape)."""
    return [
        [
            None if edge is None else (dict(edge[0]), edge[1])
            for edge in graph.successors(node)
        ]
        for node in range(graph.num_nodes)
    ]


class TestVerdictEquivalence:
    """Full-pipeline agreement: graphs, verdicts, modeled hours."""

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("name", SWEEP)
    def test_serialized_verdicts_identical(self, name, variant):
        array_rc = RTLCheck(state_backend="array", observe=True)
        dict_rc = RTLCheck(state_backend="dict", observe=True)
        array = array_rc.verify_test(get_test(name), memory_variant=variant)
        seed = dict_rc.verify_test(get_test(name), memory_variant=variant)
        assert _canonical(array) == _canonical(seed), f"{name}/{variant}"
        assert array.modeled_hours == seed.modeled_hours
        assert array.graph_states == seed.graph_states
        assert array.graph_transitions == seed.graph_transitions

    def test_per_property_explorer_agrees(self):
        """The non-graph (per-property) explorer path batches too."""
        for name in ["mp", "sb"]:
            array_rc = RTLCheck(state_backend="array", use_reach_graph=False)
            dict_rc = RTLCheck(state_backend="dict", use_reach_graph=False)
            array = array_rc.verify_test(get_test(name))
            seed = dict_rc.verify_test(get_test(name))
            assert _canonical(array) == _canonical(seed), name

    def test_counterexample_vcd_identical(self):
        """Buggy-memory counterexamples render to byte-identical VCD."""
        traces = {}
        for backend in ("array", "dict"):
            rc = RTLCheck(state_backend=backend)
            result = rc.verify_test(get_test("mp"), memory_variant="buggy")
            failed = [
                p
                for p in result.properties
                if p.ground_truth.counterexample is not None
            ]
            assert failed, "buggy mp must produce a counterexample"
            traces[backend] = [
                [frame for _inputs, frame in p.ground_truth.counterexample]
                for p in failed
            ]
        assert len(traces["array"]) == len(traces["dict"])
        for array_trace, dict_trace in zip(traces["array"], traces["dict"]):
            assert render_vcd(array_trace) == render_vcd(dict_trace)

    def test_outcome_enumeration_agrees(self):
        """The architectural enumeration behind difftest's RTL oracle
        finds the same outcomes, states, and transition counts."""
        for variant in VARIANTS:
            compiled = compile_test(get_test("sb"))
            array = enumerate_design_outcomes(
                MultiVScale(compiled, variant, state_backend="array")
            )
            seed = enumerate_design_outcomes(
                MultiVScale(compiled, variant, state_backend="dict")
            )
            assert array.outcomes == seed.outcomes, variant
            assert array.complete == seed.complete
            assert array.states == seed.states
            assert array.transitions == seed.transitions
            assert array.drained_states == seed.drained_states


class TestGraphStructure:
    """Node-for-node, edge-for-edge agreement of the built graphs."""

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_graphs_isomorphic_by_construction_order(self, variant):
        array_graph, _ = _build_full_graph("mp", variant, "array")
        dict_graph, _ = _build_full_graph("mp", variant, "dict")
        assert array_graph.num_nodes == dict_graph.num_nodes
        assert array_graph.expanded_nodes == dict_graph.expanded_nodes
        assert array_graph.sim_transitions == dict_graph.sim_transitions
        assert _edge_shape(array_graph) == _edge_shape(dict_graph)

    def test_interning_bounds_resident_states(self):
        """Regression for the memory win: a full mp-suite build interns
        at most one flat tuple per discovered node (hash-consing), and
        never fewer than one per *distinct* design state."""
        for variant in VARIANTS:
            graph, design = _build_full_graph("mp", variant, "array")
            assert graph.expanded_nodes == graph.num_nodes
            assert 0 < design.states_interned <= graph.expanded_nodes

    def test_equal_snapshots_share_one_id(self):
        compiled = compile_test(get_test("mp"))
        design = MultiVScale(compiled, "fixed", state_backend="array")
        design.reset()
        first = design.snapshot()
        design.eval_comb({"arb_select": 0})
        design.tick()
        design.reset()
        second = design.snapshot()
        assert isinstance(first, int)
        assert first == second
        assert design.states_interned >= 1

    def test_array_graph_pickle_round_trips(self):
        """Pickled array-backend graphs rehydrate with identical
        structure and keep expanding; the interned form is more compact
        than the dict backend's nested-tuple snapshots."""
        array_graph, _ = _build_full_graph("mp", "fixed", "array")
        dict_graph, _ = _build_full_graph("mp", "fixed", "dict")
        blob = pickle.dumps(array_graph)
        assert len(blob) < len(pickle.dumps(dict_graph))
        revived = pickle.loads(blob)
        assert revived.num_nodes == array_graph.num_nodes
        assert _edge_shape(revived) == _edge_shape(array_graph)
        # The revived design's interner still resolves every node.
        for node in range(revived.num_nodes):
            assert revived.design._interner.state(revived.snap(node))


class TestSnapshotRestore:
    """Round-trip and injectivity of the flat encoding."""

    def _stepped(self, backend, schedule, name="mp"):
        compiled = compile_test(get_test(name))
        design = MultiVScale(compiled, "fixed", state_backend=backend)
        design.reset()
        for select in schedule:
            design.eval_comb({"arb_select": select})
            design.tick()
        return design

    def test_round_trip_preserves_behavior(self):
        """restore(snapshot()) resumes an identical execution."""
        schedule = [0, 1, 1, 0, 1, 0, 0, 1]
        design = self._stepped("array", schedule)
        saved = design.snapshot()
        reference = self._stepped("array", schedule)
        for select in [1, 0, 1, 1]:
            design.eval_comb({"arb_select": select})
            design.tick()
        design.restore(saved)
        for select in [0, 1, 0, 1, 1, 0]:
            resumed = dict(design.eval_comb({"arb_select": select}))
            expected = dict(reference.eval_comb({"arb_select": select}))
            design.tick()
            reference.tick()
            assert resumed == expected

    @given(
        prefix_a=st.lists(st.integers(0, 3), max_size=6),
        prefix_b=st.lists(st.integers(0, 3), max_size=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_flat_encoding_is_injective(self, prefix_a, prefix_b):
        """Two executions reach the same interned id exactly when the
        dict backend considers their states equal — the flat encoding
        loses nothing (bools, None sentinels, memory words)."""
        compiled = compile_test(get_test("sb"))
        array = MultiVScale(compiled, "fixed", state_backend="array")
        dict_ids = []
        array_ids = []
        for schedule in (prefix_a, prefix_b):
            array.reset()
            probe = self._stepped("dict", schedule, name="sb")
            for select in schedule:
                array.eval_comb({"arb_select": select})
                array.tick()
            array_ids.append(array.snapshot())
            dict_ids.append(probe.snapshot())
        assert (array_ids[0] == array_ids[1]) == (dict_ids[0] == dict_ids[1])

    @given(
        states=st.lists(
            st.tuples(*([st.integers(-(2**40), 2**40)] * 3)),
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_interner_is_stable_and_pickles(self, states):
        """intern() is idempotent, state() inverts it, and the compact
        pickle preserves every id assignment."""
        interner = StateInterner()
        ids = [interner.intern(state) for state in states]
        assert [interner.intern(state) for state in states] == ids
        assert [interner.state(sid) for sid in ids] == list(states)
        assert len(interner) == len(set(states))
        revived = pickle.loads(pickle.dumps(interner))
        assert len(revived) == len(interner)
        assert [revived.intern(state) for state in states] == ids
        assert [revived.state(sid) for sid in ids] == list(states)

    def test_corrupt_pickle_length_rejected(self):
        """A packed payload that cannot hold width x count vectors must
        raise instead of silently truncating the table."""
        interner = StateInterner()
        interner.intern((1, 2, 3))
        interner.intern((4, 5, 6))
        state = interner.__getstate__()
        state["packed"] = state["packed"][:-8]  # drop one slot
        with pytest.raises(ReproError):
            StateInterner.__new__(StateInterner).__setstate__(state)

    def test_duplicate_vectors_rejected(self):
        """Duplicate vectors in a pickle would renumber every later id
        (dict keeps the last), breaking the dense-id invariant node
        numbering relies on — must raise, never renumber."""
        from array import array as _array

        flat = _array("q", [7, 8, 9, 7, 8, 9])
        state = {"width": 3, "count": 2, "packed": flat.tobytes()}
        with pytest.raises(ReproError):
            StateInterner.__new__(StateInterner).__setstate__(state)

    def test_interleaved_intern_survives_round_trip(self):
        """Ids handed out before a pickle stay valid after it, and new
        interns continue the dense numbering."""
        interner = StateInterner()
        a = interner.intern((0, -1))
        b = interner.intern((5, 5))
        revived = pickle.loads(pickle.dumps(interner))
        assert revived.state(a) == (0, -1)
        assert revived.state(b) == (5, 5)
        c = revived.intern((9, 9))
        assert c == 2
        assert revived.intern((0, -1)) == a


class TestBackendSelection:
    """Plumbing: the backend is chosen at the RTLCheck/CLI layer."""

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            RTLCheck(state_backend="linked-list")

    def test_cli_flag(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["verify", "mp"])
        assert args.state_backend == "array"
        args = build_parser().parse_args(
            ["suite", "--state-backend", "dict"]
        )
        assert args.state_backend == "dict"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "mp", "--state-backend", "x"])

    def test_cache_keys_distinguish_backends(self):
        from repro.cache.keys import reach_key
        from repro.mapping import MultiVScaleProgramMapping as Mapping

        test = get_test("mp")
        keys = {
            reach_key(
                test=test,
                memory_variant="fixed",
                design_factory=MultiVScale,
                program_mapping_factory=Mapping,
                state_backend=backend,
            )
            for backend in ("array", "dict")
        }
        assert len(keys) == 2
