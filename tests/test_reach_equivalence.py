"""Cross-check: the cached-graph explorer is bit-identical to the
per-property explorer.

The engine model derives modeled JasperGold hours from the explorer's
transition counts, so :class:`repro.verifier.reach.GraphExplorer` must
reproduce :class:`repro.verifier.explorer.Explorer` exactly — verdicts,
bounds, ``states_explored``, per-layer work profiles, fired
assumptions, counterexample traces, and the resulting modeled hours —
or the Figure 13/14 numbers would drift.  These tests prove agreement
over the full 56-test suite and on the buggy-memory counterexample
path.
"""

import pytest

from repro import CONFIGS, RTLCheck, get_test, paper_suite
from repro.verifier import Budget, Explorer, GraphExplorer
from repro.verifier.config import EXPLORER_BUDGET


def _assert_explorations_equal(graph, seed, context):
    assert graph.verdict == seed.verdict, context
    assert graph.depth_completed == seed.depth_completed, context
    assert graph.states_explored == seed.states_explored, context
    assert graph.transitions == seed.transitions, context
    assert graph.layer_transitions == seed.layer_transitions, context
    assert graph.exhausted == seed.exhausted, context
    assert graph.fired_assumptions == seed.fired_assumptions, context
    assert graph.counterexample == seed.counterexample, context


def _assert_verifications_equal(graph, seed, name):
    assert graph.verified_by_cover == seed.verified_by_cover, name
    assert graph.cover_hours == seed.cover_hours, name
    _assert_explorations_equal(graph.cover, seed.cover, f"{name}:cover")
    assert graph.modeled_hours == seed.modeled_hours, name
    assert [p.name for p in graph.properties] == [
        p.name for p in seed.properties
    ], name
    for g, s in zip(graph.properties, seed.properties):
        context = f"{name}:{g.name}"
        assert g.status == s.status, context
        assert g.verdict.bound == s.verdict.bound, context
        assert g.verdict.engine == s.verdict.engine, context
        assert g.verdict.modeled_hours == s.verdict.modeled_hours, context
        assert g.verdict.transitions == s.verdict.transitions, context
        _assert_explorations_equal(g.ground_truth, s.ground_truth, context)


class TestFullSuiteEquivalence:
    def test_fixed_design_full_suite(self):
        """Old and new explorers agree on verdicts, bounds, fired
        assumptions, and modeled hours for all 56 tests."""
        graph_rc = RTLCheck(use_reach_graph=True)
        seed_rc = RTLCheck(use_reach_graph=False)
        for test in paper_suite():
            graph = graph_rc.verify_test(test)
            seed = seed_rc.verify_test(test)
            _assert_verifications_equal(graph, seed, test.name)

    def test_hybrid_config_sample(self):
        """The Hybrid engine configuration consumes the same ground
        truth, so a sample of tests must agree there too."""
        graph_rc = RTLCheck(config=CONFIGS["Hybrid"], use_reach_graph=True)
        seed_rc = RTLCheck(config=CONFIGS["Hybrid"], use_reach_graph=False)
        for name in ["mp", "iwp24", "iriw", "rfi000"]:
            graph = graph_rc.verify_test(get_test(name))
            seed = seed_rc.verify_test(get_test(name))
            _assert_verifications_equal(graph, seed, name)

    def test_buggy_design_counterexamples(self):
        """Counterexample traces (inputs and frames) replay identically
        through both explorers on the buggy memory."""
        graph_rc = RTLCheck(use_reach_graph=True)
        seed_rc = RTLCheck(use_reach_graph=False)
        for name in ["mp", "sb", "ssl"]:
            graph = graph_rc.verify_test(get_test(name), memory_variant="buggy")
            seed = seed_rc.verify_test(get_test(name), memory_variant="buggy")
            _assert_verifications_equal(graph, seed, name)


class TestExplorerLevelEquivalence:
    def _pair(self, name, variant="fixed"):
        from repro.litmus import compile_test
        from repro.mapping import MultiVScaleProgramMapping
        from repro.sva import AssumptionChecker
        from repro.vscale.soc import MultiVScale

        compiled = compile_test(get_test(name))
        assumptions = MultiVScaleProgramMapping(compiled).all_assumptions()
        seed = Explorer(
            MultiVScale(compiled, variant), AssumptionChecker(assumptions)
        )
        graph = GraphExplorer(
            MultiVScale(compiled, variant), AssumptionChecker(assumptions)
        )
        return graph, seed

    def test_cover_equivalence(self):
        graph, seed = self._pair("iwp24")
        _assert_explorations_equal(
            graph.cover_assumptions(EXPLORER_BUDGET),
            seed.cover_assumptions(EXPLORER_BUDGET),
            "iwp24:cover",
        )

    @pytest.mark.parametrize(
        "budget",
        [
            Budget(max_states=5, max_depth=3),
            Budget(max_states=10, max_depth=2),
            Budget(max_states=2_000_000, max_depth=4),
        ],
        ids=["tiny-states", "tiny-both", "depth-only"],
    )
    def test_truncated_budgets_agree(self, budget):
        """Budget-truncated walks stop at the same expansion in both
        explorers (the graph expands lazily, so a truncated walk never
        simulates states the per-property explorer would not have)."""
        graph, seed = self._pair("iwp24")
        _assert_explorations_equal(
            graph.cover_assumptions(budget),
            seed.cover_assumptions(budget),
            "iwp24:cover-budget",
        )

    def test_graph_is_reused_across_walks(self):
        """The second walk over the same GraphExplorer performs zero
        additional design simulation — the tentpole's whole point."""
        graph, _seed = self._pair("iwp24")
        graph.cover_assumptions(EXPLORER_BUDGET)
        sims_after_cover = graph.graph.sim_transitions
        assert sims_after_cover > 0
        graph.cover_assumptions(EXPLORER_BUDGET)
        assert graph.graph.sim_transitions == sims_after_cover
