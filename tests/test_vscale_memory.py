"""Tests for the V-scale data memory: the store-dropping bug and the fix."""

import pytest

from repro.vscale.memory import BuggyMemory, FixedMemory
from repro.vscale.params import DMEM_LOAD, DMEM_STORE

X, Y = 40, 41


class TestFixedMemory:
    def test_store_commits_one_cycle_after_data_phase(self):
        mem = FixedMemory({X: 0})
        mem.tick((0, DMEM_STORE, X), 0)  # address phase of store
        assert mem.read_word(X) == 0
        mem.tick(None, 7)  # data phase: core presents 7
        assert mem.read_word(X) == 7

    def test_load_reads_array_combinationally(self):
        mem = FixedMemory({X: 5})
        mem.tick((1, DMEM_LOAD, X), 0)
        assert mem.load_output() == 5

    def test_back_to_back_store_then_load(self):
        """The paper's fix: data written by a store in one cycle can be
        read by a load in the next cycle."""
        mem = FixedMemory({X: 0})
        mem.tick((0, DMEM_STORE, X), 0)     # store addr phase
        mem.tick((1, DMEM_LOAD, X), 9)      # store data phase + load addr phase
        assert mem.load_output() == 9       # load data phase sees the store

    def test_successive_stores_both_commit(self):
        mem = FixedMemory({X: 0, Y: 0})
        mem.tick((0, DMEM_STORE, X), 0)
        mem.tick((0, DMEM_STORE, Y), 1)  # X's data phase, Y's addr phase
        mem.tick(None, 2)                # Y's data phase
        assert mem.read_word(X) == 1
        assert mem.read_word(Y) == 2

    def test_load_output_zero_when_no_pending_load(self):
        mem = FixedMemory({X: 3})
        assert mem.load_output() == 0
        mem.tick((0, DMEM_STORE, X), 0)
        assert mem.load_output() == 0

    def test_snapshot_restore(self):
        mem = FixedMemory({X: 0})
        mem.tick((0, DMEM_STORE, X), 0)
        snap = mem.snapshot()
        mem.tick(None, 5)
        assert mem.read_word(X) == 5
        mem.restore(snap)
        assert mem.read_word(X) == 0
        mem.tick(None, 5)
        assert mem.read_word(X) == 5

    def test_reset_restores_initial_contents(self):
        mem = FixedMemory({X: 4})
        mem.tick((0, DMEM_STORE, X), 0)
        mem.tick(None, 9)
        mem.reset()
        assert mem.read_word(X) == 4
        assert mem.pending is None


class TestBuggyMemory:
    def test_single_store_lands_in_wdata(self):
        mem = BuggyMemory({X: 0})
        mem.tick((0, DMEM_STORE, X), 0)   # addr phase
        mem.tick(None, 7)                 # data phase -> wdata
        assert mem.wdata == 7 and mem.waddr == X and mem.wvalid
        assert mem.read_word(X) == 0      # array not yet updated

    def test_load_bypasses_from_wdata(self):
        mem = BuggyMemory({X: 0})
        mem.tick((0, DMEM_STORE, X), 0)
        mem.tick((1, DMEM_LOAD, X), 7)    # store data phase + load addr
        assert mem.load_output() == 7     # bypass from the store buffer

    def test_successive_stores_drop_the_first(self):
        """Figure 12: if two stores start in successive cycles, the
        memory pushes the *stale* wdata into the first store's slot."""
        mem = BuggyMemory({X: 0, Y: 0})
        mem.tick((0, DMEM_STORE, X), 0)   # cycle 2: St x addr phase
        mem.tick((0, DMEM_STORE, Y), 1)   # cycle 3: St y addr + St x data
        # The push used wdata's old value (0), so x is corrupted:
        assert mem.read_word(X) == 0
        mem.tick(None, 2)                 # St y data phase
        assert mem.wdata == 2 and mem.waddr == Y
        # y's value only lives in wdata; x's value 1 was lost entirely.
        assert mem.read_word(Y) == 0

    def test_spaced_stores_do_not_drop(self):
        mem = BuggyMemory({X: 0, Y: 0})
        mem.tick((0, DMEM_STORE, X), 0)
        mem.tick(None, 1)                 # St x data phase
        mem.tick((0, DMEM_STORE, Y), 0)   # push x (wdata now correct)
        assert mem.read_word(X) == 1
        mem.tick(None, 2)
        assert mem.wdata == 2

    def test_load_transaction_does_not_push(self):
        mem = BuggyMemory({X: 0, Y: 5})
        mem.tick((0, DMEM_STORE, X), 0)
        mem.tick((1, DMEM_LOAD, Y), 1)    # load txn: no push
        assert mem.read_word(X) == 0      # x still unpushed (in wdata)
        assert mem.load_output() == 5

    def test_same_address_successive_stores_mask_the_bug(self):
        """Dropping the first of two same-address stores is architecturally
        invisible (the second overwrites it) — why the bug needed litmus
        tests to find."""
        mem = BuggyMemory({X: 0})
        mem.tick((0, DMEM_STORE, X), 0)
        mem.tick((0, DMEM_STORE, X), 1)
        mem.tick((1, DMEM_LOAD, X), 2)
        assert mem.load_output() == 2     # bypass returns the last store

    def test_ready_hardcoded_high(self):
        assert BuggyMemory().ready == 1
        assert FixedMemory().ready == 1

    def test_snapshot_includes_store_buffer(self):
        mem = BuggyMemory({X: 0})
        mem.tick((0, DMEM_STORE, X), 0)
        mem.tick(None, 7)
        snap = mem.snapshot()
        mem.tick((0, DMEM_STORE, Y), 0)
        mem.restore(snap)
        assert mem.wdata == 7 and mem.waddr == X and mem.wvalid == 1
        assert mem.pending is None
