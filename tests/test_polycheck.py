"""Per-execution consistency checking (`repro.memodel.polycheck`) and
the RTL trace-harvesting layer that feeds it.

Ground truth throughout is the exhaustive enumeration oracles: a trace
is SC/TSO-conformant iff its architectural outcome is a member of the
corresponding enumerated outcome set for the same program.  The suite-
and fuzz-batch agreement tests check both directions (members accepted,
mutated non-members rejected), so polycheck has no room for false
positives or false negatives relative to the oracles it rides along.
"""

import random

import pytest

from repro import get_test, paper_suite
from repro.errors import ReproError
from repro.litmus.test import LitmusTest, Outcome, fence, load, store
from repro.memodel import (
    Trace,
    check_trace,
    enumerate_sc_outcomes,
    enumerate_tso_outcomes,
)
from repro.vscale.trace import harvest_traces


def _trace(threads, load_values, final_memory, initial=None):
    return Trace.of(threads, load_values, final_memory, initial)


# ---------------------------------------------------------------------------
# layer 1: value feasibility
# ---------------------------------------------------------------------------


class TestValueFeasibility:
    def test_dropped_store_rejected(self):
        # The §7.1 V-scale bug in miniature: one store, but memory still
        # holds the initial value.  No model check needed.
        verdict = check_trace(_trace([[store("x", 1)]], {}, {"x": 0}))
        assert not verdict.conformant
        assert verdict.closure_rejected
        assert verdict.search_states == 0
        assert "store was lost" in verdict.reason

    def test_load_of_unwritten_value_rejected(self):
        trace = _trace(
            [[store("x", 1)], [load("x", "r1")]], {"r1": 7}, {"x": 1}
        )
        verdict = check_trace(trace)
        assert not verdict.conformant
        assert "no store writes" in verdict.reason

    def test_initial_value_is_always_readable(self):
        trace = _trace([[load("x", "r1")]], {"r1": 0}, {"x": 0})
        assert check_trace(trace).conformant

    def test_nonzero_initial_memory_respected(self):
        trace = _trace(
            [[load("x", "r1")]], {"r1": 5}, {"x": 5}, initial={"x": 5}
        )
        assert check_trace(trace).conformant
        # ...and the default-initial version of the same trace fails.
        assert not check_trace(
            _trace([[load("x", "r1")]], {"r1": 5}, {"x": 5})
        ).conformant

    def test_unstored_location_must_keep_initial_value(self):
        trace = _trace([[load("x", "r1")]], {"r1": 0}, {"x": 3})
        verdict = check_trace(trace)
        assert not verdict.conformant
        assert "never" in verdict.reason


class TestMalformedTraces:
    def test_missing_load_value_raises(self):
        with pytest.raises(ReproError, match="r1"):
            check_trace(_trace([[load("x", "r1")]], {}, {"x": 0}))

    def test_missing_final_memory_raises(self):
        with pytest.raises(ReproError, match="final value"):
            check_trace(_trace([[store("x", 1)]], {}, {}))

    def test_unknown_model_raises(self):
        trace = _trace([[store("x", 1)]], {}, {"x": 1})
        with pytest.raises(ReproError, match="psc"):
            check_trace(trace, model="psc")

    def test_budget_trip_raises_not_rejects(self):
        # mp's conformant trace needs a real search; a 1-state budget
        # must surface as an error, never as a non-conformance verdict.
        mp = get_test("mp")
        trace = Trace.of(
            mp.threads, {"r1": 1, "r2": 1}, {"x": 1, "y": 1}
        )
        with pytest.raises(ReproError, match="exceeded"):
            check_trace(trace, max_states=1)


# ---------------------------------------------------------------------------
# SC vs TSO separation on the classic shapes
# ---------------------------------------------------------------------------


def _sb_threads():
    return [
        [store("x", 1), load("y", "r1")],
        [store("y", 1), load("x", "r2")],
    ]


class TestModelSeparation:
    def test_sb_both_zero_is_tso_but_not_sc(self):
        trace = _trace(
            _sb_threads(), {"r1": 0, "r2": 0}, {"x": 1, "y": 1}
        )
        assert not check_trace(trace, "sc").conformant
        assert check_trace(trace, "tso").conformant

    def test_fenced_sb_both_zero_is_not_tso_either(self):
        threads = [
            [store("x", 1), fence(), load("y", "r1")],
            [store("y", 1), fence(), load("x", "r2")],
        ]
        trace = _trace(threads, {"r1": 0, "r2": 0}, {"x": 1, "y": 1})
        assert not check_trace(trace, "tso").conformant

    def test_mp_forbidden_outcome_rejected_by_closure_or_search(self):
        mp = get_test("mp")
        trace = Trace.of(mp.threads, {"r1": 1, "r2": 0}, {"x": 1, "y": 1})
        verdict = check_trace(trace, "sc")
        assert not verdict.conformant

    def test_mp_allowed_outcome_accepted_with_witness(self):
        mp = get_test("mp")
        trace = Trace.of(mp.threads, {"r1": 1, "r2": 1}, {"x": 1, "y": 1})
        verdict = check_trace(trace, "sc")
        assert verdict.conformant
        assert verdict.search_states > 0
        assert verdict.events == mp.instruction_count()


# ---------------------------------------------------------------------------
# agreement with the exhaustive oracles (the soundness/completeness
# property the trace-vs-enumeration invariant depends on)
# ---------------------------------------------------------------------------


def _mutants(test, outcomes, rng, per_outcome=2):
    """Perturb enumerated outcomes into nearby (usually non-member)
    candidates; membership is re-derived, so mutants that happen to stay
    members still test agreement."""
    pool = sorted(
        {0}
        | {op.value for t in test.threads for op in t if op.is_store}
        | {3}
    )
    mutated = []
    for regs, mem in outcomes:
        for _ in range(per_outcome):
            new_regs, new_mem = dict(regs), dict(mem)
            cells = [("r", k) for k in new_regs] + [("m", k) for k in new_mem]
            if not cells:
                continue
            kind, key = rng.choice(cells)
            target = new_regs if kind == "r" else new_mem
            target[key] = rng.choice([v for v in pool if v != target[key]])
            mutated.append(
                (tuple(sorted(new_regs.items())), tuple(sorted(new_mem.items())))
            )
    return mutated


def _assert_agreement(test, model, enumerated):
    candidates = set(enumerated)
    rng = random.Random(f"polycheck-mutants:{test.name}:{model}")
    candidates.update(_mutants(test, enumerated, rng))
    for outcome in sorted(candidates):
        trace = Trace.from_outcome(test, outcome)
        verdict = check_trace(trace, model)
        member = outcome in enumerated
        assert verdict.conformant == member, (
            f"{test.name} [{model}]: polycheck said "
            f"conformant={verdict.conformant} but enumeration membership "
            f"is {member} for {outcome} ({verdict.reason})"
        )


class TestEnumerationAgreement:
    @pytest.mark.parametrize(
        "test", paper_suite(), ids=lambda t: t.name
    )
    def test_suite_agreement_sc(self, test):
        _assert_agreement(test, "sc", enumerate_sc_outcomes(test))

    @pytest.mark.parametrize(
        "test", paper_suite(), ids=lambda t: t.name
    )
    def test_suite_agreement_tso(self, test):
        _assert_agreement(test, "tso", enumerate_tso_outcomes(test))

    def test_fuzz_batch_agreement_both_models(self):
        from repro.difftest.generate import FuzzGenerator

        for test in FuzzGenerator(3).suite(30):
            _assert_agreement(test, "sc", enumerate_sc_outcomes(test))
            _assert_agreement(test, "tso", enumerate_tso_outcomes(test))


# ---------------------------------------------------------------------------
# RTL trace harvesting
# ---------------------------------------------------------------------------


class TestHarvesting:
    def test_fixed_memory_traces_are_sc_members(self):
        mp = get_test("mp")
        sc = enumerate_sc_outcomes(mp)
        harvest = harvest_traces(mp, "fixed", samples=8, seed=1)
        assert harvest.traces
        assert harvest.undrained == 0
        for trace in harvest.traces:
            assert check_trace(trace, "sc").conformant
            assert trace.outcome in sc

    def test_buggy_memory_yields_nonconformant_traces(self):
        # The store-dropping bug shows up in sampled executions, and
        # polycheck flags each one — no enumeration anywhere.
        mp = get_test("mp")
        harvest = harvest_traces(mp, "buggy", samples=8, seed=0)
        verdicts = [check_trace(t, "sc") for t in harvest.traces]
        assert any(not v.conformant for v in verdicts)

    def test_harvest_is_deterministic_in_seed(self):
        sb = get_test("sb")
        a = harvest_traces(sb, "fixed", samples=6, seed=4)
        b = harvest_traces(sb, "fixed", samples=6, seed=4)
        assert a.traces == b.traces
        assert (a.sampled, a.undrained, a.cycles) == (
            b.sampled,
            b.undrained,
            b.cycles,
        )

    def test_traces_are_deduplicated(self):
        sb = get_test("sb")
        harvest = harvest_traces(sb, "fixed", samples=8, seed=2)
        assert len(harvest.traces) == len(set(harvest.traces))
        assert len(harvest.traces) <= harvest.sampled

    def test_long_program_harvest_stays_polynomial(self):
        # 16 ops/thread with unique store values: the closure pins the
        # coherence order, so the witness search visits only a handful
        # of states even though enumeration would be astronomically big.
        threads = [
            [store("x", i + 1) for i in range(8)]
            + [load("y", f"r{i}") for i in range(8)],
            [store("y", i + 1) for i in range(8)]
            + [load("x", f"r{i + 8}") for i in range(8)],
        ]
        test = LitmusTest.of("long16", threads, Outcome.of({}))
        harvest = harvest_traces(test, "fixed", samples=4, seed=0)
        assert harvest.undrained == 0
        assert harvest.traces
        for trace in harvest.traces:
            verdict = check_trace(trace, "sc")
            assert verdict.conformant
            assert verdict.search_states < 1000
