"""Tests for sequence->NFA compilation, including the paper's §3.3
semantics: the naive unbounded-delay edge encoding fails to refute a
reversed-order trace, while RTLCheck's delay-exclusion encoding does."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sva import (
    BConst,
    BNot,
    SBool,
    SCat,
    SRepeat,
    Sig,
    bor,
    compile_sequence,
    scat,
)

SRC = Sig("src")
DST = Sig("dst")


def frames(*specs):
    """Each spec is a set of signal names that are 1 in that cycle."""
    return [{name: 1 for name in spec} for spec in specs]


def run_nfa(nfa, trace):
    """Returns (matched_at, failed_at): first cycle of acceptance and of
    live-set exhaustion (None if never)."""
    states = nfa.initial()
    matched = failed = None
    for cycle, frame in enumerate(trace):
        states = nfa.step(states, frame)
        if matched is None and nfa.accepts(states):
            matched = cycle
        if failed is None and not states:
            failed = cycle
            break
    return matched, failed


class TestBasicMatching:
    def test_single_bool(self):
        nfa = compile_sequence(SBool(Sig("a")))
        matched, failed = run_nfa(nfa, frames({"a"}))
        assert matched == 0

    def test_single_bool_fails(self):
        nfa = compile_sequence(SBool(Sig("a")))
        matched, failed = run_nfa(nfa, frames(set()))
        assert matched is None and failed == 0

    def test_concatenation(self):
        nfa = compile_sequence(scat(SBool(Sig("a")), SBool(Sig("b"))))
        matched, failed = run_nfa(nfa, frames({"a"}, {"b"}))
        assert matched == 1

    def test_delay_two(self):
        # a ##2 b: one free cycle between.
        nfa = compile_sequence(SCat(SBool(Sig("a")), SBool(Sig("b")), delay=2))
        matched, _ = run_nfa(nfa, frames({"a"}, set(), {"b"}))
        assert matched == 2
        matched, failed = run_nfa(nfa, frames({"a"}, {"b"}, set()))
        assert matched is None

    def test_repeat_exact(self):
        nfa = compile_sequence(SRepeat(Sig("a"), 2, 2))
        matched, _ = run_nfa(nfa, frames({"a"}, {"a"}))
        assert matched == 1

    def test_repeat_range(self):
        nfa = compile_sequence(scat(SRepeat(Sig("a"), 0, 2), SBool(Sig("b"))))
        for lead in range(3):
            trace = frames(*([{"a"}] * lead + [{"b"}]))
            matched, _ = run_nfa(nfa, trace)
            assert matched == lead

    def test_unbounded_repeat(self):
        nfa = compile_sequence(scat(SRepeat(Sig("a"), 0, None), SBool(Sig("b"))))
        trace = frames(*([{"a"}] * 7 + [{"b"}]))
        matched, _ = run_nfa(nfa, trace)
        assert matched == 7

    def test_empty_match_detection(self):
        nfa = compile_sequence(SRepeat(Sig("a"), 0, None))
        assert nfa.starts_accepting()
        nfa2 = compile_sequence(SBool(Sig("a")))
        assert not nfa2.starts_accepting()

    def test_can_loop_forever(self):
        nfa = compile_sequence(scat(SRepeat(Sig("a"), 0, None), SBool(Sig("b"))))
        states = nfa.initial()
        # With 'a' held forever, acceptance is never reached.
        assert not nfa.can_loop_forever(states, {"a": 1})
        # With 'b' available, one more step accepts.
        assert nfa.can_loop_forever(states, {"b": 1})


class TestPaperSection33:
    """Figure 6's trace: the events occur in the order dst (St x @WB)
    then src (Ld x=0 @WB never happens; the load returns 1)."""

    def reversed_trace(self):
        # cycle 0-1: nothing; cycle 2: dst occurs (store WB); cycle 3:
        # the src event's instruction is at WB but with the wrong value
        # (load returns 1, src requires 0) -> 'src_any' high, 'src' low.
        return [
            {},
            {},
            {"dst": 1, "dst_any": 1},
            {"src_any": 1},
            {},
        ]

    def naive_edge(self):
        # ##[0:$] src ##[1:$] dst
        return scat(
            SRepeat(BConst(True), 0, None),
            SBool(SRC),
            SRepeat(BConst(True), 0, None),
            SBool(DST),
        )

    def strict_edge(self):
        # RTLCheck's §4.3 encoding: delays exclude events of interest
        # (matching the instruction/event regardless of data values).
        no_event = BNot(bor(Sig("src_any"), Sig("dst_any")))
        return scat(
            SRepeat(no_event, 0, None),
            SBool(SRC),
            SRepeat(no_event, 0, None),
            SBool(DST),
        )

    def test_naive_encoding_misses_the_violation(self):
        nfa = compile_sequence(self.naive_edge())
        matched, failed = run_nfa(nfa, self.reversed_trace())
        # The unbounded delay happily swallows the dst event: the
        # live-state set never empties, so no counterexample.
        assert matched is None
        assert failed is None

    def test_strict_encoding_refutes_the_violation(self):
        nfa = compile_sequence(self.strict_edge())
        matched, failed = run_nfa(nfa, self.reversed_trace())
        assert matched is None
        assert failed == 2  # the cycle dst occurs before src

    def test_strict_encoding_still_matches_correct_order(self):
        nfa = compile_sequence(self.strict_edge())
        trace = [
            {},
            {"src": 1, "src_any": 1},
            {},
            {"dst": 1, "dst_any": 1},
        ]
        matched, failed = run_nfa(nfa, trace)
        assert matched == 3 and failed is None

    def test_strict_encoding_rejects_wrong_value_event(self):
        """An event of interest with the wrong data value kills the
        delay cycles (the delay predicate ignores values)."""
        nfa = compile_sequence(self.strict_edge())
        trace = [
            {"src_any": 1},  # the load is at WB but with the wrong value
            {"dst": 1, "dst_any": 1},
        ]
        matched, failed = run_nfa(nfa, trace)
        assert failed == 0


# ---------------------------------------------------------------------------
# Property-based: NFA matching equals a brute-force reference matcher.
# ---------------------------------------------------------------------------


def reference_match_lengths(seq, trace, start=0):
    """All k such that seq matches trace[start:start+k] exactly."""
    from repro.sva.ast import SBool as B, SCat as C, SRepeat as R

    if isinstance(seq, B):
        if start < len(trace) and seq.expr.evaluate(trace[start]):
            return {1}
        return set()
    if isinstance(seq, R):
        lengths = set()
        hi = seq.hi if seq.hi is not None else len(trace) - start
        # k repetitions consume k cycles each matching expr.
        for k in range(seq.lo, max(seq.lo, hi) + 1):
            if start + k > len(trace):
                break
            if all(seq.expr.evaluate(trace[start + j]) for j in range(k)):
                if k >= seq.lo:
                    lengths.add(k)
            else:
                break
        if seq.lo == 0:
            lengths.add(0)
        return lengths
    if isinstance(seq, C):
        out = set()
        for left_len in reference_match_lengths(seq.left, trace, start):
            gap = seq.delay - 1
            for right_len in reference_match_lengths(
                seq.right, trace, start + left_len + gap
            ):
                out.add(left_len + gap + right_len)
        return out
    raise AssertionError(f"unhandled {seq!r}")


@st.composite
def small_sequences(draw, depth=0):
    sig = st.sampled_from(["a", "b"])
    choice = draw(st.integers(min_value=0, max_value=3 if depth < 2 else 1))
    if choice == 0:
        return SBool(Sig(draw(sig)))
    if choice == 1:
        lo = draw(st.integers(min_value=0, max_value=2))
        hi = draw(st.one_of(st.none(), st.integers(min_value=lo, max_value=3)))
        return SRepeat(Sig(draw(sig)), lo, hi)
    left = draw(small_sequences(depth=depth + 1))
    right = draw(small_sequences(depth=depth + 1))
    return SCat(left, right, delay=draw(st.integers(min_value=1, max_value=2)))


@settings(max_examples=120, deadline=None)
@given(
    small_sequences(),
    st.lists(
        st.fixed_dictionaries({"a": st.integers(0, 1), "b": st.integers(0, 1)}),
        min_size=1,
        max_size=6,
    ),
)
def test_nfa_agrees_with_reference_matcher(seq, trace):
    nfa = compile_sequence(seq)
    states = nfa.initial()
    # Zero-length match = starts_accepting.
    expected_zero = 0 in reference_match_lengths(seq, trace, 0)
    assert nfa.starts_accepting() == expected_zero
    for k in range(1, len(trace) + 1):
        states = nfa.step(states, trace[k - 1])
        expected = k in reference_match_lengths(seq, trace, 0)
        assert nfa.accepts(states) == expected, (seq.emit(), k)
