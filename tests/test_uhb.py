"""Tests for µhb graphs and the Check-style enumeration solver."""

import pytest

from repro.errors import UspecError
from repro.litmus import compile_test, get_test, paper_suite
from repro.memodel import sc_allowed
from repro.uhb import (
    MicroarchResult,
    UhbGraph,
    UhbSolver,
    cyclic_witness_graph,
    ground_axioms,
    instruction_labels,
    microarch_observable,
    to_nnf,
)
from repro.uspec import GroundEdge, multi_vscale_model
from repro.uspec.ast import And, Not, Or, Truth

A = (1, "WB")
B = (2, "WB")
C = (3, "WB")


def add(src, dst):
    return GroundEdge(kind="add", src=src, dst=dst)


def exists(src, dst):
    return GroundEdge(kind="exists", src=src, dst=dst)


class TestGraph:
    def test_add_and_query(self):
        g = UhbGraph()
        g.add_edge(A, B, "po", "black")
        assert g.has_edge(A, B)
        assert not g.has_edge(B, A)
        assert g.nodes() == {A, B}

    def test_path_and_cycle_detection(self):
        g = UhbGraph()
        g.add_edge(A, B)
        g.add_edge(B, C)
        assert g.has_path(A, C)
        assert g.would_close_cycle(C, A)
        assert not g.would_close_cycle(A, C)
        assert g.is_acyclic()
        g.add_edge(C, A)
        assert not g.is_acyclic()

    def test_topological_order(self):
        g = UhbGraph()
        g.add_edge(A, B)
        g.add_edge(B, C)
        order = g.topological_order()
        assert order.index(A) < order.index(B) < order.index(C)

    def test_topological_order_none_for_cycle(self):
        g = UhbGraph()
        g.add_edge(A, B)
        g.add_edge(B, A)
        assert g.topological_order() is None

    def test_find_cycle(self):
        g = UhbGraph()
        g.add_edge(A, B)
        g.add_edge(B, C)
        g.add_edge(C, A)
        cycle = g.find_cycle()
        assert cycle is not None
        assert set(cycle) <= {A, B, C}

    def test_find_cycle_none_when_acyclic(self):
        g = UhbGraph()
        g.add_edge(A, B)
        assert g.find_cycle() is None

    def test_remove_edge(self):
        g = UhbGraph()
        g.add_edge(A, B)
        g.remove_edge(A, B)
        assert not g.has_edge(A, B)
        assert not g.would_close_cycle(B, A)

    def test_copy_is_independent(self):
        g = UhbGraph()
        g.add_edge(A, B)
        dup = g.copy()
        dup.add_edge(B, C)
        assert not g.has_edge(B, C)

    def test_to_dot(self):
        g = UhbGraph()
        g.add_edge(A, B, "fr", "red")
        dot = g.to_dot(instr_names={1: "i1: [x] <- 1"})
        assert "digraph" in dot
        assert 'color="red"' in dot
        assert "i1" in dot


class TestNnf:
    def test_double_negation(self):
        f = Not(Not(add(A, B)))
        assert to_nnf(f) == add(A, B)

    def test_de_morgan(self):
        f = Not(And((add(A, B), add(B, C))))
        out = to_nnf(f)
        assert isinstance(out, Or)
        assert all(isinstance(op, Not) for op in out.operands)

    def test_truth_negation(self):
        assert to_nnf(Not(Truth(True))) == Truth(False)


class TestSolverToyCases:
    def test_single_acyclic_choice_observable(self):
        solver = UhbSolver({"a": add(A, B)})
        result = solver.solve()
        assert result.observable
        assert result.witness.has_edge(A, B)

    def test_forced_cycle_unobservable(self):
        solver = UhbSolver({"a": add(A, B), "b": add(B, A)})
        result = solver.solve()
        assert not result.observable

    def test_disjunction_explores_both_orders(self):
        solver = UhbSolver({"order": Or((add(A, B), add(B, A)))})
        result = solver.solve(find_all=True)
        assert result.observable
        assert result.acyclic_graphs == 2

    def test_horn_rule_fires_on_premise(self):
        # edge(A,B) unconditionally; (~exists(A,B) \/ add(B,C)) must add.
        solver = UhbSolver(
            {
                "base": add(A, B),
                "rule": Or((Not(exists(A, B)), add(B, C))),
            }
        )
        result = solver.solve()
        assert result.observable
        assert result.witness.has_edge(B, C)

    def test_horn_rule_idle_without_premise(self):
        solver = UhbSolver({"rule": Or((Not(exists(A, B)), add(B, C)))})
        result = solver.solve()
        assert result.observable
        assert not result.witness.has_edge(B, C)

    def test_exists_obligation_fails_without_justification(self):
        # EdgeExists alone cannot conjure the edge into the graph.
        solver = UhbSolver({"a": exists(A, B)})
        result = solver.solve(find_all=True)
        assert not result.observable
        assert result.consistent_graphs == 0

    def test_negated_exists_obligation(self):
        solver = UhbSolver({"a": add(A, B), "b": Not(exists(A, B))})
        result = solver.solve(find_all=True)
        assert not result.observable

    def test_unsatisfiable_axiom(self):
        solver = UhbSolver({"a": Truth(False)})
        assert not solver.solve().observable

    def test_chained_horn_rules_reach_fixpoint(self):
        solver = UhbSolver(
            {
                "base": add(A, B),
                "r1": Or((Not(exists(A, B)), add(B, C))),
                "r2": Or((Not(exists(B, C)), add(A, C))),
            }
        )
        result = solver.solve()
        assert result.observable
        assert result.witness.has_edge(A, C)

    def test_symbolic_load_value_rejected(self):
        from repro.uspec import LoadValue

        with pytest.raises(UspecError):
            UhbSolver({"a": LoadValue(1, 0)}).solve()


class TestMicroarchVerification:
    def test_mp_unobservable(self):
        result = microarch_observable(multi_vscale_model(), get_test("mp"))
        assert not result.observable
        assert "unobservable" in result.summary()

    def test_allowed_outcome_observable_with_witness(self):
        result = microarch_observable(multi_vscale_model(), get_test("iwp24"))
        assert result.observable
        assert result.witness is not None
        assert result.witness.is_acyclic()

    def test_cyclic_witness_for_mp_contains_wb_cycle(self):
        """The Figure 3a graph: mp's forbidden outcome yields a cyclic
        consistent graph through the four Writeback nodes."""
        graph = cyclic_witness_graph(multi_vscale_model(), get_test("mp"))
        assert graph is not None
        assert not graph.is_acyclic()
        cycle = graph.find_cycle()
        assert cycle

    def test_instruction_labels(self):
        compiled = compile_test(get_test("mp"))
        labels = instruction_labels(compiled)
        assert labels[1] == "i1: [x] <- 1"

    def test_rtl_mode_grounding_rejected_by_solver(self):
        compiled = compile_test(get_test("mp"))
        formulas = ground_axioms(multi_vscale_model(), compiled, mode="rtl")
        with pytest.raises(UspecError):
            UhbSolver(formulas).solve()

    @pytest.mark.slow
    def test_microarch_matches_sc_oracle_on_full_suite(self):
        model = multi_vscale_model()
        for test in paper_suite():
            result = microarch_observable(model, test)
            assert result.observable == sc_allowed(test), test.name
