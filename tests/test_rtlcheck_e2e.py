"""End-to-end RTLCheck flow tests (the paper's headline results)."""

import pytest

from repro import RTLCheck, FULL_PROOF, HYBRID, get_test
from repro.rtl.trace import render_timing_diagram


@pytest.fixture(scope="module")
def rtlcheck():
    return RTLCheck()


class TestGeneration:
    def test_generation_takes_under_a_second(self, rtlcheck):
        """The paper reports assertion/assumption generation 'takes just
        seconds per test'; ours is well under one."""
        generated = rtlcheck.generate(get_test("mp"))
        assert generated.generation_seconds < 1.0
        assert generated.assumptions and generated.assertions

    def test_sva_file_structure(self, rtlcheck):
        generated = rtlcheck.generate(get_test("mp"))
        text = generated.sva_text
        assert "reg first;" in text
        assert "assume property (@(posedge clk)" in text
        assert "assert property (@(posedge clk)" in text
        assert text.count("assert property") == len(generated.assertions)
        assert text.count("assume property") == len(generated.assumptions)

    def test_all_assertions_named_after_test_and_axiom(self, rtlcheck):
        generated = rtlcheck.generate(get_test("mp"))
        assert all(d.name.startswith("mp_") for d in generated.assertions)
        assert any("Read_Values" in d.name for d in generated.assertions)


class TestBugDiscovery:
    """Paper §7.1: the V-scale store-dropping bug, found via mp."""

    def test_buggy_memory_yields_read_values_counterexample(self, rtlcheck):
        result = rtlcheck.verify_test(get_test("mp"), memory_variant="buggy")
        assert result.bug_found
        assert not result.verified
        assert any("Read_Values" in p.name for p in result.counterexamples)

    def test_counterexample_trace_shows_dropped_store(self, rtlcheck):
        result = rtlcheck.verify_test(get_test("mp"), memory_variant="buggy")
        cex = result.counterexamples[0].counterexample
        assert cex is not None
        frames = [frame for _inputs, frame in cex]
        # Figure 12: the wdata store buffer is active in the trace and
        # the corrupted x slot reads 0 while the load of y returns 1.
        assert any(frame.get("mem.wvalid") for frame in frames)
        # Renders as a timing diagram without error.
        text = render_timing_diagram(frames, ["core[0].PC_WB", "mem.wdata"])
        assert "mem.wdata" in text

    def test_buggy_verification_not_shortcut_by_cover(self, rtlcheck):
        """On the buggy design mp's 'forbidden' outcome is reachable, so
        the final-value assumption fires and assertions must run."""
        result = rtlcheck.verify_test(get_test("mp"), memory_variant="buggy")
        assert not result.verified_by_cover
        assert "final_values" in result.cover.fired_assumptions

    def test_single_core_bug_invisible_to_ssl(self, rtlcheck):
        """The bug needs two stores to different addresses in successive
        cycles; ssl (store->load, same address) masks it via the wdata
        bypass — so ssl still verifies on the buggy design."""
        result = rtlcheck.verify_test(get_test("ssl"), memory_variant="buggy")
        assert result.verified


class TestFixedDesign:
    def test_mp_verified_by_unreachable_cover(self, rtlcheck):
        result = rtlcheck.verify_test(get_test("mp"))
        assert result.verified
        assert result.verified_by_cover
        assert result.cover_hours < 1.0
        assert "unreachable" in result.summary()

    def test_mp_all_properties_proven_without_shortcut(self, rtlcheck):
        result = rtlcheck.verify_test(
            get_test("mp"), skip_cover_shortcut=True
        )
        assert result.verified
        assert not result.bug_found
        assert result.proven_fraction == 1.0

    def test_allowed_outcome_goes_through_proof_phase(self, rtlcheck):
        result = rtlcheck.verify_test(get_test("iwp24"))
        assert not result.verified_by_cover
        assert result.verified
        assert result.properties

    def test_lb_fast_verification(self, rtlcheck):
        """lb is one of the paper's under-4-minute tests."""
        result = rtlcheck.verify_test(get_test("lb"))
        assert result.verified_by_cover
        assert result.cover_hours < 0.07

    def test_modeled_runtime_capped_at_eleven_hours(self, rtlcheck):
        result = rtlcheck.verify_test(get_test("iriw"))
        assert result.verified
        assert result.modeled_hours <= 11.0

    def test_bounded_bounds_use_config_depth_caps(self):
        hybrid = RTLCheck(config=HYBRID).verify_test(get_test("iriw"))
        full = RTLCheck(config=FULL_PROOF).verify_test(get_test("iriw"))
        if hybrid.bounded_bounds:
            assert max(hybrid.bounded_bounds) <= 43
        if full.bounded_bounds:
            assert max(full.bounded_bounds) <= 22

    def test_summary_strings(self, rtlcheck):
        verified = rtlcheck.verify_test(get_test("mp"))
        assert "mp" in verified.summary()
        buggy = rtlcheck.verify_test(get_test("mp"), memory_variant="buggy")
        assert "COUNTEREXAMPLE" in buggy.summary()


class TestSuiteSlice:
    @pytest.mark.parametrize("name", ["sb", "co-mp", "wrc", "rfi000", "safe000", "n1"])
    def test_fixed_design_verifies(self, rtlcheck, name):
        result = rtlcheck.verify_test(get_test(name))
        assert result.verified, result.summary()

    def test_verify_suite_helper(self, rtlcheck):
        tests = [get_test("mp"), get_test("sb")]
        results = rtlcheck.verify_suite(tests)
        assert set(results) == {"mp", "sb"}
        assert all(r.verified for r in results.values())

    def test_verify_suite_rejects_duplicate_names(self, rtlcheck):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="duplicate test name"):
            rtlcheck.verify_suite([get_test("mp"), get_test("mp")])

    def test_verify_suite_parallel_matches_serial(self, rtlcheck):
        tests = [get_test("mp"), get_test("sb"), get_test("iwp24")]
        serial = rtlcheck.verify_suite(tests)
        parallel = rtlcheck.verify_suite(tests, jobs=2)
        assert list(parallel) == list(serial)
        for name, expected in serial.items():
            got = parallel[name]
            assert got.verified == expected.verified
            assert got.verified_by_cover == expected.verified_by_cover
            assert got.modeled_hours == expected.modeled_hours
            assert [p.status for p in got.properties] == [
                p.status for p in expected.properties
            ]

    def test_verify_suite_parallel_needs_picklable_factories(self):
        from repro.errors import ReproError
        from repro.vscale.soc import MultiVScale

        rtlcheck = RTLCheck(design_factory=lambda c, v: MultiVScale(c, v))
        with pytest.raises(ReproError, match="picklable"):
            rtlcheck.verify_suite([get_test("mp"), get_test("sb")], jobs=2)

    def test_phase_counters_populated(self, rtlcheck):
        result = rtlcheck.verify_test(get_test("iwp24"))
        assert result.cover_seconds > 0
        assert result.proof_seconds > 0
        assert result.graph_states > 0
        assert result.graph_transitions > 0
        assert 0 < result.graph_build_seconds < result.wall_seconds
        assert all(p.check_seconds >= 0 for p in result.properties)

    def test_per_property_explorer_leaves_graph_counters_zero(self):
        result = RTLCheck(use_reach_graph=False).verify_test(get_test("mp"))
        assert result.graph_states == 0
        assert result.graph_transitions == 0
        assert result.graph_build_seconds == 0.0

    @pytest.mark.slow
    def test_full_suite_verifies_on_fixed_design(self, rtlcheck):
        """The paper's headline: after the fix, the multicore V-scale
        satisfies its SC axioms across all 56 litmus tests."""
        from repro import paper_suite

        for test in paper_suite():
            result = rtlcheck.verify_test(test)
            assert result.verified, result.summary()
