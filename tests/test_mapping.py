"""Tests for the node and program mapping functions (Figures 8/9)."""

import pytest

from repro.errors import MappingError
from repro.isa import encode
from repro.litmus import compile_test, get_test
from repro.mapping import MultiVScaleNodeMapping, MultiVScaleProgramMapping
from repro.vscale.params import core_base_pc, imem_base_word


@pytest.fixture(scope="module")
def mp_compiled():
    return compile_test(get_test("mp"))


@pytest.fixture(scope="module")
def node_mapping(mp_compiled):
    return MultiVScaleNodeMapping(mp_compiled)


@pytest.fixture(scope="module")
def program_mapping(mp_compiled):
    return MultiVScaleProgramMapping(mp_compiled)


class TestNodeMapping:
    def test_wb_mapping_matches_figure9(self, node_mapping, mp_compiled):
        # i3 = core 1's first instruction (Ld y).
        expr = node_mapping.map_node((3, "Writeback"), None)
        text = expr.emit()
        pc = core_base_pc(1)
        assert f"core[1].PC_WB == 32'd{pc}" in text
        assert "~(core[1].stall_WB)" in text
        assert "load_data_WB" not in text

    def test_wb_mapping_with_load_constraint(self, node_mapping):
        expr = node_mapping.map_node((4, "Writeback"), 0)
        text = expr.emit()
        assert "core[1].load_data_WB == 32'd0" in text

    def test_if_and_dx_mappings(self, node_mapping):
        if_expr = node_mapping.map_node((1, "Fetch"), None).emit()
        dx_expr = node_mapping.map_node((1, "DecodeExecute"), None).emit()
        assert "PC_IF" in if_expr and "stall_IF" in if_expr
        assert "PC_DX" in dx_expr and "stall_DX" in dx_expr

    def test_load_constraint_on_store_rejected(self, node_mapping):
        with pytest.raises(MappingError):
            node_mapping.map_node((1, "Writeback"), 1)  # i1 is a store

    def test_unknown_stage_rejected(self, node_mapping):
        with pytest.raises(MappingError):
            node_mapping.map_node((1, "Retire"), None)

    def test_absolute_pcs_per_core(self, node_mapping):
        # i2 is core 0's second instruction.
        assert node_mapping.absolute_pc(2) == core_base_pc(0) + 4
        # i3 is core 1's first instruction.
        assert node_mapping.absolute_pc(3) == core_base_pc(1)

    def test_mapping_evaluates_on_frames(self, node_mapping):
        expr = node_mapping.map_node((3, "Writeback"), 1)
        pc = core_base_pc(1)
        frame = {
            "core[1].PC_WB": pc,
            "core[1].stall_WB": 0,
            "core[1].load_data_WB": 1,
        }
        assert expr.evaluate(frame)
        frame["core[1].load_data_WB"] = 0
        assert not expr.evaluate(frame)


class TestProgramMapping:
    def test_instruction_memory_assumptions(self, program_mapping, mp_compiled):
        directives = program_mapping.instruction_memory_assumptions()
        # 4 cores x (program + halt) words.
        expected = sum(len(p) for p in mp_compiled.programs)
        assert len(directives) == expected
        assert all(d.structural for d in directives)
        # Core 0's first instruction lives at its base imem word with
        # the real RV32I encoding (Figure 8's mem[1] assumption).
        first = directives[0].emit()
        word = imem_base_word(0)
        enc = encode(mp_compiled.programs[0][0])
        assert f"mem[{word}] == 32'd{enc}" in first
        assert "first |->" in first

    def test_data_memory_assumptions(self, program_mapping, mp_compiled):
        directives = program_mapping.data_memory_assumptions()
        assert len(directives) == 2  # x and y
        assert not any(d.structural for d in directives)
        texts = [d.emit() for d in directives]
        assert any(f"mem[{mp_compiled.address_map['x']}] == 32'd0" in t for t in texts)

    def test_register_assumptions(self, program_mapping, mp_compiled):
        directives = program_mapping.register_assumptions()
        texts = [d.emit() for d in directives]
        x_addr = mp_compiled.byte_address("x")
        assert any(f"core[0].regs[1] == 32'd{x_addr}" in t for t in texts)
        assert all(d.structural for d in directives)

    def test_load_value_assumptions_repeat_antecedent(self, program_mapping):
        directives = program_mapping.load_value_assumptions()
        assert len(directives) == 2  # r1 and r2
        text = directives[0].emit()
        # Figure 8 style: consequent repeats the antecedent and adds the
        # data constraint.
        assert text.count("PC_WB") == 2
        assert "load_data_WB" in text

    def test_final_value_assumption_requires_all_halted(self, program_mapping):
        directive = program_mapping.final_value_assumption()
        text = directive.emit()
        for core in range(4):
            assert f"core[{core}].halted == 32'd1" in text
        # mp pins no final memory: trivially-true consequent.
        assert text.endswith("|-> (1));")

    def test_final_value_assumption_with_pinned_memory(self):
        compiled = compile_test(get_test("n1"))  # pins final x=1
        directive = MultiVScaleProgramMapping(compiled).final_value_assumption()
        text = directive.emit()
        assert f"mem[{compiled.address_map['x']}] == 32'd1" in text

    def test_all_assumptions_bundle(self, program_mapping):
        directives = program_mapping.all_assumptions()
        names = [d.name for d in directives]
        assert "final_values" in names
        assert len(names) == len(set(names))
        assert all(d.kind == "assume" for d in directives)
