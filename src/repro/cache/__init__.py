"""`repro.cache` — persistent, content-addressed verification cache.

Verdicts, reach graphs, compiled SVA monitors, and difftest oracle
outcome sets are pure functions of their inputs (design source, µspec
model, mappings, litmus test, engine configuration).  This package
memoizes them on disk under SHA-256 keys of those inputs, giving warm
re-runs of ``python -m repro suite`` / ``fuzz`` near-instant turnaround
and interrupted campaigns a checkpointed restart.  See
``docs/caching.md`` for the key-derivation rules, tier semantics, and
the CLI reference (``python -m repro cache stats|gc|clear``).
"""

from repro.cache.checkpoint import CheckpointManifest
from repro.cache.keys import (
    CACHE_FORMAT_VERSION,
    campaign_key,
    config_digest,
    difftest_fingerprint,
    litmus_digest,
    model_digest,
    monitor_key,
    oracle_key,
    reach_key,
    toolchain_fingerprint,
    verdict_key,
)
from repro.cache.store import (
    CACHE_DIR_ENV,
    CacheStats,
    VerificationCache,
    default_cache_dir,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "CheckpointManifest",
    "VerificationCache",
    "campaign_key",
    "config_digest",
    "default_cache_dir",
    "difftest_fingerprint",
    "litmus_digest",
    "model_digest",
    "monitor_key",
    "oracle_key",
    "reach_key",
    "toolchain_fingerprint",
    "verdict_key",
]
