"""Checkpoint/resume manifests for long suite and fuzz campaigns.

A manifest is a small JSON file under ``<cache root>/checkpoints/``
recording which units of a campaign have completed.  The heavy lifting
of a warm restart is done by the artifact tiers — a completed unit's
verdict (or oracle outcome set) is already on disk under its content
key — so the manifest's job is bookkeeping: it identifies the campaign
(by the digest of its full input set), counts what was resumed, and
lets an interrupted run report "restarted warm: k/N units" instead of
silently recomputing.

The manifest is rewritten atomically after every completed unit, so a
``kill -9`` loses at most the in-flight unit.  A manifest whose
campaign key does not match (the inputs or the code changed) is reset
rather than trusted — resume never overrides content addressing.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.cache.keys import CACHE_FORMAT_VERSION
from repro.cache.store import CHECKPOINT_KIND


class CheckpointManifest:
    """Completion bookkeeping for one campaign."""

    def __init__(self, path: Path, campaign: str, total: Optional[int] = None):
        self.path = Path(path)
        self.campaign = campaign
        self.total = total
        self.completed: List[str] = []
        self.complete = False
        self._load()
        #: Units already completed when this run attached (what a
        #: restart resumes rather than recomputes).
        self.resumed = len(self.completed)

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if (
            data.get("kind") != CHECKPOINT_KIND
            or data.get("format") != CACHE_FORMAT_VERSION
            or data.get("campaign") != self.campaign
        ):
            return  # stale manifest: start fresh, content keys decide
        self.completed = [str(u) for u in data.get("completed", [])]
        self.complete = bool(data.get("complete"))
        if self.total is None:
            self.total = data.get("total")

    def _flush(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "kind": CHECKPOINT_KIND,
            "format": CACHE_FORMAT_VERSION,
            "campaign": self.campaign,
            "total": self.total,
            "completed": self.completed,
            "complete": self.complete,
        }
        fd, tmp = tempfile.mkstemp(dir=self.path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------

    def is_done(self, unit: str) -> bool:
        return unit in self.completed

    def mark_done(self, unit: str) -> None:
        """Record one completed unit (idempotent) and flush to disk."""
        unit = str(unit)
        if unit not in self.completed:
            self.completed.append(unit)
            self._flush()

    def finish(self) -> None:
        """Mark the whole campaign complete."""
        self.complete = True
        self._flush()
