"""Cache-key derivation: stable digests of the verification inputs.

Every verdict, reach graph, compiled monitor, and oracle outcome set in
this reproduction is a *pure function* of a small, enumerable input
set.  This module turns those inputs into content-addressed keys —
SHA-256 hex digests of a canonical JSON payload — so that
:class:`repro.cache.VerificationCache` can memoize them on disk.

What feeds each digest (the full rationale is in ``docs/caching.md``):

* **toolchain fingerprint** — the source text of every ``repro``
  subpackage that participates in verification (design, generators,
  explorer, engine model, µspec grammar, observability, ... — see
  :data:`VERIFY_MODULES`) plus the bundled ``.uspec`` model files.  Any
  edit to the code that computes a verdict invalidates every entry;
  stale results can never outlive the logic that produced them.
* **litmus test** — the canonical :meth:`LitmusTest.to_dict` snapshot
  (threads in order, outcome and initial memory sorted), serialized
  with sorted keys.  Two structurally identical tests digest equally
  regardless of construction order.
* **µspec model** — the parsed AST's ``repr`` (pure dataclasses of
  strings/ints/tuples, so the repr is deterministic across processes).
  Keying on the parsed model rather than a file path means an edited
  model text invalidates entries even when the filename is unchanged.
* **engine configuration** — the frozen
  :class:`~repro.verifier.config.VerifierConfig` repr *and* the
  explorer budget.  Engine settings are inputs, not presentation:
  Hybrid and Full_Proof produce different verdicts, bounds, and modeled
  hours for the same design, so they must never share a verdict entry.
* **factory identities** — the qualified names of the design and
  mapping factories (their implementations are already covered by the
  toolchain fingerprint).

Tier-specific exclusions are deliberate: a reach graph depends on the
design, assumptions, and litmus test but *not* on the µspec model or
engine configuration, so :func:`reach_key` omits them and one graph is
shared across every configuration sweep — the RealityCheck-style reuse
the cache exists for.
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Iterable, Optional, Tuple

#: Bump to orphan every existing cache entry (a format change, a
#: serialization fix, ...).  Entries with a different format are
#: treated as misses and rewritten, never reinterpreted.
CACHE_FORMAT_VERSION = 1

#: Top-level modules / subpackages of ``repro`` whose source feeds the
#: verification toolchain fingerprint.  ``__main__`` (CLI plumbing) and
#: ``cache`` itself (guarded by :data:`CACHE_FORMAT_VERSION`) are
#: excluded so flag parsing or cache-internal edits do not orphan
#: results.
VERIFY_MODULES = (
    "__init__.py",
    "errors.py",
    "atomic",
    "core",
    "hll",
    "isa",
    "litmus",
    "mapping",
    "memodel",
    "obs",
    "rtl",
    "sva",
    "uhb",
    "uspec",
    "verifier",
    "vscale",
)

#: Additional modules folded in for difftest-oracle keys.
DIFFTEST_MODULES = ("difftest",)


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _iter_sources(root: Path, names: Iterable[str]) -> Iterable[Path]:
    for name in names:
        path = root / name
        if path.is_file():
            yield path
        elif path.is_dir():
            for child in sorted(path.rglob("*")):
                if child.suffix in (".py", ".uspec") and child.is_file():
                    yield child


@lru_cache(maxsize=None)
def _fingerprint(names: Tuple[str, ...]) -> str:
    """SHA-256 over the relative paths and contents of ``names``."""
    root = _package_root()
    digest = hashlib.sha256()
    for path in _iter_sources(root, names):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def toolchain_fingerprint() -> str:
    """Digest of every source file that can change a verdict."""
    return _fingerprint(VERIFY_MODULES)


def difftest_fingerprint() -> str:
    """Toolchain fingerprint extended with the difftest oracles."""
    return _fingerprint(VERIFY_MODULES + DIFFTEST_MODULES)


# ---------------------------------------------------------------------------
# canonical payload hashing
# ---------------------------------------------------------------------------


def digest_payload(payload) -> str:
    """SHA-256 of the canonical JSON rendering of ``payload``."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def _text_digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def qualname(obj) -> str:
    """Stable ``module.qualname`` identity of a factory callable."""
    return f"{getattr(obj, '__module__', '?')}.{getattr(obj, '__qualname__', repr(obj))}"


def model_digest(model) -> str:
    """Digest of a parsed µspec model (AST repr, not file identity)."""
    return _text_digest(repr((model.stages, model.macros, model.axioms)))


def config_digest(config) -> str:
    """Digest of a frozen :class:`VerifierConfig` plus the explorer
    budget (both are verdict inputs — see ``docs/caching.md``)."""
    from repro.verifier.config import EXPLORER_BUDGET

    return _text_digest(repr((config, EXPLORER_BUDGET)))


def litmus_digest(test) -> str:
    """Digest of the canonicalized litmus test."""
    return digest_payload(test.to_dict())


# ---------------------------------------------------------------------------
# tier keys
# ---------------------------------------------------------------------------


def verdict_key(
    *,
    test,
    memory_variant: str,
    model,
    config,
    design_factory,
    node_mapping_factory,
    program_mapping_factory,
    use_reach_graph: bool,
    skip_cover_shortcut: bool,
    state_backend: str = "array",
) -> str:
    """Key of one :class:`TestVerification` — the full input closure of
    :meth:`RTLCheck.verify_test`.

    ``state_backend`` is keyed even though the backends produce
    identical verdicts by contract: their obs counters differ
    (``state.*`` exists only on the vector backends, ``kernel.*`` only
    under ``kernel``), and an entry must replay exactly what its
    backend would compute.
    """
    return digest_payload(
        {
            "tier": "verdict",
            "format": CACHE_FORMAT_VERSION,
            "toolchain": toolchain_fingerprint(),
            "test": test.to_dict(),
            "memory_variant": memory_variant,
            "model": model_digest(model),
            "config": config_digest(config),
            "design_factory": qualname(design_factory),
            "node_mapping": qualname(node_mapping_factory),
            "program_mapping": qualname(program_mapping_factory),
            "use_reach_graph": bool(use_reach_graph),
            "skip_cover_shortcut": bool(skip_cover_shortcut),
            "state_backend": state_backend,
        }
    )


def reach_key(
    *,
    test,
    memory_variant: str,
    design_factory,
    program_mapping_factory,
    state_backend: str = "array",
) -> str:
    """Key of one shared :class:`~repro.verifier.reach.ReachGraph`.

    Deliberately independent of the µspec model and engine
    configuration: the assumption-constrained design transition relation
    is the same for every axiom set and Table-1 row, so one graph serves
    them all.  ``state_backend`` *is* keyed: a pickled graph's node
    snapshots are interned ids on one backend and nested tuples on the
    other — never interchangeable."""
    return digest_payload(
        {
            "tier": "reach",
            "format": CACHE_FORMAT_VERSION,
            "toolchain": toolchain_fingerprint(),
            "test": test.to_dict(),
            "memory_variant": memory_variant,
            "design_factory": qualname(design_factory),
            "program_mapping": qualname(program_mapping_factory),
            "state_backend": state_backend,
        }
    )


def monitor_key(directive) -> str:
    """Key of one compiled SVA property monitor (NFAs + property tree).

    The directive AST is itself a pure function of (model, test,
    mapping), so keying on its deterministic repr is exactly
    content-addressing the compiled artifact."""
    return digest_payload(
        {
            "tier": "nfa",
            "format": CACHE_FORMAT_VERSION,
            "toolchain": toolchain_fingerprint(),
            "directive": _text_digest(repr(directive)),
        }
    )


def oracle_key(
    oracle: str,
    test,
    memory_variant: Optional[str] = None,
    max_states: Optional[int] = None,
    extra: Optional[dict] = None,
) -> str:
    """Key of one difftest oracle outcome set.

    ``memory_variant`` and ``max_states`` only apply to the design-
    dependent layers (RTL enumeration, trace sampling); the operational
    and axiomatic layers are design-independent and pass ``None`` so a
    fixed/buggy sweep shares their entries.  ``extra`` folds additional
    oracle-specific parameters into the key (the trace oracle's sample
    count and harvest seed)."""
    payload = {
        "tier": "oracle",
        "format": CACHE_FORMAT_VERSION,
        "toolchain": difftest_fingerprint(),
        "oracle": oracle,
        "test": test.to_dict(),
        "memory_variant": memory_variant,
        "max_states": max_states,
    }
    if extra:
        payload["extra"] = extra
    return digest_payload(payload)


def campaign_key(kind: str, payload) -> str:
    """Key of a checkpointable campaign (a suite run, a fuzz run)."""
    return digest_payload(
        {
            "tier": "campaign",
            "format": CACHE_FORMAT_VERSION,
            "kind": kind,
            "payload": payload,
            "toolchain": difftest_fingerprint(),
        }
    )
