"""The on-disk content-addressed store behind :mod:`repro.cache`.

Layout: one directory per artifact tier under the cache root, sharded
by the first two hex digits of the entry key —

```
<root>/
  verdicts/ab/<key>.json    schema-versioned TestVerification snapshots
  graphs/cd/<key>.pkl       pickled shared ReachGraphs
  nfas/ef/<key>.pkl         pickled compiled PropertyMonitors
  oracles/01/<key>.json     difftest oracle outcome sets
  checkpoints/<key>.json    campaign manifests (resume bookkeeping)
```

Design rules, all load-bearing:

* **Writes are atomic** (temp file + ``os.replace`` in the same
  directory), so concurrent suite workers and interrupted runs can
  never publish a torn entry — at worst an entry is written twice with
  identical content.
* **Reads never crash a run.**  Any exception while loading an entry —
  truncated JSON, an unpicklable blob, a schema or format mismatch —
  deletes the entry, bumps the ``corrupt`` (or ``stale``) statistic,
  and reports a miss; the caller recomputes.
* **Eviction is size-bounded LRU** on entry mtimes; every hit touches
  its entry so recently-used artifacts survive ``gc``.
* **Entries are immutable values**, keyed by the full input digest —
  there is no invalidation protocol beyond "a different input is a
  different key", which is what makes a shared cache directory safe
  (see ``docs/caching.md``).
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.cache.keys import CACHE_FORMAT_VERSION

#: Artifact tiers and their subdirectory / extension.
TIERS = {
    "verdict": ("verdicts", ".json"),
    "reach": ("graphs", ".pkl"),
    "nfa": ("nfas", ".pkl"),
    "oracle": ("oracles", ".json"),
}

VERDICT_ENTRY_KIND = "rtlcheck-cache-verdict"
ORACLE_ENTRY_KIND = "rtlcheck-cache-oracle"
CHECKPOINT_KIND = "rtlcheck-checkpoint"

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/rtlcheck-repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return str(Path.home() / ".cache" / "rtlcheck-repro")


class CacheStats:
    """Hit/miss/eviction/byte accounting, named like obs counters.

    Counter names are ``cache.<tier>.<event>`` (events: ``hits``,
    ``misses``, ``puts``, ``corrupt``, ``stale``) plus the cache-wide
    ``cache.evictions``, ``cache.bytes_read``, ``cache.bytes_written``.
    Snapshots are plain dicts, so worker processes can ship their
    deltas back to the suite parent for summation — the same merge
    discipline as :mod:`repro.obs` counters.
    """

    def __init__(self):
        self.counters: Dict[str, float] = {}

    def bump(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def get(self, name: str) -> float:
        return self.counters.get(name, 0)

    def snapshot(self) -> Dict[str, float]:
        return dict(self.counters)

    def merge(self, counters: Mapping[str, float]) -> None:
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def tier_total(self, event: str) -> float:
        """Sum of ``cache.<tier>.<event>`` across all tiers."""
        return sum(
            value
            for name, value in self.counters.items()
            if name.startswith("cache.") and name.endswith(f".{event}")
        )

    def summary(self) -> str:
        """One human line, e.g. for the CLI's post-run cache report."""
        parts = []
        for tier in TIERS:
            hits = self.get(f"cache.{tier}.hits")
            misses = self.get(f"cache.{tier}.misses")
            if hits or misses:
                parts.append(f"{tier} {hits:.0f}/{hits + misses:.0f} hits")
        extras = []
        for name in ("cache.evictions", "cache.corrupt_entries"):
            if self.get(name):
                extras.append(f"{name.split('.')[-1]}={self.get(name):.0f}")
        line = ", ".join(parts) if parts else "no lookups"
        if extras:
            line += " (" + ", ".join(extras) + ")"
        return line


class VerificationCache:
    """Persistent content-addressed store for verification artifacts.

    Picklable (it is carried inside :class:`RTLCheck` across the suite
    process pool); workers accumulate statistics in their own copy and
    ship them back for parent-side merging.  ``max_bytes``, when set,
    triggers LRU eviction after each write.
    """

    def __init__(self, root: Optional[str] = None, max_bytes: Optional[int] = None):
        self.root = Path(root) if root else Path(default_cache_dir())
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    # -- low-level entry I/O -------------------------------------------

    def _path(self, tier: str, key: str) -> Path:
        subdir, ext = TIERS[tier]
        return self.root / subdir / key[:2] / f"{key}{ext}"

    def _read(self, tier: str, key: str) -> Optional[bytes]:
        path = self._path(tier, key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        self.stats.bump("cache.bytes_read", len(data))
        return data

    def _write(self, tier: str, key: str, data: bytes) -> None:
        path = self._path(tier, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.bump(f"cache.{tier}.puts")
        self.stats.bump("cache.bytes_written", len(data))
        if self.max_bytes is not None:
            self.gc(self.max_bytes)

    def _drop(self, tier: str, key: str, reason: str) -> None:
        try:
            self._path(tier, key).unlink()
        except OSError:
            pass
        self.stats.bump(f"cache.{tier}.{reason}")
        if reason == "corrupt":
            self.stats.bump("cache.corrupt_entries")

    # -- verdict tier ---------------------------------------------------

    def load_verdict(
        self,
        key: str,
        observe: bool = False,
        coverage: bool = False,
        record_miss: bool = True,
    ):
        """Rehydrate a cached :class:`TestVerification`, or ``None``.

        ``observe=True`` demands an entry recorded with observability
        on — a hit must replay complete spans and counters, so an
        unobserved entry is reported as a miss and recomputed (the
        recompute then upgrades the entry in place).  ``coverage=True``
        likewise demands an entry whose obs snapshot carries a coverage
        map; a coverage-only hit (``observe=False``) attaches just the
        coverage portion so warm runs merge the same keys as cold runs
        without replaying counters the run never asked for.

        ``record_miss=False`` keeps a miss out of the statistics; the
        suite parent's prefetch probe uses it so that one logical
        lookup (prefetch, then the worker's own) is not counted twice.
        """
        from repro.core.results import TestVerification
        from repro.litmus.test import LitmusTest
        from repro.obs.report import SCHEMA_VERSION

        raw = self._read("verdict", key)
        if raw is None:
            if record_miss:
                self.stats.bump("cache.verdict.misses")
            return None
        try:
            entry = json.loads(raw)
            if (
                entry.get("kind") != VERDICT_ENTRY_KIND
                or entry.get("format") != CACHE_FORMAT_VERSION
                or entry.get("schema_version") != SCHEMA_VERSION
            ):
                self._drop("verdict", key, "stale")
                if record_miss:
                    self.stats.bump("cache.verdict.misses")
                return None
            if observe and not entry.get("observed"):
                if record_miss:
                    self.stats.bump("cache.verdict.misses")
                    self.stats.bump("cache.verdict.unobserved_misses")
                return None
            if coverage and not entry.get("covered"):
                if record_miss:
                    self.stats.bump("cache.verdict.misses")
                    self.stats.bump("cache.verdict.uncovered_misses")
                return None
            test = LitmusTest.from_dict(entry["test"])
            result = TestVerification.from_dict(entry["result"], test=test)
            result.sva_text = entry["sva_text"]
            if observe:
                result.obs = entry["obs"]
            elif coverage:
                # Coverage-only hit: strip counters/gauges so a warm
                # run's obs state matches what a CoverageRecorder (the
                # enabled=False sink) would have produced cold.
                result.obs = {
                    "events": [],
                    "counters": {},
                    "gauges": {},
                    "coverage": (entry["obs"] or {}).get("coverage"),
                }
            else:
                result.obs = None
        except Exception:
            self._drop("verdict", key, "corrupt")
            if record_miss:
                self.stats.bump("cache.verdict.misses")
            return None
        self.stats.bump("cache.verdict.hits")
        return result

    def store_verdict(self, key: str, result) -> None:
        """Persist one computed :class:`TestVerification`."""
        from repro.obs.report import SCHEMA_VERSION

        entry = {
            "kind": VERDICT_ENTRY_KIND,
            "format": CACHE_FORMAT_VERSION,
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "test": result.test.to_dict(),
            # A coverage-only run (CoverageRecorder) attaches an obs
            # snapshot too, but with no spans recorded — only a fully
            # observed entry may satisfy a later observe=True lookup.
            "observed": bool(result.obs and result.obs.get("events")),
            "covered": bool(result.obs and result.obs.get("coverage")),
            "obs": result.obs,
            "sva_text": result.sva_text,
            "result": result.to_dict(),
        }
        self._write(
            "verdict", key, json.dumps(entry, sort_keys=True).encode()
        )

    # -- reach-graph tier -----------------------------------------------

    def load_graph(self, key: str):
        """Unpickle a cached :class:`ReachGraph`, or ``None``.

        The graph carries its accumulated ``sim_transitions`` /
        ``build_seconds``, so verdicts computed on top of a warm graph
        report the same totals as a cold run — the work was paid, just
        in an earlier process."""
        raw = self._read("reach", key)
        if raw is None:
            self.stats.bump("cache.reach.misses")
            return None
        try:
            graph = pickle.loads(raw)
        except Exception:
            self._drop("reach", key, "corrupt")
            self.stats.bump("cache.reach.misses")
            return None
        self.stats.bump("cache.reach.hits")
        return graph

    def store_graph(self, key: str, graph) -> None:
        self._write("reach", key, pickle.dumps(graph, protocol=4))

    # -- compiled-monitor (NFA) tier ------------------------------------

    def load_monitor(self, key: str):
        """Unpickle a cached compiled :class:`PropertyMonitor`."""
        raw = self._read("nfa", key)
        if raw is None:
            self.stats.bump("cache.nfa.misses")
            return None
        try:
            monitor = pickle.loads(raw)
        except Exception:
            self._drop("nfa", key, "corrupt")
            self.stats.bump("cache.nfa.misses")
            return None
        self.stats.bump("cache.nfa.hits")
        return monitor

    def store_monitor(self, key: str, monitor) -> None:
        """Pickle ``monitor`` with its memo tables cleared, so a loaded
        monitor's memo-economics counters match a freshly compiled one
        and observability stays run-for-run identical."""
        saved = (
            monitor._verdict_cache,
            monitor.verdict_memo_hits,
            monitor.verdict_memo_misses,
            [(n.memo_hits, n.memo_misses) for n in monitor.nfas],
        )
        monitor._verdict_cache = {}
        monitor.verdict_memo_hits = monitor.verdict_memo_misses = 0
        for nfa in monitor.nfas:
            nfa.memo_hits = nfa.memo_misses = 0
        try:
            data = pickle.dumps(monitor, protocol=4)
        finally:
            monitor._verdict_cache = saved[0]
            monitor.verdict_memo_hits = saved[1]
            monitor.verdict_memo_misses = saved[2]
            for nfa, (hits, misses) in zip(monitor.nfas, saved[3]):
                nfa.memo_hits, nfa.memo_misses = hits, misses
        self._write("nfa", key, data)

    # -- difftest oracle tier -------------------------------------------

    def load_oracle(self, key: str) -> Optional[Dict[str, Any]]:
        """Load one oracle outcome-set entry (a plain JSON dict)."""
        raw = self._read("oracle", key)
        if raw is None:
            self.stats.bump("cache.oracle.misses")
            return None
        try:
            entry = json.loads(raw)
            if (
                entry.get("kind") != ORACLE_ENTRY_KIND
                or entry.get("format") != CACHE_FORMAT_VERSION
            ):
                self._drop("oracle", key, "stale")
                self.stats.bump("cache.oracle.misses")
                return None
            payload = entry["payload"]
        except Exception:
            self._drop("oracle", key, "corrupt")
            self.stats.bump("cache.oracle.misses")
            return None
        self.stats.bump("cache.oracle.hits")
        return payload

    def store_oracle(self, key: str, payload: Dict[str, Any]) -> None:
        entry = {
            "kind": ORACLE_ENTRY_KIND,
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "payload": payload,
        }
        self._write("oracle", key, json.dumps(entry, sort_keys=True).encode())

    # -- checkpoints ----------------------------------------------------

    def checkpoint(self, campaign: str, total: Optional[int] = None):
        """The resume manifest for campaign ``campaign`` (created on
        first use)."""
        from repro.cache.checkpoint import CheckpointManifest

        path = self.root / "checkpoints" / f"{campaign}.json"
        return CheckpointManifest(path, campaign, total=total)

    # -- maintenance (the ``python -m repro cache`` surface) ------------

    def _entries(self) -> List[Tuple[Path, float, int]]:
        """All tier entries as ``(path, mtime, size)`` (checkpoints are
        bookkeeping, not evictable artifacts)."""
        out = []
        for subdir, _ext in TIERS.values():
            base = self.root / subdir
            if not base.is_dir():
                continue
            for path in base.rglob("*"):
                if path.is_file() and not path.name.startswith(".tmp-"):
                    try:
                        stat = path.stat()
                    except OSError:
                        continue
                    out.append((path, stat.st_mtime, stat.st_size))
        return out

    def usage(self) -> Dict[str, Dict[str, int]]:
        """Per-tier entry counts and byte totals, plus a ``total``."""
        report: Dict[str, Dict[str, int]] = {}
        total_files = total_bytes = 0
        for tier, (subdir, _ext) in TIERS.items():
            files = bytes_ = 0
            base = self.root / subdir
            if base.is_dir():
                for path in base.rglob("*"):
                    if path.is_file() and not path.name.startswith(".tmp-"):
                        files += 1
                        bytes_ += path.stat().st_size
            report[tier] = {"entries": files, "bytes": bytes_}
            total_files += files
            total_bytes += bytes_
        report["total"] = {"entries": total_files, "bytes": total_bytes}
        return report

    def gc(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until the store fits in
        ``max_bytes`` (defaults to the instance bound).  Returns the
        number of entries evicted."""
        bound = self.max_bytes if max_bytes is None else max_bytes
        if bound is None:
            return 0
        entries = self._entries()
        used = sum(size for _p, _m, size in entries)
        evicted = 0
        for path, _mtime, size in sorted(entries, key=lambda e: e[1]):
            if used <= bound:
                break
            try:
                path.unlink()
            except OSError:
                continue
            used -= size
            evicted += 1
        if evicted:
            self.stats.bump("cache.evictions", evicted)
        return evicted

    def clear(self) -> int:
        """Remove every entry and checkpoint; returns entries removed."""
        import shutil

        removed = len(self._entries())
        for subdir, _ext in TIERS.values():
            shutil.rmtree(self.root / subdir, ignore_errors=True)
        shutil.rmtree(self.root / "checkpoints", ignore_errors=True)
        return removed

    # -- pool plumbing --------------------------------------------------

    def __getstate__(self):
        # Workers start from zeroed statistics so their snapshots are
        # deltas the parent can merge by summation.
        return {"root": self.root, "max_bytes": self.max_bytes}

    def __setstate__(self, state):
        self.root = state["root"]
        self.max_bytes = state["max_bytes"]
        self.stats = CacheStats()
