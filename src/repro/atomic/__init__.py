"""The abstract machine atomic_mach of paper Figure 4."""

from repro.atomic.machine import (
    AxiomaticVerdict,
    TemporalVerdict,
    verify_axiomatic,
    verify_temporal,
)

__all__ = [
    "AxiomaticVerdict",
    "TemporalVerdict",
    "verify_axiomatic",
    "verify_temporal",
]
