"""The abstract machine ``atomic_mach`` of paper Figure 4.

``atomic_mach`` performs instructions atomically and in program order.
The paper uses it to illustrate the semantic gap RTLCheck must bridge:
the same verification question — "is mp's forbidden outcome
observable?" — answered *axiomatically* (generate whole executions,
check each against ``acyclic(po ∪ rf ∪ co ∪ fr)``, filter by outcome)
and *temporally* (generate executions step by step as a tree, checking
per-step properties, with outcome filtering only taking effect when the
offending step actually occurs).

Both verifiers below are deliberately written in the style the paper
describes, including the temporal verifier's inability to check future
violation of assumptions (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.litmus.test import LitmusTest
from repro.memodel.axiomatic import (
    CandidateExecution,
    enumerate_candidates,
    _matches_outcome,
)


@dataclass
class AxiomaticVerdict:
    """Result of whole-execution verification (Figure 4a)."""

    observable: bool
    executions_total: int
    excluded_by_outcome: int
    excluded_by_axiom: int
    witnesses: int


def verify_axiomatic(test: LitmusTest) -> AxiomaticVerdict:
    """Figure 4a: enumerate candidate executions, strike out those with a
    different outcome (dashed red) and those violating the SC axiom
    (blue); the outcome is observable iff an execution survives."""
    total = excluded_outcome = excluded_axiom = witnesses = 0
    for candidate in enumerate_candidates(test):
        total += 1
        if not _matches_outcome(test, candidate):
            excluded_outcome += 1
            continue
        if not candidate.is_sc():
            excluded_axiom += 1
            continue
        witnesses += 1
    return AxiomaticVerdict(
        observable=witnesses > 0,
        executions_total=total,
        excluded_by_outcome=excluded_outcome,
        excluded_by_axiom=excluded_axiom,
        witnesses=witnesses,
    )


# ---------------------------------------------------------------------------
# Temporal verification (Figure 4b)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _State:
    """A node of the temporal execution tree."""

    pcs: Tuple[int, ...]
    memory: Tuple[Tuple[str, int], ...]
    loads: Tuple[Tuple[str, int], ...]  # output register -> value read

    def memory_map(self) -> Dict[str, int]:
        return dict(self.memory)


@dataclass
class TemporalVerdict:
    """Result of step-by-step verification (Figure 4b)."""

    observable: bool
    steps_explored: int
    partial_executions_pruned: int  # branches cut when an assumption fired
    full_executions: int
    witnesses: int


def verify_temporal(test: LitmusTest) -> TemporalVerdict:
    """Figure 4b: generate the execution tree step by step.

    Each step atomically performs one instruction of some thread.  The
    three temporal properties of SC on atomic_mach (program order, loads
    read memory, stores update memory) hold by construction of the step
    function; outcome *assumptions* are applied with no lookahead — a
    branch is pruned only at the step where a load actually returns a
    value contradicting the outcome (the paper's key observation about
    SVA assumption semantics).
    """
    outcome_regs = test.outcome.register_map
    final_mem = test.outcome.final_memory_map
    verdict = TemporalVerdict(
        observable=False,
        steps_explored=0,
        partial_executions_pruned=0,
        full_executions=0,
        witnesses=0,
    )
    initial = _State(
        pcs=tuple(0 for _ in test.threads),
        memory=tuple(sorted(test.initial_memory_map.items())),
        loads=(),
    )
    seen: Set[_State] = {initial}
    stack: List[_State] = [initial]
    while stack:
        state = stack.pop()
        progressed = False
        for thread, pc in enumerate(state.pcs):
            ops = test.threads[thread]
            if pc >= len(ops):
                continue
            progressed = True
            op = ops[pc]
            verdict.steps_explored += 1
            memory = state.memory_map()
            loads = dict(state.loads)
            if op.is_store:
                memory[op.addr] = op.value
            elif op.is_load:
                value = memory[op.addr]
                loads[op.out] = value
                if op.out in outcome_regs and outcome_regs[op.out] != value:
                    # The assumption fires *now* and kills this branch;
                    # it could not have been applied any earlier.
                    verdict.partial_executions_pruned += 1
                    continue
            child = _State(
                pcs=state.pcs[:thread] + (pc + 1,) + state.pcs[thread + 1 :],
                memory=tuple(sorted(memory.items())),
                loads=tuple(sorted(loads.items())),
            )
            if child not in seen:
                seen.add(child)
                stack.append(child)
        if not progressed:
            verdict.full_executions += 1
            memory = state.memory_map()
            loads = dict(state.loads)
            if all(loads.get(r) == v for r, v in outcome_regs.items()) and all(
                memory.get(a) == v for a, v in final_mem.items()
            ):
                verdict.witnesses += 1
    verdict.observable = verdict.witnesses > 0
    return verdict
