"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EncodingError(ReproError):
    """An instruction could not be encoded or decoded."""


class LitmusError(ReproError):
    """A litmus test is malformed or cannot be compiled."""


class UspecError(ReproError):
    """A µspec model failed to lex, parse, expand, or evaluate."""


class UspecSyntaxError(UspecError):
    """Syntactic problem in µspec source, with position information."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class MappingError(ReproError):
    """A node or program mapping function could not map a request."""


class SvaError(ReproError):
    """An SVA property is malformed or unsupported by the monitor."""


class RtlError(ReproError):
    """An RTL model was driven illegally (bad signal width, X value, ...)."""


class VerificationError(ReproError):
    """The property verifier was misconfigured or hit an internal limit."""
