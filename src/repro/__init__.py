"""RTLCheck reproduction: verifying the memory consistency of RTL designs.

This package reproduces Manerkar et al., *RTLCheck: Verifying the Memory
Consistency of RTL Designs* (MICRO 2017): an automated flow from
axiomatic µspec microarchitecture specifications to temporal
SystemVerilog Assertions verified against RTL, evaluated on a multicore
RISC-V V-scale processor across 56 litmus tests.

Quickstart::

    from repro import RTLCheck, get_test

    rtlcheck = RTLCheck()
    result = rtlcheck.verify_test(get_test("mp"), memory_variant="buggy")
    print(result.summary())          # counterexample: the V-scale bug
    result = rtlcheck.verify_test(get_test("mp"), memory_variant="fixed")
    print(result.summary())          # verified

Main entry points:

* :class:`repro.core.RTLCheck` — the end-to-end flow (Figure 7).
* :func:`repro.litmus.paper_suite` — the 56-test suite of Figures 13/14.
* :func:`repro.uhb.microarch_observable` — Check-style µhb verification.
* :class:`repro.vscale.MultiVScale` — the processor model (Figure 1).
"""

from repro.core.rtlcheck import RTLCheck
from repro.core.results import TestVerification
from repro.litmus.suite import get_test, paper_suite
from repro.uspec.model import multi_vscale_model
from repro.verifier.config import CONFIGS, FULL_PROOF, HYBRID

__version__ = "1.0.0"

__all__ = [
    "CONFIGS",
    "FULL_PROOF",
    "HYBRID",
    "RTLCheck",
    "TestVerification",
    "get_test",
    "multi_vscale_model",
    "paper_suite",
    "__version__",
]
