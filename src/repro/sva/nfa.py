"""Compilation of SVA sequences to NFAs over trace frames.

A sequence is a regular expression whose alphabet symbols are boolean
predicates on one cycle's frame.  We build a Thompson-style automaton
with epsilon transitions, then eliminate the epsilons so the monitor
only deals with predicate transitions and an accepting-state set.

Matching semantics (what the monitor relies on):

* the NFA starts in the epsilon-closure of its start state;
* consuming a frame moves through all transitions whose predicate holds;
* a (non-empty) *match* exists iff some reachable state is accepting;
* once the live-state set is empty, no extension of the trace can ever
  match — the refutation RTLCheck's delay encoding is designed to make
  observable (paper §3.3/§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Set, Tuple

from repro.errors import SvaError
from repro.rtl.design import Frame
from repro.sva.ast import BoolExpr, SBool, SCat, SRepeat, Sequence

Predicate = Callable[[Frame], bool]


@dataclass
class Nfa:
    """Epsilon-free NFA: ``transitions[state] = [(expr, next_state)]``."""

    num_states: int
    start_states: FrozenSet[int]
    accepting: FrozenSet[int]
    transitions: Dict[int, List[Tuple[BoolExpr, int]]]
    #: Predicate-memo economics, accumulated across :meth:`step` calls
    #: and flushed to ``repro.obs`` counters by the RTLCheck flow.
    memo_hits: int = 0
    memo_misses: int = 0

    def initial(self) -> FrozenSet[int]:
        return self.start_states

    def step(self, states: FrozenSet[int], frame: Frame) -> FrozenSet[int]:
        """Advance one frame."""
        nxt: Set[int] = set()
        # Epsilon elimination duplicates predicates across states, so
        # memoize each (pure) predicate's value for this frame.
        values: Dict[int, bool] = {}
        transitions = self.transitions
        hits = misses = 0
        for state in states:
            for expr, target in transitions.get(state, ()):
                if target in nxt:
                    continue
                key = id(expr)
                value = values.get(key)
                if value is None:
                    value = bool(expr.evaluate(frame))
                    values[key] = value
                    misses += 1
                else:
                    hits += 1
                if value:
                    nxt.add(target)
        self.memo_hits += hits
        self.memo_misses += misses
        return frozenset(nxt)

    def accepts(self, states: FrozenSet[int]) -> bool:
        return not self.accepting.isdisjoint(states)

    def starts_accepting(self) -> bool:
        """Does the sequence admit an empty match?  (Zero-length matches
        are not counted as property satisfaction in SVA; we surface this
        so callers can reject degenerate sequences.)"""
        return self.accepts(self.start_states)

    def can_loop_forever(self, states: FrozenSet[int], frame: Frame) -> bool:
        """Could the NFA still reach acceptance if ``frame`` repeated
        forever?  Used to resolve pending matches at quiescence."""
        seen = set(states)
        frontier = set(states)
        while frontier:
            if not self.accepting.isdisjoint(frontier):
                return True
            new: Set[int] = set()
            for state in frontier:
                for expr, target in self.transitions.get(state, ()):
                    if target not in seen and expr.evaluate(frame):
                        new.add(target)
            seen |= new
            frontier = new
        return False


class _Builder:
    """Thompson construction with epsilon edges, then elimination."""

    def __init__(self):
        self.count = 0
        self.eps: Dict[int, Set[int]] = {}
        self.edges: Dict[int, List[Tuple[BoolExpr, int]]] = {}

    def new_state(self) -> int:
        self.count += 1
        return self.count - 1

    def add_eps(self, src: int, dst: int) -> None:
        self.eps.setdefault(src, set()).add(dst)

    def add_edge(self, src: int, expr: BoolExpr, dst: int) -> None:
        self.edges.setdefault(src, []).append((expr, dst))

    def build(self, seq: Sequence) -> Tuple[int, int]:
        """Returns (entry, exit) states for ``seq``."""
        if isinstance(seq, SBool):
            entry, exit_ = self.new_state(), self.new_state()
            self.add_edge(entry, seq.expr, exit_)
            return entry, exit_
        if isinstance(seq, SRepeat):
            entry = self.new_state()
            current = entry
            for _ in range(seq.lo):
                nxt = self.new_state()
                self.add_edge(current, seq.expr, nxt)
                current = nxt
            if seq.hi is None:
                loop = self.new_state()
                self.add_eps(current, loop)
                self.add_edge(loop, seq.expr, loop)
                exit_ = self.new_state()
                self.add_eps(loop, exit_)
                self.add_eps(current, exit_)
                return entry, exit_
            exit_ = self.new_state()
            self.add_eps(current, exit_)
            for _ in range(seq.hi - seq.lo):
                nxt = self.new_state()
                self.add_edge(current, seq.expr, nxt)
                self.add_eps(nxt, exit_)
                current = nxt
            return entry, exit_
        if isinstance(seq, SCat):
            left_entry, left_exit = self.build(seq.left)
            right_entry, right_exit = self.build(seq.right)
            # ##1: the right part starts on the cycle after the left
            # part's last cycle, i.e. plain concatenation of consumed
            # frames.  ##k for k>1 inserts k-1 free cycles.
            cursor = left_exit
            for _ in range(seq.delay - 1):
                from repro.sva.ast import BConst

                nxt = self.new_state()
                self.add_edge(cursor, BConst(True), nxt)
                cursor = nxt
            self.add_eps(cursor, right_entry)
            return left_entry, right_exit
        raise SvaError(f"cannot compile sequence {seq!r}")

    def eps_closure(self, states: Set[int]) -> Set[int]:
        stack = list(states)
        closed = set(states)
        while stack:
            state = stack.pop()
            for nxt in self.eps.get(state, ()):
                if nxt not in closed:
                    closed.add(nxt)
                    stack.append(nxt)
        return closed


def compile_sequence(seq: Sequence) -> Nfa:
    """Compile ``seq`` into an epsilon-free :class:`Nfa`."""
    builder = _Builder()
    entry, exit_ = builder.build(seq)

    closures: Dict[int, Set[int]] = {
        state: builder.eps_closure({state}) for state in range(builder.count)
    }
    transitions: Dict[int, List[Tuple[BoolExpr, int]]] = {}
    for state in range(builder.count):
        merged: List[Tuple[BoolExpr, int]] = []
        for member in closures[state]:
            merged.extend(builder.edges.get(member, ()))
        if merged:
            transitions[state] = merged
    accepting = frozenset(
        state for state in range(builder.count) if exit_ in closures[state]
    )
    return Nfa(
        num_states=builder.count,
        start_states=frozenset(closures[entry]) & _reachable_sources(transitions, closures[entry]),
        accepting=accepting,
        transitions=transitions,
    )


def _reachable_sources(transitions, start_closure) -> FrozenSet[int]:
    # Keep closure states that either carry transitions or are accepting
    # anchors; harmless to keep everything, so just return the closure.
    return frozenset(start_closure)
