"""A SystemVerilog Assertions (SVA) subset.

This models the fragment RTLCheck generates (paper §4): boolean
expressions over design signals, sequences built from boolean cycles,
``##1`` concatenation and ``[*m:n]`` repetition (including unbounded
``$``), sequence/property ``and`` / ``or``, overlapping implication
``|->``, and ``assert`` / ``assume property`` directives clocked on
``posedge clk``.

Every node knows how to emit itself as SystemVerilog text (so the tool
produces real ``.sv`` output, Figures 8/10) and how to evaluate /
compile itself for the trace monitor in :mod:`repro.sva.monitor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import SvaError
from repro.rtl.design import Frame

# ---------------------------------------------------------------------------
# Boolean expressions over a cycle's signals
# ---------------------------------------------------------------------------


class BoolExpr:
    """Base class for single-cycle boolean expressions."""

    def emit(self) -> str:
        raise NotImplementedError

    def evaluate(self, frame: Frame) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class BConst(BoolExpr):
    value: bool

    def emit(self) -> str:
        return "1'b1" if self.value else "1'b0"

    def evaluate(self, frame: Frame) -> bool:
        return self.value


@dataclass(frozen=True)
class Sig(BoolExpr):
    """A signal used as a boolean (non-zero = true)."""

    name: str

    def emit(self) -> str:
        return self.name

    def evaluate(self, frame: Frame) -> bool:
        return bool(frame.get(self.name, 0))


@dataclass(frozen=True)
class SigEq(BoolExpr):
    """``signal == 32'd<value>``."""

    name: str
    value: int
    width: int = 32

    def emit(self) -> str:
        return f"{self.name} == {self.width}'d{self.value}"

    def evaluate(self, frame: Frame) -> bool:
        return frame.get(self.name, 0) == self.value


@dataclass(frozen=True)
class BNot(BoolExpr):
    body: BoolExpr

    def emit(self) -> str:
        return f"~({self.body.emit()})"

    def evaluate(self, frame: Frame) -> bool:
        return not self.body.evaluate(frame)


@dataclass(frozen=True)
class BAnd(BoolExpr):
    operands: Tuple[BoolExpr, ...]

    def emit(self) -> str:
        return " && ".join(_paren(op) for op in self.operands)

    def evaluate(self, frame: Frame) -> bool:
        return all(op.evaluate(frame) for op in self.operands)


@dataclass(frozen=True)
class BOr(BoolExpr):
    operands: Tuple[BoolExpr, ...]

    def emit(self) -> str:
        return " || ".join(_paren(op) for op in self.operands)

    def evaluate(self, frame: Frame) -> bool:
        return any(op.evaluate(frame) for op in self.operands)


def _paren(expr: BoolExpr) -> str:
    text = expr.emit()
    if isinstance(expr, (BAnd, BOr)):
        return f"({text})"
    return text


def band(*operands: BoolExpr) -> BoolExpr:
    ops = [op for op in operands if not (isinstance(op, BConst) and op.value)]
    if any(isinstance(op, BConst) and not op.value for op in ops):
        return BConst(False)
    if not ops:
        return BConst(True)
    if len(ops) == 1:
        return ops[0]
    return BAnd(tuple(ops))


def bor(*operands: BoolExpr) -> BoolExpr:
    ops = [op for op in operands if not (isinstance(op, BConst) and not op.value)]
    if any(isinstance(op, BConst) and op.value for op in ops):
        return BConst(True)
    if not ops:
        return BConst(False)
    if len(ops) == 1:
        return ops[0]
    return BOr(tuple(ops))


# ---------------------------------------------------------------------------
# Sequences
# ---------------------------------------------------------------------------


class Sequence:
    """Base class for SVA sequences (consume one frame per cycle)."""

    def emit(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SBool(Sequence):
    """A one-cycle sequence: the boolean holds this cycle."""

    expr: BoolExpr

    def emit(self) -> str:
        return f"({self.expr.emit()})"


@dataclass(frozen=True)
class SRepeat(Sequence):
    """``expr [*lo:hi]``; ``hi=None`` means unbounded (``$``)."""

    expr: BoolExpr
    lo: int
    hi: Optional[int]

    def __post_init__(self):
        if self.lo < 0 or (self.hi is not None and self.hi < self.lo):
            raise SvaError(f"bad repetition bounds [{self.lo}:{self.hi}]")

    def emit(self) -> str:
        hi = "$" if self.hi is None else str(self.hi)
        return f"({self.expr.emit()}) [*{self.lo}:{hi}]"


@dataclass(frozen=True)
class SCat(Sequence):
    """``left ##<delay> right`` (delay >= 1)."""

    left: Sequence
    right: Sequence
    delay: int = 1

    def __post_init__(self):
        if self.delay < 1:
            raise SvaError("only ##1-or-more concatenation is supported")

    def emit(self) -> str:
        return f"{self.left.emit()} ##{self.delay} {self.right.emit()}"


def scat(*parts: Sequence) -> Sequence:
    """Left-fold ``##1`` concatenation."""
    if not parts:
        raise SvaError("empty sequence concatenation")
    out = parts[0]
    for part in parts[1:]:
        out = SCat(out, part, 1)
    return out


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


class Property:
    """Base class for SVA properties."""

    def emit(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class PSeq(Property):
    """A (weak) sequence used as a property."""

    seq: Sequence

    def emit(self) -> str:
        return f"({self.seq.emit()})"


@dataclass(frozen=True)
class PConst(Property):
    value: bool

    def emit(self) -> str:
        return "(1)" if self.value else "(0)"


@dataclass(frozen=True)
class PAnd(Property):
    operands: Tuple[Property, ...]

    def emit(self) -> str:
        return "(" + " and ".join(op.emit() for op in self.operands) + ")"


@dataclass(frozen=True)
class POr(Property):
    operands: Tuple[Property, ...]

    def emit(self) -> str:
        return "(" + " or ".join(op.emit() for op in self.operands) + ")"


@dataclass(frozen=True)
class PImpl(Property):
    """Overlapping implication ``antecedent |-> consequent`` with a
    boolean antecedent (the only form RTLCheck generates)."""

    antecedent: BoolExpr
    consequent: Property

    def emit(self) -> str:
        return f"{self.antecedent.emit()} |-> {self.consequent.emit()}"


def pand(*operands: Property) -> Property:
    ops = [op for op in operands if not (isinstance(op, PConst) and op.value)]
    if any(isinstance(op, PConst) and not op.value for op in ops):
        return PConst(False)
    if not ops:
        return PConst(True)
    if len(ops) == 1:
        return ops[0]
    return PAnd(tuple(ops))


def por(*operands: Property) -> Property:
    ops = [op for op in operands if not (isinstance(op, PConst) and not op.value)]
    if any(isinstance(op, PConst) and op.value for op in ops):
        return PConst(True)
    if not ops:
        return PConst(False)
    if len(ops) == 1:
        return ops[0]
    return POr(tuple(ops))


# ---------------------------------------------------------------------------
# Directives
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Directive:
    """An ``assert property`` or ``assume property`` directive.

    ``structural`` marks assumptions that our verifier enforces by
    construction (memory/register initialization applied to the reset
    state) rather than by monitoring; they are still emitted as SVA.
    """

    kind: str  # 'assert' or 'assume'
    name: str
    prop: Property
    clock: str = "posedge clk"
    structural: bool = False

    def __post_init__(self):
        if self.kind not in ("assert", "assume"):
            raise SvaError(f"bad directive kind {self.kind!r}")

    def emit(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"{label}{self.kind} property (@({self.clock}) {self.prop.emit()});"
