"""Trace monitoring for the generated SVA subset.

The monitor implements exactly the semantics the paper reasons about:

* Assertions have the shape ``first |-> P`` where ``P`` combines weak
  sequences with property ``and`` / ``or``.  The ``first`` guard makes
  every match attempt after cycle 0 vacuously true (§3.4/§4.4), so the
  monitor runs a single attempt anchored at the first cycle after reset.
* A sequence leaf *fails* when its NFA's live-state set empties before
  any match — the only finite refutation a weak sequence admits — and
  *matches* when an accepting state is reached.  Property verdicts fold
  leaf verdicts through the and/or tree in three-valued logic.
* Assumptions are checked cycle-by-cycle with no lookahead: a trace
  prefix is discarded the cycle an assumption's consequent is violated,
  never earlier (SVA verifiers do not check future violation of
  assumptions, §3.1).

Monitor state is an immutable tuple, so the property verifier can embed
it in explored product states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import SvaError
from repro.rtl.design import Frame
from repro.sva.ast import (
    BoolExpr,
    Directive,
    PAnd,
    PConst,
    PImpl,
    POr,
    PSeq,
    Property,
)
from repro.sva.nfa import Nfa, compile_sequence

#: Leaf status encoding inside monitor state tuples.
_PENDING, _MATCHED, _FAILED = 0, 1, 2

#: Three-valued verdicts.
TRUE, FALSE, UNKNOWN = True, False, None


@dataclass(frozen=True)
class _Node:
    """One node of the flattened property tree."""

    kind: str  # 'leaf', 'and', 'or', 'const'
    children: Tuple[int, ...] = ()
    leaf_index: int = -1
    const: bool = True


class PropertyMonitor:
    """Monitors one ``first |-> P`` assertion along a trace.

    State is ``(leaf_states..., leaf_status...)`` — a flat, hashable
    tuple.  Use :meth:`initial`, :meth:`step`, and :meth:`verdict`.
    """

    def __init__(self, directive: Directive):
        self.directive = directive
        prop = directive.prop
        if isinstance(prop, PImpl):
            self.guard: Optional[BoolExpr] = prop.antecedent
            body = prop.consequent
        else:
            self.guard = None
            body = prop
        self.nfas: List[Nfa] = []
        self.nodes: List[_Node] = []
        self.root = self._build(body)
        # The three-valued verdict is a pure function of the leaf-status
        # tuple; explorers query it once per transition, so memoize.
        self._verdict_cache: dict = {}
        #: Verdict-memo economics, flushed to ``repro.obs`` counters by
        #: the RTLCheck flow after each property check.
        self.verdict_memo_hits = 0
        self.verdict_memo_misses = 0
        for nfa in self.nfas:
            if nfa.starts_accepting():
                raise SvaError(
                    f"{directive.name}: sequence admits an empty match; "
                    "generated sequences must consume at least one cycle"
                )

    def _build(self, prop: Property) -> int:
        if isinstance(prop, PSeq):
            self.nfas.append(compile_sequence(prop.seq))
            node = _Node(kind="leaf", leaf_index=len(self.nfas) - 1)
        elif isinstance(prop, PConst):
            node = _Node(kind="const", const=prop.value)
        elif isinstance(prop, (PAnd, POr)):
            children = tuple(self._build(op) for op in prop.operands)
            node = _Node(kind="and" if isinstance(prop, PAnd) else "or", children=children)
        else:
            raise SvaError(f"monitor cannot handle property {prop!r}")
        self.nodes.append(node)
        return len(self.nodes) - 1

    # ------------------------------------------------------------------

    def initial(self) -> Tuple:
        states = tuple(nfa.initial() for nfa in self.nfas)
        status = tuple(_PENDING for _ in self.nfas)
        return (states, status)

    def step(self, state: Tuple, frame: Frame) -> Tuple:
        """Advance the single anchored match attempt by one frame."""
        states, status = state
        new_states: List[FrozenSet[int]] = []
        new_status: List[int] = []
        for nfa, live, st in zip(self.nfas, states, status):
            if st != _PENDING:
                new_states.append(live)
                new_status.append(st)
                continue
            nxt = nfa.step(live, frame)
            if nfa.accepts(nxt):
                new_states.append(nxt)
                new_status.append(_MATCHED)
            elif not nxt:
                new_states.append(nxt)
                new_status.append(_FAILED)
            else:
                new_states.append(nxt)
                new_status.append(_PENDING)
        return (tuple(new_states), tuple(new_status))

    # ------------------------------------------------------------------

    def _eval(self, node_index: int, status: Sequence[int]) -> Optional[bool]:
        node = self.nodes[node_index]
        if node.kind == "const":
            return node.const
        if node.kind == "leaf":
            st = status[node.leaf_index]
            if st == _MATCHED:
                return TRUE
            if st == _FAILED:
                return FALSE
            return UNKNOWN
        child_verdicts = [self._eval(c, status) for c in node.children]
        if node.kind == "and":
            if any(v is FALSE for v in child_verdicts):
                return FALSE
            if all(v is TRUE for v in child_verdicts):
                return TRUE
            return UNKNOWN
        if any(v is TRUE for v in child_verdicts):
            return TRUE
        if all(v is FALSE for v in child_verdicts):
            return FALSE
        return UNKNOWN

    def verdict(self, state: Tuple) -> Optional[bool]:
        """Three-valued verdict of the anchored attempt so far."""
        _states, status = state
        cache = self._verdict_cache
        if status in cache:
            self.verdict_memo_hits += 1
            return cache[status]
        self.verdict_memo_misses += 1
        result = self._eval(self.root, status)
        cache[status] = result
        return result

    def resolve_at_quiescence(self, state: Tuple, frame: Frame) -> bool:
        """Final verdict when the design has quiesced and ``frame``
        repeats forever: pending leaves resolve to matched if acceptance
        is reachable by repeating the frame, else they stay pending
        forever, which a weak sequence treats as satisfied."""
        states, status = state
        resolved: List[int] = []
        for nfa, live, st in zip(self.nfas, states, status):
            if st == _PENDING and nfa.can_loop_forever(live, frame):
                resolved.append(_MATCHED)
            elif st == _PENDING:
                # Still pending with no way to ever match: under weak
                # semantics an unfinished match is not a failure.
                resolved.append(_MATCHED)
            else:
                resolved.append(st)
        verdict = self._eval(self.root, resolved)
        return verdict is not FALSE


class AssumptionChecker:
    """Cycle-by-cycle checking of generated assumptions (no lookahead)."""

    def __init__(self, directives: Sequence[Directive]):
        self.checks: List[Tuple[str, BoolExpr, Property]] = []
        self.directives = list(directives)
        #: Observability accumulators (flushed to ``repro.obs`` counters
        #: by the RTLCheck flow): antecedent firings seen while checking
        #: frames, and frames pruned by a violated consequent.
        self.antecedent_firings = 0
        self.pruned_frames = 0
        for d in directives:
            if d.structural:
                continue
            prop = d.prop
            if not isinstance(prop, PImpl):
                raise SvaError(
                    f"assumption {d.name} must be an implication for "
                    "cycle-by-cycle checking"
                )
            self.checks.append((d.name, prop.antecedent, prop.consequent))

    def frame_ok(self, frame: Frame) -> bool:
        """True unless some assumption's antecedent fires this cycle with
        a false consequent."""
        fired = 0
        for _name, antecedent, consequent in self.checks:
            if antecedent.evaluate(frame):
                fired += 1
                if not _bool_property(consequent, frame):
                    self.antecedent_firings += fired
                    self.pruned_frames += 1
                    return False
        self.antecedent_firings += fired
        return True

    def frame_ok_repeated(self, frame: Frame, repeats: int) -> bool:
        """Exactly ``repeats`` :meth:`frame_ok` calls on one frame —
        one evaluation, counter increments scaled — for batched
        expansion where every input choice shares the settled frame."""
        fired = 0
        for _name, antecedent, consequent in self.checks:
            if antecedent.evaluate(frame):
                fired += 1
                if not _bool_property(consequent, frame):
                    self.antecedent_firings += fired * repeats
                    self.pruned_frames += repeats
                    return False
        self.antecedent_firings += fired * repeats
        return True

    def violated_names(self, frame: Frame) -> List[str]:
        out = []
        for name, antecedent, consequent in self.checks:
            if antecedent.evaluate(frame) and not _bool_property(consequent, frame):
                out.append(name)
        return out


def _bool_property(prop: Property, frame: Frame) -> bool:
    """Evaluate a single-cycle property (assumption consequents are
    boolean-only by construction)."""
    if isinstance(prop, PConst):
        return prop.value
    if isinstance(prop, PSeq):
        from repro.sva.ast import SBool

        if isinstance(prop.seq, SBool):
            return prop.seq.expr.evaluate(frame)
        raise SvaError("assumption consequents must be single-cycle")
    if isinstance(prop, PAnd):
        return all(_bool_property(op, frame) for op in prop.operands)
    if isinstance(prop, POr):
        return any(_bool_property(op, frame) for op in prop.operands)
    if isinstance(prop, PImpl):
        return (not prop.antecedent.evaluate(frame)) or _bool_property(
            prop.consequent, frame
        )
    raise SvaError(f"assumption consequent too complex: {prop!r}")


def run_monitor_on_trace(
    monitor: PropertyMonitor, trace: Sequence[Frame]
) -> Tuple[Optional[bool], int]:
    """Run one assertion over a complete trace.

    Returns ``(verdict, cycle)``: verdict True/False/None(pending) and
    the cycle where it resolved (or the last cycle).
    """
    state = monitor.initial()
    for cycle, frame in enumerate(trace):
        state = monitor.step(state, frame)
        verdict = monitor.verdict(state)
        if verdict is not UNKNOWN:
            return verdict, cycle
    return monitor.verdict(state), max(len(trace) - 1, 0)
