"""RV32I binary encoding for the litmus-test instruction subset.

The generated SV assumptions initialize instruction memory with real
32-bit RISC-V encodings (paper Figure 8 shows e.g.
``{7'b0,5'd2,5'd1,3'd2,5'b0,`RV32_STORE}`` for ``sw x2, 0(x1)``), so the
simulator decodes genuine machine words rather than symbolic tokens.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.instructions import (
    Addi,
    Fence,
    Halt,
    Instruction,
    Lui,
    Lw,
    Nop,
    Sw,
)

# Base RV32I opcodes (7 bits).
OPCODE_LOAD = 0b0000011
OPCODE_STORE = 0b0100011
OPCODE_OP_IMM = 0b0010011
OPCODE_LUI = 0b0110111
OPCODE_FENCE = 0b0001111
#: custom-0 opcode, used for the paper's added HALT instruction.
OPCODE_HALT = 0b0001011

FUNCT3_WORD = 0b010
FUNCT3_ADDI = 0b000

WORD_MASK = 0xFFFFFFFF


def _field(value: int, width: int, name: str) -> int:
    if not 0 <= value < (1 << width):
        raise EncodingError(f"{name} does not fit in {width} bits: {value}")
    return value


def _imm12_bits(imm: int) -> int:
    if not -2048 <= imm <= 2047:
        raise EncodingError(f"12-bit immediate out of range: {imm}")
    return imm & 0xFFF


def encode(instr: Instruction) -> int:
    """Encode ``instr`` into its 32-bit RV32I machine word."""
    if isinstance(instr, Lw):
        return (
            (_imm12_bits(instr.imm) << 20)
            | (_field(instr.rs1, 5, "rs1") << 15)
            | (FUNCT3_WORD << 12)
            | (_field(instr.rd, 5, "rd") << 7)
            | OPCODE_LOAD
        )
    if isinstance(instr, Sw):
        imm = _imm12_bits(instr.imm)
        imm_hi, imm_lo = imm >> 5, imm & 0x1F
        return (
            (imm_hi << 25)
            | (_field(instr.rs2, 5, "rs2") << 20)
            | (_field(instr.rs1, 5, "rs1") << 15)
            | (FUNCT3_WORD << 12)
            | (imm_lo << 7)
            | OPCODE_STORE
        )
    if isinstance(instr, Addi):
        return (
            (_imm12_bits(instr.imm) << 20)
            | (_field(instr.rs1, 5, "rs1") << 15)
            | (FUNCT3_ADDI << 12)
            | (_field(instr.rd, 5, "rd") << 7)
            | OPCODE_OP_IMM
        )
    if isinstance(instr, Lui):
        return (_field(instr.imm20, 20, "imm20") << 12) | (
            _field(instr.rd, 5, "rd") << 7
        ) | OPCODE_LUI
    if isinstance(instr, Fence):
        return OPCODE_FENCE
    if isinstance(instr, Halt):
        return OPCODE_HALT
    if isinstance(instr, Nop):
        return encode(Addi(rd=0, rs1=0, imm=0))
    raise EncodingError(f"cannot encode {instr!r}")


def _sext12(bits: int) -> int:
    return bits - 0x1000 if bits & 0x800 else bits


def decode(word: int) -> Instruction:
    """Decode a 32-bit machine word back into an :class:`Instruction`.

    Raises :class:`EncodingError` on words outside the supported subset
    (the simulator treats those as illegal instructions).
    """
    if not 0 <= word <= WORD_MASK:
        raise EncodingError(f"machine word out of range: {word:#x}")
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F

    if opcode == OPCODE_LOAD:
        if funct3 != FUNCT3_WORD:
            raise EncodingError(f"unsupported load funct3: {funct3}")
        return Lw(rd=rd, rs1=rs1, imm=_sext12(word >> 20))
    if opcode == OPCODE_STORE:
        if funct3 != FUNCT3_WORD:
            raise EncodingError(f"unsupported store funct3: {funct3}")
        imm = ((word >> 25) << 5) | rd
        return Sw(rs1=rs1, rs2=rs2, imm=_sext12(imm))
    if opcode == OPCODE_OP_IMM:
        if funct3 != FUNCT3_ADDI:
            raise EncodingError(f"unsupported op-imm funct3: {funct3}")
        instr = Addi(rd=rd, rs1=rs1, imm=_sext12(word >> 20))
        if instr == Addi(rd=0, rs1=0, imm=0):
            return Nop()
        return instr
    if opcode == OPCODE_LUI:
        return Lui(rd=rd, imm20=word >> 12)
    if opcode == OPCODE_FENCE:
        return Fence()
    if opcode == OPCODE_HALT:
        return Halt()
    raise EncodingError(f"unsupported opcode {opcode:#09b} in word {word:#010x}")
