"""RV32I subset: instruction objects and binary encoding."""

from repro.isa.encoding import decode, encode
from repro.isa.instructions import (
    NUM_REGS,
    Addi,
    Fence,
    Halt,
    Instruction,
    Lui,
    Lw,
    Nop,
    Sw,
)

__all__ = [
    "NUM_REGS",
    "Addi",
    "Fence",
    "Halt",
    "Instruction",
    "Lui",
    "Lw",
    "Nop",
    "Sw",
    "decode",
    "encode",
]
