"""Instruction objects for the RV32I subset used by litmus tests.

The Multi-V-scale cores execute a small subset of RV32I: loads, stores,
ADDI/LUI for register setup, and a custom HALT instruction (the paper
adds halt logic to V-scale because RISC-V has no architectural halt).
Each instruction is a frozen dataclass; :mod:`repro.isa.encoding` turns
them into 32-bit words and back.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of integer registers in RV32I.
NUM_REGS = 32


def _check_reg(name: str, value: int) -> None:
    if not 0 <= value < NUM_REGS:
        raise ValueError(f"{name} must be in [0, {NUM_REGS}), got {value}")


def _check_imm12(value: int) -> None:
    if not -2048 <= value <= 2047:
        raise ValueError(f"12-bit immediate out of range: {value}")


@dataclass(frozen=True)
class Instruction:
    """Base class for decoded instructions."""

    @property
    def is_load(self) -> bool:
        return isinstance(self, Lw)

    @property
    def is_store(self) -> bool:
        return isinstance(self, Sw)

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_halt(self) -> bool:
        return isinstance(self, Halt)


@dataclass(frozen=True)
class Lw(Instruction):
    """Load word: ``rd <- mem[rs1 + imm]``."""

    rd: int
    rs1: int
    imm: int = 0

    def __post_init__(self):
        _check_reg("rd", self.rd)
        _check_reg("rs1", self.rs1)
        _check_imm12(self.imm)

    def __str__(self):
        return f"lw x{self.rd}, {self.imm}(x{self.rs1})"


@dataclass(frozen=True)
class Sw(Instruction):
    """Store word: ``mem[rs1 + imm] <- rs2``."""

    rs1: int
    rs2: int
    imm: int = 0

    def __post_init__(self):
        _check_reg("rs1", self.rs1)
        _check_reg("rs2", self.rs2)
        _check_imm12(self.imm)

    def __str__(self):
        return f"sw x{self.rs2}, {self.imm}(x{self.rs1})"


@dataclass(frozen=True)
class Addi(Instruction):
    """Add immediate: ``rd <- rs1 + imm``."""

    rd: int
    rs1: int
    imm: int

    def __post_init__(self):
        _check_reg("rd", self.rd)
        _check_reg("rs1", self.rs1)
        _check_imm12(self.imm)

    def __str__(self):
        return f"addi x{self.rd}, x{self.rs1}, {self.imm}"


@dataclass(frozen=True)
class Lui(Instruction):
    """Load upper immediate: ``rd <- imm20 << 12``."""

    rd: int
    imm20: int

    def __post_init__(self):
        _check_reg("rd", self.rd)
        if not 0 <= self.imm20 < (1 << 20):
            raise ValueError(f"20-bit immediate out of range: {self.imm20}")

    def __str__(self):
        return f"lui x{self.rd}, {self.imm20:#x}"


@dataclass(frozen=True)
class Fence(Instruction):
    """Memory fence.

    On the in-order Multi-V-scale this is a no-op in the datapath (the
    arbiter already serializes memory), but litmus tests for weaker
    models may include it, and the µspec model can attach axioms to it.
    """

    def __str__(self):
        return "fence"


@dataclass(frozen=True)
class Halt(Instruction):
    """Custom halt instruction (custom-0 opcode).

    The paper adds halt logic so a litmus thread can be stopped once it
    has executed its instructions; we do the same.
    """

    def __str__(self):
        return "halt"


@dataclass(frozen=True)
class Nop(Instruction):
    """Encoded as ``addi x0, x0, 0``; kept distinct for readability."""

    def __str__(self):
        return "nop"
