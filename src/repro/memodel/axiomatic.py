"""Axiomatic SC checker: ``acyclic(po ∪ rf ∪ co ∪ fr)``.

This is the whole-execution style of verification the paper contrasts
with temporal checking in Figure 4a: enumerate candidate executions
(reads-from and coherence choices), discard those that do not exhibit
the outcome under test, and accept the outcome iff some remaining
candidate is acyclic in the union of the four relations.

It is intentionally an independent implementation from the operational
executor in :mod:`repro.memodel.operational`; the test suite checks the
two agree on every litmus test (a classic equivalence result).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.litmus.test import LitmusTest
from repro.memodel.events import Event, extract_events, program_order_pairs

#: Sentinel eid for "reads the initial value".
INIT = -1


def is_acyclic(num_nodes: int, edges: Iterable[Tuple[int, int]]) -> bool:
    """Cycle check over nodes ``0..num_nodes-1`` (iterative colouring DFS)."""
    adjacency: Dict[int, List[int]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
    WHITE, GREY, BLACK = 0, 1, 2
    colour = [WHITE] * num_nodes
    for root in range(num_nodes):
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        colour[root] = GREY
        while stack:
            node, child_index = stack[-1]
            children = adjacency.get(node, [])
            if child_index == len(children):
                colour[node] = BLACK
                stack.pop()
                continue
            stack[-1] = (node, child_index + 1)
            child = children[child_index]
            if colour[child] == GREY:
                return False
            if colour[child] == WHITE:
                colour[child] = GREY
                stack.append((child, 0))
    return True


class CandidateExecution:
    """One concrete (rf, co) choice for a litmus test's events."""

    def __init__(
        self,
        events: List[Event],
        rf: Dict[int, int],  # load eid -> store eid or INIT
        co: Dict[str, Tuple[int, ...]],  # addr -> store eids in order
        initial_memory: Dict[str, int],
    ):
        self.events = events
        self.rf = rf
        self.co = co
        self.initial_memory = initial_memory
        self._by_eid = {e.eid: e for e in events}

    def load_value(self, load_eid: int) -> int:
        source = self.rf[load_eid]
        if source == INIT:
            return self.initial_memory[self._by_eid[load_eid].addr]
        return self._by_eid[source].value

    def final_memory(self) -> Dict[str, int]:
        memory = dict(self.initial_memory)
        for addr, order in self.co.items():
            if order:
                memory[addr] = self._by_eid[order[-1]].value
        return memory

    def relation_edges(self) -> List[Tuple[int, int]]:
        """po ∪ rf ∪ co ∪ fr as eid pairs (INIT sources are dropped:
        the initial write is before everything, so it cannot close a
        cycle; its fr edges are still materialized)."""
        edges: List[Tuple[int, int]] = list(program_order_pairs(self.events))
        for load_eid, src in self.rf.items():
            if src != INIT:
                edges.append((src, load_eid))
        for order in self.co.values():
            for i in range(len(order) - 1):
                for j in range(i + 1, len(order)):
                    edges.append((order[i], order[j]))
        # fr: load reads w; load is before every co-successor of w.
        for load_eid, src in self.rf.items():
            addr = self._by_eid[load_eid].addr
            order = self.co.get(addr, ())
            if src == INIT:
                successors: Sequence[int] = order
            else:
                pos = order.index(src)
                successors = order[pos + 1 :]
            for store_eid in successors:
                edges.append((load_eid, store_eid))
        return edges

    def is_sc(self) -> bool:
        return is_acyclic(len(self.events), self.relation_edges())


def enumerate_candidates(test: LitmusTest) -> Iterable[CandidateExecution]:
    """All well-formed (rf, co) candidate executions of ``test``."""
    events = extract_events(test)
    initial_memory = test.initial_memory_map
    loads = [e for e in events if e.is_load]
    stores_by_addr: Dict[str, List[Event]] = {}
    for event in events:
        if event.is_store:
            stores_by_addr.setdefault(event.addr, []).append(event)

    rf_choices: List[List[int]] = []
    for load_event in loads:
        sources = [INIT] + [s.eid for s in stores_by_addr.get(load_event.addr, [])]
        rf_choices.append(sources)

    co_addrs = sorted(stores_by_addr)
    co_choices = [
        [tuple(s.eid for s in perm) for perm in itertools.permutations(stores_by_addr[a])]
        for a in co_addrs
    ]

    for rf_combo in itertools.product(*rf_choices):
        rf = {load.eid: src for load, src in zip(loads, rf_combo)}
        for co_combo in itertools.product(*co_choices):
            co = dict(zip(co_addrs, co_combo))
            yield CandidateExecution(events, rf, co, initial_memory)


def _matches_outcome(test: LitmusTest, candidate: CandidateExecution) -> bool:
    out_regs = test.outcome.register_map
    for event in candidate.events:
        if event.is_load and event.out in out_regs:
            if candidate.load_value(event.eid) != out_regs[event.out]:
                return False
    final = candidate.final_memory()
    for addr, value in test.outcome.final_memory:
        if final.get(addr) != value:
            return False
    return True


def axiomatic_sc_outcomes(test: LitmusTest):
    """All (registers, final memory) states of SC candidate executions.

    The axiomatic counterpart of
    :func:`repro.memodel.operational.enumerate_sc_outcomes`: every
    acyclic (rf, co) candidate contributes the outcome it induces —
    all load registers plus the coherence-final memory values.  By the
    classic operational/axiomatic SC equivalence the two sets must be
    equal for every well-formed litmus test; the differential harness
    (:mod:`repro.difftest`) diffs them on every fuzzed test.
    """
    outcomes = set()
    for candidate in enumerate_candidates(test):
        if not candidate.is_sc():
            continue
        regs = {
            event.out: candidate.load_value(event.eid)
            for event in candidate.events
            if event.is_load
        }
        outcomes.add(
            (
                tuple(sorted(regs.items())),
                tuple(sorted(candidate.final_memory().items())),
            )
        )
    return frozenset(outcomes)


def axiomatic_sc_allowed(test: LitmusTest) -> bool:
    """Outcome observable under axiomatic SC (acyclic po∪rf∪co∪fr)?"""
    return any(
        _matches_outcome(test, candidate) and candidate.is_sc()
        for candidate in enumerate_candidates(test)
    )


def axiomatic_sc_witness(test: LitmusTest) -> Optional[CandidateExecution]:
    """An SC candidate execution exhibiting the outcome, if one exists."""
    for candidate in enumerate_candidates(test):
        if _matches_outcome(test, candidate) and candidate.is_sc():
            return candidate
    return None
