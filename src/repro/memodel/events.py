"""Shared-memory events extracted from litmus tests.

Both the operational executors and the axiomatic checker work over a
flat list of :class:`Event` objects derived from a
:class:`~repro.litmus.test.LitmusTest`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.litmus.test import LitmusTest


@dataclass(frozen=True)
class Event:
    """One memory event of a litmus test.

    ``eid`` is globally unique; (``thread``, ``index``) gives program
    order.  Stores carry ``value``; loads carry the output register name
    in ``out``.
    """

    eid: int
    thread: int
    index: int
    kind: str  # 'R', 'W', or 'F'
    addr: Optional[str]
    value: Optional[int]
    out: Optional[str]

    @property
    def is_load(self) -> bool:
        return self.kind == "R"

    @property
    def is_store(self) -> bool:
        return self.kind == "W"

    @property
    def is_fence(self) -> bool:
        return self.kind == "F"

    def __str__(self):
        if self.is_store:
            return f"W{self.eid}[{self.addr}]={self.value}"
        if self.is_load:
            return f"R{self.eid}[{self.addr}]->{self.out}"
        return f"F{self.eid}"


def extract_events(test: LitmusTest) -> List[Event]:
    """Flatten ``test`` into events, eids assigned in (thread, po) order."""
    events: List[Event] = []
    eid = 0
    for thread, ops in enumerate(test.threads):
        for index, op in enumerate(ops):
            events.append(
                Event(
                    eid=eid,
                    thread=thread,
                    index=index,
                    kind=op.kind,
                    addr=op.addr,
                    value=op.value,
                    out=op.out,
                )
            )
            eid += 1
    return events


def program_order_pairs(events: List[Event]) -> List[Tuple[int, int]]:
    """All (eid, eid) pairs related by program order (transitive)."""
    pairs = []
    by_thread: Dict[int, List[Event]] = {}
    for event in events:
        by_thread.setdefault(event.thread, []).append(event)
    for thread_events in by_thread.values():
        ordered = sorted(thread_events, key=lambda e: e.index)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                pairs.append((a.eid, b.eid))
    return pairs
