"""Memory-consistency-model oracles (SC and x86-TSO).

Two complementary styles live here: *enumeration* oracles that compute
the full outcome set of a litmus test (operational and axiomatic), and
the *per-execution* polynomial checker (:mod:`repro.memodel.polycheck`)
that judges one observed trace against SC or TSO without enumerating
anything.
"""

from repro.memodel.axiomatic import (
    CandidateExecution,
    axiomatic_sc_allowed,
    axiomatic_sc_outcomes,
    axiomatic_sc_witness,
    enumerate_candidates,
    is_acyclic,
)
from repro.memodel.events import Event, extract_events, program_order_pairs
from repro.memodel.operational import (
    enumerate_sc_outcomes,
    enumerate_tso_outcomes,
    sc_allowed,
    sc_forbidden,
    tso_allowed,
)
from repro.memodel.polycheck import (
    DEFAULT_POLYCHECK_STATES,
    Trace,
    TraceVerdict,
    check_trace,
)

__all__ = [
    "CandidateExecution",
    "DEFAULT_POLYCHECK_STATES",
    "Event",
    "Trace",
    "TraceVerdict",
    "axiomatic_sc_allowed",
    "axiomatic_sc_outcomes",
    "axiomatic_sc_witness",
    "check_trace",
    "enumerate_candidates",
    "enumerate_sc_outcomes",
    "enumerate_tso_outcomes",
    "extract_events",
    "is_acyclic",
    "program_order_pairs",
    "sc_allowed",
    "sc_forbidden",
    "tso_allowed",
]
