"""Memory-consistency-model oracles (SC and x86-TSO)."""

from repro.memodel.axiomatic import (
    CandidateExecution,
    axiomatic_sc_allowed,
    axiomatic_sc_outcomes,
    axiomatic_sc_witness,
    enumerate_candidates,
    is_acyclic,
)
from repro.memodel.events import Event, extract_events, program_order_pairs
from repro.memodel.operational import (
    enumerate_sc_outcomes,
    enumerate_tso_outcomes,
    sc_allowed,
    sc_forbidden,
    tso_allowed,
)

__all__ = [
    "CandidateExecution",
    "Event",
    "axiomatic_sc_allowed",
    "axiomatic_sc_outcomes",
    "axiomatic_sc_witness",
    "enumerate_candidates",
    "enumerate_sc_outcomes",
    "enumerate_tso_outcomes",
    "extract_events",
    "is_acyclic",
    "program_order_pairs",
    "sc_allowed",
    "sc_forbidden",
    "tso_allowed",
]
