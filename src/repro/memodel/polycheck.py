"""Per-execution memory-consistency checking (Roy-et-al. style).

The operational oracles in :mod:`repro.memodel.operational` enumerate
*every* outcome a litmus test can produce — exponential in program
size, and hopeless past a handful of instructions per thread.  This
module answers the complementary question in the style of Roy et al.'s
polynomial-time MCM verification: given **one observed execution** —
per-thread program order, the value each load returned, and the final
memory — is there a witness interleaving (SC) or store-buffer machine
run (x86-TSO) that reproduces it?

The checker is layered, cheapest first:

1. **Value feasibility** — every load's observed value must be written
   by some same-address store (or be the initial value), and every
   location's final value must be the value of some store to it (or
   the initial value when the location is never stored).  O(n) per
   address; this alone rejects the classic V-scale store-dropping bug
   (a lone ``[W x 1]`` ending with ``x = 0`` has no store writing 0).
2. **Vector-clock closure** (SC only) — the Roy-et-al. frontier
   construction: fixed reads-from edges (loads whose observed value
   identifies a unique writer) and unique final writers induce
   coherence orderings (for a load ``l`` reading store ``s``: any
   same-address store ordered before ``l`` must be before ``s``, and
   any ordered after ``s`` must be after ``l``); edges propagate
   through O(n·p) vector clocks until fixpoint, and any cycle is a
   sound rejection.
3. **Witness search** — an exact memoized frontier search over
   ``(pcs, memory)`` (SC) or ``(pcs, store buffers, memory)`` (TSO)
   states, pruned by the observed load values and, under SC, by the
   closure's must-happen-before clocks.  Deciding per-execution SC
   with ambiguous reads-from is NP-complete in general, so the search
   carries a state budget (:data:`DEFAULT_POLYCHECK_STATES`) and
   raises :class:`~repro.errors.ReproError` when it trips — fuzz
   campaigns record the refusal instead of mislabeling the trace.

On the fuzzer's long-program mode, store values are unique per
location, so every read and the final writer are unambiguous: the
closure fixes the full coherence order and the search degenerates to
walking one witness — the polynomial case Roy et al. identify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ReproError
from repro.litmus.test import LitmusTest, MemOp
from repro.memodel.operational import FinalState

#: Witness-search state budget (matches the RTL enumeration default).
DEFAULT_POLYCHECK_STATES = 200_000

#: Sentinel writer id for "the initial value".
_INIT = -1


@dataclass(frozen=True)
class Trace:
    """One observed execution of a litmus program.

    ``load_values`` maps each load's output register to the value the
    load returned; ``final_memory`` carries the post-run value of
    *every* shared location.  Both are stored as sorted tuples so a
    trace is hashable and digests deterministically.
    """

    threads: Tuple[Tuple[MemOp, ...], ...]
    load_values: Tuple[Tuple[str, int], ...]
    final_memory: Tuple[Tuple[str, int], ...]
    initial_memory: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def of(
        threads: Sequence[Sequence[MemOp]],
        load_values: Dict[str, int],
        final_memory: Dict[str, int],
        initial_memory: Optional[Dict[str, int]] = None,
    ) -> "Trace":
        return Trace(
            threads=tuple(tuple(t) for t in threads),
            load_values=tuple(sorted(load_values.items())),
            final_memory=tuple(sorted(final_memory.items())),
            initial_memory=tuple(sorted((initial_memory or {}).items())),
        )

    @staticmethod
    def from_outcome(test: LitmusTest, outcome: FinalState) -> "Trace":
        """Lift an enumerated :data:`FinalState` of ``test`` into a
        trace — the bridge for cross-checking polycheck against the
        exhaustive oracles."""
        regs, memory = outcome
        return Trace.of(
            test.threads, dict(regs), dict(memory), test.initial_memory_map
        )

    @property
    def outcome(self) -> FinalState:
        """The trace's architectural outcome in oracle shape."""
        return (self.load_values, self.final_memory)

    def event_count(self) -> int:
        return sum(len(t) for t in self.threads)


@dataclass
class TraceVerdict:
    """Result of :func:`check_trace` on one trace."""

    conformant: bool
    model: str
    reason: str = ""
    events: int = 0
    #: True when the vector-clock closure alone refuted the trace
    #: (no search was needed).
    closure_rejected: bool = False
    #: States the witness search visited (0 on closure rejections).
    search_states: int = 0


class _Rejected(Exception):
    """Internal: the trace is refuted; ``args[0]`` is the reason."""


@dataclass
class _Event:
    eid: int
    thread: int
    pos: int  # index within the thread (po position)
    op: MemOp
    value: Optional[int] = None  # observed (loads) / written (stores)
    #: Fixed reads-from writer: a store eid, _INIT, or None (ambiguous).
    rf: Optional[int] = None
    candidates: Tuple[int, ...] = ()


@dataclass
class _Analysis:
    events: List[_Event] = field(default_factory=list)
    by_thread: List[List[_Event]] = field(default_factory=list)
    stores_to: Dict[str, List[_Event]] = field(default_factory=dict)
    loads: List[_Event] = field(default_factory=list)
    initial: Dict[str, int] = field(default_factory=dict)
    final: Dict[str, int] = field(default_factory=dict)
    #: clocks[eid][thread] = number of that thread's events that must
    #: happen before-or-at this event in every witness.
    clocks: List[List[int]] = field(default_factory=list)
    #: extra (non-po) must-happen-before edges, as adjacency sets.
    succ: Dict[int, set] = field(default_factory=dict)


def _build_analysis(trace: Trace) -> _Analysis:
    ana = _Analysis()
    load_values = dict(trace.load_values)
    ana.final = dict(trace.final_memory)
    addresses: List[str] = []
    for thread in trace.threads:
        for op in thread:
            if op.addr is not None and op.addr not in addresses:
                addresses.append(op.addr)
    ana.initial = {addr: 0 for addr in addresses}
    ana.initial.update(dict(trace.initial_memory))

    for tid, thread in enumerate(trace.threads):
        row: List[_Event] = []
        for pos, op in enumerate(thread):
            event = _Event(eid=len(ana.events), thread=tid, pos=pos, op=op)
            if op.is_store:
                event.value = op.value
                ana.stores_to.setdefault(op.addr, []).append(event)
            elif op.is_load:
                if op.out not in load_values:
                    raise ReproError(
                        f"trace is incomplete: no observed value for "
                        f"load register {op.out!r}"
                    )
                event.value = load_values[op.out]
                ana.loads.append(event)
            ana.events.append(event)
            row.append(event)
        ana.by_thread.append(row)

    for addr in addresses:
        if addr not in ana.final:
            raise ReproError(
                f"trace is incomplete: no final value for location {addr!r}"
            )
    return ana


def _value_feasibility(ana: _Analysis) -> None:
    """Layer 1: observed values must be producible at all (model-free)."""
    for event in ana.loads:
        addr, value = event.op.addr, event.value
        candidates = [
            s.eid for s in ana.stores_to.get(addr, []) if s.value == value
        ]
        if value == ana.initial[addr]:
            candidates.append(_INIT)
        if not candidates:
            raise _Rejected(
                f"load {event.op.out} observed [{addr}] = {value}, "
                f"which no store writes and is not the initial value"
            )
        event.candidates = tuple(candidates)
        if len(candidates) == 1:
            event.rf = candidates[0]
    for addr, final_value in ana.final.items():
        stores = ana.stores_to.get(addr, [])
        if stores:
            if not any(s.value == final_value for s in stores):
                raise _Rejected(
                    f"final [{addr}] = {final_value} matches no store to "
                    f"{addr} (a store was lost or corrupted)"
                )
        elif final_value != ana.initial[addr]:
            raise _Rejected(
                f"final [{addr}] = {final_value} but {addr} is never "
                f"stored (initial value {ana.initial[addr]})"
            )


def _init_clocks(ana: _Analysis) -> None:
    num_threads = len(ana.by_thread)
    ana.clocks = [[0] * num_threads for _ in ana.events]
    for row in ana.by_thread:
        prev: Optional[_Event] = None
        for event in row:
            clock = ana.clocks[event.eid]
            if prev is not None:
                for t, v in enumerate(ana.clocks[prev.eid]):
                    clock[t] = v
            clock[event.thread] = event.pos + 1


def _hb(ana: _Analysis, a: _Event, b: _Event) -> bool:
    """Must ``a`` happen before ``b`` in every witness?"""
    return ana.clocks[b.eid][a.thread] >= a.pos + 1


def _add_edge(ana: _Analysis, a: _Event, b: _Event) -> bool:
    """Record must-edge ``a -> b``; propagate clocks forward until they
    settle; returns True when anything changed.  Raises
    :class:`_Rejected` on a cycle."""
    if a.eid == b.eid or _hb(ana, a, b):
        return False
    if _hb(ana, b, a):
        raise _Rejected(
            f"ordering cycle: {b.op} (T{b.thread}) must precede "
            f"{a.op} (T{a.thread}) and vice versa"
        )
    ana.succ.setdefault(a.eid, set()).add(b.eid)
    # Relax clocks along outgoing edges (program order + added edges);
    # clocks only grow, so this terminates.
    worklist = [(a.eid, b.eid)]
    while worklist:
        src, dst = worklist.pop()
        src_clock = ana.clocks[src]
        dst_clock = ana.clocks[dst]
        changed = False
        for t, v in enumerate(src_clock):
            if v > dst_clock[t]:
                dst_clock[t] = v
                changed = True
        if not changed:
            continue
        event = ana.events[dst]
        if dst_clock[event.thread] > event.pos + 1:
            raise _Rejected(
                f"ordering cycle through {event.op} (T{event.thread})"
            )
        row = ana.by_thread[event.thread]
        if event.pos + 1 < len(row):
            worklist.append((dst, row[event.pos + 1].eid))
        for nxt in ana.succ.get(dst, ()):
            worklist.append((dst, nxt))
    return True


def _closure(ana: _Analysis) -> None:
    """Layer 2 (SC): fixed-rf coherence inference to fixpoint."""
    _init_clocks(ana)

    # Seed edges: fixed reads-from, init-reading loads, unique final
    # writers.
    for load in ana.loads:
        if load.rf is None:
            continue
        stores = ana.stores_to.get(load.op.addr, [])
        if load.rf == _INIT:
            # Reading the initial value: every store to the location
            # comes after the load.
            for s in stores:
                _add_edge(ana, load, s)
        else:
            _add_edge(ana, ana.events[load.rf], load)
    for addr, final_value in ana.final.items():
        stores = ana.stores_to.get(addr, [])
        finals = [s for s in stores if s.value == final_value]
        if stores and len(finals) == 1:
            last = finals[0]
            for s in stores:
                _add_edge(ana, s, last)

    # Derived rules (Roy et al.): for load l with fixed writer s and
    # same-address store s':  s' -> l  implies  s' -> s;   s -> s'
    # implies  l -> s'.
    changed = True
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > len(ana.events) ** 2 + 8:
            break  # paranoia bound; edges are monotone so unreachable
        for load in ana.loads:
            if load.rf is None or load.rf == _INIT:
                continue
            writer = ana.events[load.rf]
            for s2 in ana.stores_to.get(load.op.addr, []):
                if s2.eid == writer.eid:
                    continue
                if _hb(ana, s2, load) and _add_edge(ana, s2, writer):
                    changed = True
                if _hb(ana, writer, s2) and _add_edge(ana, load, s2):
                    changed = True


def _search_sc(ana: _Analysis, max_states: int) -> int:
    """Layer 3 (SC): memoized frontier search for a witness
    interleaving.  Returns states visited; raises on no-witness or
    budget."""
    addr_index = {addr: i for i, addr in enumerate(sorted(ana.initial))}
    init_mem = tuple(
        ana.initial[addr] for addr in sorted(ana.initial)
    )
    final_mem = tuple(
        ana.final[addr] for addr in sorted(ana.initial)
    )
    total = tuple(len(row) for row in ana.by_thread)
    start = (tuple(0 for _ in ana.by_thread), init_mem)
    seen = {start}
    stack = [start]
    while stack:
        pcs, mem = stack.pop()
        if pcs == total:
            if mem == final_mem:
                return len(seen)
            continue
        for tid, pc in enumerate(pcs):
            if pc >= total[tid]:
                continue
            event = ana.by_thread[tid][pc]
            # Closure prune: every must-predecessor already executed.
            clock = ana.clocks[event.eid]
            if any(
                pcs[u] < clock[u] for u in range(len(pcs)) if u != tid
            ):
                continue
            op = event.op
            new_mem = mem
            if op.is_store:
                idx = addr_index[op.addr]
                new_mem = mem[:idx] + (op.value,) + mem[idx + 1 :]
            elif op.is_load:
                if mem[addr_index[op.addr]] != event.value:
                    continue
            state = (pcs[:tid] + (pc + 1,) + pcs[tid + 1 :], new_mem)
            if state not in seen:
                if len(seen) >= max_states:
                    raise ReproError(
                        f"polycheck: witness search exceeded "
                        f"{max_states} states"
                    )
                seen.add(state)
                stack.append(state)
    raise _Rejected("no SC interleaving reproduces the observed values")


def _search_tso(ana: _Analysis, max_states: int) -> int:
    """Layer 3 (TSO): witness search over the store-buffer machine."""
    addrs = sorted(ana.initial)
    addr_index = {addr: i for i, addr in enumerate(addrs)}
    init_mem = tuple(ana.initial[addr] for addr in addrs)
    final_mem = tuple(ana.final[addr] for addr in addrs)
    total = tuple(len(row) for row in ana.by_thread)
    empty = tuple(() for _ in ana.by_thread)
    start = (tuple(0 for _ in ana.by_thread), empty, init_mem)
    seen = {start}
    stack = [start]
    while stack:
        pcs, buffers, mem = stack.pop()
        if pcs == total and all(not b for b in buffers):
            if mem == final_mem:
                return len(seen)
            continue
        successors = []
        for tid, pc in enumerate(pcs):
            buffer = buffers[tid]
            if buffer:  # drain the head
                idx, value = buffer[0]
                new_mem = mem[:idx] + (value,) + mem[idx + 1 :]
                successors.append(
                    (
                        pcs,
                        buffers[:tid] + (buffer[1:],) + buffers[tid + 1 :],
                        new_mem,
                    )
                )
            if pc >= total[tid]:
                continue
            event = ana.by_thread[tid][pc]
            op = event.op
            new_pcs = pcs[:tid] + (pc + 1,) + pcs[tid + 1 :]
            if op.is_store:
                entry = (addr_index[op.addr], op.value)
                successors.append(
                    (
                        new_pcs,
                        buffers[:tid] + (buffer + (entry,),) + buffers[tid + 1 :],
                        mem,
                    )
                )
            elif op.is_fence:
                if not buffer:
                    successors.append((new_pcs, buffers, mem))
            else:
                idx = addr_index[op.addr]
                value = mem[idx]
                for buf_idx, buf_value in buffer:  # youngest wins
                    if buf_idx == idx:
                        value = buf_value
                if value == event.value:
                    successors.append((new_pcs, buffers, mem))
        for state in successors:
            if state not in seen:
                if len(seen) >= max_states:
                    raise ReproError(
                        f"polycheck: witness search exceeded "
                        f"{max_states} states"
                    )
                seen.add(state)
                stack.append(state)
    raise _Rejected(
        "no TSO store-buffer execution reproduces the observed values"
    )


def check_trace(
    trace: Trace,
    model: str = "sc",
    max_states: int = DEFAULT_POLYCHECK_STATES,
) -> TraceVerdict:
    """Decide whether ``trace`` is an execution the ``model`` allows.

    Exact on its answer: ``conformant=True`` iff the trace's outcome is
    a member of the model's enumerated outcome set for the same program
    (property-tested in ``tests/test_polycheck.py``).  Raises
    :class:`ReproError` for malformed traces or a tripped search
    budget — never for a mere non-conformance, which is a verdict.
    """
    if model not in ("sc", "tso"):
        raise ReproError(f"unknown model {model!r}; choose 'sc' or 'tso'")
    ana = _build_analysis(trace)
    verdict = TraceVerdict(
        conformant=True, model=model, events=len(ana.events)
    )
    recorder = obs.get_recorder()
    if recorder.enabled:
        recorder.count("polycheck.traces", 1)
        recorder.count("polycheck.events", len(ana.events))
    try:
        _value_feasibility(ana)
        if model == "sc":
            _closure(ana)
            verdict.search_states = _search_sc(ana, max_states)
        else:
            _init_clocks(ana)  # clocks unused for pruning, kept for stats
            verdict.search_states = _search_tso(ana, max_states)
    except _Rejected as rejected:
        verdict.conformant = False
        verdict.reason = str(rejected)
        verdict.closure_rejected = verdict.search_states == 0
    return verdict
