"""Operational memory-model executors.

These enumerate *every* final outcome a litmus test can produce under a
given model and serve as the ground-truth oracles for the rest of the
library (litmus verdicts, RTL trace checking, microarchitectural
verification cross-checks).

* :func:`enumerate_sc_outcomes` — sequential consistency: one global
  interleaving of atomic operations (Lamport's definition; the abstract
  machine of paper Figure 4).
* :func:`enumerate_tso_outcomes` — total store order: a FIFO store
  buffer per thread with store-to-load forwarding, modelling x86-TSO.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.litmus.test import LitmusTest, Outcome

#: A final outcome: (sorted register values, sorted final memory values).
FinalState = Tuple[Tuple[Tuple[str, int], ...], Tuple[Tuple[str, int], ...]]


def _final_state(regs: Dict[str, int], memory: Dict[str, int]) -> FinalState:
    return (tuple(sorted(regs.items())), tuple(sorted(memory.items())))


def enumerate_sc_outcomes(test: LitmusTest) -> Set[FinalState]:
    """All (registers, final memory) states reachable under SC."""
    init_memory = tuple(sorted(test.initial_memory_map.items()))
    initial = (tuple(0 for _ in test.threads), (), init_memory)
    seen = {initial}
    stack = [initial]
    finals: Set[FinalState] = set()
    while stack:
        pcs, regs, memory = stack.pop()
        mem = dict(memory)
        progressed = False
        for thread, pc in enumerate(pcs):
            ops = test.threads[thread]
            if pc >= len(ops):
                continue
            progressed = True
            op = ops[pc]
            new_regs = regs
            if op.is_store:
                mem2 = dict(mem)
                mem2[op.addr] = op.value
                new_memory = tuple(sorted(mem2.items()))
            else:
                new_memory = memory
                if op.is_load:
                    new_regs = tuple(sorted(dict(regs, **{op.out: mem[op.addr]}).items()))
            new_pcs = pcs[:thread] + (pc + 1,) + pcs[thread + 1 :]
            state = (new_pcs, new_regs, new_memory)
            if state not in seen:
                seen.add(state)
                stack.append(state)
        if not progressed:
            finals.add((regs, memory))
    return finals


def enumerate_tso_outcomes(test: LitmusTest) -> Set[FinalState]:
    """All (registers, final memory) states reachable under x86-TSO.

    Each thread owns a FIFO store buffer.  A store enqueues; the buffer
    head may drain to memory at any point; a load first forwards from
    the youngest same-address buffered store, else reads memory; a fence
    blocks until the thread's buffer is empty.
    """
    init_memory = tuple(sorted(test.initial_memory_map.items()))
    empty_buffers = tuple(() for _ in test.threads)
    initial = (tuple(0 for _ in test.threads), empty_buffers, (), init_memory)
    seen = {initial}
    stack = [initial]
    finals: Set[FinalState] = set()
    while stack:
        pcs, buffers, regs, memory = stack.pop()
        mem = dict(memory)
        successors = []
        for thread, pc in enumerate(pcs):
            buffer = buffers[thread]
            # Drain the head of this thread's store buffer.
            if buffer:
                addr, value = buffer[0]
                mem2 = dict(mem)
                mem2[addr] = value
                new_buffers = (
                    buffers[:thread] + (buffer[1:],) + buffers[thread + 1 :]
                )
                successors.append(
                    (pcs, new_buffers, regs, tuple(sorted(mem2.items())))
                )
            ops = test.threads[thread]
            if pc >= len(ops):
                continue
            op = ops[pc]
            new_pcs = pcs[:thread] + (pc + 1,) + pcs[thread + 1 :]
            if op.is_store:
                new_buffer = buffer + ((op.addr, op.value),)
                new_buffers = (
                    buffers[:thread] + (new_buffer,) + buffers[thread + 1 :]
                )
                successors.append((new_pcs, new_buffers, regs, memory))
            elif op.is_fence:
                if not buffer:
                    successors.append((new_pcs, buffers, regs, memory))
            else:
                value = mem[op.addr]
                for buf_addr, buf_value in buffer:  # youngest wins
                    if buf_addr == op.addr:
                        value = buf_value
                new_regs = tuple(sorted(dict(regs, **{op.out: value}).items()))
                successors.append((new_pcs, buffers, new_regs, memory))
        if not successors:
            finals.add((regs, memory))
        for state in successors:
            if state not in seen:
                seen.add(state)
                stack.append(state)
    return finals


def _outcome_matches(outcome: Outcome, final: FinalState) -> bool:
    regs, memory = dict(final[0]), dict(final[1])
    for reg, value in outcome.registers:
        if regs.get(reg) != value:
            return False
    for addr, value in outcome.final_memory:
        if memory.get(addr) != value:
            return False
    return True


def sc_allowed(test: LitmusTest) -> bool:
    """Is the test's candidate outcome observable under SC?"""
    return any(_outcome_matches(test.outcome, f) for f in enumerate_sc_outcomes(test))


def sc_forbidden(test: LitmusTest) -> bool:
    """Is the test's candidate outcome forbidden under SC?"""
    return not sc_allowed(test)


def tso_allowed(test: LitmusTest) -> bool:
    """Is the test's candidate outcome observable under x86-TSO?"""
    return any(_outcome_matches(test.outcome, f) for f in enumerate_tso_outcomes(test))
