"""The 56-litmus-test suite of the paper's evaluation.

The paper verified Multi-V-scale against 56 tests: hand-written tests
from the x86-TSO suite plus tests generated with the diy framework
(Section 6.1), with the test names listed along the x-axes of Figures 13
and 14.  The diy-generated bodies were never published, so this module
reconstructs them: the hand-written classics (mp, sb, lb, wrc, rwc,
iriw, co-*, n*, iwp*, ssl, amd3) are written out explicitly, and the
``rfi*`` / ``safe*`` / ``podwr*`` families are produced by our
:mod:`repro.litmus.diy` generator from deterministic enumerations of
critical cycles with the matching character (rfi tests contain an
``Rfi`` edge; podwr tests a ``PodWR`` edge; safe tests only edges that
are "safe" under TSO).  Each candidate outcome's SC verdict is derived
from the oracles in :mod:`repro.memodel`, never hard-coded.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import LitmusError
from repro.litmus.diy import enumerate_cycles, generate_from_cycle
from repro.litmus.test import LitmusTest, Outcome, load, store

#: Edges considered safe (never relaxed) under TSO: everything except
#: store-to-load program order and store forwarding.
SAFE_ALPHABET = ("Rfe", "Wse", "Fre", "Fri", "Wsi", "PodWW", "PodRW", "PodRR")
FULL_ALPHABET = tuple(
    ["Rfe", "Rfi", "Wse", "Wsi", "Fre", "Fri", "PodWW", "PodWR", "PodRW", "PodRR"]
)

#: Test names exactly as they appear in the paper's Figures 13/14.
PAPER_TEST_NAMES = [
    "amd3", "co-iriw", "co-mp", "iriw", "iwp23b", "iwp24", "lb",
    "mp+staleld", "mp", "n1", "n2", "n4", "n5", "n6", "n7",
    "podwr000", "podwr001",
    "rfi000", "rfi001", "rfi002", "rfi003", "rfi004", "rfi005", "rfi006",
    "rfi011", "rfi012", "rfi013", "rfi014", "rfi015",
    "rwc",
    "safe000", "safe001", "safe002", "safe003", "safe004", "safe006",
    "safe007", "safe008", "safe009", "safe010", "safe011", "safe012",
    "safe014", "safe016", "safe017", "safe018", "safe019", "safe021",
    "safe022", "safe026", "safe027", "safe029", "safe030",
    "sb", "ssl", "wrc",
]

#: Maximum cores on Multi-V-scale; generated cycles must fit.
MAX_CORES = 4


def _hand_written() -> List[LitmusTest]:
    mk = LitmusTest.of
    tests = [
        mk("mp",
           [[store("x", 1), store("y", 1)],
            [load("y", "r1"), load("x", "r2")]],
           Outcome.of({"r1": 1, "r2": 0})),
        mk("sb",
           [[store("x", 1), load("y", "r1")],
            [store("y", 1), load("x", "r2")]],
           Outcome.of({"r1": 0, "r2": 0})),
        mk("lb",
           [[load("x", "r1"), store("y", 1)],
            [load("y", "r2"), store("x", 1)]],
           Outcome.of({"r1": 1, "r2": 1})),
        mk("wrc",
           [[store("x", 1)],
            [load("x", "r1"), store("y", 1)],
            [load("y", "r2"), load("x", "r3")]],
           Outcome.of({"r1": 1, "r2": 1, "r3": 0})),
        mk("rwc",
           [[store("x", 1)],
            [load("x", "r1"), load("y", "r2")],
            [store("y", 1), load("x", "r3")]],
           Outcome.of({"r1": 1, "r2": 0, "r3": 0})),
        mk("iriw",
           [[store("x", 1)],
            [store("y", 1)],
            [load("x", "r1"), load("y", "r2")],
            [load("y", "r3"), load("x", "r4")]],
           Outcome.of({"r1": 1, "r2": 0, "r3": 1, "r4": 0})),
        mk("co-mp",
           [[store("x", 1), store("x", 2)],
            [load("x", "r1"), load("x", "r2")]],
           Outcome.of({"r1": 2, "r2": 1})),
        mk("co-iriw",
           [[store("x", 1)],
            [store("x", 2)],
            [load("x", "r1"), load("x", "r2")],
            [load("x", "r3"), load("x", "r4")]],
           Outcome.of({"r1": 1, "r2": 2, "r3": 2, "r4": 1})),
        mk("amd3",
           [[store("x", 1), store("y", 1)],
            [store("y", 2), store("x", 2)],
            [load("x", "r1"), load("y", "r2")],
            [load("y", "r3"), load("x", "r4")]],
           Outcome.of({"r1": 1, "r2": 2, "r3": 1, "r4": 2})),
        mk("iwp23b",
           [[store("x", 1), load("x", "r1"), store("y", 1)],
            [load("y", "r2"), load("x", "r3")]],
           Outcome.of({"r1": 1, "r2": 1, "r3": 0})),
        # iwp2.4 demonstrates an *allowed* outcome of the store-buffering
        # program: one thread runs to completion first.
        mk("iwp24",
           [[store("x", 1), load("y", "r1")],
            [store("y", 1), load("x", "r2")]],
           Outcome.of({"r1": 0, "r2": 1})),
        mk("mp+staleld",
           [[store("x", 1), store("y", 1)],
            [load("y", "r1"), load("x", "r2"), load("x", "r3")]],
           Outcome.of({"r1": 1, "r2": 0, "r3": 0})),
        mk("n1",
           [[store("x", 1), store("y", 1)],
            [load("y", "r1"), store("x", 2)]],
           Outcome.of({"r1": 1}, {"x": 1})),
        mk("n2",
           [[store("x", 1), store("y", 1)],
            [store("y", 2), load("x", "r1")]],
           Outcome.of({"r1": 0}, {"y": 2})),
        mk("n4",
           [[store("x", 1), load("x", "r1")],
            [store("x", 2), load("x", "r2")]],
           Outcome.of({"r1": 2, "r2": 1})),
        # n5 is the allowed cousin of n4: each core reads its own store.
        mk("n5",
           [[store("x", 1), load("x", "r1")],
            [store("x", 2), load("x", "r2")]],
           Outcome.of({"r1": 1, "r2": 2})),
        mk("n6",
           [[store("x", 1), load("x", "r1"), load("y", "r2")],
            [store("y", 2), store("x", 2)]],
           Outcome.of({"r1": 1, "r2": 0}, {"x": 1})),
        mk("n7",
           [[store("x", 1), load("x", "r1"), load("y", "r2")],
            [store("y", 1), load("y", "r3"), load("x", "r4")]],
           Outcome.of({"r1": 1, "r2": 0, "r3": 1, "r4": 0})),
        mk("ssl",
           [[store("x", 1), load("x", "r1")]],
           Outcome.of({"r1": 0})),
    ]
    return tests


def _family_cycles(
    alphabet: Tuple[str, ...],
    require: Tuple[str, ...],
    max_index: int,
    forbid: Tuple[str, ...] = (),
) -> List[Tuple[str, ...]]:
    """Deterministic cycle pool for one diy family: all valid canonical
    cycles that fit on :data:`MAX_CORES` cores, by increasing length,
    extended until the pool covers ``max_index``."""
    pool: List[Tuple[str, ...]] = []
    for length in (3, 4, 5, 6, 7):
        if len(pool) > max_index:
            break
        for cycle in enumerate_cycles(alphabet, length, require=require, forbid=forbid):
            externals = sum(1 for edge in cycle if edge.endswith("e"))
            if externals <= MAX_CORES:
                pool.append(cycle)
    return pool


class SuiteBuilder:
    """Builds and caches the paper's 56-test suite."""

    def __init__(self):
        self._tests: Optional[List[LitmusTest]] = None
        self._cycles: Dict[str, Tuple[str, ...]] = {}

    def _generate_family(self, prefix: str, pool: List[Tuple[str, ...]], names: List[str]) -> List[LitmusTest]:
        tests = []
        for name in names:
            index = int(name[len(prefix):])
            if index >= len(pool):
                raise LitmusError(
                    f"cycle pool for {prefix!r} has only {len(pool)} entries, "
                    f"cannot build {name}"
                )
            cycle = pool[index]
            self._cycles[name] = cycle
            tests.append(generate_from_cycle(name, cycle))
        return tests

    def build(self) -> List[LitmusTest]:
        if self._tests is not None:
            return self._tests
        tests = _hand_written()

        names_by_prefix: Dict[str, List[str]] = {"podwr": [], "rfi": [], "safe": []}
        for name in PAPER_TEST_NAMES:
            for prefix in names_by_prefix:
                if name.startswith(prefix) and name[len(prefix):].isdigit():
                    names_by_prefix[prefix].append(name)

        def max_index(prefix: str) -> int:
            return max(int(n[len(prefix):]) for n in names_by_prefix[prefix])

        tests += self._generate_family(
            "podwr",
            _family_cycles(
                FULL_ALPHABET, require=("PodWR",), forbid=("Rfi",),
                max_index=max_index("podwr"),
            ),
            names_by_prefix["podwr"],
        )
        tests += self._generate_family(
            "rfi",
            _family_cycles(
                FULL_ALPHABET, require=("Rfi",), max_index=max_index("rfi")
            ),
            names_by_prefix["rfi"],
        )
        tests += self._generate_family(
            "safe",
            _family_cycles(
                SAFE_ALPHABET, require=(), max_index=max_index("safe")
            ),
            names_by_prefix["safe"],
        )

        by_name = {test.name: test for test in tests}
        missing = [name for name in PAPER_TEST_NAMES if name not in by_name]
        if missing:
            raise LitmusError(f"suite is missing tests: {missing}")
        self._tests = [by_name[name] for name in PAPER_TEST_NAMES]
        return self._tests

    def cycle_of(self, name: str) -> Optional[Tuple[str, ...]]:
        """The diy cycle a generated test came from (None if hand-written)."""
        self.build()
        return self._cycles.get(name)


_BUILDER = SuiteBuilder()


def paper_suite() -> List[LitmusTest]:
    """The full 56-test suite, in the paper's Figure 13/14 order."""
    return list(_BUILDER.build())


def get_test(name: str) -> LitmusTest:
    """Look one suite test up by its paper name."""
    for test in _BUILDER.build():
        if test.name == name:
            return test
    raise LitmusError(f"no suite test named {name!r}")


def diy_cycle_of(name: str) -> Optional[Tuple[str, ...]]:
    """The generating diy cycle for a suite test, if it was generated."""
    return _BUILDER.cycle_of(name)
