"""Litmus test representation and compilation to RV32I programs.

A litmus test is a small multi-threaded program over a handful of shared
variables, plus a *candidate outcome*: the register values (and
optionally final memory values) whose observability is under test
(paper Figure 2 shows ``mp``).  Whether the outcome is forbidden under a
given consistency model is decided by the oracles in
:mod:`repro.memodel`, not stored as ground truth here.

Compilation assigns each shared variable a word address in data memory
and each memory operation a single ``lw``/``sw`` instruction whose
address/data registers are *pre-initialized* — matching the paper's
program-mapping approach of initializing registers through SV
assumptions (Figure 8) so that every litmus instruction occupies exactly
one pipeline slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import LitmusError
from repro.isa import Fence, Halt, Instruction, Lw, Sw

#: Word index where litmus variables live.  The address space mirrors the
#: paper's Figure 8 layout: word 0 is never a real instruction (PC 0 is
#: the pipeline-bubble sentinel), instruction words for the four cores
#: occupy low memory, and litmus data sits above them.
DATA_BASE_WORD = 40
#: One-past-the-last data word of the Multi-V-scale model.
DATA_MEM_WORDS = 48

#: Instruction words reserved per core in the *classic* layout (program
#: + halt must fit).  This is the canonical definition;
#: :mod:`repro.vscale.params` re-exports it.  Compiling a litmus test
#: whose longest thread does not fit (difftest's long-program mode)
#: produces a :class:`CompiledTest` with a per-test extended geometry —
#: see :func:`compile_test`.
IMEM_WORDS_PER_CORE = 8

#: Shared-variable capacity (identical in both geometries).
MAX_VARIABLES = DATA_MEM_WORDS - DATA_BASE_WORD


@dataclass(frozen=True)
class MemOp:
    """One litmus-level operation on a thread.

    ``kind`` is ``"R"`` (load), ``"W"`` (store), or ``"F"`` (fence).
    Loads name an output register (``out``); stores carry a ``value``.
    """

    kind: str
    addr: Optional[str] = None
    value: Optional[int] = None
    out: Optional[str] = None

    def __post_init__(self):
        if self.kind not in ("R", "W", "F"):
            raise LitmusError(f"bad op kind: {self.kind!r}")
        if self.kind == "R" and (self.addr is None or self.out is None):
            raise LitmusError("load needs addr and out")
        if self.kind == "W" and (self.addr is None or self.value is None):
            raise LitmusError("store needs addr and value")

    @property
    def is_load(self) -> bool:
        return self.kind == "R"

    @property
    def is_store(self) -> bool:
        return self.kind == "W"

    @property
    def is_fence(self) -> bool:
        return self.kind == "F"

    def __str__(self):
        if self.is_load:
            return f"{self.out} <- [{self.addr}]"
        if self.is_store:
            return f"[{self.addr}] <- {self.value}"
        return "fence"


def load(addr: str, out: str) -> MemOp:
    """Convenience constructor: ``out <- [addr]``."""
    return MemOp(kind="R", addr=addr, out=out)


def store(addr: str, value: int) -> MemOp:
    """Convenience constructor: ``[addr] <- value``."""
    return MemOp(kind="W", addr=addr, value=value)


def fence() -> MemOp:
    """Convenience constructor for a full fence."""
    return MemOp(kind="F")


@dataclass(frozen=True)
class Outcome:
    """Candidate outcome: load results and optional final memory values."""

    registers: Tuple[Tuple[str, int], ...] = ()
    final_memory: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def of(registers: Dict[str, int], final_memory: Optional[Dict[str, int]] = None) -> "Outcome":
        return Outcome(
            registers=tuple(sorted(registers.items())),
            final_memory=tuple(sorted((final_memory or {}).items())),
        )

    @property
    def register_map(self) -> Dict[str, int]:
        return dict(self.registers)

    @property
    def final_memory_map(self) -> Dict[str, int]:
        return dict(self.final_memory)

    def __str__(self):
        parts = [f"{r}={v}" for r, v in self.registers]
        parts += [f"[{a}]={v}" for a, v in self.final_memory]
        return ", ".join(parts)


@dataclass(frozen=True)
class LitmusTest:
    """A named litmus test: threads of :class:`MemOp` plus an outcome.

    ``initial_memory`` maps variables to initial values; unmentioned
    variables start at 0 (the litmus convention).
    """

    name: str
    threads: Tuple[Tuple[MemOp, ...], ...]
    outcome: Outcome
    initial_memory: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def of(
        name: str,
        threads: Sequence[Sequence[MemOp]],
        outcome: Outcome,
        initial_memory: Optional[Dict[str, int]] = None,
    ) -> "LitmusTest":
        test = LitmusTest(
            name=name,
            threads=tuple(tuple(t) for t in threads),
            outcome=outcome,
            initial_memory=tuple(sorted((initial_memory or {}).items())),
        )
        test.validate()
        return test

    def validate(self) -> None:
        if not self.threads:
            raise LitmusError(f"{self.name}: no threads")
        outs = [op.out for t in self.threads for op in t if op.is_load]
        if len(outs) != len(set(outs)):
            raise LitmusError(f"{self.name}: duplicate load output names")
        known = set(outs)
        for reg, _ in self.outcome.registers:
            if reg not in known:
                raise LitmusError(f"{self.name}: outcome register {reg} has no load")
        for var, _ in self.outcome.final_memory:
            if var not in self.addresses:
                raise LitmusError(f"{self.name}: outcome variable {var} never used")

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def addresses(self) -> List[str]:
        """All shared variables, in first-use order."""
        seen: List[str] = []
        for thread in self.threads:
            for op in thread:
                if op.addr is not None and op.addr not in seen:
                    seen.append(op.addr)
        return seen

    @property
    def initial_memory_map(self) -> Dict[str, int]:
        values = {addr: 0 for addr in self.addresses}
        values.update(dict(self.initial_memory))
        return values

    def instruction_count(self) -> int:
        return sum(len(t) for t in self.threads)

    # -- serialization (difftest reproducer artifacts) ------------------

    def to_dict(self) -> Dict:
        """JSON-safe snapshot with deterministic key order, so byte-for-
        byte artifact reproducibility follows from test equality."""
        def op_dict(op: MemOp) -> Dict:
            if op.is_fence:
                return {"kind": "F"}
            if op.is_store:
                return {"kind": "W", "addr": op.addr, "value": op.value}
            return {"kind": "R", "addr": op.addr, "out": op.out}

        return {
            "name": self.name,
            "threads": [[op_dict(op) for op in t] for t in self.threads],
            "outcome": {
                "registers": {r: v for r, v in self.outcome.registers},
                "final_memory": {a: v for a, v in self.outcome.final_memory},
            },
            "initial_memory": {a: v for a, v in self.initial_memory},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "LitmusTest":
        """Rehydrate a :meth:`to_dict` snapshot (validates on the way)."""
        try:
            threads = [
                [MemOp(**op) for op in thread] for thread in data["threads"]
            ]
            outcome = Outcome.of(
                {r: int(v) for r, v in data["outcome"]["registers"].items()},
                {a: int(v) for a, v in data["outcome"]["final_memory"].items()},
            )
            name = data["name"]
            initial_memory = dict(data.get("initial_memory") or {})
        except (KeyError, TypeError, LitmusError) as exc:
            raise LitmusError(
                f"{data.get('name', '<unnamed>')}: malformed litmus test "
                f"dict: {exc!r}"
            ) from exc
        # validate() inside .of() already prefixes the test name.
        return cls.of(name, threads, outcome, initial_memory=initial_memory)

    def pretty(self) -> str:
        """Multi-line rendering in the style of paper Figure 2."""
        lines = [f"Litmus test {self.name}:"]
        uid = 0
        for cid, thread in enumerate(self.threads):
            lines.append(f"  Core {cid}:")
            for op in thread:
                uid += 1
                lines.append(f"    (i{uid}) {op}")
        lines.append(f"  Outcome under test: {self.outcome}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CompiledOp:
    """A litmus op located in the compiled program.

    ``uid`` is the global instruction id (``i1``-style numbering across
    cores in program order); ``pc`` is the byte PC on its core.
    """

    uid: int
    core: int
    index: int
    op: MemOp
    pc: int
    instr: Instruction
    addr_reg: Optional[int]
    data_reg: Optional[int]

    @property
    def label(self) -> str:
        return f"i{self.uid}"


@dataclass
class CompiledTest:
    """Result of compiling a :class:`LitmusTest` for Multi-V-scale.

    ``imem_words_per_core`` / ``data_base_word`` describe the memory
    geometry this compile assumed.  Classic litmus tests use the fixed
    paper layout (:data:`IMEM_WORDS_PER_CORE`, :data:`DATA_BASE_WORD`);
    long-program difftest tests get an extended geometry sized to the
    longest thread, with the data words relocated above the enlarged
    instruction region.
    """

    test: LitmusTest
    num_cores: int
    address_map: Dict[str, int] = field(default_factory=dict)  # var -> word index
    programs: List[List[Instruction]] = field(default_factory=list)
    reg_init: List[Dict[int, int]] = field(default_factory=list)  # per core
    ops: List[CompiledOp] = field(default_factory=list)
    imem_words_per_core: int = IMEM_WORDS_PER_CORE
    data_base_word: int = DATA_BASE_WORD

    @property
    def classic_geometry(self) -> bool:
        """True when this compile uses the paper's fixed address map."""
        return (
            self.imem_words_per_core == IMEM_WORDS_PER_CORE
            and self.data_base_word == DATA_BASE_WORD
        )

    def imem_base_word(self, core: int) -> int:
        """First instruction-memory word of ``core`` in this geometry."""
        return 1 + self.imem_words_per_core * core

    def core_base_pc(self, core: int) -> int:
        """Reset PC of ``core`` in this geometry."""
        return 4 * self.imem_base_word(core)

    def ops_on_core(self, core: int) -> List[CompiledOp]:
        return [op for op in self.ops if op.core == core]

    def op_by_uid(self, uid: int) -> CompiledOp:
        for op in self.ops:
            if op.uid == uid:
                return op
        raise LitmusError(f"no compiled op with uid {uid}")

    def word_address(self, var: str) -> int:
        return self.address_map[var]

    def byte_address(self, var: str) -> int:
        return self.address_map[var] * 4

    @property
    def initial_data_memory(self) -> Dict[int, int]:
        """Word-index -> initial value for litmus variables."""
        init = self.test.initial_memory_map
        return {self.address_map[var]: init[var] for var in self.address_map}


#: Longest thread the classic 2-registers-per-op allocation handles
#: (``addr_reg = 1 + 2*index`` stays below x31 through index 14).
_CLASSIC_THREAD_OPS = 15


class _CompactRegAlloc:
    """Register allocator for threads too long for the classic scheme.

    Shares one address register per distinct variable and one data
    register per distinct store value, while every load still gets its
    own destination register (results are read back from the register
    file after the run, so load destinations must never be reused).
    """

    def __init__(self, test_name: str, core: int):
        self.test_name = test_name
        self.core = core
        self.next_reg = 1
        self.addr_regs: Dict[str, int] = {}
        self.value_regs: Dict[int, int] = {}

    def _fresh(self) -> int:
        reg = self.next_reg
        if reg >= 31:
            raise LitmusError(
                f"{self.test_name}: thread {self.core} too long"
            )
        self.next_reg += 1
        return reg

    def addr_reg(self, var: str) -> int:
        if var not in self.addr_regs:
            self.addr_regs[var] = self._fresh()
        return self.addr_regs[var]

    def store_data_reg(self, value: int) -> int:
        if value not in self.value_regs:
            self.value_regs[value] = self._fresh()
        return self.value_regs[value]

    def load_dest_reg(self) -> int:
        return self._fresh()


def compile_test(test: LitmusTest, num_cores: int = 4) -> CompiledTest:
    """Compile ``test`` into per-core RV32I programs for Multi-V-scale.

    Threads beyond ``test.num_threads`` get a bare ``halt``.  Every
    memory op becomes exactly one ``lw``/``sw`` with pre-initialized
    address/data registers; each thread ends with ``halt``.

    Tests whose longest thread fits the paper's fixed layout compile
    exactly as before (classic geometry and classic register numbering,
    so existing µspec mappings and Verilog emission are byte-stable).
    Longer tests — difftest's long-program mode — get an extended
    geometry: the per-core instruction region grows to the longest
    program, data words move above it, and registers are allocated
    compactly (shared address/value registers, fresh load
    destinations).
    """
    if test.num_threads > num_cores:
        raise LitmusError(
            f"{test.name}: needs {test.num_threads} cores, only {num_cores} available"
        )
    variables = test.addresses
    if len(variables) > MAX_VARIABLES:
        raise LitmusError(f"{test.name}: too many shared variables")

    longest_program = 1 + max(
        (len(t) for t in test.threads), default=0
    )  # +1 for the trailing halt
    if longest_program <= IMEM_WORDS_PER_CORE:
        imem_words = IMEM_WORDS_PER_CORE
        data_base = DATA_BASE_WORD
    else:
        imem_words = longest_program
        data_base = 1 + imem_words * num_cores
    address_map = {var: data_base + i for i, var in enumerate(variables)}

    compiled = CompiledTest(
        test=test,
        num_cores=num_cores,
        address_map=address_map,
        imem_words_per_core=imem_words,
        data_base_word=data_base,
    )
    uid = 0
    for core in range(num_cores):
        thread = test.threads[core] if core < test.num_threads else ()
        program: List[Instruction] = []
        regs: Dict[int, int] = {}
        compact = (
            _CompactRegAlloc(test.name, core)
            if len(thread) > _CLASSIC_THREAD_OPS
            else None
        )
        for index, op in enumerate(thread):
            uid += 1
            pc = 4 * len(program)
            addr_reg = data_reg = None
            if op.is_fence:
                instr: Instruction = Fence()
            else:
                if compact is None:
                    addr_reg = 1 + 2 * index
                    data_reg = 2 + 2 * index
                    if addr_reg >= 31:
                        raise LitmusError(f"{test.name}: thread {core} too long")
                else:
                    addr_reg = compact.addr_reg(op.addr)
                    data_reg = (
                        compact.store_data_reg(op.value)
                        if op.is_store
                        else compact.load_dest_reg()
                    )
                regs[addr_reg] = 4 * address_map[op.addr]
                if op.is_store:
                    regs[data_reg] = op.value
                    instr = Sw(rs1=addr_reg, rs2=data_reg, imm=0)
                else:
                    instr = Lw(rd=data_reg, rs1=addr_reg, imm=0)
            program.append(instr)
            compiled.ops.append(
                CompiledOp(
                    uid=uid,
                    core=core,
                    index=index,
                    op=op,
                    pc=pc,
                    instr=instr,
                    addr_reg=addr_reg,
                    data_reg=data_reg,
                )
            )
        program.append(Halt())
        compiled.programs.append(program)
        compiled.reg_init.append(regs)
    return compiled
