"""Text format for litmus tests.

The format mirrors how the paper presents tests (Figure 2)::

    litmus mp
    init: x=0, y=0          # optional; variables default to 0
    core 0:
      [x] <- 1
      [y] <- 1
    core 1:
      r1 <- [y]
      r2 <- [x]
    outcome: r1=1, r2=0     # the candidate outcome under test
    final: x=1              # optional final-memory conditions

``#`` starts a comment.  ``fence`` on its own line inserts a fence.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.errors import LitmusError
from repro.litmus.test import LitmusTest, MemOp, Outcome, fence, load, store

_NAME_RE = re.compile(r"^litmus\s+(\S+)$")
_CORE_RE = re.compile(r"^core\s+(\d+)\s*:$")
_STORE_RE = re.compile(r"^\[(\w+)\]\s*<-\s*(-?\d+)$")
_LOAD_RE = re.compile(r"^(\w+)\s*<-\s*\[(\w+)\]$")
_BINDING_RE = re.compile(r"^\[?(\w+)\]?\s*=\s*(-?\d+)$")


def _parse_bindings(text: str, where: str) -> Dict[str, int]:
    bindings: Dict[str, int] = {}
    body = text.strip()
    if not body:
        return bindings
    for part in re.split(r"[,&]|/\\", body):
        part = part.strip()
        if not part:
            continue
        match = _BINDING_RE.match(part)
        if match is None:
            raise LitmusError(f"{where}: cannot parse binding {part!r}")
        bindings[match.group(1)] = int(match.group(2))
    return bindings


def parse_litmus(source: str) -> LitmusTest:
    """Parse one litmus test from ``source``.

    Raises :class:`~repro.errors.LitmusError` with the offending line on
    malformed input.
    """
    name: Optional[str] = None
    threads: List[List[MemOp]] = []
    current: Optional[List[MemOp]] = None
    outcome_regs: Dict[str, int] = {}
    final_mem: Dict[str, int] = {}
    init_mem: Dict[str, int] = {}
    saw_outcome = False

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        match = _NAME_RE.match(line)
        if match:
            if name is not None:
                raise LitmusError(f"line {lineno}: duplicate 'litmus' header")
            name = match.group(1)
            continue

        lowered = line.lower()
        if lowered.startswith("init:"):
            init_mem.update(_parse_bindings(line[5:], f"line {lineno}"))
            continue
        if lowered.startswith(("outcome:", "forbid:", "allow:")):
            saw_outcome = True
            body = line.split(":", 1)[1]
            outcome_regs.update(_parse_bindings(body, f"line {lineno}"))
            current = None
            continue
        if lowered.startswith("final:"):
            final_mem.update(_parse_bindings(line[6:], f"line {lineno}"))
            current = None
            continue

        match = _CORE_RE.match(line)
        if match:
            core = int(match.group(1))
            while len(threads) <= core:
                threads.append([])
            current = threads[core]
            continue

        if current is None:
            raise LitmusError(f"line {lineno}: instruction outside a core block: {line!r}")
        if line == "fence":
            current.append(fence())
            continue
        match = _STORE_RE.match(line)
        if match:
            current.append(store(match.group(1), int(match.group(2))))
            continue
        match = _LOAD_RE.match(line)
        if match:
            current.append(load(match.group(2), match.group(1)))
            continue
        raise LitmusError(f"line {lineno}: cannot parse instruction {line!r}")

    if name is None:
        raise LitmusError("missing 'litmus <name>' header")
    if not threads:
        raise LitmusError(f"{name}: no core blocks")
    if not saw_outcome:
        raise LitmusError(f"{name}: no outcome")
    return LitmusTest.of(
        name,
        threads,
        Outcome.of(outcome_regs, final_mem),
        initial_memory=init_mem,
    )


def format_litmus(test: LitmusTest) -> str:
    """Render ``test`` back into the text format (parse/format round-trip)."""
    lines = [f"litmus {test.name}"]
    explicit_init = dict(test.initial_memory)
    if explicit_init:
        lines.append("init: " + ", ".join(f"{k}={v}" for k, v in sorted(explicit_init.items())))
    for core, thread in enumerate(test.threads):
        lines.append(f"core {core}:")
        for op in thread:
            lines.append(f"  {op}")
    lines.append(
        "outcome: " + ", ".join(f"{r}={v}" for r, v in test.outcome.registers)
    )
    if test.outcome.final_memory:
        lines.append(
            "final: " + ", ".join(f"{a}={v}" for a, v in test.outcome.final_memory)
        )
    return "\n".join(lines) + "\n"


def parse_suite(source: str) -> List[LitmusTest]:
    """Parse several tests separated by lines of ``---``."""
    chunks = re.split(r"^\s*---+\s*$", source, flags=re.MULTILINE)
    return [parse_litmus(chunk) for chunk in chunks if chunk.strip()]
