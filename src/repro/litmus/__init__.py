"""Litmus tests: representation, parsing, diy-style generation, suite."""

from repro.litmus.diy import (
    CYCLE_EDGES,
    EdgeSpec,
    cycle_signature,
    enumerate_cycles,
    generate_from_cycle,
    validate_cycle,
)
from repro.litmus.parser import format_litmus, parse_litmus, parse_suite
from repro.litmus.suite import (
    PAPER_TEST_NAMES,
    diy_cycle_of,
    get_test,
    paper_suite,
)
from repro.litmus.test import (
    CompiledOp,
    CompiledTest,
    LitmusTest,
    MemOp,
    Outcome,
    compile_test,
    fence,
    load,
    store,
)

__all__ = [
    "CYCLE_EDGES",
    "CompiledOp",
    "CompiledTest",
    "EdgeSpec",
    "LitmusTest",
    "MemOp",
    "Outcome",
    "PAPER_TEST_NAMES",
    "compile_test",
    "cycle_signature",
    "diy_cycle_of",
    "enumerate_cycles",
    "fence",
    "format_litmus",
    "generate_from_cycle",
    "get_test",
    "load",
    "parse_litmus",
    "parse_suite",
    "paper_suite",
    "store",
    "validate_cycle",
]
