"""`repro.difftest` — differential litmus fuzzing across semantics layers.

This repository carries five independently implemented answers to "what
may this litmus test do?":

1. the **operational** memory-model executors (SC interleaving and
   x86-TSO store-buffer machines, :mod:`repro.memodel.operational`),
2. the **axiomatic** SC checker (candidate-execution enumeration,
   :mod:`repro.memodel.axiomatic`),
3. direct **RTL** enumeration of Multi-V-scale's architectural
   outcomes (:mod:`repro.verifier.outcomes`),
4. the full **RTLCheck verifier** (µspec axioms as generated temporal
   SVA, :mod:`repro.core.rtlcheck`), and
5. the **trace** oracle: sampled RTL executions under randomized
   arbiter schedules (:mod:`repro.vscale.trace`), each judged by the
   polynomial-time per-execution consistency checker
   (:mod:`repro.memodel.polycheck`).  Unlike layers 1–4 it never
   enumerates, so it scales to long programs the exhaustive oracles
   cannot touch.

RTLCheck's whole value proposition is that these independently-derived
semantics must agree — the paper found the V-scale store-dropping bug
precisely because two layers disagreed.  This package systematizes
that: a seeded fuzzer generates litmus tests, every test runs through
all five layers, and any violated cross-layer invariant is reported as
a structured discrepancy with a delta-debugged minimal reproducer.
See ``docs/difftest.md``.
"""

from repro.difftest.compare import (
    Discrepancy,
    INVARIANTS,
    cross_check,
)
from repro.difftest.generate import FuzzGenerator, generated_test
from repro.difftest.oracles import (
    ORACLE_NAMES,
    TestVerdicts,
    TraceCheck,
    evaluate_oracles,
    trace_verdicts,
)
from repro.difftest.report import (
    DIFFTEST_REPORT_KIND,
    fuzz_report,
    validate_fuzz_report,
    write_reproducer,
)
from repro.difftest.runner import FuzzConfig, FuzzResult, run_fuzz
from repro.difftest.shrink import discrepancy_predicate, shrink_test

__all__ = [
    "DIFFTEST_REPORT_KIND",
    "Discrepancy",
    "FuzzConfig",
    "FuzzGenerator",
    "FuzzResult",
    "INVARIANTS",
    "ORACLE_NAMES",
    "TestVerdicts",
    "TraceCheck",
    "cross_check",
    "discrepancy_predicate",
    "evaluate_oracles",
    "fuzz_report",
    "generated_test",
    "run_fuzz",
    "shrink_test",
    "trace_verdicts",
    "validate_fuzz_report",
    "write_reproducer",
]
