"""Coverage-guided seed scheduling for the differential fuzzer.

Blind fuzzing draws every test from the ``(seed, index)`` stream; past
a few hundred tests most draws land in microarchitectural territory
the campaign has already covered.  :class:`CoverageScheduler` closes
the loop: tests whose evaluation reached *novel* coverage keys
(reach-graph states and transitions, per
:mod:`repro.obs.coverage`) enter an energy-weighted corpus, and a
fraction of each subsequent batch is spent mutating corpus entries
(:meth:`FuzzGenerator.mutate`) instead of drawing fresh ones —
the SEER/AFL idiom adapted to litmus tests, where "executions" are
whole verification problems and the feedback signal is the shared
reach graph, not branch counters.

Saturation is handled per shape family: a corpus entry whose mutants
keep producing zero novelty accumulates *fatigue* on its
:func:`~repro.obs.coverage.shape_key`, which geometrically
deprioritizes the whole family so the energy does not pool on a
exhausted neighbourhood.

Determinism: every decision draws from a :class:`random.Random` seeded
by position — ``sched:<seed>:<round>:<slot>`` for the mutate-or-fresh
choice and parent selection, ``mutate:<seed>:<round>:<slot>:<attempt>``
for the mutation itself — and feedback is applied in strict batch
order by the runner, so a campaign's test stream is a pure function of
``(seed, budget)``, independent of ``--jobs``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.litmus.test import LitmusTest
from repro.obs.coverage import shape_key

#: Probability a batch slot draws from the fresh ``(seed, index)``
#: stream even when the corpus is non-empty (exploration floor — the
#: scheduler must never starve genuinely new shapes).
FRESH_PROB = 0.35

#: Corpus entries kept live for mutation (lowest-energy evicted first).
CORPUS_CAP = 48

#: Per-fatigue-point multiplier on a family's selection weight.
_FATIGUE_WEIGHT = 0.5

#: Fatigue points after which a family's weight bottoms out.
_FATIGUE_FLOOR = 6

#: Mutation attempts per slot before falling back to a fresh draw.
_MUTATE_ATTEMPTS = 32


@dataclass
class CorpusEntry:
    """One energized seed: a test that reached novel coverage."""

    test: LitmusTest
    #: Accumulated novelty score (new states + transitions its runs
    #: discovered); selection weight before fatigue.
    energy: float
    shape: str

    def to_json(self) -> Dict:
        return {"test": self.test.to_dict(), "energy": self.energy}


class CoverageScheduler:
    """Energy-scheduled batch generation over a novelty corpus."""

    def __init__(self, generator, seed: int):
        self.generator = generator
        self.seed = seed
        self._corpus: List[CorpusEntry] = []
        self._by_name: Dict[str, CorpusEntry] = {}
        #: Zero-novelty strikes per shape family.
        self.fatigue: Dict[str, int] = {}
        self._round = 0
        self._next_index = 0
        self._mutants = 0

    # -- persistence ----------------------------------------------------

    def load_corpus(self, entries: List[Dict]) -> None:
        """Preload persisted corpus records (``CoverageDB`` corpus
        shape: ``{"test": <dict>, "energy": <float>}``) so a resumed
        campaign mutates last run's winners from batch one.  Records
        that fail to rehydrate are skipped, never fatal."""
        for record in entries:
            try:
                test = LitmusTest.from_dict(record["test"])
                energy = float(record["energy"])
            except (ReproError, KeyError, TypeError, ValueError):
                continue
            self._admit(test, energy)

    def corpus_state(self) -> List[Dict]:
        """JSON-safe corpus snapshot, highest energy first."""
        ordered = sorted(
            self._corpus, key=lambda e: (-e.energy, e.test.name)
        )
        return [entry.to_json() for entry in ordered]

    # -- batch generation ----------------------------------------------

    def next_batch(self, size: int) -> List[LitmusTest]:
        """The next ``size`` tests: a deterministic mix of corpus
        mutants and fresh ``(seed, index)`` stream draws."""
        batch: List[LitmusTest] = []
        rnd = self._round
        for slot in range(size):
            rng = random.Random(f"sched:{self.seed}:{rnd}:{slot}")
            test: Optional[LitmusTest] = None
            if self._corpus and rng.random() >= FRESH_PROB:
                test = self._mutant(rnd, slot, rng)
            if test is None:
                test = self._fresh()
            batch.append(test)
        self._round += 1
        return batch

    def _fresh(self) -> LitmusTest:
        test = self.generator.test_at(self._next_index)
        self._next_index += 1
        return test

    def _mutant(
        self, rnd: int, slot: int, rng: random.Random
    ) -> Optional[LitmusTest]:
        parent = self._pick_parent(rng)
        if parent is None:
            return None
        for attempt in range(_MUTATE_ATTEMPTS):
            mrng = random.Random(
                f"mutate:{self.seed}:{rnd}:{slot}:{attempt}"
            )
            # Mutant names live in their own ``-m`` namespace, disjoint
            # from the fresh stream's ``fz<seed>-<index>`` by design.
            name = f"fz{self.seed}-m{self._mutants:05d}"
            try:
                test = self.generator.mutate(parent.test, name, mrng)
            except ReproError:
                continue
            self._mutants += 1
            return test
        return None

    def _pick_parent(self, rng: random.Random) -> Optional[CorpusEntry]:
        weights = [self._weight(entry) for entry in self._corpus]
        if not any(w > 0 for w in weights):
            return None
        return rng.choices(self._corpus, weights=weights)[0]

    def _weight(self, entry: CorpusEntry) -> float:
        strikes = min(self.fatigue.get(entry.shape, 0), _FATIGUE_FLOOR)
        return max(entry.energy, 1.0) * (_FATIGUE_WEIGHT ** strikes)

    # -- feedback -------------------------------------------------------

    def feedback(self, test: LitmusTest, novelty: Dict[str, int]) -> None:
        """Fold one evaluated test's per-domain novelty counts back in.

        Energy is earned chiefly from the reach-graph domains (states +
        transitions): those are the expensive-to-reach keys, and
        weighting by them biases the corpus toward tests that grow the
        explored microarchitectural space rather than merely novel
        shapes.  Arbiter-interleaving novelty contributes at a quarter
        weight so trace-only campaigns (no verifier oracle, hence no
        graph domains) still build a corpus.  A fully-saturated result
        strikes the test's shape family with fatigue."""
        score = (
            novelty.get("state", 0)
            + novelty.get("transition", 0)
            + 0.25 * novelty.get("arbiter", 0)
        )
        shape = shape_key(test)
        if sum(novelty.values()) == 0:
            self.fatigue[shape] = self.fatigue.get(shape, 0) + 1
        else:
            # Any novelty clears the family's strikes: the
            # neighbourhood still pays out.
            self.fatigue.pop(shape, None)
        if score > 0:
            self._admit(test, float(score))

    def _admit(self, test: LitmusTest, energy: float) -> None:
        existing = self._by_name.get(test.name)
        if existing is not None:
            existing.energy += energy
            return
        entry = CorpusEntry(test=test, energy=energy, shape=shape_key(test))
        if len(self._corpus) >= CORPUS_CAP:
            victim = min(
                self._corpus, key=lambda e: (e.energy, e.test.name)
            )
            if victim.energy >= entry.energy:
                return
            self._corpus.remove(victim)
            del self._by_name[victim.test.name]
        self._corpus.append(entry)
        self._by_name[test.name] = entry
