"""Delta-debugging minimizer for cross-layer discrepancies.

Given a test on which two oracle layers disagree, repeatedly try
smaller variants — drop whole threads, drop single instructions, drop
outcome constraints, merge addresses, reduce store values — keeping a
variant whenever the *same two oracles still disagree* on it.  Only the
disagreeing pair is re-run (re-running all four layers per candidate
would make shrinking the dominant cost of a fuzz campaign).

The reduction order is fixed and the predicate is deterministic, so a
recorded seed shrinks to the byte-identical minimal reproducer on every
replay.  Structurally-invalid candidates (e.g. dropping the only use of
an outcome variable) are repaired by pruning the outcome, never by
resampling.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import LitmusError, ReproError
from repro.litmus.test import LitmusTest, MemOp, Outcome, load, store
from repro.verifier.outcomes import DEFAULT_MAX_STATES

#: Upper bound on predicate evaluations per shrink (each one re-runs two
#: oracle layers; RTL enumeration dominates).
DEFAULT_MAX_EVALUATIONS = 200

Predicate = Callable[[LitmusTest], bool]


def discrepancy_predicate(
    kind: str,
    memory_variant: str = "fixed",
    max_states: int = DEFAULT_MAX_STATES,
    rtlcheck=None,
    trace_samples: Optional[int] = None,
    trace_seed: int = 0,
    state_backend: str = "array",
) -> Predicate:
    """Build the "does this oracle pair still disagree?" test for one
    discrepancy kind.  Candidates that any involved oracle rejects with
    :class:`ReproError` are treated as non-reproducing (``False``).

    ``trace_samples``/``trace_seed`` parameterize the trace-oracle
    kinds so the shrinker replays exactly the campaign's sampling;
    ``state_backend`` keeps the replays on the campaign's design
    backend (verdict-equivalent, so minimizations are too).
    """
    from repro.difftest.oracles import (
        DEFAULT_TRACE_SAMPLES,
        axiomatic_verdicts,
        operational_verdicts,
        rtl_verdicts,
        trace_verdicts,
        verifier_verdicts,
    )

    if trace_samples is None:
        trace_samples = DEFAULT_TRACE_SAMPLES

    def op_vs_ax(test: LitmusTest) -> bool:
        op_set, op_ok, _tso = operational_verdicts(test)
        ax_set, ax_ok = axiomatic_verdicts(test)
        return op_set != ax_set or op_ok != ax_ok

    def sc_vs_tso(test: LitmusTest) -> bool:
        _outcomes, op_ok, tso_ok = operational_verdicts(test)
        return op_ok and not tso_ok

    def rtl_vs_model(test: LitmusTest) -> bool:
        op_set, _ok, _tso = operational_verdicts(test)
        rtl = rtl_verdicts(
            test,
            memory_variant,
            max_states=max_states,
            state_backend=state_backend,
        )
        return rtl.complete and rtl.outcomes != op_set

    def verifier_vs_rtl(test: LitmusTest) -> bool:
        op_set, _ok, _tso = operational_verdicts(test)
        rtl = rtl_verdicts(
            test,
            memory_variant,
            max_states=max_states,
            state_backend=state_backend,
        )
        if not rtl.complete or rtl.outcomes != op_set:
            return False
        result = verifier_verdicts(
            test, memory_variant, rtlcheck, state_backend=state_backend
        )
        return bool(result.bug_found)

    def trace_vs_sc(test: LitmusTest) -> bool:
        checks, _sampled, _undrained = trace_verdicts(
            test,
            memory_variant,
            samples=trace_samples,
            seed=trace_seed,
            max_states=max_states,
            state_backend=state_backend,
        )
        return any(not c.conformant for c in checks)

    def trace_vs_enumeration(test: LitmusTest) -> bool:
        op_set, _ok, _tso = operational_verdicts(test)
        checks, _sampled, _undrained = trace_verdicts(
            test,
            memory_variant,
            samples=trace_samples,
            seed=trace_seed,
            max_states=max_states,
            state_backend=state_backend,
        )
        return any(c.conformant != (c.outcome in op_set) for c in checks)

    bodies: Dict[str, Predicate] = {
        "operational-vs-axiomatic": op_vs_ax,
        "sc-vs-tso": sc_vs_tso,
        "rtl-vs-model": rtl_vs_model,
        "verifier-vs-rtl": verifier_vs_rtl,
        "trace-vs-sc": trace_vs_sc,
        "trace-vs-enumeration": trace_vs_enumeration,
    }
    if kind not in bodies:
        raise ReproError(f"unknown discrepancy kind {kind!r}")
    body = bodies[kind]

    def predicate(test: LitmusTest) -> bool:
        try:
            return body(test)
        except ReproError:
            return False

    return predicate


# ----------------------------------------------------------------------
# candidate construction


def _rebuild(
    name: str,
    threads: List[List[MemOp]],
    out_regs: Dict[str, int],
    out_mem: Dict[str, int],
) -> Optional[LitmusTest]:
    """Assemble a candidate, pruning outcome entries that lost their
    defining load/location; None when nothing valid remains."""
    threads = [list(t) for t in threads if t]
    if not threads:
        return None
    outs = {op.out for t in threads for op in t if op.is_load}
    addresses = {op.addr for t in threads for op in t if op.addr is not None}
    regs = {r: v for r, v in out_regs.items() if r in outs}
    mem = {a: v for a, v in out_mem.items() if a in addresses}
    try:
        return LitmusTest.of(name, threads, Outcome.of(regs, mem))
    except LitmusError:
        return None


def _replace_addr(op: MemOp, new_addr: str) -> MemOp:
    if op.is_store:
        return store(new_addr, op.value)
    return load(new_addr, op.out)


def _reductions(test: LitmusTest) -> Iterator[LitmusTest]:
    """All one-step reductions of ``test``, deterministically ordered
    from coarse (drop a thread) to fine (lower one store value)."""
    threads = [list(t) for t in test.threads]
    out_regs = test.outcome.register_map
    out_mem = test.outcome.final_memory_map
    name = test.name

    if len(threads) > 1:
        for t in range(len(threads)):
            cand = _rebuild(
                name, threads[:t] + threads[t + 1 :], out_regs, out_mem
            )
            if cand is not None:
                yield cand

    for t in range(len(threads)):
        for i in range(len(threads[t])):
            reduced = [list(ops) for ops in threads]
            del reduced[t][i]
            cand = _rebuild(name, reduced, out_regs, out_mem)
            if cand is not None:
                yield cand

    for reg in sorted(out_regs):
        trimmed = {r: v for r, v in out_regs.items() if r != reg}
        cand = _rebuild(name, threads, trimmed, out_mem)
        if cand is not None:
            yield cand
    for var in sorted(out_mem):
        trimmed = {a: v for a, v in out_mem.items() if a != var}
        cand = _rebuild(name, threads, out_regs, trimmed)
        if cand is not None:
            yield cand

    addresses = test.addresses
    for keep_i in range(len(addresses)):
        for merge_i in range(keep_i + 1, len(addresses)):
            keep, merged = addresses[keep_i], addresses[merge_i]
            remapped = [
                [
                    _replace_addr(op, keep) if op.addr == merged else op
                    for op in ops
                ]
                for ops in threads
            ]
            merged_mem = {a: v for a, v in out_mem.items() if a != merged}
            cand = _rebuild(name, remapped, out_regs, merged_mem)
            if cand is not None:
                yield cand

    for t in range(len(threads)):
        for i, op in enumerate(threads[t]):
            if op.is_store and op.value is not None and op.value > 1:
                lowered = [list(ops) for ops in threads]
                lowered[t][i] = store(op.addr, 1)
                cand = _rebuild(name, lowered, out_regs, out_mem)
                if cand is not None:
                    yield cand


_ADDR_NAMES = "xyzwabcdefgh"


def _addr_name(index: int) -> str:
    """Canonical address name for first-use position ``index``; derived
    (``v12, v13, ...``) once the letter pool runs out, so tests with
    many addresses canonicalize instead of crashing."""
    if index < len(_ADDR_NAMES):
        return _ADDR_NAMES[index]
    return f"v{index}"


def _canonicalize(test: LitmusTest, name: str) -> LitmusTest:
    """Rename addresses to ``x, y, ...`` (first-use order — which is
    exactly the compiled address-map order, so RTL behaviour is
    untouched) and load registers to ``r1..rn`` in program order.  The
    register map is stable per source register: if an (unvalidated)
    input reuses a load register, both uses map to the same canonical
    name and the resulting duplicate is rejected by
    :meth:`LitmusTest.of` — renaming must never split one register
    into two, which would change the outcome set.
    """
    addr_map = {a: _addr_name(i) for i, a in enumerate(test.addresses)}
    reg_map: Dict[str, str] = {}
    threads: List[List[MemOp]] = []
    for ops in test.threads:
        renamed: List[MemOp] = []
        for op in ops:
            if op.is_load:
                if op.out not in reg_map:
                    reg_map[op.out] = f"r{len(reg_map) + 1}"
                renamed.append(load(addr_map[op.addr], reg_map[op.out]))
            elif op.is_store:
                renamed.append(store(addr_map[op.addr], op.value))
            else:
                renamed.append(op)
        threads.append(renamed)
    out_regs = {
        reg_map[r]: v for r, v in test.outcome.register_map.items()
    }
    out_mem = {
        addr_map[a]: v for a, v in test.outcome.final_memory_map.items()
    }
    return LitmusTest.of(name, threads, Outcome.of(out_regs, out_mem))


def shrink_test(
    test: LitmusTest,
    predicate: Predicate,
    max_evaluations: int = DEFAULT_MAX_EVALUATIONS,
) -> Tuple[LitmusTest, Dict]:
    """Greedily minimize ``test`` while ``predicate`` keeps holding.

    Returns ``(minimized, stats)``; the minimized test is renamed
    ``<name>-min`` and canonicalized so equal-shape reproducers from
    different fuzz indices deduplicate textually.  Canonicalization is
    itself re-checked against the predicate (budget permitting): if the
    renamed test no longer reproduces — or cannot be built — the
    un-canonicalized minimized test is returned instead and
    ``stats["canonicalization_dropped"]`` is set, so the shipped
    reproducer always actually reproduces.  Raises
    :class:`ReproError` if the predicate does not hold on the input
    (shrinking an agreement would "minimize" to garbage).
    """
    stats = {
        "predicate_calls": 0,
        "candidates_tried": 0,
        "reductions_applied": 0,
        "rounds": 0,
        "budget_exhausted": False,
        "canonicalization_dropped": False,
    }

    def holds(candidate: LitmusTest) -> bool:
        stats["predicate_calls"] += 1
        return predicate(candidate)

    if not holds(test):
        raise ReproError(
            f"{test.name}: discrepancy predicate does not hold on the "
            f"unshrunk test; nothing to minimize"
        )

    current = test
    improved = True
    while improved:
        stats["rounds"] += 1
        improved = False
        for candidate in _reductions(current):
            if stats["predicate_calls"] >= max_evaluations:
                stats["budget_exhausted"] = True
                break
            stats["candidates_tried"] += 1
            if holds(candidate):
                current = candidate
                stats["reductions_applied"] += 1
                improved = True
                break
        if stats["budget_exhausted"]:
            break

    min_name = f"{test.name}-min"
    renamed_only = dataclasses.replace(current, name=min_name)
    minimized: Optional[LitmusTest]
    try:
        minimized = _canonicalize(current, min_name)
    except LitmusError:
        minimized = None
    if minimized is not None and minimized != renamed_only:
        if stats["predicate_calls"] < max_evaluations:
            if not holds(minimized):
                minimized = None
        # Out of budget: keep the (pure-renaming) canonical form; the
        # shrunk shape itself was predicate-checked when adopted.
    if minimized is None:
        stats["canonicalization_dropped"] = True
        minimized = renamed_only
    stats["initial_instructions"] = test.instruction_count()
    stats["final_instructions"] = minimized.instruction_count()
    return minimized, stats
