"""Cross-layer invariants and structured discrepancies.

The sound pairwise agreements between the oracle layers (each one was
validated against the full 56-test paper suite before being adopted —
see ``docs/difftest.md`` for the derivation):

``operational-vs-axiomatic``
    The two independent SC implementations must produce the *same
    outcome set* (classic operational/axiomatic equivalence).

``sc-vs-tso``
    An outcome observable under SC must be observable under x86-TSO
    (TSO only weakens SC).

``rtl-vs-model``
    The design under test must exhibit *exactly* the SC outcome set.
    Multi-V-scale claims SC; any extra outcome is a consistency
    violation, any missing outcome is a liveness/coverage divergence.
    Skipped (and counted) when the RTL enumeration hit its state
    budget.

``verifier-vs-rtl``
    If RTLCheck reports a µspec-axiom counterexample, the RTL must
    really diverge from the model's outcome set.  (The converse does
    not hold: the verifier constrains executions to the candidate
    outcome, so an architectural divergence outside that slice is
    legitimately invisible to it — e.g. ``n1`` on the buggy memory.)

``trace-vs-sc``
    Every execution the trace oracle sampled from the RTL must pass the
    polynomial-time per-execution SC check.  This is the only invariant
    that scales to long-program tests (the exhaustive layers never run
    there).

``trace-vs-enumeration``
    When the operational oracle also ran, polycheck's per-trace verdict
    must agree with membership in ``enumerate_sc_outcomes``: a sampled
    outcome is SC-conformant iff it is in the enumerated SC outcome
    set.  Disagreement in either direction is a polycheck
    soundness/completeness bug, not a design bug.

A discrepancy records the disagreeing oracle pair so the shrinker can
re-run just those two layers while minimizing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.difftest.oracles import TestVerdicts

#: Discrepancy kinds, in severity/report order.
INVARIANTS = (
    "operational-vs-axiomatic",
    "sc-vs-tso",
    "rtl-vs-model",
    "verifier-vs-rtl",
    "trace-vs-sc",
    "trace-vs-enumeration",
)


def _render_outcome(outcome) -> str:
    regs, mem = outcome
    parts = [f"{r}={v}" for r, v in regs]
    parts += [f"[{a}]={v}" for a, v in mem]
    return ", ".join(parts) or "(empty)"


def _set_diff_details(left_name, left, right_name, right, limit=6) -> Dict:
    only_left = sorted(left - right)
    only_right = sorted(right - left)
    return {
        f"only_{left_name}": [_render_outcome(o) for o in only_left[:limit]],
        f"only_{right_name}": [_render_outcome(o) for o in only_right[:limit]],
        f"only_{left_name}_count": len(only_left),
        f"only_{right_name}_count": len(only_right),
    }


@dataclass
class Discrepancy:
    """One violated cross-layer invariant on one generated test."""

    kind: str
    oracles: Tuple[str, str]
    test_name: str
    details: Dict = field(default_factory=dict)
    #: Provenance: fuzzer seed and test index (None for hand-fed tests).
    seed: Optional[int] = None
    index: Optional[int] = None

    def summary(self) -> str:
        return (
            f"{self.test_name}: {self.kind} "
            f"({self.oracles[0]} vs {self.oracles[1]})"
        )

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "oracles": list(self.oracles),
            "test": self.test_name,
            "seed": self.seed,
            "index": self.index,
            "details": dict(self.details),
        }


def cross_check(verdicts: TestVerdicts) -> List[Discrepancy]:
    """Evaluate every invariant whose oracle pair ran without error."""
    found: List[Discrepancy] = []
    name = verdicts.test.name

    if verdicts.op_outcomes is not None and verdicts.ax_outcomes is not None:
        if verdicts.op_outcomes != verdicts.ax_outcomes or (
            verdicts.op_allowed != verdicts.ax_allowed
        ):
            details = _set_diff_details(
                "operational",
                verdicts.op_outcomes,
                "axiomatic",
                verdicts.ax_outcomes,
            )
            details["operational_allowed"] = verdicts.op_allowed
            details["axiomatic_allowed"] = verdicts.ax_allowed
            found.append(
                Discrepancy(
                    kind="operational-vs-axiomatic",
                    oracles=("operational", "axiomatic"),
                    test_name=name,
                    details=details,
                )
            )

    if verdicts.op_allowed is not None and verdicts.tso_allowed_ is not None:
        if verdicts.op_allowed and not verdicts.tso_allowed_:
            found.append(
                Discrepancy(
                    kind="sc-vs-tso",
                    oracles=("operational-sc", "operational-tso"),
                    test_name=name,
                    details={
                        "sc_allowed": True,
                        "tso_allowed": False,
                        "outcome": str(verdicts.test.outcome),
                    },
                )
            )

    rtl_conclusive = verdicts.rtl is not None and verdicts.rtl.complete
    if verdicts.op_outcomes is not None and rtl_conclusive:
        if verdicts.rtl.outcomes != verdicts.op_outcomes:
            details = _set_diff_details(
                "rtl", verdicts.rtl.outcomes, "model", verdicts.op_outcomes
            )
            details["memory_variant"] = verdicts.memory_variant
            found.append(
                Discrepancy(
                    kind="rtl-vs-model",
                    oracles=("rtl", "operational"),
                    test_name=name,
                    details=details,
                )
            )

    if (
        verdicts.verifier_bug_found is not None
        and verdicts.op_outcomes is not None
        and rtl_conclusive
    ):
        if verdicts.verifier_bug_found and (
            verdicts.rtl.outcomes == verdicts.op_outcomes
        ):
            found.append(
                Discrepancy(
                    kind="verifier-vs-rtl",
                    oracles=("verifier", "rtl"),
                    test_name=name,
                    details={
                        "memory_variant": verdicts.memory_variant,
                        "failing_properties": list(
                            verdicts.verifier_failing_properties
                        ),
                        "rtl_matches_model": True,
                    },
                )
            )

    if verdicts.trace_checks is not None:
        nonconformant = [c for c in verdicts.trace_checks if not c.conformant]
        if nonconformant:
            found.append(
                Discrepancy(
                    kind="trace-vs-sc",
                    oracles=("trace", "polycheck"),
                    test_name=name,
                    details={
                        "memory_variant": verdicts.memory_variant,
                        "sampled": verdicts.trace_sampled,
                        "nonconformant": len(nonconformant),
                        "examples": [
                            {
                                "outcome": _render_outcome(c.outcome),
                                "reason": c.reason,
                            }
                            for c in nonconformant[:4]
                        ],
                    },
                )
            )

    if verdicts.trace_checks is not None and verdicts.op_outcomes is not None:
        disagreements = [
            c
            for c in verdicts.trace_checks
            if c.conformant != (c.outcome in verdicts.op_outcomes)
        ]
        if disagreements:
            found.append(
                Discrepancy(
                    kind="trace-vs-enumeration",
                    oracles=("trace", "operational"),
                    test_name=name,
                    details={
                        "memory_variant": verdicts.memory_variant,
                        "disagreements": len(disagreements),
                        "examples": [
                            {
                                "outcome": _render_outcome(c.outcome),
                                "polycheck_conformant": c.conformant,
                                "enumeration_member": c.outcome
                                in verdicts.op_outcomes,
                                "reason": c.reason,
                            }
                            for c in disagreements[:4]
                        ],
                    },
                )
            )
    return found
