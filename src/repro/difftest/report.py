"""Fuzz-campaign reports and minimized-reproducer artifacts.

Two JSON document shapes, both schema-versioned alongside the
:mod:`repro.obs` run reports:

* the **campaign report** (kind ``rtlcheck-difftest-report``) — one
  document per ``python -m repro fuzz`` run: configuration, verdict
  tallies, every discrepancy with its full test and minimized
  reproducer, per-oracle errors, and the merged observability counters;
* the **reproducer artifact** (kind ``rtlcheck-difftest-reproducer``) —
  one file per minimized discrepancy, carrying everything needed to
  replay it (seed, index, oracle pair, the minimized litmus test).
  Reproducer artifacts deliberately contain *no timestamps or timing*:
  re-running a campaign with the recorded seed regenerates them
  byte-for-byte, which is itself a regression check on the whole
  generate/evaluate/shrink pipeline.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.report import (
    DIFFTEST_REPORT_KIND,
    DIFFTEST_REPRODUCER_KIND,
    SCHEMA_VERSION,
)

#: Top-level keys every fuzz report must carry.
_FUZZ_REPORT_KEYS = (
    "schema_version",
    "kind",
    "seed",
    "budget",
    "oracles",
    "memory_variant",
    "jobs",
    "max_states",
    "tests_run",
    "discrepancy_count",
    "discrepancies",
    "oracle_errors",
    "skipped",
    "verdict_tally",
    "counters",
    "wall_seconds",
)


def fuzz_report(result) -> Dict[str, Any]:
    """Assemble the campaign report for a
    :class:`~repro.difftest.runner.FuzzResult`."""
    config = result.config
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": DIFFTEST_REPORT_KIND,
        "seed": config.seed,
        "budget": config.budget,
        "oracles": list(config.oracles),
        "memory_variant": config.memory_variant,
        "jobs": config.jobs,
        "max_states": config.max_states,
        "tests_run": result.tests_run,
        "discrepancy_count": len(result.discrepancies),
        "discrepancies": [entry.to_dict() for entry in result.discrepancies],
        "oracle_errors": [dict(e) for e in result.oracle_errors],
        "skipped": dict(result.skipped),
        "verdict_tally": dict(result.verdict_tally),
        "counters": dict(result.counters),
        "wall_seconds": result.wall_seconds,
        # Additive (validators tolerate extra keys): the design state
        # backend the campaign ran on, cache statistics, and
        # checkpoint-resume bookkeeping for cached campaigns.
        "state_backend": config.state_backend,
        "cache": dict(result.cache_stats),
        "resumed": result.resumed,
        **_coverage_section(result),
    }


def _coverage_section(result) -> Dict[str, Any]:
    """The additive ``coverage`` key for coverage-collecting campaigns
    (the closure-report document, plus the guided flag), absent
    otherwise so non-coverage reports are byte-identical to before."""
    if result.coverage is None:
        return {}
    from repro.obs.coverage import CoverageMap, closure_report

    return {
        "coverage": closure_report(
            CoverageMap.from_state(result.coverage),
            tests=result.tests_run,
            novelty=result.novelty,
            guided=result.config.guided,
        )
    }


def validate_fuzz_report(report: Mapping[str, Any]) -> List[str]:
    """Shape-check a campaign report; returns problem descriptions
    (empty list == valid).  Mirrors :func:`repro.obs.validate_report`."""
    errors: List[str] = []
    for key in _FUZZ_REPORT_KEYS:
        if key not in report:
            errors.append(f"missing top-level key {key!r}")
    if errors:
        return errors
    if report["schema_version"] != SCHEMA_VERSION:
        errors.append(
            f"schema_version {report['schema_version']!r} != {SCHEMA_VERSION}"
        )
    if report["kind"] != DIFFTEST_REPORT_KIND:
        errors.append(f"kind {report['kind']!r} != {DIFFTEST_REPORT_KIND!r}")
    if report["discrepancy_count"] != len(report["discrepancies"]):
        errors.append(
            f"discrepancy_count {report['discrepancy_count']} != "
            f"{len(report['discrepancies'])} entries"
        )
    if report["tests_run"] > report["budget"]:
        errors.append(
            f"tests_run {report['tests_run']} exceeds budget {report['budget']}"
        )
    for entry in report["discrepancies"]:
        for key in ("kind", "oracles", "test", "discrepancy"):
            if key not in entry:
                errors.append(f"discrepancy entry missing key {key!r}")
    return errors


def reproducer_document(entry) -> Dict[str, Any]:
    """The replayable artifact for one
    :class:`~repro.difftest.runner.DiscrepancyEntry`.  Deterministic
    content: no wall-clock fields, keys emitted sorted."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": DIFFTEST_REPRODUCER_KIND,
        "seed": entry.discrepancy.seed,
        "index": entry.discrepancy.index,
        "memory_variant": entry.memory_variant,
        "discrepancy": entry.discrepancy.to_dict(),
        "test": entry.test.to_dict(),
        "minimized": None if entry.minimized is None else entry.minimized.to_dict(),
        "shrink": None
        if entry.shrink_stats is None
        else {
            k: v
            for k, v in entry.shrink_stats.items()
            if k != "wall_seconds"
        },
    }


def write_reproducer(directory: str, entry) -> str:
    """Write ``entry``'s reproducer artifact under ``directory`` and
    return its path.  The filename is derived from (seed, index, kind)
    only, so replays overwrite rather than accumulate."""
    os.makedirs(directory, exist_ok=True)
    disc = entry.discrepancy
    filename = f"fuzz-{disc.seed}-{disc.index:05d}-{disc.kind}.json"
    path = os.path.join(directory, filename)
    with open(path, "w") as handle:
        json.dump(reproducer_document(entry), handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path
