"""The fuzz-campaign driver: generate, evaluate, cross-check, shrink.

Determinism contract (the whole point of a *seeded* fuzzer):

* tests are generated **in the parent process** from ``(seed, index)``
  alone, so ``--jobs`` changes wall-clock, never results;
* workers only evaluate; their results are re-ordered by index before
  cross-checking, so completion order never leaks into the report;
* shrinking runs in the parent, in index order, with a deterministic
  reduction schedule — re-running a campaign with its recorded seed
  reproduces every minimized test byte-for-byte.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import os

from repro import obs
from repro.difftest.compare import Discrepancy, cross_check
from repro.difftest.generate import _TOTAL_OPS_CAP, FuzzGenerator
from repro.difftest.oracles import (
    DEFAULT_TRACE_SAMPLES,
    ORACLE_NAMES,
    evaluate_oracles,
)
from repro.difftest.shrink import (
    DEFAULT_MAX_EVALUATIONS,
    discrepancy_predicate,
    shrink_test,
)
from repro.errors import ReproError
from repro.litmus.test import LitmusTest
from repro.verifier.outcomes import DEFAULT_MAX_STATES


@dataclass(frozen=True)
class FuzzConfig:
    """Parameters of one fuzz campaign (picklable; fully determines the
    campaign's results together with the code version)."""

    seed: int = 0
    budget: int = 100
    oracles: Tuple[str, ...] = ORACLE_NAMES
    memory_variant: str = "fixed"
    jobs: int = 1
    max_states: int = DEFAULT_MAX_STATES
    max_procs: int = 4
    shrink: bool = True
    #: How many discrepancies get a shrink pass (on the buggy memory
    #: nearly every store-carrying test is discrepant; shrinking all of
    #: them would re-run oracles thousands of times).
    shrink_limit: int = 5
    shrink_max_evaluations: int = DEFAULT_MAX_EVALUATIONS
    observe: bool = False
    #: Root of a :class:`repro.cache.VerificationCache`; ``None`` (the
    #: default) evaluates every oracle cold.  With a cache, oracle
    #: outcome sets and verifier verdicts are memoized across runs and
    #: the campaign checkpoints after every completed test.
    cache_dir: Optional[str] = None
    #: Mix long programs (8–16 instructions/thread) into the generated
    #: stream.  Long tests exceed the exhaustive oracles' caps, so the
    #: runner evaluates them with the ``trace`` oracle only (and counts
    #: the gating under ``skipped["long_program"]``).
    long_programs: bool = False
    #: Executions the trace oracle samples per test.
    trace_samples: int = DEFAULT_TRACE_SAMPLES
    #: Collect microarchitectural coverage maps
    #: (:mod:`repro.obs.coverage`) per test and aggregate them into the
    #: campaign map / closure report.
    coverage: bool = False
    #: Coverage-guided seed scheduling
    #: (:class:`repro.difftest.schedule.CoverageScheduler`); implies
    #: coverage collection.
    guided: bool = False
    #: Explicit coverage-database path.  Defaults to the cache
    #: directory's ``coverage/coverage.json`` when a cache is attached;
    #: without either, the campaign map is not persisted.
    coverage_db: Optional[str] = None
    #: Design snapshot representation the RTL-touching oracles use
    #: (``"array"``, ``"kernel"``, or ``"dict"``).  Backends are
    #: verdict-equivalent by contract, so reports are byte-identical
    #: across them; the knob exists for performance and for the
    #: kernel-equivalence regression suite.
    state_backend: str = "array"
    #: In-parent retries after a worker crash before the test is
    #: recorded under the ``crashed`` contract.  Execution policy like
    #: ``jobs`` — never part of the campaign key, and 0 (the default)
    #: preserves the record-only behavior.  The job server sets this
    #: so one flaky worker death cannot fail a long campaign.
    crash_retries: int = 0

    def __post_init__(self):
        if self.budget < 0:
            raise ReproError(f"budget must be >= 0, got {self.budget}")
        if self.crash_retries < 0:
            raise ReproError(
                f"crash_retries must be >= 0, got {self.crash_retries}"
            )
        if self.jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {self.jobs}")
        if self.memory_variant not in ("fixed", "buggy"):
            raise ReproError(
                f"memory_variant must be 'fixed' or 'buggy', "
                f"got {self.memory_variant!r}"
            )
        for oracle in self.oracles:
            if oracle not in ORACLE_NAMES:
                raise ReproError(
                    f"unknown oracle {oracle!r}; choose from {list(ORACLE_NAMES)}"
                )
        if self.long_programs and "trace" not in self.oracles:
            raise ReproError(
                "long_programs requires the 'trace' oracle (the "
                "exhaustive layers cannot evaluate long tests)"
            )
        if self.trace_samples < 1:
            raise ReproError(
                f"trace_samples must be >= 1, got {self.trace_samples}"
            )
        if self.guided and not self.coverage:
            raise ReproError(
                "guided scheduling requires coverage collection "
                "(pass coverage=True / --coverage)"
            )
        if self.state_backend not in ("array", "kernel", "dict"):
            raise ReproError(
                f"unknown state backend {self.state_backend!r}; "
                "choose 'array', 'kernel', or 'dict'"
            )


@dataclass
class DiscrepancyEntry:
    """One discrepancy plus its full test and (optional) minimization."""

    discrepancy: Discrepancy
    test: LitmusTest
    memory_variant: str
    verdicts: Dict = field(default_factory=dict)
    minimized: Optional[LitmusTest] = None
    shrink_stats: Optional[Dict] = None

    def to_dict(self) -> Dict:
        return {
            "kind": self.discrepancy.kind,
            "oracles": list(self.discrepancy.oracles),
            "test": self.test.to_dict(),
            "discrepancy": self.discrepancy.to_dict(),
            "memory_variant": self.memory_variant,
            "verdicts": dict(self.verdicts),
            "minimized": None
            if self.minimized is None
            else self.minimized.to_dict(),
            "shrink": None if self.shrink_stats is None else dict(self.shrink_stats),
        }


@dataclass
class FuzzResult:
    """Outcome of :func:`run_fuzz`."""

    config: FuzzConfig
    tests_run: int = 0
    discrepancies: List[DiscrepancyEntry] = field(default_factory=list)
    #: Per-test oracle refusals: {"test", "index", "oracle", "error"}.
    oracle_errors: List[Dict] = field(default_factory=list)
    #: Comparison skips, e.g. {"rtl_incomplete": 3}.
    skipped: Dict[str, int] = field(default_factory=dict)
    #: Campaign-wide verdict counts (sc_allowed, verifier_bug_found, ...).
    verdict_tally: Dict[str, int] = field(default_factory=dict)
    #: Merged observability counters (empty unless config.observe).
    counters: Dict[str, float] = field(default_factory=dict)
    #: Per-test verdict summaries keyed by test name, in index order.
    verdicts: Dict[str, Dict] = field(default_factory=dict)
    #: Merged cache statistics (empty unless config.cache_dir).
    cache_stats: Dict[str, float] = field(default_factory=dict)
    #: Tests already completed by an interrupted run of this same
    #: campaign (0 without a cache or on a fresh campaign).
    resumed: int = 0
    wall_seconds: float = 0.0
    #: Campaign coverage map state (``None`` unless config.coverage).
    coverage: Optional[Dict] = None
    #: New coverage keys per test, in stream order (the saturation
    #: signal; empty unless config.coverage).
    novelty: List[int] = field(default_factory=list)

    def report(self) -> Dict:
        from repro.difftest.report import fuzz_report

        return fuzz_report(self)


#: Test-crash injection hook for the worker-crash regression tests:
#: when set to a test name, the worker raises a non-ReproError for that
#: test.  An environment variable (not a monkeypatch) because pool
#: workers live in separate processes.
CRASH_TEST_ENV = "REPRO_DIFFTEST_CRASH_TEST"

#: One-shot crash injection for the *retry* regression tests: the value
#: is ``"<test>:<path>"``, and the worker raises for ``<test>`` only
#: while ``<path>`` exists, unlinking it first — so the first attempt
#: crashes deterministically and a bounded retry succeeds.
CRASH_ONCE_ENV = "REPRO_DIFFTEST_CRASH_ONCE"

#: Batch size of the coverage campaign loop.  Fixed (never derived from
#: ``--jobs``) so the generated test stream — including every guided
#: scheduling decision, which can only see feedback from *previous*
#: batches — is a pure function of ``(seed, budget)``.
_COVERAGE_ROUND = 16


def _fuzz_worker(
    test,
    memory_variant,
    oracles,
    max_states,
    observe,
    cache_dir=None,
    trace_samples=DEFAULT_TRACE_SAMPLES,
    trace_seed=0,
    coverage=False,
    state_backend="array",
):
    """Module-level task body for the fuzz process pool: evaluate one
    test, cross-check, and ship everything picklable back (including
    this evaluation's cache-statistics delta, merged by the parent)."""
    if os.environ.get(CRASH_TEST_ENV) == test.name:
        raise RuntimeError(f"injected worker crash on {test.name}")
    once = os.environ.get(CRASH_ONCE_ENV)
    if once:
        target, _, path = once.partition(":")
        if target == test.name and path and os.path.exists(path):
            os.unlink(path)
            raise RuntimeError(f"injected one-shot worker crash on {test.name}")
    cache = None
    if cache_dir is not None:
        from repro.cache import VerificationCache

        cache = VerificationCache(cache_dir)
    recorder = None
    if observe:
        coverage_map = None
        if coverage:
            from repro.obs.coverage import CoverageMap

            coverage_map = CoverageMap()
        recorder = obs.TraceRecorder(coverage=coverage_map)
    elif coverage:
        # Coverage without metrics: the enabled=False sink keeps every
        # span/counter call a no-op (the <3% overhead budget).
        recorder = obs.CoverageRecorder()
    try:
        if recorder is not None:
            with obs.use_recorder(recorder):
                verdicts = evaluate_oracles(
                    test,
                    memory_variant,
                    oracles,
                    max_states=max_states,
                    cache=cache,
                    trace_samples=trace_samples,
                    trace_seed=trace_seed,
                    state_backend=state_backend,
                )
        else:
            verdicts = evaluate_oracles(
                test,
                memory_variant,
                oracles,
                max_states=max_states,
                cache=cache,
                trace_samples=trace_samples,
                trace_seed=trace_seed,
                state_backend=state_backend,
            )
    except ReproError as exc:
        return {
            "error": str(exc),
            "summary": None,
            "discrepancies": [],
            "rtl_incomplete": False,
            "obs": None if recorder is None else recorder.to_state(),
            "cache_stats": None if cache is None else cache.stats.snapshot(),
        }
    return {
        "error": None,
        "summary": verdicts.to_dict(),
        "discrepancies": cross_check(verdicts),
        "rtl_incomplete": verdicts.rtl is not None and not verdicts.rtl.complete,
        "obs": None if recorder is None else recorder.to_state(),
        "cache_stats": None if cache is None else cache.stats.snapshot(),
    }


def _crash_outcome(exc: BaseException) -> Dict:
    """Worker-crash placeholder outcome: the campaign records the crash
    as a per-test error (with a ``crashed`` marker) and keeps going —
    one broken worker must not kill a long campaign."""
    return {
        "error": f"worker crashed: {exc!r}",
        "crashed": True,
        "summary": None,
        "discrepancies": [],
        "rtl_incomplete": False,
        "obs": None,
        "cache_stats": None,
    }


def _retry_outcome(
    config: FuzzConfig, args: Tuple, exc: BaseException
) -> Tuple[Dict, Optional[BaseException]]:
    """Bounded in-parent re-evaluation after a worker crash.

    Returns ``(outcome, crash_exc)``: ``crash_exc`` is ``None`` when a
    retry succeeded (the caller may checkpoint the unit) and the last
    exception when retries were exhausted (the outcome then carries the
    ``crashed`` contract, and the unit stays unchecked so a resumed run
    retries it again).
    """
    last = exc
    for _ in range(config.crash_retries):
        try:
            return _fuzz_worker(*args), None
        except Exception as retry_exc:
            last = retry_exc
    return _crash_outcome(last), last


def _tally(tally: Dict[str, int], summary: Dict) -> None:
    op = summary.get("operational")
    if op is not None:
        tally["sc_allowed" if op["allowed"] else "sc_forbidden"] = (
            tally.get("sc_allowed" if op["allowed"] else "sc_forbidden", 0) + 1
        )
        if op["tso_allowed"]:
            tally["tso_allowed"] = tally.get("tso_allowed", 0) + 1
    rtl = summary.get("rtl")
    if rtl is not None and rtl["allowed"]:
        tally["rtl_allowed"] = tally.get("rtl_allowed", 0) + 1
    verifier = summary.get("verifier")
    if verifier is not None and verifier["bug_found"]:
        tally["verifier_bug_found"] = tally.get("verifier_bug_found", 0) + 1
    trace = summary.get("trace")
    if trace is not None:
        key = "trace_sc_fail" if trace["nonconformant"] else "trace_clean"
        tally[key] = tally.get(key, 0) + 1


def _process_outcome(
    config: FuzzConfig,
    result: FuzzResult,
    cache,
    obs_states: List[Dict],
    test: LitmusTest,
    index: int,
    outcome: Dict,
) -> None:
    """Fold one evaluated test's worker outcome into the campaign
    result (always called in index order, whatever the completion
    order was)."""
    result.tests_run += 1
    if outcome["obs"] is not None:
        obs_states.append(outcome["obs"])
    if cache is not None and outcome.get("cache_stats"):
        cache.stats.merge(outcome["cache_stats"])
    if outcome["error"] is not None:
        entry = {"test": test.name, "index": index, "error": outcome["error"]}
        if outcome.get("crashed"):
            entry["crashed"] = True
            result.skipped["worker_crashed"] = (
                result.skipped.get("worker_crashed", 0) + 1
            )
        result.oracle_errors.append(entry)
        return
    summary = outcome["summary"]
    result.verdicts[test.name] = summary
    for oracle, message in summary.get("errors", {}).items():
        result.oracle_errors.append(
            {
                "test": test.name,
                "index": index,
                "oracle": oracle,
                "error": message,
            }
        )
    if outcome["rtl_incomplete"]:
        result.skipped["rtl_incomplete"] = (
            result.skipped.get("rtl_incomplete", 0) + 1
        )
    trace_summary = summary.get("trace")
    if trace_summary is not None and trace_summary["undrained"]:
        result.skipped["trace_undrained"] = (
            result.skipped.get("trace_undrained", 0)
            + trace_summary["undrained"]
        )
    _tally(result.verdict_tally, summary)
    for discrepancy in outcome["discrepancies"]:
        discrepancy.seed = config.seed
        discrepancy.index = index
        result.discrepancies.append(
            DiscrepancyEntry(
                discrepancy=discrepancy,
                test=test,
                memory_variant=config.memory_variant,
                verdicts=summary,
            )
        )


def _run_coverage_campaign(
    config: FuzzConfig,
    result: FuzzResult,
    generator: FuzzGenerator,
    oracles_for,
    worker_args,
    cache,
    manifest,
    progress,
    obs_states: List[Dict],
) -> None:
    """The coverage-collecting campaign loop: fixed-size batches,
    evaluated (possibly in parallel) then folded in strict stream
    order, so the campaign map, the novelty sequence, and every guided
    scheduling decision are deterministic in ``(seed, budget)``
    whatever ``--jobs`` is."""
    from repro.difftest.schedule import CoverageScheduler
    from repro.obs.coverage import (
        CoverageDB,
        CoverageMap,
        default_coverage_db_path,
        shape_features,
    )

    coverage_map = CoverageMap()
    db_path = config.coverage_db
    if db_path is None and config.cache_dir is not None:
        db_path = default_coverage_db_path(config.cache_dir)
    scheduler = None
    if config.guided:
        scheduler = CoverageScheduler(generator, config.seed)
        if db_path is not None:
            # Resume last run's winners (an empty or fresh database
            # preloads nothing, keeping first campaigns pure
            # (seed, budget) functions).
            scheduler.load_corpus(CoverageDB(db_path).load().get("corpus", []))

    pool = None
    produced = 0
    new_cumulative = 0
    try:
        if config.jobs > 1 and config.budget > 1:
            pool = ProcessPoolExecutor(max_workers=config.jobs)
        while produced < config.budget:
            size = min(_COVERAGE_ROUND, config.budget - produced)
            if scheduler is not None:
                batch = scheduler.next_batch(size)
            else:
                batch = [
                    generator.test_at(produced + i) for i in range(size)
                ]
            batch_outcomes: Dict[int, Dict] = {}
            if pool is not None and size > 1:
                futures = {
                    pool.submit(_fuzz_worker, *worker_args(test)): slot
                    for slot, test in enumerate(batch)
                }
                for future in as_completed(futures):
                    slot = futures[future]
                    try:
                        batch_outcomes[slot] = future.result()
                    except Exception as exc:
                        batch_outcomes[slot], crashed = _retry_outcome(
                            config, worker_args(batch[slot]), exc
                        )
                        if crashed is not None:
                            continue
                    if manifest is not None:
                        manifest.mark_done(str(produced + slot))
            else:
                for slot, test in enumerate(batch):
                    try:
                        batch_outcomes[slot] = _fuzz_worker(
                            *worker_args(test)
                        )
                    except Exception as exc:
                        batch_outcomes[slot], crashed = _retry_outcome(
                            config, worker_args(test), exc
                        )
                        if crashed is not None:
                            continue
                    if manifest is not None:
                        manifest.mark_done(str(produced + slot))
            for slot, test in enumerate(batch):
                outcome = batch_outcomes[slot]
                index = produced + slot
                if oracles_for(test) != config.oracles:
                    result.skipped["long_program"] = (
                        result.skipped.get("long_program", 0) + 1
                    )
                delta = CoverageMap.from_state(
                    (outcome.get("obs") or {}).get("coverage")
                )
                if "verifier" not in oracles_for(test):
                    # The verifier-side flush point never ran for this
                    # test (trace-only routing): record its shape
                    # features parent-side so long programs still count
                    # in the shape domain.
                    for feature in shape_features(test):
                        delta.add("shape", feature)
                meta = generator.meta.get(test.name)
                if meta:
                    delta.add("shape", f"mode:{meta['mode']}")
                    for edge in meta.get("cycle", ()):
                        delta.add("shape", f"cycle:{edge}")
                novelty = coverage_map.count_new(delta)
                coverage_map.merge(delta)
                new_total = sum(novelty.values())
                result.novelty.append(new_total)
                new_cumulative += new_total
                if scheduler is not None:
                    scheduler.feedback(test, novelty)
                _process_outcome(
                    config, result, cache, obs_states, test, index, outcome
                )
                if progress is not None:
                    progress(index, test.name, new_cumulative)
            produced += size
    finally:
        if pool is not None:
            pool.shutdown()

    result.coverage = coverage_map.to_state()
    if db_path is not None:
        campaign_record = {
            "seed": config.seed,
            "budget": config.budget,
            "memory_variant": config.memory_variant,
            "oracles": list(config.oracles),
            "guided": config.guided,
            "tests": result.tests_run,
            "new_keys_total": int(sum(result.novelty)),
        }
        corpus = scheduler.corpus_state() if scheduler is not None else None
        CoverageDB(db_path).merge(
            coverage_map, campaign=campaign_record, corpus=corpus
        )


def run_fuzz(
    config: FuzzConfig,
    progress: Optional[Callable[..., None]] = None,
) -> FuzzResult:
    """Run one differential fuzz campaign.

    ``progress``, when given, is called with ``(index, test_name)`` as
    each test's evaluation completes (completion order under ``jobs >
    1``; results themselves are always processed in index order).
    With ``config.coverage`` the campaign runs in fixed-size batches
    processed strictly in stream order, and ``progress`` instead
    receives ``(index, test_name, cumulative_new_coverage_keys)``.
    """
    t0 = time.perf_counter()
    result = FuzzResult(config=config)
    recorder = obs.get_recorder()

    cache = manifest = None
    if config.cache_dir is not None:
        from repro.cache import VerificationCache, keys as cache_keys

        cache = VerificationCache(config.cache_dir)
        campaign_payload = {
            "seed": config.seed,
            "budget": config.budget,
            "oracles": list(config.oracles),
            "memory_variant": config.memory_variant,
            "max_states": config.max_states,
            "max_procs": config.max_procs,
            "observe": config.observe,
        }
        # Folded in only when non-default, so pre-existing campaign
        # checkpoints keep their keys.
        if config.long_programs:
            campaign_payload["long_programs"] = True
        if config.trace_samples != DEFAULT_TRACE_SAMPLES:
            campaign_payload["trace_samples"] = config.trace_samples
        if config.coverage:
            campaign_payload["coverage"] = True
        if config.guided:
            campaign_payload["guided"] = True
        if config.state_backend != "array":
            campaign_payload["state_backend"] = config.state_backend
        campaign = cache_keys.campaign_key("fuzz", campaign_payload)
        manifest = cache.checkpoint(campaign, total=config.budget)
        result.resumed = manifest.resumed

    with obs.span("fuzz.generate", seed=config.seed, budget=config.budget):
        generator = FuzzGenerator(
            config.seed,
            max_procs=config.max_procs,
            long_programs=config.long_programs,
        )
        # The coverage campaign generates lazily, batch by batch (the
        # guided scheduler needs feedback between batches).
        tests = None if config.coverage else generator.suite(config.budget)

    def oracles_for(test: LitmusTest) -> Tuple[str, ...]:
        """Long tests exceed the exhaustive oracles' caps: route them to
        the trace oracle alone (counted under ``skipped``)."""
        if test.instruction_count() <= _TOTAL_OPS_CAP:
            return config.oracles
        return tuple(o for o in config.oracles if o == "trace")

    if tests is not None:
        long_gated = sum(
            1 for test in tests if oracles_for(test) != config.oracles
        )
        if long_gated:
            result.skipped["long_program"] = long_gated

    def worker_args(test: LitmusTest) -> Tuple:
        return (
            test,
            config.memory_variant,
            oracles_for(test),
            config.max_states,
            config.observe,
            config.cache_dir,
            config.trace_samples,
            config.seed,
            config.coverage,
            config.state_backend,
        )

    obs_states: List[Dict] = []
    with obs.span("fuzz.evaluate", jobs=config.jobs):
        if config.coverage:
            _run_coverage_campaign(
                config,
                result,
                generator,
                oracles_for,
                worker_args,
                cache,
                manifest,
                progress,
                obs_states,
            )
        elif config.jobs > 1 and len(tests) > 1:
            outcomes: Dict[int, Dict] = {}
            with ProcessPoolExecutor(max_workers=config.jobs) as pool:
                futures = {
                    pool.submit(_fuzz_worker, *worker_args(test)): index
                    for index, test in enumerate(tests)
                }
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        outcomes[index] = future.result()
                    except Exception as exc:
                        # A non-ReproError escape killed the worker.
                        # Retry in-parent up to ``crash_retries`` times;
                        # an exhausted unit is recorded per-test and NOT
                        # marked done in the checkpoint manifest, so a
                        # resumed run retries it.
                        outcomes[index], crashed = _retry_outcome(
                            config, worker_args(tests[index]), exc
                        )
                        if crashed is None and manifest is not None:
                            manifest.mark_done(str(index))
                    else:
                        if manifest is not None:
                            manifest.mark_done(str(index))
                    if progress is not None:
                        progress(index, tests[index].name)
            for index, test in enumerate(tests):
                _process_outcome(
                    config, result, cache, obs_states, test, index,
                    outcomes[index],
                )
        else:
            for index, test in enumerate(tests):
                try:
                    outcome = _fuzz_worker(*worker_args(test))
                except Exception as exc:
                    outcome, crashed = _retry_outcome(
                        config, worker_args(test), exc
                    )
                    if crashed is None and manifest is not None:
                        manifest.mark_done(str(index))
                else:
                    if manifest is not None:
                        manifest.mark_done(str(index))
                if progress is not None:
                    progress(index, test.name)
                _process_outcome(
                    config, result, cache, obs_states, test, index, outcome
                )

    if config.shrink and result.discrepancies:
        with obs.span("fuzz.shrink", limit=config.shrink_limit):
            _shrink_entries(config, result)

    if recorder.enabled:
        recorder.count("difftest.tests", result.tests_run)
        recorder.count("difftest.discrepancies", len(result.discrepancies))
        for state in obs_states:
            recorder.merge_state(state)
    if obs_states:
        result.counters = dict(obs.merge_states(obs_states).counters)
    if cache is not None:
        result.cache_stats = cache.stats.snapshot()
    if manifest is not None:
        manifest.finish()

    result.wall_seconds = time.perf_counter() - t0
    return result


def _shrink_entries(config: FuzzConfig, result: FuzzResult) -> None:
    """Minimize the first ``shrink_limit`` discrepancies in index order;
    textually-identical minimized tests are flagged as duplicates."""
    seen_shapes: Dict[str, str] = {}
    for entry in result.discrepancies[: config.shrink_limit]:
        predicate = discrepancy_predicate(
            entry.discrepancy.kind,
            memory_variant=config.memory_variant,
            max_states=config.max_states,
            trace_samples=config.trace_samples,
            trace_seed=config.seed,
            state_backend=config.state_backend,
        )
        try:
            minimized, stats = shrink_test(
                entry.test,
                predicate,
                max_evaluations=config.shrink_max_evaluations,
            )
        except ReproError as exc:
            entry.shrink_stats = {"error": str(exc)}
            continue
        entry.minimized = minimized
        entry.shrink_stats = stats
        shape = repr(
            {k: v for k, v in minimized.to_dict().items() if k != "name"}
        )
        if shape in seen_shapes:
            stats["duplicate_of"] = seen_shapes[shape]
        else:
            seen_shapes[shape] = minimized.name
