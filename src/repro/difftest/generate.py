"""Seeded litmus-test generation for the differential fuzzer.

Every test is derived from ``(seed, index)`` alone through one
:class:`random.Random` instance — no module-level randomness anywhere
in the pipeline — so a recorded seed reproduces the exact generated
suite across runs, platforms, interpreter restarts, and ``--jobs``
values (generation happens in the parent; workers only evaluate).

Two generation modes mix:

* **cycle mode** — draw a random valid diy critical cycle
  (:func:`repro.litmus.diy.random_cycle`), build its witness test, then
  perturb it: fence insertion, store-value changes, address merging,
  instruction drops, in-thread reorders, outcome rewrites.  Cycle-born
  tests concentrate on the interesting boundary (outcomes forbidden for
  a *reason*), and the perturbations walk the neighbourhood the cycle
  construction alone would never visit.
* **random mode** — unconstrained random threads/outcomes, covering
  shapes outside the diy alphabet entirely (single-thread corners,
  duplicate values, fence-heavy programs, unconstrained outcomes).

Sizes are capped so the RTL enumeration oracle stays exhaustive within
its state budget: 4-processor tests get fewer instructions per thread
(the 4-core product space is the expensive one).

**Long-program mode** (``long_programs=True``) mixes in a third shape:
threads of 8–16 instructions with per-location unique store values and
an empty candidate outcome.  These exceed the exhaustive oracles' caps
by design — only the sampled ``trace`` oracle (polynomial per
execution) can evaluate them, and the runner routes them there.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.errors import LitmusError, ReproError
from repro.litmus.diy import generate_from_cycle, random_cycle
from repro.litmus.test import LitmusTest, MemOp, Outcome, fence, load, store

#: Location pool (mirrors the diy generator's naming).
_VARS = "xyzw"

#: Per-thread op caps by processor count (4-core tests explode the RTL
#: product space fastest, so they get the tightest budget).
_OPS_CAP = {1: 6, 2: 5, 3: 4, 4: 2}

#: Total-instruction cap independent of shape.
_TOTAL_OPS_CAP = 10

#: Long-program mode: per-thread instruction range and total cap.  The
#: lower bound sits above the classic register-allocation limit so long
#: tests genuinely exercise the extended compile geometry.
_LONG_OPS_MIN = 8
_LONG_OPS_MAX = 16
_LONG_TOTAL_OPS_CAP = 64


def _derive_rng(seed: int, index: int, attempt: int = 0) -> random.Random:
    """The single RNG an (index, attempt) derivation may use.  String
    seeding hashes with SHA-512 internally, so the stream is stable
    across platforms and ``PYTHONHASHSEED``."""
    return random.Random(f"difftest:{seed}:{index}:{attempt}")


class FuzzGenerator:
    """Deterministic ``index -> LitmusTest`` mapping for one seed."""

    def __init__(
        self, seed: int = 0, max_procs: int = 4, long_programs: bool = False
    ):
        if not 1 <= max_procs <= 4:
            raise ReproError(f"max_procs must be 1..4, got {max_procs}")
        self.seed = seed
        self.max_procs = max_procs
        self.long_programs = long_programs
        #: Per-test provenance, keyed by generated name: ``mode``
        #: ("cycle" / "random" / "long" / "mutant"), the diy ``cycle``
        #: edge names for cycle-born tests, and the ``parent`` name for
        #: mutants.  The coverage scheduler folds these into the shape
        #: domain so saturation is tracked per cycle family.
        self.meta: Dict[str, Dict[str, object]] = {}
        self._last_cycle: List[str] = []

    def test_at(self, index: int) -> LitmusTest:
        """The ``index``-th generated test (pure function of the seed).

        Invalid perturbation products are rejected and re-derived with
        a bumped attempt counter, so every index yields a well-formed
        test and the sequence stays reproducible.
        """
        name = f"fz{self.seed}-{index:05d}"
        for attempt in range(64):
            rng = _derive_rng(self.seed, index, attempt)
            try:
                test = self._build(name, rng)
            except LitmusError:
                continue
            if test.instruction_count() == 0:
                continue
            return test
        raise ReproError(
            f"{name}: no valid litmus test after 64 derivation attempts"
        )

    def suite(self, budget: int) -> List[LitmusTest]:
        """The first ``budget`` generated tests (names are unique by
        construction; duplicates would indicate a generator bug and are
        rejected here rather than leaking downstream)."""
        tests = [self.test_at(index) for index in range(budget)]
        seen: Dict[str, int] = {}
        for position, test in enumerate(tests):
            if test.name in seen:
                raise ReproError(
                    f"duplicate generated test name {test.name!r} "
                    f"(indices {seen[test.name]} and {position})"
                )
            seen[test.name] = position
        return tests

    # ------------------------------------------------------------------

    def _build(self, name: str, rng: random.Random) -> LitmusTest:
        if self.long_programs and rng.random() < 0.6:
            test = self._long_program(name, rng)
            if test.num_threads > self.max_procs:
                raise LitmusError(f"{name}: too many threads")
            if test.instruction_count() > _LONG_TOTAL_OPS_CAP:
                raise LitmusError(f"{name}: too many instructions")
            self.meta[name] = {"mode": "long"}
            return test
        if rng.random() < 0.6:
            test = self._cycle_seeded(name, rng)
            meta = {"mode": "cycle", "cycle": list(self._last_cycle)}
        else:
            test = self._unconstrained(name, rng)
            meta = {"mode": "random"}
        if test.num_threads > self.max_procs:
            raise LitmusError(f"{name}: too many threads")
        if test.instruction_count() > _TOTAL_OPS_CAP:
            raise LitmusError(f"{name}: too many instructions")
        self.meta[name] = meta
        return test

    # -- cycle mode ----------------------------------------------------

    def _cycle_seeded(self, name: str, rng: random.Random) -> LitmusTest:
        cycle = random_cycle(
            rng,
            min_length=3,
            max_length=6,
            max_procs=self.max_procs,
        )
        self._last_cycle = list(cycle)
        base = generate_from_cycle(name, cycle)
        threads = [list(t) for t in base.threads]
        out_regs = dict(base.outcome.register_map)
        out_mem = dict(base.outcome.final_memory_map)

        if rng.random() < 0.30:
            self._insert_fence(threads, rng)
        if rng.random() < 0.25:
            self._perturb_store_value(threads, rng)
        if rng.random() < 0.15:
            self._merge_addresses(threads, out_mem, rng)
        if rng.random() < 0.20:
            self._drop_op(threads, out_regs, rng)
        if rng.random() < 0.15:
            self._reorder_thread(threads, rng)
        if rng.random() < 0.30:
            out_regs, out_mem = self._rewrite_outcome(threads, rng)

        threads = [t for t in threads if t] or [[]]
        return LitmusTest.of(name, threads, Outcome.of(out_regs, out_mem))

    # -- random mode ---------------------------------------------------

    def _unconstrained(self, name: str, rng: random.Random) -> LitmusTest:
        num_procs = rng.choices(
            range(1, self.max_procs + 1),
            weights=[10, 45, 30, 15][: self.max_procs],
        )[0]
        num_vars = rng.randint(1, min(3, len(_VARS)))
        variables = list(_VARS[:num_vars])
        threads: List[List[MemOp]] = []
        reg = 0
        for _ in range(num_procs):
            ops: List[MemOp] = []
            for _ in range(rng.randint(1, _OPS_CAP[num_procs])):
                roll = rng.random()
                var = rng.choice(variables)
                if roll < 0.45:
                    ops.append(store(var, rng.randint(1, 2)))
                elif roll < 0.90:
                    reg += 1
                    ops.append(load(var, f"r{reg}"))
                else:
                    ops.append(fence())
            threads.append(ops)
        out_regs, out_mem = self._rewrite_outcome(threads, rng)
        return LitmusTest.of(name, threads, Outcome.of(out_regs, out_mem))

    # -- long-program mode ---------------------------------------------

    def _long_program(self, name: str, rng: random.Random) -> LitmusTest:
        """8–16 instructions per thread, unique store values per
        location, empty candidate outcome.

        Unique values keep every read and the final writer unambiguous,
        which is the polynomial case of per-execution checking (the
        closure pins the coherence order, so polycheck never needs a
        large witness search).  The empty outcome reflects the trace
        oracle's nature: it judges *sampled executions*, not one
        candidate outcome.
        """
        num_procs = rng.randint(2, self.max_procs)
        num_vars = rng.randint(2, len(_VARS))
        variables = list(_VARS[:num_vars])
        next_value = {var: 0 for var in variables}
        threads: List[List[MemOp]] = []
        reg = 0
        for _ in range(num_procs):
            ops: List[MemOp] = []
            for _ in range(rng.randint(_LONG_OPS_MIN, _LONG_OPS_MAX)):
                roll = rng.random()
                var = rng.choice(variables)
                if roll < 0.45:
                    next_value[var] += 1
                    ops.append(store(var, next_value[var]))
                elif roll < 0.92:
                    reg += 1
                    ops.append(load(var, f"r{reg}"))
                else:
                    ops.append(fence())
            threads.append(ops)
        return LitmusTest.of(name, threads, Outcome.of({}))

    # -- mutation (coverage-guided scheduling) -------------------------

    def mutate(
        self, parent: LitmusTest, name: str, rng: random.Random
    ) -> LitmusTest:
        """Derive a mutant of ``parent`` named ``name``.

        Applies 1–3 perturbations drawn from the same palette cycle
        mode uses, plus a growth mutation (:meth:`_insert_random_op`)
        the from-scratch modes lack — corpus entries earn their energy
        by reaching novel states, and growing a proven-interesting
        program is the cheapest way to reach nearby ones.  Size caps
        match the parent's regime (a long-program parent may stay
        long).  Invalid products raise :class:`LitmusError`; the
        scheduler retries with a bumped attempt counter, keeping the
        mutant stream deterministic in ``(seed, round, slot)``.
        """
        threads = [list(t) for t in parent.threads]
        out_regs = dict(parent.outcome.register_map)
        out_mem = dict(parent.outcome.final_memory_map)
        long_parent = parent.instruction_count() > _TOTAL_OPS_CAP
        total_cap = _LONG_TOTAL_OPS_CAP if long_parent else _TOTAL_OPS_CAP

        for _ in range(rng.randint(1, 3)):
            roll = rng.random()
            if roll < 0.20:
                self._insert_fence(threads, rng)
            elif roll < 0.40:
                self._insert_random_op(threads, rng)
            elif roll < 0.55:
                self._perturb_store_value(threads, rng)
            elif roll < 0.65:
                self._merge_addresses(threads, out_mem, rng)
            elif roll < 0.75:
                self._drop_op(threads, out_regs, rng)
            elif roll < 0.85:
                self._reorder_thread(threads, rng)
            else:
                out_regs, out_mem = self._rewrite_outcome(threads, rng)

        threads = [t for t in threads if t] or [[]]
        test = LitmusTest.of(name, threads, Outcome.of(out_regs, out_mem))
        if test.num_threads > self.max_procs:
            raise LitmusError(f"{name}: too many threads")
        if test.instruction_count() > total_cap:
            raise LitmusError(f"{name}: too many instructions")
        if test.instruction_count() == 0:
            raise LitmusError(f"{name}: empty mutant")
        test.validate()
        self.meta[name] = {"mode": "mutant", "parent": parent.name}
        return test

    # -- perturbations (all deterministic in rng) ----------------------

    @staticmethod
    def _loads(threads) -> List[Tuple[int, int, MemOp]]:
        return [
            (t, i, op)
            for t, ops in enumerate(threads)
            for i, op in enumerate(ops)
            if op.is_load
        ]

    @staticmethod
    def _stores(threads) -> List[Tuple[int, int, MemOp]]:
        return [
            (t, i, op)
            for t, ops in enumerate(threads)
            for i, op in enumerate(ops)
            if op.is_store
        ]

    def _insert_fence(self, threads, rng) -> None:
        candidates = [t for t, ops in enumerate(threads) if ops]
        if not candidates:
            return
        thread = rng.choice(candidates)
        position = rng.randint(0, len(threads[thread]))
        threads[thread].insert(position, fence())

    def _insert_random_op(self, threads, rng) -> None:
        """Growth mutation: insert one store or load at a random
        position.  Fresh loads write ``m<k>`` registers (disjoint from
        the generators' ``r<k>`` pool), so insertion never collides
        with the parent's outcome registers."""
        if not threads:
            return
        variables = sorted(
            {op.addr for ops in threads for op in ops if op.addr is not None}
        ) or list(_VARS[:2])
        thread = rng.randrange(len(threads))
        position = rng.randint(0, len(threads[thread]))
        var = rng.choice(variables)
        if rng.random() < 0.5:
            threads[thread].insert(position, store(var, rng.randint(1, 3)))
        else:
            existing = {
                op.out for ops in threads for op in ops if op.is_load
            }
            k = 0
            while f"m{k}" in existing:
                k += 1
            threads[thread].insert(position, load(var, f"m{k}"))

    def _perturb_store_value(self, threads, rng) -> None:
        stores = self._stores(threads)
        if not stores:
            return
        thread, i, op = rng.choice(stores)
        threads[thread][i] = store(op.addr, rng.randint(0, 3))

    def _merge_addresses(self, threads, out_mem, rng) -> None:
        addresses = sorted(
            {op.addr for ops in threads for op in ops if op.addr is not None}
        )
        if len(addresses) < 2:
            return
        keep, merged = rng.sample(addresses, 2)
        for ops in threads:
            for i, op in enumerate(ops):
                if op.addr == merged:
                    if op.is_store:
                        ops[i] = store(keep, op.value)
                    else:
                        ops[i] = load(keep, op.out)
        out_mem.pop(merged, None)

    def _drop_op(self, threads, out_regs, rng) -> None:
        positions = [
            (t, i) for t, ops in enumerate(threads) for i in range(len(ops))
        ]
        if not positions:
            return
        thread, i = rng.choice(positions)
        removed = threads[thread].pop(i)
        if removed.is_load:
            out_regs.pop(removed.out, None)

    def _reorder_thread(self, threads, rng) -> None:
        candidates = [t for t, ops in enumerate(threads) if len(ops) > 1]
        if not candidates:
            return
        thread = rng.choice(candidates)
        rng.shuffle(threads[thread])

    def _rewrite_outcome(self, threads, rng):
        """Sample a fresh candidate outcome over the current loads/vars.
        Values are drawn from the store-value range plus 0, so sampled
        outcomes land on both sides of the allowed/forbidden line."""
        out_regs: Dict[str, int] = {}
        out_mem: Dict[str, int] = {}
        for _t, _i, op in self._loads(threads):
            if rng.random() < 0.6:
                out_regs[op.out] = rng.choice([0, 1, 1, 2])
        variables = sorted(
            {op.addr for ops in threads for op in ops if op.addr is not None}
        )
        for var in variables:
            if rng.random() < 0.25:
                out_mem[var] = rng.choice([0, 1, 2])
        return out_regs, out_mem


def generated_test(seed: int, index: int, max_procs: int = 4) -> LitmusTest:
    """Convenience wrapper: the ``index``-th test of ``seed``'s stream."""
    return FuzzGenerator(seed, max_procs=max_procs).test_at(index)
