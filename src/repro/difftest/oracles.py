"""The five oracle layers behind differential litmus testing.

Each oracle answers independently; :mod:`repro.difftest.compare` then
checks the cross-layer invariants.  All entry points here observe the
malformed-test contract: a structurally bad litmus test (an outcome
naming a register no load writes, a final value for an unused location)
raises :class:`~repro.errors.ReproError` naming the offending test, and
internal ``KeyError``/``AssertionError`` escapes are converted to the
same — fuzz campaigns must diagnose, not crash.

The first four layers answer about the test's *outcome set* (exhaustive
enumeration or full formal verification).  The fifth — ``trace`` —
samples seeded randomized executions from the RTL and checks each one
individually with the polynomial-time per-execution checker
(:mod:`repro.memodel.polycheck`), which is the only layer that scales
to the generator's long-program mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro import obs
from repro.errors import ReproError
from repro.litmus.test import LitmusTest, compile_test
from repro.memodel.axiomatic import axiomatic_sc_outcomes
from repro.memodel.operational import (
    enumerate_sc_outcomes,
    sc_allowed,
    tso_allowed,
)
from repro.verifier.outcomes import (
    ArchEnumeration,
    DEFAULT_MAX_STATES,
    enumerate_design_outcomes,
)

#: The oracle layers, in report order.
ORACLE_NAMES = ("operational", "axiomatic", "rtl", "verifier", "trace")

#: Executions the trace oracle samples per test by default.
DEFAULT_TRACE_SAMPLES = 8

#: An outcome set: frozenset of (sorted regs, sorted final memory).
OutcomeSet = FrozenSet[Tuple[Tuple[Tuple[str, int], ...], Tuple[Tuple[str, int], ...]]]


def outcomes_to_json(outcomes: OutcomeSet) -> List:
    """Canonical JSON rendering of an outcome set (sorted, so byte
    stable — cache entries and reports digest identically across
    runs)."""
    return sorted(
        [[list(pair) for pair in regs], [list(pair) for pair in mem]]
        for regs, mem in outcomes
    )


def outcomes_from_json(data) -> OutcomeSet:
    """Inverse of :func:`outcomes_to_json`."""
    return frozenset(
        (
            tuple((name, value) for name, value in regs),
            tuple((addr, value) for addr, value in mem),
        )
        for regs, mem in data
    )


@dataclass
class TraceCheck:
    """One sampled RTL execution plus its per-execution SC verdict."""

    registers: Tuple[Tuple[str, int], ...]
    final_memory: Tuple[Tuple[str, int], ...]
    conformant: bool
    reason: str = ""
    events: int = 0
    closure_rejected: bool = False
    search_states: int = 0

    @property
    def outcome(self) -> Tuple:
        """The execution's architectural outcome in outcome-set shape."""
        return (self.registers, self.final_memory)

    def to_json(self) -> Dict:
        return {
            "registers": [list(pair) for pair in self.registers],
            "final_memory": [list(pair) for pair in self.final_memory],
            "conformant": self.conformant,
            "reason": self.reason,
            "events": self.events,
            "closure_rejected": self.closure_rejected,
            "search_states": self.search_states,
        }

    @staticmethod
    def from_json(data: Dict) -> "TraceCheck":
        return TraceCheck(
            registers=tuple((n, v) for n, v in data["registers"]),
            final_memory=tuple((a, v) for a, v in data["final_memory"]),
            conformant=data["conformant"],
            reason=data["reason"],
            events=data["events"],
            closure_rejected=data["closure_rejected"],
            search_states=data["search_states"],
        )


@dataclass
class TestVerdicts:
    """Everything the selected oracle layers concluded about one test."""

    test: LitmusTest
    memory_variant: str = "fixed"
    # operational layer
    op_outcomes: Optional[OutcomeSet] = None
    op_allowed: Optional[bool] = None
    tso_allowed_: Optional[bool] = None
    # axiomatic layer
    ax_outcomes: Optional[OutcomeSet] = None
    ax_allowed: Optional[bool] = None
    # RTL enumeration layer
    rtl: Optional[ArchEnumeration] = None
    rtl_allowed: Optional[bool] = None
    # verifier layer
    verifier_bug_found: Optional[bool] = None
    verifier_verified_by_cover: Optional[bool] = None
    verifier_failing_properties: List[str] = field(default_factory=list)
    # trace (sampled per-execution) layer
    trace_checks: Optional[List[TraceCheck]] = None
    trace_sampled: Optional[int] = None
    trace_undrained: Optional[int] = None
    #: oracle name -> error string for layers that refused the test.
    errors: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-safe summary (outcome sets are reported by size plus the
        candidate-outcome membership verdicts, not expanded)."""
        return {
            "memory_variant": self.memory_variant,
            "operational": None
            if self.op_outcomes is None
            else {
                "allowed": self.op_allowed,
                "tso_allowed": self.tso_allowed_,
                "outcomes": len(self.op_outcomes),
            },
            "axiomatic": None
            if self.ax_outcomes is None
            else {"allowed": self.ax_allowed, "outcomes": len(self.ax_outcomes)},
            "rtl": None
            if self.rtl is None
            else {
                "allowed": self.rtl_allowed,
                "outcomes": len(self.rtl.outcomes),
                "complete": self.rtl.complete,
                "states": self.rtl.states,
            },
            "verifier": None
            if self.verifier_bug_found is None
            else {
                "bug_found": self.verifier_bug_found,
                "verified_by_cover": self.verifier_verified_by_cover,
                "failing_properties": list(self.verifier_failing_properties),
            },
            "trace": None
            if self.trace_checks is None
            else {
                "sampled": self.trace_sampled,
                "unique": len(self.trace_checks),
                "undrained": self.trace_undrained,
                "nonconformant": sum(
                    1 for c in self.trace_checks if not c.conformant
                ),
            },
            "errors": dict(self.errors),
        }


def check_wellformed(test: LitmusTest) -> None:
    """Validate ``test`` before any oracle touches it; all structural
    problems surface as :class:`ReproError` naming the test."""
    try:
        test.validate()
    except ReproError:
        raise
    except (KeyError, AssertionError, TypeError) as exc:
        raise ReproError(f"{test.name}: malformed litmus test: {exc!r}") from exc


def _guard(test: LitmusTest, oracle: str, fn):
    """Run one oracle body, converting internal escapes to ReproError."""
    try:
        return fn()
    except ReproError:
        raise
    except (KeyError, AssertionError, IndexError) as exc:
        raise ReproError(
            f"{test.name}: oracle {oracle!r} internal error: {exc!r}"
        ) from exc


def operational_verdicts(test: LitmusTest) -> Tuple[OutcomeSet, bool, bool]:
    """(SC outcome set, SC-allowed, TSO-allowed) for ``test``."""
    check_wellformed(test)

    def body():
        outcomes = frozenset(enumerate_sc_outcomes(test))
        return outcomes, sc_allowed(test), tso_allowed(test)

    return _guard(test, "operational", body)


def axiomatic_verdicts(test: LitmusTest) -> Tuple[OutcomeSet, bool]:
    """(SC candidate-execution outcome set, SC-allowed) for ``test``."""
    check_wellformed(test)

    def body():
        outcomes = axiomatic_sc_outcomes(test)
        regs = dict(test.outcome.registers)
        mem = dict(test.outcome.final_memory)
        allowed = any(
            all(dict(r).get(k) == v for k, v in regs.items())
            and all(dict(m).get(k) == v for k, v in mem.items())
            for r, m in outcomes
        )
        return outcomes, allowed

    return _guard(test, "axiomatic", body)


def rtl_verdicts(
    test: LitmusTest,
    memory_variant: str = "fixed",
    max_states: int = DEFAULT_MAX_STATES,
    state_backend: str = "array",
) -> ArchEnumeration:
    """Exhaustive (budgeted) architectural enumeration of the design."""
    check_wellformed(test)

    def body():
        from repro.vscale.soc import MultiVScale

        design = MultiVScale(
            compile_test(test), memory_variant, state_backend=state_backend
        )
        return enumerate_design_outcomes(design, max_states=max_states)

    return _guard(test, "rtl", body)


def trace_verdicts(
    test: LitmusTest,
    memory_variant: str = "fixed",
    samples: int = DEFAULT_TRACE_SAMPLES,
    seed: int = 0,
    max_states: int = DEFAULT_MAX_STATES,
    grant_sink: Optional[Dict[str, int]] = None,
    state_backend: str = "array",
) -> Tuple[List[TraceCheck], int, int]:
    """Sample ``samples`` RTL executions and polycheck each under SC.

    Returns ``(checks, sampled, undrained)``.  ``max_states`` bounds
    the per-trace witness search; a tripped budget raises
    :class:`ReproError` (the campaign records the refusal rather than
    mislabeling the trace).  ``grant_sink``, when given, receives the
    harvest's arbiter-grant n-gram counts (coverage collection; the
    sampled schedules are identical either way).
    """
    check_wellformed(test)

    def body():
        from repro.memodel.polycheck import check_trace
        from repro.vscale.trace import harvest_traces

        harvest = harvest_traces(
            test,
            memory_variant,
            samples=samples,
            seed=seed,
            collect_grants=grant_sink is not None,
            state_backend=state_backend,
        )
        if grant_sink is not None and harvest.grant_ngrams:
            for ngram, hits in harvest.grant_ngrams.items():
                grant_sink[ngram] = grant_sink.get(ngram, 0) + hits
        checks = []
        for trace in harvest.traces:
            verdict = check_trace(trace, "sc", max_states=max_states)
            checks.append(
                TraceCheck(
                    registers=trace.load_values,
                    final_memory=trace.final_memory,
                    conformant=verdict.conformant,
                    reason=verdict.reason,
                    events=verdict.events,
                    closure_rejected=verdict.closure_rejected,
                    search_states=verdict.search_states,
                )
            )
        return checks, harvest.sampled, harvest.undrained

    return _guard(test, "trace", body)


def verifier_verdicts(
    test: LitmusTest,
    memory_variant: str = "fixed",
    rtlcheck=None,
    state_backend: str = "array",
):
    """Run the full RTLCheck flow; returns its
    :class:`~repro.core.results.TestVerification`.  ``state_backend``
    applies only when no pre-built ``rtlcheck`` is handed in."""
    check_wellformed(test)

    def body():
        checker = rtlcheck
        if checker is None:
            from repro.core.rtlcheck import RTLCheck

            checker = RTLCheck(state_backend=state_backend)
        return checker.verify_test(test, memory_variant)

    return _guard(test, "verifier", body)


def evaluate_oracles(
    test: LitmusTest,
    memory_variant: str = "fixed",
    oracles: Tuple[str, ...] = ORACLE_NAMES,
    max_states: int = DEFAULT_MAX_STATES,
    rtlcheck=None,
    cache=None,
    trace_samples: int = DEFAULT_TRACE_SAMPLES,
    trace_seed: int = 0,
    state_backend: str = "array",
) -> TestVerdicts:
    """Run the selected oracle layers on ``test``.

    A layer that raises :class:`ReproError` *after* the up-front
    well-formedness check is recorded in ``verdicts.errors`` and its
    comparisons are skipped — a single odd test must not abort a fuzz
    campaign.  This holds for **every** layer, operational and
    axiomatic included.  (Malformed tests still raise: that is a
    generator bug.)

    ``cache``, when given, is a :class:`repro.cache.VerificationCache`:
    the operational/axiomatic outcome sets (design-independent keys) and
    the RTL enumeration (keyed by memory variant and state budget) are
    memoized through its oracle tier, and the verifier layer runs an
    :class:`RTLCheck` wired to the same cache.  Warm hits replay the
    same observability counters the cold computation records, so a
    cached fuzz campaign's report aggregates match an uncached one's.
    """
    check_wellformed(test)
    for oracle in oracles:
        if oracle not in ORACLE_NAMES:
            raise ReproError(
                f"unknown oracle {oracle!r}; choose from {list(ORACLE_NAMES)}"
            )
    verdicts = TestVerdicts(test=test, memory_variant=memory_variant)
    recorder = obs.get_recorder()
    #: The active recorder's coverage map (``None`` unless the campaign
    #: runs with coverage collection — see :mod:`repro.obs.coverage`).
    coverage = getattr(recorder, "coverage", None)
    if cache is not None:
        from repro.cache import keys as cache_keys

    if "operational" in oracles:
        with obs.span("oracle.operational", test=test.name):
            try:
                payload = key = None
                if cache is not None:
                    key = cache_keys.oracle_key("operational", test)
                    payload = cache.load_oracle(key)
                if payload is None:
                    outcomes, allowed, tso = operational_verdicts(test)
                    if key is not None:
                        cache.store_oracle(
                            key,
                            {
                                "outcomes": outcomes_to_json(outcomes),
                                "allowed": allowed,
                                "tso_allowed": tso,
                            },
                        )
                else:
                    outcomes = outcomes_from_json(payload["outcomes"])
                    allowed = payload["allowed"]
                    tso = payload["tso_allowed"]
                verdicts.op_outcomes = outcomes
                verdicts.op_allowed = allowed
                verdicts.tso_allowed_ = tso
            except ReproError as exc:
                verdicts.errors["operational"] = str(exc)
    if "axiomatic" in oracles:
        with obs.span("oracle.axiomatic", test=test.name):
            try:
                payload = key = None
                if cache is not None:
                    key = cache_keys.oracle_key("axiomatic", test)
                    payload = cache.load_oracle(key)
                if payload is None:
                    outcomes, allowed = axiomatic_verdicts(test)
                    if key is not None:
                        cache.store_oracle(
                            key,
                            {
                                "outcomes": outcomes_to_json(outcomes),
                                "allowed": allowed,
                            },
                        )
                else:
                    outcomes = outcomes_from_json(payload["outcomes"])
                    allowed = payload["allowed"]
                verdicts.ax_outcomes = outcomes
                verdicts.ax_allowed = allowed
            except ReproError as exc:
                verdicts.errors["axiomatic"] = str(exc)
    if "rtl" in oracles:
        with obs.span("oracle.rtl", test=test.name, memory=memory_variant):
            try:
                enum = key = None
                if cache is not None:
                    key = cache_keys.oracle_key(
                        "rtl", test, memory_variant, max_states
                    )
                    payload = cache.load_oracle(key)
                    if payload is not None:
                        enum = ArchEnumeration(
                            outcomes=outcomes_from_json(payload["outcomes"]),
                            complete=payload["complete"],
                            states=payload["states"],
                            transitions=payload["transitions"],
                            drained_states=payload["drained_states"],
                            seconds=payload["seconds"],
                        )
                        if recorder.enabled:
                            # Replay the counters the cold enumeration
                            # records (repro.verifier.outcomes), so a
                            # warm campaign aggregates identically.
                            recorder.count("arch.states", enum.states)
                            recorder.count("arch.transitions", enum.transitions)
                            recorder.count(
                                "rtl.frames_simulated", enum.transitions
                            )
                            if not enum.complete:
                                recorder.count("arch.budget_trips", 1)
                if enum is None:
                    enum = rtl_verdicts(
                        test,
                        memory_variant,
                        max_states=max_states,
                        state_backend=state_backend,
                    )
                    if key is not None:
                        cache.store_oracle(
                            key,
                            {
                                "outcomes": outcomes_to_json(enum.outcomes),
                                "complete": enum.complete,
                                "states": enum.states,
                                "transitions": enum.transitions,
                                "drained_states": enum.drained_states,
                                "seconds": enum.seconds,
                            },
                        )
                verdicts.rtl = enum
                verdicts.rtl_allowed = enum.observes(test.outcome)
            except ReproError as exc:
                verdicts.errors["rtl"] = str(exc)
    if "verifier" in oracles:
        with obs.span("oracle.verifier", test=test.name, memory=memory_variant):
            try:
                checker = rtlcheck
                if checker is None and (
                    cache is not None or coverage is not None
                ):
                    from repro.core.rtlcheck import RTLCheck

                    # Observed when recording: the verifier's counters
                    # then ride on ``result.obs`` and are merged below,
                    # whether computed cold or replayed from the cache.
                    # With coverage on, the inner RTLCheck collects the
                    # graph/assumption/shape domains the same way.
                    checker = RTLCheck(
                        cache=cache,
                        observe=recorder.enabled,
                        coverage=coverage is not None,
                        state_backend=state_backend,
                    )
                result = verifier_verdicts(
                    test, memory_variant, checker, state_backend=state_backend
                )
                if result.obs and (recorder.enabled or coverage is not None):
                    recorder.merge_state(result.obs)
                verdicts.verifier_bug_found = result.bug_found
                verdicts.verifier_verified_by_cover = result.verified_by_cover
                verdicts.verifier_failing_properties = [
                    p.name for p in result.counterexamples
                ]
            except ReproError as exc:
                verdicts.errors["verifier"] = str(exc)
    if "trace" in oracles:
        with obs.span(
            "oracle.trace",
            test=test.name,
            memory=memory_variant,
            samples=trace_samples,
        ):
            try:
                payload = key = None
                if cache is not None:
                    key = cache_keys.oracle_key(
                        "trace",
                        test,
                        memory_variant,
                        max_states,
                        extra={"samples": trace_samples, "seed": trace_seed},
                    )
                    payload = cache.load_oracle(key)
                    if (
                        payload is not None
                        and coverage is not None
                        and "coverage" not in payload
                    ):
                        # Entry predates coverage collection: recompute
                        # so warm campaigns merge the same grant
                        # n-grams as cold ones (the rewrite below
                        # upgrades the entry in place).
                        payload = None
                if payload is None:
                    grant_sink = {} if coverage is not None else None
                    checks, sampled, undrained = trace_verdicts(
                        test,
                        memory_variant,
                        samples=trace_samples,
                        seed=trace_seed,
                        max_states=max_states,
                        grant_sink=grant_sink,
                        state_backend=state_backend,
                    )
                    if key is not None:
                        entry = {
                            "checks": [c.to_json() for c in checks],
                            "sampled": sampled,
                            "undrained": undrained,
                        }
                        if grant_sink is not None:
                            entry["coverage"] = grant_sink
                        cache.store_oracle(key, entry)
                else:
                    checks = [
                        TraceCheck.from_json(c) for c in payload["checks"]
                    ]
                    sampled = payload["sampled"]
                    undrained = payload["undrained"]
                    grant_sink = payload.get("coverage")
                    if recorder.enabled:
                        # Replay the counters the cold polycheck pass
                        # records (repro.memodel.polycheck), so a warm
                        # campaign aggregates identically.
                        recorder.count("polycheck.traces", len(checks))
                        recorder.count(
                            "polycheck.events",
                            sum(c.events for c in checks),
                        )
                if coverage is not None and grant_sink:
                    coverage.merge_state({"arbiter": grant_sink})
                    if recorder.enabled:
                        recorder.count(
                            "coverage.arbiter.keys", len(grant_sink)
                        )
                verdicts.trace_checks = checks
                verdicts.trace_sampled = sampled
                verdicts.trace_undrained = undrained
            except ReproError as exc:
                verdicts.errors["trace"] = str(exc)
    if recorder.enabled:
        recorder.count("difftest.oracle_runs", len(oracles))
        if verdicts.errors:
            recorder.count("difftest.oracle_errors", len(verdicts.errors))
    return verdicts
