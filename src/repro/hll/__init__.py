"""Full-stack HLL (C11) layer: programs, oracle, mappings, checker."""

from repro.hll.compile import (
    MAPPINGS,
    SC_MAPPING,
    TSO_MAPPING,
    TSO_MAPPING_BROKEN,
    CompilerMapping,
    compile_hll,
)
from repro.hll.model import c11_allowed, c11_forbidden
from repro.hll.program import (
    ACQUIRE,
    RELAXED,
    RELEASE,
    SEQ_CST,
    AtomicOp,
    HllLitmusTest,
    atomic_load,
    atomic_store,
    c11_corr,
    c11_mp,
    c11_sb,
)
from repro.hll.stack import FullStackResult, check_full_stack

__all__ = [
    "ACQUIRE",
    "AtomicOp",
    "CompilerMapping",
    "FullStackResult",
    "HllLitmusTest",
    "MAPPINGS",
    "RELAXED",
    "RELEASE",
    "SC_MAPPING",
    "SEQ_CST",
    "TSO_MAPPING",
    "TSO_MAPPING_BROKEN",
    "atomic_load",
    "atomic_store",
    "c11_allowed",
    "c11_corr",
    "c11_forbidden",
    "c11_mp",
    "c11_sb",
    "check_full_stack",
    "compile_hll",
]
