"""Compiler mappings from C11 atomics to the RV32I litmus level.

A compiler mapping says which instruction sequence implements each
atomic operation on a target.  We provide:

``SC_MAPPING``
    For the sequentially consistent Multi-V-scale: every atomic is a
    plain load/store (SC hardware implements every C11 order for free).

``TSO_MAPPING``
    For Multi-V-scale-TSO, the standard x86-style mapping: a ``seq_cst``
    store is a plain store followed by a full fence (the
    "trailing-fence" scheme); everything else is plain, because TSO
    already provides acquire/release semantics.

``TSO_MAPPING_BROKEN``
    A deliberately wrong mapping that drops the ``seq_cst`` fences.
    Dekker-style algorithms miscompile: the hardware exhibits outcomes
    the source program forbids.  The full-stack checker catches this —
    in miniature, the class of compiler-mapping bug the Check ecosystem
    (TriCheck, and the paper's reference [36] on the C11→Power
    trailing-sync flaw) was built to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.hll.program import AtomicOp, HllLitmusTest, SEQ_CST
from repro.litmus.test import LitmusTest, MemOp, Outcome, fence, load, store


@dataclass(frozen=True)
class CompilerMapping:
    """How each atomic op lowers to ISA-level litmus ops."""

    name: str
    description: str
    lower: Callable[[AtomicOp], List[MemOp]]


def _plain(op: AtomicOp) -> List[MemOp]:
    if op.is_load:
        return [load(op.var, op.out)]
    return [store(op.var, op.value)]


def _tso_trailing_fence(op: AtomicOp) -> List[MemOp]:
    lowered = _plain(op)
    if op.is_store and op.order == SEQ_CST:
        lowered.append(fence())
    return lowered


SC_MAPPING = CompilerMapping(
    name="sc-plain",
    description="SC hardware: every atomic is a plain access",
    lower=_plain,
)

TSO_MAPPING = CompilerMapping(
    name="tso-trailing-fence",
    description="x86-style: seq_cst stores get a trailing fence",
    lower=_tso_trailing_fence,
)

TSO_MAPPING_BROKEN = CompilerMapping(
    name="tso-broken-no-fence",
    description="WRONG: seq_cst fences dropped (miscompiles Dekker)",
    lower=_plain,
)

MAPPINGS: Dict[str, CompilerMapping] = {
    m.name: m for m in (SC_MAPPING, TSO_MAPPING, TSO_MAPPING_BROKEN)
}


def compile_hll(test: HllLitmusTest, mapping: CompilerMapping) -> LitmusTest:
    """Lower an HLL litmus test to the ISA litmus level via ``mapping``.

    The candidate outcome carries over unchanged: load output names are
    preserved by every mapping.
    """
    threads = []
    for thread in test.threads:
        ops: List[MemOp] = []
        for op in thread:
            ops.extend(mapping.lower(op))
        threads.append(ops)
    name = f"{test.name}@{mapping.name}"
    return LitmusTest.of(name, threads, Outcome.of(test.outcome_map))
