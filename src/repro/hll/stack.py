"""The full-stack checker: HLL → compiler mapping → ISA → µhb → RTL.

For one C11 litmus test, a compiler mapping, and a target platform,
this runs the whole pipeline the paper's contribution list describes:

1. decide the outcome's verdict under the (simplified) C11 model;
2. compile the test to the ISA litmus level through the mapping;
3. run RTLCheck against the platform's RTL: the covering-trace phase
   decides whether the compiled outcome is *reachable in hardware*, and
   the assertion phase verifies the platform against its own µspec
   axioms.

The stack is **sound** for this test iff hardware reachability implies
HLL permission: an outcome the source program forbids must not be
producible by the compiled program on the actual RTL.  A violation
localizes to the compiler mapping whenever the RTL itself verifies
against its µspec model (the hardware keeps its own contract, so the
lowering broke the source guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rtlcheck import RTLCheck
from repro.core.results import TestVerification
from repro.hll.compile import CompilerMapping, compile_hll
from repro.hll.model import c11_allowed
from repro.hll.program import HllLitmusTest
from repro.litmus.test import LitmusTest
from repro.verifier.config import FULL_PROOF, VerifierConfig


@dataclass
class FullStackResult:
    """Everything the stack concluded about one HLL test."""

    hll_test: HllLitmusTest
    mapping_name: str
    platform: str
    isa_test: LitmusTest
    hll_allowed: bool
    rtl_reachable: bool
    rtl_verification: TestVerification

    @property
    def design_keeps_its_contract(self) -> bool:
        """Did the RTL satisfy its own µspec axioms?"""
        return self.rtl_verification.verified

    @property
    def stack_sound(self) -> bool:
        """Hardware must not exhibit what the source forbids."""
        return self.hll_allowed or not self.rtl_reachable

    @property
    def mapping_bug(self) -> bool:
        """An unsound stack over a contract-keeping design is a
        compiler-mapping bug."""
        return not self.stack_sound and self.design_keeps_its_contract

    def summary(self) -> str:
        hll = "allowed" if self.hll_allowed else "FORBIDDEN"
        rtl = "reachable" if self.rtl_reachable else "unreachable"
        lines = [
            f"{self.hll_test.name} via {self.mapping_name} on {self.platform}:",
            f"  C11 verdict:        outcome {hll}",
            f"  RTL reachability:   outcome {rtl} on the compiled program",
            f"  design vs µspec:    "
            f"{'verified' if self.design_keeps_its_contract else 'COUNTEREXAMPLE'}",
        ]
        if self.mapping_bug:
            lines.append(
                "  => COMPILER MAPPING BUG: the hardware keeps its own "
                "contract but exhibits an outcome the source forbids"
            )
        elif not self.stack_sound:
            lines.append("  => STACK UNSOUND (hardware violates its own axioms)")
        else:
            lines.append("  => stack sound for this test")
        return "\n".join(lines)


def check_full_stack(
    hll_test: HllLitmusTest,
    mapping: CompilerMapping,
    platform: str = "tso",
    config: VerifierConfig = FULL_PROOF,
) -> FullStackResult:
    """Run the HLL→RTL pipeline for one test.

    ``platform`` is ``"sc"`` (Multi-V-scale) or ``"tso"``
    (Multi-V-scale-TSO).
    """
    if platform == "sc":
        rtlcheck = RTLCheck(config=config)
    elif platform == "tso":
        rtlcheck = RTLCheck.for_tso(config=config)
    else:
        raise ValueError(f"unknown platform {platform!r}")

    isa_test = compile_hll(hll_test, mapping)
    verification = rtlcheck.verify_test(isa_test)
    reachable = "final_values" in verification.cover.fired_assumptions
    return FullStackResult(
        hll_test=hll_test,
        mapping_name=mapping.name,
        platform=platform,
        isa_test=isa_test,
        hll_allowed=c11_allowed(hll_test),
        rtl_reachable=reachable,
        rtl_verification=verification,
    )
