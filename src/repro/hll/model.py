"""A (simplified) C11 consistency oracle for the supported subset.

Given an :class:`~repro.hll.program.HllLitmusTest`, decides whether its
candidate outcome is allowed by enumerating candidate executions
(reads-from plus per-location modification order) and checking:

* **happens-before** — ``hb = (sb ∪ sw)+`` must be irreflexive, where
  ``sb`` is sequenced-before and ``sw`` synchronizes-with (a release
  store read by an acquire load; with no RMWs a release sequence is
  just its head, a documented simplification);
* **coherence** — the four standard conditions (CoWW/CoRR/CoWR/CoRW)
  relating hb, rf, and mo per location, with the initial value treated
  as an mo-minimal write;
* **seq_cst** — there must exist a total order S over all seq_cst
  operations, consistent with hb and mo, in which every seq_cst load
  reads the most recent same-location seq_cst write S-before it (or the
  initial value if there is none).  This is the classic simplified
  S-condition: it is exact when, per location, the writes read by
  seq_cst loads are all seq_cst themselves, which covers our test
  shapes; mixed-order corner cases of the full standard (the infamous
  ``S`` clauses) are outside the supported subset.

For all-seq_cst programs this model coincides with SC — a property the
test suite checks against the independent SC oracle.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.hll.program import AtomicOp, HllLitmusTest
from repro.memodel.axiomatic import is_acyclic

#: Sentinel for "reads the initial value".
INIT = -1


@dataclass(frozen=True)
class _Event:
    eid: int
    thread: int
    index: int
    op: AtomicOp


def _events(test: HllLitmusTest) -> List[_Event]:
    out = []
    eid = 0
    for thread, ops in enumerate(test.threads):
        for index, op in enumerate(ops):
            out.append(_Event(eid, thread, index, op))
            eid += 1
    return out


def _transitive_closure(n: int, edges: Set[Tuple[int, int]]) -> Set[Tuple[int, int]]:
    reach = {i: set() for i in range(n)}
    for a, b in edges:
        reach[a].add(b)
    changed = True
    while changed:
        changed = False
        for a in range(n):
            extra = set()
            for b in reach[a]:
                extra |= reach[b] - reach[a]
            if extra:
                reach[a] |= extra
                changed = True
    return {(a, b) for a in range(n) for b in reach[a]}


class _Candidate:
    def __init__(
        self,
        events: List[_Event],
        rf: Dict[int, int],
        mo: Dict[str, Tuple[int, ...]],
    ):
        self.events = events
        self.rf = rf
        self.mo = mo
        self._by_eid = {e.eid: e for e in events}

    # -- helpers -----------------------------------------------------------

    def read_value(self, eid: int) -> int:
        src = self.rf[eid]
        if src == INIT:
            return 0
        return self._by_eid[src].op.value

    def mo_position(self, var: str, eid: int) -> int:
        """Position in var's modification order; INIT is -1."""
        if eid == INIT:
            return -1
        return self.mo[var].index(eid)

    # -- axioms ------------------------------------------------------------

    def happens_before(self) -> Optional[Set[Tuple[int, int]]]:
        n = len(self.events)
        edges: Set[Tuple[int, int]] = set()
        for a in self.events:
            for b in self.events:
                if a.thread == b.thread and a.index < b.index:
                    edges.add((a.eid, b.eid))  # sb
        # sw: release store read by an acquire load.
        for load_eid, src in self.rf.items():
            if src == INIT:
                continue
            load, src_event = self._by_eid[load_eid], self._by_eid[src]
            if src_event.op.is_release and load.op.is_acquire:
                edges.add((src, load_eid))
        if not is_acyclic(n, edges):
            return None
        return _transitive_closure(n, edges)

    def coherent(self, hb: Set[Tuple[int, int]]) -> bool:
        for a in self.events:
            for b in self.events:
                if (a.eid, b.eid) not in hb or a.op.var != b.op.var:
                    continue
                var = a.op.var
                if a.op.is_store and b.op.is_store:  # CoWW
                    if self.mo_position(var, a.eid) > self.mo_position(var, b.eid):
                        return False
                elif a.op.is_load and b.op.is_load:  # CoRR
                    if self.mo_position(var, self.rf[a.eid]) > self.mo_position(
                        var, self.rf[b.eid]
                    ):
                        return False
                elif a.op.is_store and b.op.is_load:  # CoWR
                    if self.mo_position(var, self.rf[b.eid]) < self.mo_position(
                        var, a.eid
                    ):
                        return False
                else:  # CoRW
                    if self.mo_position(var, self.rf[a.eid]) >= self.mo_position(
                        var, b.eid
                    ):
                        return False
        return True

    def seq_cst_consistent(self, hb: Set[Tuple[int, int]]) -> bool:
        sc_events = [e for e in self.events if e.op.is_seq_cst]
        if not sc_events:
            return True
        # S must extend hb and (same-location) mo over sc events.
        constraints: Set[Tuple[int, int]] = set()
        ids = [e.eid for e in sc_events]
        for a in sc_events:
            for b in sc_events:
                if (a.eid, b.eid) in hb:
                    constraints.add((a.eid, b.eid))
                if (
                    a.op.is_store
                    and b.op.is_store
                    and a.op.var == b.op.var
                    and self.mo_position(a.op.var, a.eid)
                    < self.mo_position(b.op.var, b.eid)
                ):
                    constraints.add((a.eid, b.eid))
        for order in itertools.permutations(ids):
            position = {eid: i for i, eid in enumerate(order)}
            if any(position[a] >= position[b] for a, b in constraints):
                continue
            if self._sc_reads_ok(order):
                return True
        return False

    def _sc_reads_ok(self, order: Sequence[int]) -> bool:
        position = {eid: i for i, eid in enumerate(order)}
        for load_eid in order:
            load = self._by_eid[load_eid]
            if not load.op.is_load:
                continue
            last_sc_write = INIT
            best = -1
            for other_eid in order:
                other = self._by_eid[other_eid]
                if (
                    other.op.is_store
                    and other.op.var == load.op.var
                    and position[other_eid] < position[load_eid]
                    and position[other_eid] > best
                ):
                    best = position[other_eid]
                    last_sc_write = other_eid
            src = self.rf[load_eid]
            src_is_sc = src != INIT and self._by_eid[src].op.is_seq_cst
            if src_is_sc or src == INIT:
                if src != last_sc_write and not (
                    src == INIT and last_sc_write == INIT
                ):
                    return False
            # Reads of non-seq_cst writes are permitted (simplification:
            # the full standard restricts them via hb against S).
        return True

    def consistent(self) -> bool:
        hb = self.happens_before()
        if hb is None:
            return False
        return self.coherent(hb) and self.seq_cst_consistent(hb)

    def matches(self, outcome: Dict[str, int]) -> bool:
        for event in self.events:
            if event.op.is_load and event.op.out in outcome:
                if self.read_value(event.eid) != outcome[event.op.out]:
                    return False
        return True


def enumerate_candidates(test: HllLitmusTest) -> Iterable[_Candidate]:
    events = _events(test)
    loads = [e for e in events if e.op.is_load]
    stores_by_var: Dict[str, List[_Event]] = {}
    for event in events:
        if event.op.is_store:
            stores_by_var.setdefault(event.op.var, []).append(event)
    rf_choices = [
        [INIT] + [s.eid for s in stores_by_var.get(load.op.var, [])] for load in loads
    ]
    mo_vars = sorted(stores_by_var)
    mo_choices = [
        [tuple(s.eid for s in perm) for perm in itertools.permutations(stores_by_var[v])]
        for v in mo_vars
    ]
    for rf_combo in itertools.product(*rf_choices):
        rf = {load.eid: src for load, src in zip(loads, rf_combo)}
        for mo_combo in itertools.product(*mo_choices):
            yield _Candidate(events, rf, dict(zip(mo_vars, mo_combo)))


def c11_allowed(test: HllLitmusTest) -> bool:
    """Is the candidate outcome allowed by the (simplified) C11 model?"""
    outcome = test.outcome_map
    return any(
        candidate.matches(outcome) and candidate.consistent()
        for candidate in enumerate_candidates(test)
    )


def c11_forbidden(test: HllLitmusTest) -> bool:
    return not c11_allowed(test)
