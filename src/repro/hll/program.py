"""High-level-language (C11-style) atomic litmus tests.

The paper's fourth contribution is that, with RTLCheck closing the
microarchitecture→RTL link, the Check suite spans "from HLLs (C11,
etc.) through compiler mappings, the OS, ISA, and microarchitecture,
all the way down to RTL".  This package supplies the HLL end of that
stack: litmus tests over C11 atomic loads/stores with memory orders,
a (documented, simplified) C11 consistency oracle, compiler mappings to
the RV32I litmus level, and a full-stack checker.

Supported subset: atomic loads and stores with ``relaxed``, ``acquire``,
``release``, and ``seq_cst`` orders (no RMWs, no non-atomics, no HLL
fences).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import LitmusError

#: Supported memory orders.
RELAXED = "relaxed"
ACQUIRE = "acquire"
RELEASE = "release"
SEQ_CST = "seq_cst"

ORDERS = (RELAXED, ACQUIRE, RELEASE, SEQ_CST)
_LOAD_ORDERS = (RELAXED, ACQUIRE, SEQ_CST)
_STORE_ORDERS = (RELAXED, RELEASE, SEQ_CST)


@dataclass(frozen=True)
class AtomicOp:
    """One C11 atomic operation."""

    kind: str  # 'R' or 'W'
    var: str
    order: str
    value: Optional[int] = None  # stores
    out: Optional[str] = None  # loads

    def __post_init__(self):
        if self.kind not in ("R", "W"):
            raise LitmusError(f"bad atomic op kind {self.kind!r}")
        if self.kind == "R" and self.order not in _LOAD_ORDERS:
            raise LitmusError(f"loads cannot be {self.order}")
        if self.kind == "W" and self.order not in _STORE_ORDERS:
            raise LitmusError(f"stores cannot be {self.order}")
        if self.kind == "R" and self.out is None:
            raise LitmusError("atomic load needs an output name")
        if self.kind == "W" and self.value is None:
            raise LitmusError("atomic store needs a value")

    @property
    def is_load(self) -> bool:
        return self.kind == "R"

    @property
    def is_store(self) -> bool:
        return self.kind == "W"

    @property
    def is_seq_cst(self) -> bool:
        return self.order == SEQ_CST

    @property
    def is_release(self) -> bool:
        return self.order in (RELEASE, SEQ_CST)

    @property
    def is_acquire(self) -> bool:
        return self.order in (ACQUIRE, SEQ_CST)

    def __str__(self):
        if self.is_load:
            return f"{self.out} = {self.var}.load({self.order})"
        return f"{self.var}.store({self.value}, {self.order})"


def atomic_load(var: str, out: str, order: str = SEQ_CST) -> AtomicOp:
    return AtomicOp(kind="R", var=var, order=order, out=out)


def atomic_store(var: str, value: int, order: str = SEQ_CST) -> AtomicOp:
    return AtomicOp(kind="W", var=var, order=order, value=value)


@dataclass(frozen=True)
class HllLitmusTest:
    """A C11-style litmus test with a candidate outcome."""

    name: str
    threads: Tuple[Tuple[AtomicOp, ...], ...]
    outcome: Tuple[Tuple[str, int], ...]

    @staticmethod
    def of(
        name: str,
        threads: Sequence[Sequence[AtomicOp]],
        outcome: Dict[str, int],
    ) -> "HllLitmusTest":
        test = HllLitmusTest(
            name=name,
            threads=tuple(tuple(t) for t in threads),
            outcome=tuple(sorted(outcome.items())),
        )
        outs = [op.out for t in test.threads for op in t if op.is_load]
        if len(outs) != len(set(outs)):
            raise LitmusError(f"{name}: duplicate load output names")
        for reg, _v in test.outcome:
            if reg not in outs:
                raise LitmusError(f"{name}: outcome register {reg} has no load")
        return test

    @property
    def outcome_map(self) -> Dict[str, int]:
        return dict(self.outcome)

    @property
    def variables(self) -> List[str]:
        seen: List[str] = []
        for thread in self.threads:
            for op in thread:
                if op.var not in seen:
                    seen.append(op.var)
        return seen

    def with_order(self, order: str, name_suffix: str = "") -> "HllLitmusTest":
        """A copy with every op's memory order replaced (handy for
        comparing seq_cst vs relaxed variants of one shape)."""
        threads = []
        for thread in self.threads:
            ops = []
            for op in thread:
                if op.is_load:
                    new_order = order if order in _LOAD_ORDERS else ACQUIRE
                    ops.append(atomic_load(op.var, op.out, new_order))
                else:
                    new_order = order if order in _STORE_ORDERS else RELEASE
                    ops.append(atomic_store(op.var, op.value, new_order))
            threads.append(ops)
        return HllLitmusTest.of(
            self.name + (name_suffix or f"+{order}"), threads, self.outcome_map
        )

    def pretty(self) -> str:
        lines = [f"C11 litmus test {self.name}:"]
        for tid, thread in enumerate(self.threads):
            lines.append(f"  thread {tid}:")
            for op in thread:
                lines.append(f"    {op}")
        outcome = ", ".join(f"{r}={v}" for r, v in self.outcome)
        lines.append(f"  outcome under test: {outcome}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The classic shapes, parameterized by memory order.
# ---------------------------------------------------------------------------


def c11_mp(store_order: str = SEQ_CST, load_order: str = SEQ_CST) -> HllLitmusTest:
    """Message passing: the flag protocol of the paper's Figure 2."""
    return HllLitmusTest.of(
        f"c11-mp[{store_order}/{load_order}]",
        [
            [atomic_store("x", 1, store_order), atomic_store("y", 1, store_order)],
            [atomic_load("y", "r1", load_order), atomic_load("x", "r2", load_order)],
        ],
        {"r1": 1, "r2": 0},
    )


def c11_sb(order: str = SEQ_CST) -> HllLitmusTest:
    """Store buffering (Dekker): needs seq_cst to be forbidden."""
    store_order = order if order in _STORE_ORDERS else RELEASE
    load_order = order if order in _LOAD_ORDERS else ACQUIRE
    return HllLitmusTest.of(
        f"c11-sb[{order}]",
        [
            [atomic_store("x", 1, store_order), atomic_load("y", "r1", load_order)],
            [atomic_store("y", 1, store_order), atomic_load("x", "r2", load_order)],
        ],
        {"r1": 0, "r2": 0},
    )


def c11_corr(order: str = RELAXED) -> HllLitmusTest:
    """Coherence of read-read: forbidden at every order."""
    return HllLitmusTest.of(
        f"c11-corr[{order}]",
        [
            [atomic_store("x", 1, order if order in _STORE_ORDERS else RELEASE),
             atomic_store("x", 2, order if order in _STORE_ORDERS else RELEASE)],
            [atomic_load("x", "r1", order if order in _LOAD_ORDERS else ACQUIRE),
             atomic_load("x", "r2", order if order in _LOAD_ORDERS else ACQUIRE)],
        ],
        {"r1": 2, "r2": 1},
    )
