"""RTLCheck's core: assumption/assertion generation and the full flow."""

from repro.core.assertions import AssertionGenerator, rewrite_negations
from repro.core.results import PropertyResult, TestVerification
from repro.core.rtlcheck import GeneratedProperties, RTLCheck

__all__ = [
    "AssertionGenerator",
    "GeneratedProperties",
    "PropertyResult",
    "RTLCheck",
    "TestVerification",
    "rewrite_negations",
]
