"""The Assertion Generator (paper §4.2–§4.4).

Translates each µspec axiom, grounded for one litmus test in
*outcome-aware* RTL mode, into SystemVerilog assertions:

* data predicates over load values stay symbolic so each assertion
  covers every outcome the RTL verifier may explore, not just the
  outcome under test (§4.2) — symbolic :class:`LoadValue` atoms become
  ``load_data_WB == v`` constraints attached to the node mappings of
  the edges they share a conjunction with;
* µhb edges map to SVA sequences whose initial and intermediate delays
  are repetitions of cycles where *no event of interest* occurs (§4.3),
  so a trace in which the events occur in the opposite order empties the
  NFA and refutes the property;
* every assertion is guarded by ``first |->`` so only the match attempt
  anchored at the first cycle is checked (§4.4);
* a negated edge that survives simplification is rewritten as the
  reversed edge — sound here because the events litmus axioms relate
  (same-core stages, arbiter-serialized memory stages) occur exactly
  once and never simultaneously; this is part of the "synthesizable
  µspec" discipline the paper calls for (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import SvaError
from repro.litmus.test import CompiledTest
from repro.mapping.node_mapping import NodeMapping
from repro.sva.ast import (
    BNot,
    BoolExpr,
    Directive,
    PConst,
    PImpl,
    POr,
    PSeq,
    Property,
    SBool,
    SRepeat,
    Sig,
    bor,
    pand,
    por,
    scat,
)
from repro.uspec import ast as uast
from repro.uspec.ast import Model
from repro.uspec.eval import (
    EvalContext,
    GroundEdge,
    GroundNode,
    LoadValue,
    evaluate_axiom,
)
from repro.uhb.solver import to_nnf


def rewrite_negations(formula: uast.Formula) -> uast.Formula:
    """Eliminate surviving negations from an NNF ground formula.

    ``~Edge(a, b)`` becomes ``Edge(b, a)``; anything else under a
    negation is outside the synthesizable subset.
    """
    if isinstance(formula, uast.Truth):
        return formula
    if isinstance(formula, uast.And):
        return uast.conjunction([rewrite_negations(op) for op in formula.operands])
    if isinstance(formula, uast.Or):
        return uast.disjunction([rewrite_negations(op) for op in formula.operands])
    if isinstance(formula, uast.Not):
        body = formula.body
        if isinstance(body, GroundEdge):
            return GroundEdge(
                kind="exists",
                src=body.dst,
                dst=body.src,
                label=body.label,
                colour=body.colour,
            )
        raise SvaError(
            f"negated {type(body).__name__} is not synthesizable to SVA"
        )
    return formula


@dataclass
class AssertionGenerator:
    """Generates per-test SV assertions from a µspec model."""

    model: Model
    compiled: CompiledTest
    node_mapping: NodeMapping

    def _map(self, node: Tuple[int, str], env: Dict[int, int]) -> BoolExpr:
        uid, _stage = node
        return self.node_mapping.map_node(node, env.get(uid))

    def _events_of_interest(self, nodes: List[Tuple[int, str]]) -> BoolExpr:
        """``map(n1, None) || map(n2, None) || ...`` — event occurrences
        regardless of data values (delay cycles must exclude them)."""
        return bor(*(self.node_mapping.map_node(n, None) for n in nodes))

    def _edge_property(self, edge: GroundEdge, env: Dict[int, int]) -> Property:
        delay_expr = BNot(self._events_of_interest([edge.src, edge.dst]))
        seq = scat(
            SRepeat(delay_expr, 0, None),
            SBool(self._map(edge.src, env)),
            SRepeat(delay_expr, 0, None),
            SBool(self._map(edge.dst, env)),
        )
        return PSeq(seq)

    def _node_property(self, node: Tuple[int, str], env: Dict[int, int]) -> Property:
        delay_expr = BNot(self.node_mapping.map_node(node, None))
        seq = scat(SRepeat(delay_expr, 0, None), SBool(self._map(node, env)))
        return PSeq(seq)

    def _load_value_property(self, atom: LoadValue, env: Dict[int, int]) -> Property:
        """A bare load-value constraint asserts the load occurs at WB
        with that value."""
        node = (atom.uid, "Writeback")
        local = dict(env)
        local[atom.uid] = atom.value
        return self._node_property(node, local)

    def _translate(self, formula: uast.Formula, env: Dict[int, int]) -> Property:
        if isinstance(formula, uast.Truth):
            return PConst(formula.value)
        if isinstance(formula, GroundEdge):
            return self._edge_property(formula, env)
        if isinstance(formula, GroundNode):
            return self._node_property(formula.node, env)
        if isinstance(formula, LoadValue):
            return self._load_value_property(formula, env)
        if isinstance(formula, uast.Or):
            return por(*(self._translate(op, env) for op in formula.operands))
        if isinstance(formula, uast.And):
            constraints = [op for op in formula.operands if isinstance(op, LoadValue)]
            others = [op for op in formula.operands if not isinstance(op, LoadValue)]
            local = dict(env)
            for atom in constraints:
                if local.get(atom.uid, atom.value) != atom.value:
                    return PConst(False)  # contradictory constraints
                local[atom.uid] = atom.value
            if not others:
                return pand(*(self._load_value_property(c, env) for c in constraints))
            return pand(*(self._translate(op, local) for op in others))
        raise SvaError(f"cannot translate {formula!r} to SVA")

    # ------------------------------------------------------------------

    def axiom_properties(self, axiom: uast.Axiom) -> List[Property]:
        """Translate one axiom into a list of properties (one per
        top-level conjunct of its outcome-aware ground formula)."""
        context = EvalContext.for_compiled(self.compiled, mode="rtl")
        ground = evaluate_axiom(self.model, axiom, context)
        ground = rewrite_negations(to_nnf(ground))
        conjuncts = (
            list(ground.operands) if isinstance(ground, uast.And) else [ground]
        )
        properties = []
        for conjunct in conjuncts:
            prop = self._translate(conjunct, {})
            if isinstance(prop, PConst) and prop.value:
                continue  # trivially true, nothing to check
            properties.append(prop)
        return properties

    def generate(self) -> List[Directive]:
        """All assertions for the test, ``first |->`` guarded and
        deduplicated by emitted text."""
        directives: List[Directive] = []
        seen = set()
        test_name = _sanitize(self.compiled.test.name)
        for axiom in self.model.axioms:
            for index, prop in enumerate(self.axiom_properties(axiom)):
                guarded = PImpl(Sig("first"), prop)
                text = guarded.emit()
                if text in seen:
                    continue
                seen.add(text)
                directives.append(
                    Directive(
                        kind="assert",
                        name=f"{test_name}_{_sanitize(axiom.name)}_{index}",
                        prop=guarded,
                    )
                )
        return directives


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in name)
