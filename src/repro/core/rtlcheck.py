"""The end-to-end RTLCheck flow (paper Figure 7).

Inputs: a µspec microarchitecture model, an RTL design (Multi-V-scale),
a litmus test, and the program/node mapping functions.  RTLCheck

1. generates temporal SV assumptions constraining the verifier to the
   litmus test's executions (Assumption Generator, §4.1),
2. generates temporal SV assertions checking each µspec axiom with
   outcome-aware translation (Assertion Generator, §4.2–4.4),
3. hands both to the property verifier, which first hunts covering
   traces for the assumptions (an unreachable final-value assumption
   verifies the test outright) and then proves each assertion,
   reporting complete proofs, bounded proofs, or counterexamples.

Every phase runs inside a :mod:`repro.obs` span — generate, cover,
graph-build, proof, plus one span per property — and the span
durations *are* the timing fields on :class:`TestVerification`
(``generation_seconds``, ``cover_seconds``, ``proof_seconds``,
``wall_seconds``), so observability on/off cannot change their
meaning.  With ``observe=True`` each test records into its own
:class:`~repro.obs.TraceRecorder`, whose snapshot travels back on
``TestVerification.obs`` — including across the ``verify_suite``
process pool — so suite-level counters always equal the sum of the
per-test counters regardless of job count.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.core.assertions import AssertionGenerator
from repro.core.results import PropertyResult, TestVerification
from repro.errors import ReproError
from repro.litmus.test import CompiledTest, LitmusTest, compile_test
from repro.mapping.node_mapping import MultiVScaleNodeMapping
from repro.mapping.program_mapping import MultiVScaleProgramMapping
from repro.rtl.design import VECTOR_BACKENDS
from repro.sva.ast import Directive
from repro.sva.emit import emit_sva_file
from repro.sva.monitor import AssumptionChecker, PropertyMonitor
from repro.uspec.ast import Model
from repro.uspec.model import load_model, multi_vscale_model
from repro.verifier.config import (
    EXPLORER_BUDGET,
    FULL_PROOF,
    USE_REACH_GRAPH,
    VerifierConfig,
)
from repro.verifier.engines import EngineModel
from repro.verifier.explorer import Explorer
from repro.verifier.reach import GraphExplorer
from repro.vscale.soc import MultiVScale


def _multi_vscale_design_factory(compiled, variant):
    """Default design factory (module-level so RTLCheck pickles for
    multi-process suite verification)."""
    return MultiVScale(compiled, variant)


def _multi_vscale_tso_design_factory(compiled, variant):
    """Design factory for :meth:`RTLCheck.for_tso` (module-level so the
    TSO-configured RTLCheck pickles too)."""
    from repro.vscale.tso import MultiVScaleTSO

    # "buggy" selects the seeded LIFO-drain store buffer.
    drain = "lifo" if variant == "buggy" else "fifo"
    return MultiVScaleTSO(compiled, drain_order=drain)


def _verify_suite_worker(rtlcheck: "RTLCheck", test, memory_variant):
    """Module-level task body for the suite process pool.

    Returns ``(result, cache_stats_delta)`` — workers hold their own
    :class:`~repro.cache.VerificationCache` copy (same on-disk root,
    zeroed statistics), so the parent merges the deltas by summation.
    """
    result = rtlcheck.verify_test(test, memory_variant)
    stats = None
    if rtlcheck.cache is not None:
        stats = rtlcheck.cache.stats.snapshot()
    return result, stats


@dataclass
class GeneratedProperties:
    """Output of RTLCheck's generation phase for one litmus test."""

    compiled: CompiledTest
    assumptions: List[Directive]
    assertions: List[Directive]
    sva_text: str
    generation_seconds: float


class RTLCheck:
    """RTLCheck for the Multi-V-scale processors.

    ``model`` defaults to the bundled Multi-V-scale µspec model;
    ``config`` picks the verifier engine configuration (Table 1).
    The design and mapping factories default to the paper's SC case
    study; :meth:`for_tso` wires up the store-buffer (x86-TSO) variant
    instead — RTLCheck itself is model- and design-agnostic (Figure 7).
    ``observe=True`` records spans and counters per test
    (:mod:`repro.obs`) and attaches the recorder snapshot to each
    result's ``obs`` field.
    """

    def __init__(
        self,
        model: Optional[Model] = None,
        config: VerifierConfig = FULL_PROOF,
        design_factory=None,
        node_mapping_factory=MultiVScaleNodeMapping,
        program_mapping_factory=MultiVScaleProgramMapping,
        use_reach_graph: bool = USE_REACH_GRAPH,
        observe: bool = False,
        coverage: bool = False,
        cache=None,
        state_backend: str = "array",
    ):
        if state_backend not in ("array", "dict", "kernel"):
            raise ReproError(
                f"unknown state backend {state_backend!r}; "
                "choose 'array', 'kernel', or 'dict'"
            )
        self.model = model or multi_vscale_model()
        self.config = config
        self.design_factory = design_factory or _multi_vscale_design_factory
        self.node_mapping_factory = node_mapping_factory
        self.program_mapping_factory = program_mapping_factory
        self.use_reach_graph = use_reach_graph
        self.observe = observe
        #: Collect microarchitectural coverage maps per test
        #: (:mod:`repro.obs.coverage`) and attach them to ``result.obs``
        #: — with or without full observability.
        self.coverage = coverage
        #: Snapshot representation applied to factory-built designs:
        #: ``"array"`` (interned flat vectors + batched expansion — the
        #: default) or ``"dict"`` (nested tuples, the equivalence
        #: reference).  Designs without a slot layout stay on ``dict``
        #: regardless (``docs/performance.md``).
        self.state_backend = state_backend
        #: Optional :class:`repro.cache.VerificationCache`.  When set,
        #: verdicts, reach graphs, and compiled monitors are memoized on
        #: disk, keyed by the full verification input set (see
        #: ``docs/caching.md``); ``None`` (the default) verifies cold.
        self.cache = cache

    @classmethod
    def for_tso(
        cls,
        config: VerifierConfig = FULL_PROOF,
        observe: bool = False,
        cache=None,
    ) -> "RTLCheck":
        """RTLCheck configured for Multi-V-scale-TSO: the store-buffer
        design, its µspec model, and the Memory-stage node mapping."""
        from repro.mapping.tso_mapping import MultiVScaleTsoNodeMapping

        return cls(
            model=load_model("multi_vscale_tso"),
            config=config,
            design_factory=_multi_vscale_tso_design_factory,
            node_mapping_factory=MultiVScaleTsoNodeMapping,
            observe=observe,
            cache=cache,
        )

    # ------------------------------------------------------------------
    # Cache keys (content addressing; see docs/caching.md)
    # ------------------------------------------------------------------

    def verdict_key(
        self, test: LitmusTest, memory_variant: str, skip_cover_shortcut: bool = False
    ) -> str:
        """The content key of ``verify_test(test, memory_variant)``."""
        from repro.cache import keys

        return keys.verdict_key(
            test=test,
            memory_variant=memory_variant,
            model=self.model,
            config=self.config,
            design_factory=self.design_factory,
            node_mapping_factory=self.node_mapping_factory,
            program_mapping_factory=self.program_mapping_factory,
            use_reach_graph=self.use_reach_graph,
            skip_cover_shortcut=skip_cover_shortcut,
            state_backend=self.state_backend,
        )

    # ------------------------------------------------------------------
    # Generation (takes just seconds per test, §7 intro)
    # ------------------------------------------------------------------

    def generate(self, test: LitmusTest) -> GeneratedProperties:
        """Run the Assumption and Assertion Generators for ``test``."""
        with obs.span("generate", test=test.name) as span:
            compiled = compile_test(test)
            program_mapping = self.program_mapping_factory(compiled)
            node_mapping = self.node_mapping_factory(compiled)
            assumptions = program_mapping.all_assumptions()
            assertions = AssertionGenerator(
                model=self.model, compiled=compiled, node_mapping=node_mapping
            ).generate()
            sva_text = emit_sva_file(test.name, assumptions + assertions)
        recorder = obs.get_recorder()
        if recorder.enabled:
            recorder.count("generator.assumptions", len(assumptions))
            recorder.count("generator.assertions", len(assertions))
        return GeneratedProperties(
            compiled=compiled,
            assumptions=assumptions,
            assertions=assertions,
            sva_text=sva_text,
            generation_seconds=span.seconds,
        )

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify_test(
        self,
        test: LitmusTest,
        memory_variant: str = "fixed",
        skip_cover_shortcut: bool = False,
    ) -> TestVerification:
        """Generate properties for ``test`` and verify them against the
        chosen Multi-V-scale memory variant.

        With ``observe=True`` the run records into a fresh per-test
        :class:`~repro.obs.TraceRecorder`; its snapshot is attached as
        ``result.obs``.

        Malformed tests (an outcome referencing a register no load
        writes, a final value for a location no thread uses) fail fast
        with a :class:`~repro.errors.ReproError` naming the test — they
        must not surface as ``KeyError``/``AssertionError`` from deep
        inside the generators (fuzzed tests reach this path with no
        prior validation).
        """
        test.validate()
        key = None
        if self.cache is not None:
            key = self.verdict_key(test, memory_variant, skip_cover_shortcut)
            cached = self.cache.load_verdict(
                key, observe=self.observe, coverage=self.coverage
            )
            if cached is not None:
                return cached
        try:
            if not (self.observe or self.coverage):
                result = self._verify_test(
                    test, memory_variant, skip_cover_shortcut
                )
            else:
                if self.observe:
                    coverage_map = None
                    if self.coverage:
                        from repro.obs.coverage import CoverageMap

                        coverage_map = CoverageMap()
                    recorder = obs.TraceRecorder(coverage=coverage_map)
                else:
                    # Coverage without metrics: the enabled=False sink,
                    # so span/counter instrumentation stays no-op.
                    recorder = obs.CoverageRecorder()
                with obs.use_recorder(recorder):
                    result = self._verify_test(
                        test, memory_variant, skip_cover_shortcut
                    )
                result.obs = recorder.to_state()
        except ReproError:
            raise
        except (KeyError, AssertionError, IndexError) as exc:
            raise ReproError(
                f"{test.name}: internal error while verifying "
                f"[{memory_variant}]: {exc!r}"
            ) from exc
        if key is not None:
            self.cache.store_verdict(key, result)
        return result

    def _verify_test(
        self,
        test: LitmusTest,
        memory_variant: str,
        skip_cover_shortcut: bool,
    ) -> TestVerification:
        recorder = obs.get_recorder()
        with obs.span(
            "verify_test",
            test=test.name,
            memory=memory_variant,
            config=self.config.name,
        ) as wall:
            generated = self.generate(test)
            design = self.design_factory(generated.compiled, memory_variant)
            self._apply_state_backend(design)
            checker = AssumptionChecker(generated.assumptions)
            reach_key = loaded_transitions = None
            if self.use_reach_graph:
                # The design's assumption-constrained state space is
                # explored once into a shared graph; the cover run and
                # every property walk below replay it without
                # re-simulating.  With a cache attached, the graph is
                # additionally persisted across processes and engine
                # configurations (its key excludes the µspec model and
                # config — see docs/caching.md).
                graph = None
                if self.cache is not None:
                    from repro.cache import keys as cache_keys

                    reach_key = cache_keys.reach_key(
                        test=test,
                        memory_variant=memory_variant,
                        design_factory=self.design_factory,
                        program_mapping_factory=self.program_mapping_factory,
                        state_backend=self.state_backend,
                    )
                    graph = self.cache.load_graph(reach_key)
                    if graph is not None:
                        loaded_transitions = graph.sim_transitions
                explorer = GraphExplorer(design, checker, graph=graph)
            else:
                explorer = Explorer(design, checker)
            engine_model = EngineModel(self.config)

            # Phase 1: covering traces for the assumptions (§4.1).
            cover = explorer.cover_assumptions(EXPLORER_BUDGET)
            cover_hours = engine_model.cover_hours(cover)
            cover_conclusive = engine_model.cover_conclusive(cover)
            final_unreachable = (
                cover.exhausted and "final_values" not in cover.fired_assumptions
            )
            verified_by_cover = (
                not skip_cover_shortcut and cover_conclusive and final_unreachable
            )

            result = TestVerification(
                test=test,
                memory_variant=memory_variant,
                config_name=self.config.name,
                assumptions=generated.assumptions,
                assertions=generated.assertions,
                sva_text=generated.sva_text,
                generation_seconds=generated.generation_seconds,
                cover=cover,
                cover_hours=cover_hours,
                verified_by_cover=verified_by_cover,
                cover_seconds=cover.seconds,
            )

            # Phase 2: prove each generated assertion (skipped when the
            # covering run discharged the test outright).
            if verified_by_cover:
                if recorder.enabled:
                    # Keep one span per pipeline phase per test: record
                    # the skipped proof phase as a zero-length span.
                    recorder.add_span(
                        "proof",
                        time.perf_counter(),
                        0.0,
                        test=test.name,
                        skipped_by_cover=True,
                    )
            else:
                with obs.span("proof", test=test.name) as proof_span:
                    for directive in generated.assertions:
                        monitor = self._monitor(directive)
                        ground_truth = explorer.check_property(
                            monitor, EXPLORER_BUDGET
                        )
                        verdict = engine_model.judge_property(
                            ground_truth, directive.name
                        )
                        result.properties.append(
                            PropertyResult(
                                name=directive.name,
                                verdict=verdict,
                                ground_truth=ground_truth,
                                check_seconds=ground_truth.seconds,
                            )
                        )
                        if recorder.enabled:
                            self._flush_monitor_counters(recorder, monitor)
                result.proof_seconds = proof_span.seconds

            self._record_graph_stats(result, explorer, recorder, wall)
            coverage = getattr(recorder, "coverage", None)
            if coverage is not None:
                self._collect_coverage(
                    coverage, test, explorer, cover, result, recorder
                )
            if recorder.enabled:
                # A warm-loaded graph carries its own pickled checker
                # (with the firing counts accumulated when it was
                # built), so read through the explorer, not the local
                # ``checker``.
                assumptions = explorer.assumptions
                recorder.count(
                    "assumptions.antecedent_firings",
                    assumptions.antecedent_firings,
                )
                recorder.count(
                    "assumptions.pruned_frames", assumptions.pruned_frames
                )
                recorder.count(
                    "cover.fired_assumptions", len(cover.fired_assumptions)
                )
        result.wall_seconds = wall.seconds
        if reach_key is not None:
            graph = explorer.graph
            if (
                loaded_transitions is None
                or graph.sim_transitions > loaded_transitions
            ):
                # Persist (or refresh) the shared graph whenever this
                # run actually simulated new transitions into it.
                self.cache.store_graph(reach_key, graph)
        return result

    def _apply_state_backend(self, design) -> None:
        """Put a factory-built design on the configured state backend.

        Requesting ``"array"`` on a design without a slot layout (for
        example Multi-V-scale-TSO, whose store buffers are
        variable-size) is a silent no-op: the design keeps its dict
        snapshots and every explorer takes the classic path.
        Requesting ``"kernel"`` on a design without a compiled step
        path likewise degrades gracefully — to ``array`` when the
        design declares a slot layout, else ``dict``
        (:meth:`~repro.rtl.design.Design.enable_kernel_state`).
        """
        backend = getattr(design, "state_backend", None)
        if self.state_backend == "dict":
            if backend in VECTOR_BACKENDS:
                design.disable_array_state()
        elif self.state_backend == "kernel":
            if backend != "kernel" and hasattr(design, "enable_kernel_state"):
                design.enable_kernel_state()
        elif backend != "array" and hasattr(design, "enable_array_state"):
            design.enable_array_state()

    def _monitor(self, directive: Directive) -> PropertyMonitor:
        """Compile ``directive`` into a :class:`PropertyMonitor`,
        memoized through the cache's NFA tier when one is attached."""
        if self.cache is None:
            return PropertyMonitor(directive)
        from repro.cache import keys as cache_keys

        key = cache_keys.monitor_key(directive)
        monitor = self.cache.load_monitor(key)
        if monitor is None:
            monitor = PropertyMonitor(directive)
            self.cache.store_monitor(key, monitor)
        return monitor

    @staticmethod
    def _flush_monitor_counters(recorder, monitor: PropertyMonitor) -> None:
        """Fold one property monitor's memo accumulators into the
        recorder (monitors are per-property, so flush after each check)."""
        recorder.count("monitor.verdict_memo_hits", monitor.verdict_memo_hits)
        recorder.count("monitor.verdict_memo_misses", monitor.verdict_memo_misses)
        recorder.count(
            "nfa.predicate_memo_hits", sum(n.memo_hits for n in monitor.nfas)
        )
        recorder.count(
            "nfa.predicate_memo_misses", sum(n.memo_misses for n in monitor.nfas)
        )

    @staticmethod
    def _collect_coverage(
        coverage, test, explorer, cover, result, recorder
    ) -> None:
        """Fold one verification's microarchitectural coverage into
        ``coverage`` (a :class:`~repro.obs.coverage.CoverageMap`).

        Runs at the same flush point as :meth:`_record_graph_stats` —
        after both phases, once per test — so the graph is walked
        exactly once however many properties were checked.  Keys are
        derived from run-stable signatures (slot-vector digests, not
        interner ids), so maps merge meaningfully across runs and
        processes; see ``docs/observability.md``.
        """
        from repro.obs.coverage import collect_graph_coverage, shape_features

        graph = getattr(explorer, "graph", None)
        if graph is not None:
            collect_graph_coverage(coverage, graph)
        for name in sorted(cover.fired_assumptions):
            coverage.add("assumption", f"fired:{name}")
        for prop in result.properties:
            coverage.add("assumption", f"assert:{prop.name}:{prop.status}")
        for feature in shape_features(test):
            coverage.add("shape", feature)
        if recorder.enabled:
            for domain in sorted(coverage.domains):
                recorder.count(
                    f"coverage.{domain}.keys", len(coverage.domains[domain])
                )

    @staticmethod
    def _record_graph_stats(
        result: TestVerification, explorer, recorder=None, wall=None
    ) -> None:
        graph = getattr(explorer, "graph", None)
        design = getattr(explorer, "design", None)
        if design is None and graph is not None:
            # The graph explorer simulates exclusively through the
            # graph's design (a warm-loaded graph carries its own).
            design = graph.design
        backend = getattr(design, "state_backend", "dict")
        if recorder is not None and recorder.enabled and backend in VECTOR_BACKENDS:
            recorder.count("state.states_interned", design.states_interned)
            recorder.count("state.batch_expansions", design.batch_expansions)
            recorder.count("state.slots_copied", design.slots_copied)
            if backend == "kernel":
                recorder.count(
                    "kernel.batched_steps", design.kernel_batched_steps
                )
                recorder.count(
                    "kernel.compile_seconds", design.kernel_compile_seconds
                )
        if graph is None:
            return
        result.graph_build_seconds = graph.build_seconds
        result.graph_states = graph.num_nodes
        result.graph_transitions = graph.sim_transitions
        if recorder is None or not recorder.enabled:
            return
        recorder.count("reach.sim_transitions", graph.sim_transitions)
        recorder.count("reach.cache_hits", graph.cache_hits)
        recorder.count("rtl.frames_simulated", graph.sim_transitions)
        recorder.gauge("reach.graph_states", graph.num_nodes)
        recorder.gauge("reach.expanded_nodes", graph.expanded_nodes)
        if wall is not None:
            # The graph is built lazily inside the cover and property
            # walks; surface its accumulated simulation time as one
            # synthetic span anchored at the walk phase's start.
            recorder.add_span(
                "graph-build",
                wall.start,
                graph.build_seconds,
                test=result.test.name,
            )

    def verify_suite(
        self,
        tests: List[LitmusTest],
        memory_variant: str = "fixed",
        jobs: int = 1,
        progress: Optional[Callable[[TestVerification], None]] = None,
        checkpoint: bool = True,
    ) -> Dict[str, TestVerification]:
        """Verify a suite; returns results keyed by test name, in suite
        order.  ``jobs > 1`` fans tests out over a process pool (tests
        are fully independent).  ``progress``, when given, is called
        with each :class:`TestVerification` as it completes — in
        completion order for parallel runs.

        With a cache attached, cached verdicts are fetched in the
        parent before any worker is spawned (a fully-warm run never
        touches the process pool), and — unless ``checkpoint=False`` —
        a resume manifest is rewritten after every completed test, so
        an interrupted campaign restarts from the last finished unit.
        """
        seen = set()
        for test in tests:
            if test.name in seen:
                raise ReproError(
                    f"duplicate test name {test.name!r} in suite: results "
                    "are keyed by name, a duplicate would be dropped"
                )
            seen.add(test.name)
        manifest = None
        if self.cache is not None and checkpoint:
            from repro.cache import keys as cache_keys

            campaign = cache_keys.campaign_key(
                "suite",
                {
                    "memory_variant": memory_variant,
                    "observe": self.observe,
                    "verdicts": [
                        self.verdict_key(test, memory_variant)
                        for test in tests
                    ],
                },
            )
            manifest = self.cache.checkpoint(campaign, total=len(tests))
        results: Dict[str, TestVerification] = {}
        pending = list(tests)
        if jobs > 1 and len(tests) > 1:
            try:
                pickle.dumps(self)
            except Exception as exc:
                raise ReproError(
                    "verify_suite(jobs>1) needs a picklable RTLCheck; "
                    "custom factories must be module-level callables "
                    f"({exc})"
                ) from exc
            if self.cache is not None:
                # Parent-side prefetch: verdict-tier hits skip process
                # pool dispatch entirely.
                pending = []
                for test in tests:
                    cached = self.cache.load_verdict(
                        self.verdict_key(test, memory_variant),
                        observe=self.observe,
                        coverage=self.coverage,
                        record_miss=False,
                    )
                    if cached is None:
                        pending.append(test)
                        continue
                    results[test.name] = cached
                    if manifest is not None:
                        manifest.mark_done(test.name)
                    if progress is not None:
                        progress(cached)
        if jobs > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {
                    pool.submit(
                        _verify_suite_worker, self, test, memory_variant
                    ): test.name
                    for test in pending
                }
                for future in as_completed(futures):
                    result, stats = future.result()
                    results[futures[future]] = result
                    if self.cache is not None and stats:
                        self.cache.stats.merge(stats)
                    if manifest is not None:
                        manifest.mark_done(futures[future])
                    if progress is not None:
                        progress(result)
        else:
            for test in pending:
                result = self.verify_test(test, memory_variant)
                results[test.name] = result
                if manifest is not None:
                    manifest.mark_done(test.name)
                if progress is not None:
                    progress(result)
        if manifest is not None:
            manifest.finish()
        return {test.name: results[test.name] for test in tests}
