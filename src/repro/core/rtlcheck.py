"""The end-to-end RTLCheck flow (paper Figure 7).

Inputs: a µspec microarchitecture model, an RTL design (Multi-V-scale),
a litmus test, and the program/node mapping functions.  RTLCheck

1. generates temporal SV assumptions constraining the verifier to the
   litmus test's executions (Assumption Generator, §4.1),
2. generates temporal SV assertions checking each µspec axiom with
   outcome-aware translation (Assertion Generator, §4.2–4.4),
3. hands both to the property verifier, which first hunts covering
   traces for the assumptions (an unreachable final-value assumption
   verifies the test outright) and then proves each assertion,
   reporting complete proofs, bounded proofs, or counterexamples.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.assertions import AssertionGenerator
from repro.core.results import PropertyResult, TestVerification
from repro.errors import ReproError
from repro.litmus.test import CompiledTest, LitmusTest, compile_test
from repro.mapping.node_mapping import MultiVScaleNodeMapping
from repro.mapping.program_mapping import MultiVScaleProgramMapping
from repro.sva.ast import Directive
from repro.sva.emit import emit_sva_file
from repro.sva.monitor import AssumptionChecker, PropertyMonitor
from repro.uspec.ast import Model
from repro.uspec.model import load_model, multi_vscale_model
from repro.verifier.config import (
    EXPLORER_BUDGET,
    FULL_PROOF,
    USE_REACH_GRAPH,
    VerifierConfig,
)
from repro.verifier.engines import EngineModel
from repro.verifier.explorer import Explorer
from repro.verifier.reach import GraphExplorer
from repro.vscale.soc import MultiVScale


def _multi_vscale_design_factory(compiled, variant):
    """Default design factory (module-level so RTLCheck pickles for
    multi-process suite verification)."""
    return MultiVScale(compiled, variant)


def _multi_vscale_tso_design_factory(compiled, variant):
    """Design factory for :meth:`RTLCheck.for_tso` (module-level so the
    TSO-configured RTLCheck pickles too)."""
    from repro.vscale.tso import MultiVScaleTSO

    # "buggy" selects the seeded LIFO-drain store buffer.
    drain = "lifo" if variant == "buggy" else "fifo"
    return MultiVScaleTSO(compiled, drain_order=drain)


def _verify_suite_worker(rtlcheck: "RTLCheck", test, memory_variant):
    """Module-level task body for the suite process pool."""
    return rtlcheck.verify_test(test, memory_variant)


@dataclass
class GeneratedProperties:
    """Output of RTLCheck's generation phase for one litmus test."""

    compiled: CompiledTest
    assumptions: List[Directive]
    assertions: List[Directive]
    sva_text: str
    generation_seconds: float


class RTLCheck:
    """RTLCheck for the Multi-V-scale processors.

    ``model`` defaults to the bundled Multi-V-scale µspec model;
    ``config`` picks the verifier engine configuration (Table 1).
    The design and mapping factories default to the paper's SC case
    study; :meth:`for_tso` wires up the store-buffer (x86-TSO) variant
    instead — RTLCheck itself is model- and design-agnostic (Figure 7).
    """

    def __init__(
        self,
        model: Optional[Model] = None,
        config: VerifierConfig = FULL_PROOF,
        design_factory=None,
        node_mapping_factory=MultiVScaleNodeMapping,
        program_mapping_factory=MultiVScaleProgramMapping,
        use_reach_graph: bool = USE_REACH_GRAPH,
    ):
        self.model = model or multi_vscale_model()
        self.config = config
        self.design_factory = design_factory or _multi_vscale_design_factory
        self.node_mapping_factory = node_mapping_factory
        self.program_mapping_factory = program_mapping_factory
        self.use_reach_graph = use_reach_graph

    @classmethod
    def for_tso(cls, config: VerifierConfig = FULL_PROOF) -> "RTLCheck":
        """RTLCheck configured for Multi-V-scale-TSO: the store-buffer
        design, its µspec model, and the Memory-stage node mapping."""
        from repro.mapping.tso_mapping import MultiVScaleTsoNodeMapping

        return cls(
            model=load_model("multi_vscale_tso"),
            config=config,
            design_factory=_multi_vscale_tso_design_factory,
            node_mapping_factory=MultiVScaleTsoNodeMapping,
        )

    # ------------------------------------------------------------------
    # Generation (takes just seconds per test, §7 intro)
    # ------------------------------------------------------------------

    def generate(self, test: LitmusTest) -> GeneratedProperties:
        """Run the Assumption and Assertion Generators for ``test``."""
        start = time.perf_counter()
        compiled = compile_test(test)
        program_mapping = self.program_mapping_factory(compiled)
        node_mapping = self.node_mapping_factory(compiled)
        assumptions = program_mapping.all_assumptions()
        assertions = AssertionGenerator(
            model=self.model, compiled=compiled, node_mapping=node_mapping
        ).generate()
        sva_text = emit_sva_file(test.name, assumptions + assertions)
        elapsed = time.perf_counter() - start
        return GeneratedProperties(
            compiled=compiled,
            assumptions=assumptions,
            assertions=assertions,
            sva_text=sva_text,
            generation_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify_test(
        self,
        test: LitmusTest,
        memory_variant: str = "fixed",
        skip_cover_shortcut: bool = False,
    ) -> TestVerification:
        """Generate properties for ``test`` and verify them against the
        chosen Multi-V-scale memory variant."""
        wall_start = time.perf_counter()
        generated = self.generate(test)
        design = self.design_factory(generated.compiled, memory_variant)
        checker = AssumptionChecker(generated.assumptions)
        if self.use_reach_graph:
            # The design's assumption-constrained state space is explored
            # once into a shared graph; the cover run and every property
            # walk below replay it without re-simulating.
            explorer = GraphExplorer(design, checker)
        else:
            explorer = Explorer(design, checker)
        engine_model = EngineModel(self.config)

        # Phase 1: covering traces for the assumptions (§4.1).
        cover = explorer.cover_assumptions(EXPLORER_BUDGET)
        cover_hours = engine_model.cover_hours(cover)
        cover_conclusive = engine_model.cover_conclusive(cover)
        final_unreachable = (
            cover.exhausted and "final_values" not in cover.fired_assumptions
        )
        verified_by_cover = (
            not skip_cover_shortcut and cover_conclusive and final_unreachable
        )

        result = TestVerification(
            test=test,
            memory_variant=memory_variant,
            config_name=self.config.name,
            assumptions=generated.assumptions,
            assertions=generated.assertions,
            sva_text=generated.sva_text,
            generation_seconds=generated.generation_seconds,
            cover=cover,
            cover_hours=cover_hours,
            verified_by_cover=verified_by_cover,
            cover_seconds=cover.seconds,
        )
        if verified_by_cover:
            self._record_graph_stats(result, explorer)
            result.wall_seconds = time.perf_counter() - wall_start
            return result

        # Phase 2: prove each generated assertion.
        proof_start = time.perf_counter()
        for directive in generated.assertions:
            monitor = PropertyMonitor(directive)
            ground_truth = explorer.check_property(monitor, EXPLORER_BUDGET)
            verdict = engine_model.judge_property(ground_truth, directive.name)
            result.properties.append(
                PropertyResult(
                    name=directive.name,
                    verdict=verdict,
                    ground_truth=ground_truth,
                    check_seconds=ground_truth.seconds,
                )
            )
        result.proof_seconds = time.perf_counter() - proof_start
        self._record_graph_stats(result, explorer)
        result.wall_seconds = time.perf_counter() - wall_start
        return result

    @staticmethod
    def _record_graph_stats(result: TestVerification, explorer) -> None:
        graph = getattr(explorer, "graph", None)
        if graph is None:
            return
        result.graph_build_seconds = graph.build_seconds
        result.graph_states = graph.num_nodes
        result.graph_transitions = graph.sim_transitions

    def verify_suite(
        self,
        tests: List[LitmusTest],
        memory_variant: str = "fixed",
        jobs: int = 1,
    ) -> Dict[str, TestVerification]:
        """Verify a suite; returns results keyed by test name, in suite
        order.  ``jobs > 1`` fans tests out over a process pool (tests
        are fully independent)."""
        seen = set()
        for test in tests:
            if test.name in seen:
                raise ReproError(
                    f"duplicate test name {test.name!r} in suite: results "
                    "are keyed by name, a duplicate would be dropped"
                )
            seen.add(test.name)
        if jobs > 1 and len(tests) > 1:
            try:
                pickle.dumps(self)
            except Exception as exc:
                raise ReproError(
                    "verify_suite(jobs>1) needs a picklable RTLCheck; "
                    "custom factories must be module-level callables "
                    f"({exc})"
                ) from exc
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = [
                    pool.submit(_verify_suite_worker, self, test, memory_variant)
                    for test in tests
                ]
                return {
                    test.name: future.result()
                    for test, future in zip(tests, futures)
                }
        return {
            test.name: self.verify_test(test, memory_variant) for test in tests
        }
