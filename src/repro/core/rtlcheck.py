"""The end-to-end RTLCheck flow (paper Figure 7).

Inputs: a µspec microarchitecture model, an RTL design (Multi-V-scale),
a litmus test, and the program/node mapping functions.  RTLCheck

1. generates temporal SV assumptions constraining the verifier to the
   litmus test's executions (Assumption Generator, §4.1),
2. generates temporal SV assertions checking each µspec axiom with
   outcome-aware translation (Assertion Generator, §4.2–4.4),
3. hands both to the property verifier, which first hunts covering
   traces for the assumptions (an unreachable final-value assumption
   verifies the test outright) and then proves each assertion,
   reporting complete proofs, bounded proofs, or counterexamples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.assertions import AssertionGenerator
from repro.core.results import PropertyResult, TestVerification
from repro.litmus.test import CompiledTest, LitmusTest, compile_test
from repro.mapping.node_mapping import MultiVScaleNodeMapping
from repro.mapping.program_mapping import MultiVScaleProgramMapping
from repro.sva.ast import Directive
from repro.sva.emit import emit_sva_file
from repro.sva.monitor import AssumptionChecker, PropertyMonitor
from repro.uspec.ast import Model
from repro.uspec.model import load_model, multi_vscale_model
from repro.verifier.config import EXPLORER_BUDGET, FULL_PROOF, VerifierConfig
from repro.verifier.engines import EngineModel
from repro.verifier.explorer import Explorer
from repro.vscale.soc import MultiVScale


@dataclass
class GeneratedProperties:
    """Output of RTLCheck's generation phase for one litmus test."""

    compiled: CompiledTest
    assumptions: List[Directive]
    assertions: List[Directive]
    sva_text: str
    generation_seconds: float


class RTLCheck:
    """RTLCheck for the Multi-V-scale processors.

    ``model`` defaults to the bundled Multi-V-scale µspec model;
    ``config`` picks the verifier engine configuration (Table 1).
    The design and mapping factories default to the paper's SC case
    study; :meth:`for_tso` wires up the store-buffer (x86-TSO) variant
    instead — RTLCheck itself is model- and design-agnostic (Figure 7).
    """

    def __init__(
        self,
        model: Optional[Model] = None,
        config: VerifierConfig = FULL_PROOF,
        design_factory=None,
        node_mapping_factory=MultiVScaleNodeMapping,
        program_mapping_factory=MultiVScaleProgramMapping,
    ):
        self.model = model or multi_vscale_model()
        self.config = config
        self.design_factory = design_factory or (
            lambda compiled, variant: MultiVScale(compiled, variant)
        )
        self.node_mapping_factory = node_mapping_factory
        self.program_mapping_factory = program_mapping_factory

    @classmethod
    def for_tso(cls, config: VerifierConfig = FULL_PROOF) -> "RTLCheck":
        """RTLCheck configured for Multi-V-scale-TSO: the store-buffer
        design, its µspec model, and the Memory-stage node mapping."""
        from repro.mapping.tso_mapping import MultiVScaleTsoNodeMapping
        from repro.vscale.tso import MultiVScaleTSO

        def factory(compiled, variant):
            # "buggy" selects the seeded LIFO-drain store buffer.
            drain = "lifo" if variant == "buggy" else "fifo"
            return MultiVScaleTSO(compiled, drain_order=drain)

        return cls(
            model=load_model("multi_vscale_tso"),
            config=config,
            design_factory=factory,
            node_mapping_factory=MultiVScaleTsoNodeMapping,
        )

    # ------------------------------------------------------------------
    # Generation (takes just seconds per test, §7 intro)
    # ------------------------------------------------------------------

    def generate(self, test: LitmusTest) -> GeneratedProperties:
        """Run the Assumption and Assertion Generators for ``test``."""
        start = time.perf_counter()
        compiled = compile_test(test)
        program_mapping = self.program_mapping_factory(compiled)
        node_mapping = self.node_mapping_factory(compiled)
        assumptions = program_mapping.all_assumptions()
        assertions = AssertionGenerator(
            model=self.model, compiled=compiled, node_mapping=node_mapping
        ).generate()
        sva_text = emit_sva_file(test.name, assumptions + assertions)
        elapsed = time.perf_counter() - start
        return GeneratedProperties(
            compiled=compiled,
            assumptions=assumptions,
            assertions=assertions,
            sva_text=sva_text,
            generation_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify_test(
        self,
        test: LitmusTest,
        memory_variant: str = "fixed",
        skip_cover_shortcut: bool = False,
    ) -> TestVerification:
        """Generate properties for ``test`` and verify them against the
        chosen Multi-V-scale memory variant."""
        wall_start = time.perf_counter()
        generated = self.generate(test)
        design = self.design_factory(generated.compiled, memory_variant)
        checker = AssumptionChecker(generated.assumptions)
        explorer = Explorer(design, checker)
        engine_model = EngineModel(self.config)

        # Phase 1: covering traces for the assumptions (§4.1).
        cover = explorer.cover_assumptions(EXPLORER_BUDGET)
        cover_hours = engine_model.cover_hours(cover)
        cover_conclusive = engine_model.cover_conclusive(cover)
        final_unreachable = (
            cover.exhausted and "final_values" not in cover.fired_assumptions
        )
        verified_by_cover = (
            not skip_cover_shortcut and cover_conclusive and final_unreachable
        )

        result = TestVerification(
            test=test,
            memory_variant=memory_variant,
            config_name=self.config.name,
            assumptions=generated.assumptions,
            assertions=generated.assertions,
            sva_text=generated.sva_text,
            generation_seconds=generated.generation_seconds,
            cover=cover,
            cover_hours=cover_hours,
            verified_by_cover=verified_by_cover,
        )
        if verified_by_cover:
            result.wall_seconds = time.perf_counter() - wall_start
            return result

        # Phase 2: prove each generated assertion.
        for directive in generated.assertions:
            monitor = PropertyMonitor(directive)
            ground_truth = explorer.check_property(monitor, EXPLORER_BUDGET)
            verdict = engine_model.judge_property(ground_truth, directive.name)
            result.properties.append(
                PropertyResult(
                    name=directive.name,
                    verdict=verdict,
                    ground_truth=ground_truth,
                )
            )
        result.wall_seconds = time.perf_counter() - wall_start
        return result

    def verify_suite(
        self,
        tests: List[LitmusTest],
        memory_variant: str = "fixed",
    ) -> Dict[str, TestVerification]:
        """Verify a suite; returns results keyed by test name."""
        return {
            test.name: self.verify_test(test, memory_variant) for test in tests
        }
