"""Result types for the end-to-end RTLCheck flow.

Both result classes serialize to JSON-safe dicts (``to_dict`` /
``from_dict``) versioned by :data:`repro.obs.report.SCHEMA_VERSION`;
:mod:`repro.obs.report` assembles them into suite-level run reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.litmus.test import LitmusTest
from repro.obs.report import SCHEMA_VERSION
from repro.rtl.design import Frame
from repro.sva.ast import Directive, PConst
from repro.verifier.engines import EngineVerdict
from repro.verifier.explorer import ExplorationResult


@dataclass
class PropertyResult:
    """One assertion's outcome under the configured verifier."""

    name: str
    verdict: EngineVerdict
    ground_truth: ExplorationResult
    #: Wall-clock seconds the explorer spent on this property.
    check_seconds: float = 0.0

    @property
    def status(self) -> str:
        return self.verdict.status

    @property
    def proven(self) -> bool:
        return self.verdict.proven

    @property
    def failed(self) -> bool:
        return self.verdict.failed

    @property
    def counterexample(self) -> Optional[List[Tuple[Dict[str, int], Frame]]]:
        return self.ground_truth.counterexample

    # -- serialization (run reports) -----------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "verdict": {
                "status": self.verdict.status,
                "bound": self.verdict.bound,
                "engine": self.verdict.engine,
                "modeled_hours": self.verdict.modeled_hours,
                "transitions": self.verdict.transitions,
            },
            "ground_truth": self.ground_truth.to_dict(),
            "check_seconds": self.check_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PropertyResult":
        verdict = data["verdict"]
        return cls(
            name=data["name"],
            verdict=EngineVerdict(
                status=verdict["status"],
                bound=verdict["bound"],
                engine=verdict["engine"],
                modeled_hours=verdict["modeled_hours"],
                transitions=verdict["transitions"],
            ),
            ground_truth=ExplorationResult.from_dict(data["ground_truth"]),
            check_seconds=data["check_seconds"],
        )


@dataclass
class TestVerification:
    """Everything RTLCheck produced and concluded for one litmus test."""

    __test__ = False  # "Test..." is the domain term, not a pytest class

    test: LitmusTest
    memory_variant: str
    config_name: str
    assumptions: List[Directive]
    assertions: List[Directive]
    sva_text: str
    generation_seconds: float
    cover: ExplorationResult
    cover_hours: float
    verified_by_cover: bool
    properties: List[PropertyResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    # -- phase profiling (wall-clock, not modeled hours) ----------------
    #: Covering-trace phase seconds (includes any graph building the
    #: cover walk triggered).
    cover_seconds: float = 0.0
    #: Property-check phase seconds (all assertions).
    proof_seconds: float = 0.0
    #: Seconds spent simulating design transitions into the shared
    #: reachability graph (0.0 under the per-property explorer).
    graph_build_seconds: float = 0.0
    #: Design states discovered in the shared graph (0 under the
    #: per-property explorer).
    graph_states: int = 0
    #: Design transitions actually simulated — the cache-miss work all
    #: property walks shared (0 under the per-property explorer).
    graph_transitions: int = 0
    #: Observability snapshot (:meth:`repro.obs.TraceRecorder.to_state`)
    #: when the run was observed; ``None`` otherwise.  Picklable, so it
    #: rides back from suite worker processes for parent-side merging.
    obs: Optional[Dict[str, Any]] = field(default=None, repr=False)

    # -- aggregate views -------------------------------------------------

    @property
    def counterexamples(self) -> List[PropertyResult]:
        return [p for p in self.properties if p.failed]

    @property
    def bug_found(self) -> bool:
        return bool(self.counterexamples)

    @property
    def verified(self) -> bool:
        """Verified = discharged by unreachable covering trace, or no
        property produced a counterexample."""
        if self.bug_found:
            return False
        return True

    @property
    def proven_count(self) -> int:
        return sum(1 for p in self.properties if p.proven)

    @property
    def bounded_count(self) -> int:
        return sum(1 for p in self.properties if p.status == "bounded")

    @property
    def proven_fraction(self) -> float:
        if not self.properties:
            return 1.0
        return self.proven_count / len(self.properties)

    @property
    def bounded_bounds(self) -> List[int]:
        return [
            p.verdict.bound
            for p in self.properties
            if p.status == "bounded" and p.verdict.bound is not None
        ]

    @property
    def modeled_hours(self) -> float:
        """Modeled runtime-to-verification (the Figure 13 metric): the
        cover phase, plus — when the cover run was not conclusive — the
        proof phase (its full allotment if any property stayed bounded,
        else the slowest property's proof time)."""
        if self.verified_by_cover:
            return self.cover_hours
        if not self.properties:
            return self.cover_hours
        if any(p.status == "bounded" for p in self.properties):
            from repro.verifier.config import PROOF_PHASE_HOURS

            return self.cover_hours + PROOF_PHASE_HOURS
        proof = max(p.verdict.modeled_hours for p in self.properties)
        return self.cover_hours + proof

    def summary(self) -> str:
        if self.bug_found:
            names = ", ".join(p.name for p in self.counterexamples[:3])
            return (
                f"{self.test.name} [{self.memory_variant}]: COUNTEREXAMPLE "
                f"({len(self.counterexamples)} failing properties, e.g. {names})"
            )
        if self.verified_by_cover:
            return (
                f"{self.test.name} [{self.memory_variant}]: verified — final-value "
                f"assumption unreachable ({self.cover_hours:.2f} modeled hours)"
            )
        total = len(self.properties)
        return (
            f"{self.test.name} [{self.memory_variant}]: verified — "
            f"{self.proven_count}/{total} properties fully proven, "
            f"{self.bounded_count} bounded ({self.modeled_hours:.1f} modeled hours)"
        )

    # -- serialization (run reports) -----------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Schema-versioned JSON-safe snapshot of this verification.

        Directives are recorded by name (their SVA text is in
        ``sva_text``, regenerable from the test); everything
        quantitative — verdicts, bounds, timings, graph counters,
        observability counters, and the Figure 13/14 aggregates —
        round-trips exactly through :meth:`from_dict`.
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "test": self.test.name,
            "memory_variant": self.memory_variant,
            "config_name": self.config_name,
            "assumptions": [d.name for d in self.assumptions],
            "assertions": [d.name for d in self.assertions],
            "generation_seconds": self.generation_seconds,
            "cover": self.cover.to_dict(),
            "cover_hours": self.cover_hours,
            "verified_by_cover": self.verified_by_cover,
            "properties": [p.to_dict() for p in self.properties],
            "wall_seconds": self.wall_seconds,
            "cover_seconds": self.cover_seconds,
            "proof_seconds": self.proof_seconds,
            "graph_build_seconds": self.graph_build_seconds,
            "graph_states": self.graph_states,
            "graph_transitions": self.graph_transitions,
            # Derived views, denormalized so report consumers need no
            # reimplementation of the aggregation rules:
            "verified": self.verified,
            "bug_found": self.bug_found,
            "proven_count": self.proven_count,
            "bounded_count": self.bounded_count,
            "proven_fraction": self.proven_fraction,
            "bounded_bounds": list(self.bounded_bounds),
            "modeled_hours": self.modeled_hours,
            "counters": dict((self.obs or {}).get("counters", {})),
            "gauges": dict((self.obs or {}).get("gauges", {})),
        }

    @classmethod
    def from_dict(
        cls, data: Dict[str, Any], test: Optional[LitmusTest] = None
    ) -> "TestVerification":
        """Rehydrate a :meth:`to_dict` snapshot.

        The litmus test is looked up by name in the bundled suite
        unless the caller supplies ``test`` (the verification cache
        stores the full test alongside the snapshot, so cached fuzz
        verdicts rehydrate too); directives come back as named stubs
        (their properties are not serialized), so the result supports
        every quantitative view — ``modeled_hours``,
        ``proven_fraction``, ``summary()`` — but not re-verification.
        """
        from repro.litmus.suite import get_test

        def stub(kind: str, name: str) -> Directive:
            return Directive(kind=kind, name=name, prop=PConst(True))

        result = cls(
            test=test if test is not None else get_test(data["test"]),
            memory_variant=data["memory_variant"],
            config_name=data["config_name"],
            assumptions=[stub("assume", n) for n in data["assumptions"]],
            assertions=[stub("assert", n) for n in data["assertions"]],
            sva_text="",
            generation_seconds=data["generation_seconds"],
            cover=ExplorationResult.from_dict(data["cover"]),
            cover_hours=data["cover_hours"],
            verified_by_cover=data["verified_by_cover"],
            properties=[PropertyResult.from_dict(p) for p in data["properties"]],
            wall_seconds=data["wall_seconds"],
            cover_seconds=data["cover_seconds"],
            proof_seconds=data["proof_seconds"],
            graph_build_seconds=data["graph_build_seconds"],
            graph_states=data["graph_states"],
            graph_transitions=data["graph_transitions"],
        )
        if data.get("counters") or data.get("gauges"):
            result.obs = {
                "events": [],
                "counters": dict(data.get("counters", {})),
                "gauges": dict(data.get("gauges", {})),
            }
        return result
