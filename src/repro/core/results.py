"""Result types for the end-to-end RTLCheck flow."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.litmus.test import LitmusTest
from repro.rtl.design import Frame
from repro.sva.ast import Directive
from repro.verifier.engines import EngineVerdict
from repro.verifier.explorer import ExplorationResult


@dataclass
class PropertyResult:
    """One assertion's outcome under the configured verifier."""

    name: str
    verdict: EngineVerdict
    ground_truth: ExplorationResult
    #: Wall-clock seconds the explorer spent on this property.
    check_seconds: float = 0.0

    @property
    def status(self) -> str:
        return self.verdict.status

    @property
    def proven(self) -> bool:
        return self.verdict.proven

    @property
    def failed(self) -> bool:
        return self.verdict.failed

    @property
    def counterexample(self) -> Optional[List[Tuple[Dict[str, int], Frame]]]:
        return self.ground_truth.counterexample


@dataclass
class TestVerification:
    """Everything RTLCheck produced and concluded for one litmus test."""

    __test__ = False  # "Test..." is the domain term, not a pytest class

    test: LitmusTest
    memory_variant: str
    config_name: str
    assumptions: List[Directive]
    assertions: List[Directive]
    sva_text: str
    generation_seconds: float
    cover: ExplorationResult
    cover_hours: float
    verified_by_cover: bool
    properties: List[PropertyResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    # -- phase profiling (wall-clock, not modeled hours) ----------------
    #: Covering-trace phase seconds (includes any graph building the
    #: cover walk triggered).
    cover_seconds: float = 0.0
    #: Property-check phase seconds (all assertions).
    proof_seconds: float = 0.0
    #: Seconds spent simulating design transitions into the shared
    #: reachability graph (0.0 under the per-property explorer).
    graph_build_seconds: float = 0.0
    #: Design states discovered in the shared graph (0 under the
    #: per-property explorer).
    graph_states: int = 0
    #: Design transitions actually simulated — the cache-miss work all
    #: property walks shared (0 under the per-property explorer).
    graph_transitions: int = 0

    # -- aggregate views -------------------------------------------------

    @property
    def counterexamples(self) -> List[PropertyResult]:
        return [p for p in self.properties if p.failed]

    @property
    def bug_found(self) -> bool:
        return bool(self.counterexamples)

    @property
    def verified(self) -> bool:
        """Verified = discharged by unreachable covering trace, or no
        property produced a counterexample."""
        if self.bug_found:
            return False
        return True

    @property
    def proven_count(self) -> int:
        return sum(1 for p in self.properties if p.proven)

    @property
    def bounded_count(self) -> int:
        return sum(1 for p in self.properties if p.status == "bounded")

    @property
    def proven_fraction(self) -> float:
        if not self.properties:
            return 1.0
        return self.proven_count / len(self.properties)

    @property
    def bounded_bounds(self) -> List[int]:
        return [
            p.verdict.bound
            for p in self.properties
            if p.status == "bounded" and p.verdict.bound is not None
        ]

    @property
    def modeled_hours(self) -> float:
        """Modeled runtime-to-verification (the Figure 13 metric): the
        cover phase, plus — when the cover run was not conclusive — the
        proof phase (its full allotment if any property stayed bounded,
        else the slowest property's proof time)."""
        if self.verified_by_cover:
            return self.cover_hours
        if not self.properties:
            return self.cover_hours
        if any(p.status == "bounded" for p in self.properties):
            from repro.verifier.config import PROOF_PHASE_HOURS

            return self.cover_hours + PROOF_PHASE_HOURS
        proof = max(p.verdict.modeled_hours for p in self.properties)
        return self.cover_hours + proof

    def summary(self) -> str:
        if self.bug_found:
            names = ", ".join(p.name for p in self.counterexamples[:3])
            return (
                f"{self.test.name} [{self.memory_variant}]: COUNTEREXAMPLE "
                f"({len(self.counterexamples)} failing properties, e.g. {names})"
            )
        if self.verified_by_cover:
            return (
                f"{self.test.name} [{self.memory_variant}]: verified — final-value "
                f"assumption unreachable ({self.cover_hours:.2f} modeled hours)"
            )
        total = len(self.properties)
        return (
            f"{self.test.name} [{self.memory_variant}]: verified — "
            f"{self.proven_count}/{total} properties fully proven, "
            f"{self.bounded_count} bounded ({self.modeled_hours:.1f} modeled hours)"
        )
