"""Layout and encoding constants of the Multi-V-scale SoC.

The address map mirrors the paper's Figure 8: word 0 is reserved (PC 0
doubles as the pipeline-bubble sentinel in ``PC_WB``), each core's
read-only instruction words follow, and litmus data words sit above
(:data:`repro.litmus.test.DATA_BASE_WORD`).
"""

from repro.litmus.test import (  # noqa: F401  (re-exported)
    DATA_BASE_WORD,
    DATA_MEM_WORDS,
    IMEM_WORDS_PER_CORE,
)

#: Cores instantiated in the Multi-V-scale SoC (paper Figure 1).
NUM_CORES = 4

#: dmem_type encodings used in pipeline registers and trace frames.
DMEM_NONE = 0
DMEM_LOAD = 1
DMEM_STORE = 2


def imem_base_word(core: int) -> int:
    """First instruction-memory word of ``core`` (classic geometry).

    Long-program compiles use an extended per-test geometry; query
    :meth:`repro.litmus.test.CompiledTest.imem_base_word` when a
    compiled test is in hand.
    """
    return 1 + IMEM_WORDS_PER_CORE * core


def core_base_pc(core: int) -> int:
    """Reset PC of ``core`` (classic geometry; see :func:`imem_base_word`)."""
    return 4 * imem_base_word(core)


#: First / one-past-last data words (re-exported for convenience).
DATA_FIRST_WORD = DATA_BASE_WORD
DATA_LAST_WORD = DATA_MEM_WORDS

assert imem_base_word(NUM_CORES) <= DATA_FIRST_WORD, "imem overlaps data"
