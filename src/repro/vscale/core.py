"""One V-scale core: a three-stage in-order pipeline (IF, DX, WB).

Faithful to the structure the paper relies on (Figures 1, 3c, 6, 11):

* IF fetches from the core's read-only instruction words;
* DX decodes, reads registers, computes the memory address, and — for
  loads/stores — initiates the memory transaction through the arbiter
  (the *address phase*); a core whose DX holds a memory op stalls in DX
  until the arbiter grants it;
* WB is the *data phase*: a load receives its data from memory, a store
  presents ``store_data_WB`` to memory (clocked in on the next edge);
  ``PC_WB`` is zeroed on bubbles exactly as in Figure 3c's Verilog.

The core itself is passive: the SoC (:mod:`repro.vscale.soc`)
orchestrates the combinational ordering between cores, arbiter, and
memory, then calls :meth:`VScaleCore.tick`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.errors import RtlError
from repro.isa import Addi, Halt, Instruction, Lui, Lw, Nop, Sw, decode
from repro.vscale.params import DMEM_LOAD, DMEM_NONE, DMEM_STORE, core_base_pc

_DECODE_CACHE: Dict[int, Instruction] = {}


def cached_decode(word: int) -> Instruction:
    instr = _DECODE_CACHE.get(word)
    if instr is None:
        instr = decode(word)
        _DECODE_CACHE[word] = instr
    return instr


class DxView:
    """Combinationally decoded view of the instruction currently in DX."""

    __slots__ = (
        "valid", "instr", "pc", "is_mem", "is_store", "is_halt",
        "mem_addr", "store_data", "wb_type", "load_dest",
        "writes_reg", "alu_out",
    )

    def __init__(self):
        self.valid = False
        self.instr: Optional[Instruction] = None
        self.pc = 0
        self.is_mem = False
        self.is_store = False
        self.is_halt = False
        self.mem_addr = 0
        self.store_data = 0
        self.wb_type = DMEM_NONE
        self.load_dest = 0
        self.writes_reg: Optional[int] = None
        self.alu_out = 0


class VScaleCore:
    """Architectural + pipeline state of one core."""

    def __init__(
        self, core_id: int, imem: List[int], base_pc: Optional[int] = None
    ):
        self.core_id = core_id
        self.imem = list(imem)
        # Classic geometry by default; extended-geometry compiles
        # (difftest long programs) pass their own reset PC.
        self.base_pc = core_base_pc(core_id) if base_pc is None else base_pc
        self.reset()

    def reset(self, reg_init: Optional[Dict[int, int]] = None) -> None:
        self.pc_if = self.base_pc
        self.fetch_stop = False
        # DX stage registers.
        self.dx_valid = False
        self.dx_word = 0
        self.dx_pc = 0
        # WB stage registers.
        self.wb_valid = False
        self.wb_pc = 0
        self.wb_type = DMEM_NONE
        self.wb_store_data = 0
        self.wb_load_dest = 0
        self.wb_is_halt = False
        self.wb_writes_reg: Optional[int] = None
        self.wb_alu = 0
        self.wb_mem_addr = 0
        self.halted = False
        self.regs = [0] * 32
        for reg, value in (reg_init or {}).items():
            if reg != 0:
                self.regs[reg] = value

    # ------------------------------------------------------------------
    # Combinational phase
    # ------------------------------------------------------------------

    def dx_view(self) -> DxView:
        """Decode the DX stage for this cycle."""
        view = DxView()
        if not self.dx_valid:
            return view
        instr = cached_decode(self.dx_word)
        view.valid = True
        view.instr = instr
        view.pc = self.dx_pc
        if isinstance(instr, Lw):
            view.is_mem = True
            view.wb_type = DMEM_LOAD
            view.mem_addr = (self.regs[instr.rs1] + instr.imm) & 0xFFFFFFFF
            view.load_dest = instr.rd
        elif isinstance(instr, Sw):
            view.is_mem = True
            view.is_store = True
            view.wb_type = DMEM_STORE
            view.mem_addr = (self.regs[instr.rs1] + instr.imm) & 0xFFFFFFFF
            view.store_data = self.regs[instr.rs2]
        elif isinstance(instr, Halt):
            view.is_halt = True
        elif isinstance(instr, Addi):
            view.writes_reg = instr.rd
            view.alu_out = (self.regs[instr.rs1] + instr.imm) & 0xFFFFFFFF
        elif isinstance(instr, Lui):
            view.writes_reg = instr.rd
            view.alu_out = (instr.imm20 << 12) & 0xFFFFFFFF
        # Nop / Fence: nothing to do in the datapath.
        return view

    def fetch_word(self) -> Optional[int]:
        """The instruction IF presents this cycle, or None past the end."""
        index = (self.pc_if - self.base_pc) >> 2
        if 0 <= index < len(self.imem):
            return self.imem[index]
        return None

    # ------------------------------------------------------------------
    # Sequential phase
    # ------------------------------------------------------------------

    def tick(self, view: DxView, stall_dx: bool, load_data: int) -> None:
        """Commit one clock edge.

        ``view`` is this cycle's decoded DX; ``load_data`` is the value
        memory returned to a load completing WB this cycle.
        """
        # Writeback into the register file (end of the WB cycle).
        if self.wb_valid:
            if self.wb_type == DMEM_LOAD and self.wb_load_dest != 0:
                self.regs[self.wb_load_dest] = load_data
            elif self.wb_writes_reg:
                self.regs[self.wb_writes_reg] = self.wb_alu
            if self.wb_is_halt:
                self.halted = True

        # DX -> WB (bubble on stall_DX, as in Figure 3c).
        if stall_dx or not view.valid:
            self.wb_valid = False
            self.wb_pc = 0
            self.wb_type = DMEM_NONE
            self.wb_store_data = 0
            self.wb_load_dest = 0
            self.wb_is_halt = False
            self.wb_writes_reg = None
            self.wb_alu = 0
            self.wb_mem_addr = 0
        else:
            self.wb_valid = True
            self.wb_pc = view.pc
            self.wb_type = view.wb_type
            # rs2_data_bypassed: the store data captured entering WB; the
            # register file was just updated above, so a load->store
            # dependency forwards naturally.
            if view.is_store:
                instr = view.instr
                assert isinstance(instr, Sw)
                self.wb_store_data = self.regs[instr.rs2]
            else:
                self.wb_store_data = 0
            self.wb_load_dest = view.load_dest
            self.wb_is_halt = view.is_halt
            self.wb_writes_reg = view.writes_reg
            self.wb_alu = view.alu_out
            self.wb_mem_addr = view.mem_addr if view.is_mem else 0

        # IF -> DX.
        if not stall_dx:
            if view.valid and view.is_halt:
                # Halt reached DX: stop fetching; DX drains to a bubble.
                self.fetch_stop = True
            if self.fetch_stop:
                self.dx_valid = False
                self.dx_word = 0
                self.dx_pc = 0
            else:
                word = self.fetch_word()
                if word is None:
                    raise RtlError(
                        f"core {self.core_id}: fetch past instruction memory "
                        f"at PC {self.pc_if:#x} (missing halt?)"
                    )
                self.dx_valid = True
                self.dx_word = word
                self.dx_pc = self.pc_if
                self.pc_if += 4

    # ------------------------------------------------------------------
    # State capture
    # ------------------------------------------------------------------

    def snapshot(self) -> Hashable:
        return (
            self.pc_if, self.fetch_stop,
            self.dx_valid, self.dx_word, self.dx_pc,
            self.wb_valid, self.wb_pc, self.wb_type, self.wb_store_data,
            self.wb_load_dest, self.wb_is_halt, self.wb_writes_reg,
            self.wb_alu, self.wb_mem_addr, self.halted, tuple(self.regs),
        )

    def restore(self, state: Hashable) -> None:
        (
            self.pc_if, self.fetch_stop,
            self.dx_valid, self.dx_word, self.dx_pc,
            self.wb_valid, self.wb_pc, self.wb_type, self.wb_store_data,
            self.wb_load_dest, self.wb_is_halt, self.wb_writes_reg,
            self.wb_alu, self.wb_mem_addr, self.halted, regs,
        ) = state
        self.regs = list(regs)

    # -- flat slot protocol (array state backend) ----------------------

    #: 15 scalar pipeline/architectural registers + 32 GPRs.
    SLOT_COUNT = 15 + 32

    def write_slots(self, buf: List[int], base: int) -> None:
        """Flatten the core into ``buf[base : base + SLOT_COUNT]``.

        Booleans encode as 0/1 and the optional ``wb_writes_reg`` as
        -1-for-None, keeping the encoding injective (None and r0 are
        distinct pipeline states, exactly as in :meth:`snapshot`).
        """
        buf[base] = self.pc_if
        buf[base + 1] = int(self.fetch_stop)
        buf[base + 2] = int(self.dx_valid)
        buf[base + 3] = self.dx_word
        buf[base + 4] = self.dx_pc
        buf[base + 5] = int(self.wb_valid)
        buf[base + 6] = self.wb_pc
        buf[base + 7] = self.wb_type
        buf[base + 8] = self.wb_store_data
        buf[base + 9] = self.wb_load_dest
        buf[base + 10] = int(self.wb_is_halt)
        buf[base + 11] = -1 if self.wb_writes_reg is None else self.wb_writes_reg
        buf[base + 12] = self.wb_alu
        buf[base + 13] = self.wb_mem_addr
        buf[base + 14] = int(self.halted)
        buf[base + 15:base + 47] = self.regs

    def read_slots(self, vec, base: int) -> None:
        self.pc_if = vec[base]
        self.fetch_stop = bool(vec[base + 1])
        self.dx_valid = bool(vec[base + 2])
        self.dx_word = vec[base + 3]
        self.dx_pc = vec[base + 4]
        self.wb_valid = bool(vec[base + 5])
        self.wb_pc = vec[base + 6]
        self.wb_type = vec[base + 7]
        self.wb_store_data = vec[base + 8]
        self.wb_load_dest = vec[base + 9]
        self.wb_is_halt = bool(vec[base + 10])
        writes = vec[base + 11]
        self.wb_writes_reg = None if writes < 0 else writes
        self.wb_alu = vec[base + 12]
        self.wb_mem_addr = vec[base + 13]
        self.halted = bool(vec[base + 14])
        self.regs = list(vec[base + 15:base + 47])
