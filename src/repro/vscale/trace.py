"""Seeded execution harvesting from the Multi-V-scale RTL.

The exhaustive RTL oracle (`enumerate_design_outcomes`) explores every
arbiter schedule — exponential in program length.  The trace oracle
instead **samples**: it drives :class:`~repro.vscale.soc.MultiVScale`
through ``k`` seeded randomized arbiter schedules and harvests each
run's architectural outcome as a :class:`~repro.memodel.polycheck.Trace`
for the per-execution consistency checker.  Per test the cost is
``O(k · cycles)`` regardless of program length, which is what makes
long-program fuzzing feasible.

Sampling reuses the PR-5 array state backend: schedules progress in a
*wavefront*, grouped by interned design state, so each distinct state
pays one ``step_batch`` (one restore + eval + tick) per cycle no matter
how many schedules currently occupy it — early on, all ``k`` schedules
share the reset state and the whole wavefront advances for the price of
one.  Each schedule owns a :class:`random.Random` seeded from
``harvest:<seed>:<test name>:<schedule index>`` and draws exactly one
grant per cycle it is active, so the harvest is deterministic in
``(test, seed, samples)`` and independent of grouping order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.litmus.test import LitmusTest, compile_test
from repro.memodel.polycheck import Trace
from repro.vscale.soc import MultiVScale

#: Schedules sampled per test by default (the trace oracle's ``k``).
DEFAULT_SAMPLES = 8

#: Per-schedule cycle budget; generously above what any compiled litmus
#: program needs to drain (a schedule that trips it is reported as
#: ``undrained``, never silently dropped).
DEFAULT_MAX_CYCLES = 4096


@dataclass
class Harvest:
    """Outcome of sampling one test.

    ``traces`` is deduplicated by architectural content (observed load
    values + final memory), so it is usually shorter than ``sampled``;
    ``undrained`` counts schedules that hit the cycle budget before the
    design drained (always 0 on the stock designs — a non-zero value
    means the schedule distribution starved a core).
    """

    traces: List[Trace]
    sampled: int
    undrained: int
    cycles: int
    #: Arbiter-grant interleaving n-gram counts
    #: (:func:`repro.obs.coverage.grant_ngrams`) when the harvest was
    #: asked to collect them; ``None`` otherwise.
    grant_ngrams: Optional[Dict[str, int]] = field(default=None)


def harvest_traces(
    test: LitmusTest,
    memory_variant: str = "fixed",
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    collect_grants: bool = False,
    state_backend: str = "array",
) -> Harvest:
    """Sample ``samples`` randomized executions of ``test`` on the RTL.

    ``collect_grants=True`` additionally records each schedule's grant
    sequence and folds them into coverage n-grams
    (``Harvest.grant_ngrams``); the grants drawn are identical either
    way, so collection cannot perturb the sampled outcomes.

    ``state_backend`` selects the design's state representation; the
    rng draw sequence is per-schedule and grouping-independent, so the
    harvest stays deterministic in ``(test, seed, samples)`` on every
    backend."""
    compiled = compile_test(test)
    design = MultiVScale(compiled, memory_variant, state_backend=state_backend)
    design.reset()
    input_space = design.input_space()
    start = design.snapshot()

    rngs = [
        random.Random(f"harvest:{seed}:{test.name}:{i}") for i in range(samples)
    ]
    states: List[Hashable] = [start] * samples
    active = [True] * samples
    finals: List[Hashable] = [None] * samples
    grants: Optional[List[List[int]]] = (
        [[] for _ in range(samples)] if collect_grants else None
    )

    drained_memo: Dict[Hashable, bool] = {}

    def is_drained(state: Hashable) -> bool:
        if state not in drained_memo:
            # ``state_drained`` reads the compiled quiescence predicate
            # on the kernel backend (no restore); interpreter backends
            # restore and ask the design, exactly as before.
            drained_memo[state] = design.state_drained(state)
        return drained_memo[state]

    cycles = 0
    remaining = samples
    while remaining:
        for i in range(samples):
            if active[i] and is_drained(states[i]):
                active[i] = False
                finals[i] = states[i]
                remaining -= 1
        if not remaining or cycles >= max_cycles:
            break
        # Wavefront step: one batched expansion per distinct live state.
        groups: Dict[Hashable, List[int]] = {}
        for i in range(samples):
            if active[i]:
                groups.setdefault(states[i], []).append(i)
        for state, members in groups.items():
            edges = design.step_batch(state, input_space, lambda frame, n: True)
            for i in members:
                grant = rngs[i].randrange(len(input_space))
                if grants is not None:
                    grants[i].append(grant)
                states[i] = edges[grant][1]
        cycles += 1

    undrained = sum(1 for i in range(samples) if active[i])

    traces: List[Trace] = []
    seen_states: set = set()
    seen_traces: set = set()
    for final in finals:
        if final is None or final in seen_states:
            continue
        seen_states.add(final)
        design.restore(final)
        trace = Trace.of(
            test.threads,
            design.register_results(),
            design.memory_results(),
            test.initial_memory_map,
        )
        if trace not in seen_traces:
            seen_traces.add(trace)
            traces.append(trace)
    ngrams = None
    if grants is not None:
        from repro.obs.coverage import grant_ngrams

        ngrams = grant_ngrams(grants)
    return Harvest(
        traces=traces,
        sampled=samples,
        undrained=undrained,
        cycles=cycles,
        grant_ngrams=ngrams,
    )
