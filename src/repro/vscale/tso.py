"""Multi-V-scale-TSO: a store-buffer variant implementing x86-TSO.

The paper emphasizes that RTLCheck "supports arbitrary ISA-level MCMs,
including ones as sophisticated as x86-TSO" but only evaluates an SC
design.  This module provides the weaker-model case study: each core
gains a FIFO store buffer with store-to-load forwarding, so the machine
exhibits the classic TSO relaxation (the store-buffering outcome of
``sb`` becomes observable) while still satisfying a TSO µspec model
(``repro/uspec/models/multi_vscale_tso.uspec``).

Microarchitecture
-----------------

* Stores do **not** arbitrate for memory at DX; they retire into their
  core's store buffer at the end of WB.
* Loads arbitrate at DX (address phase) as on the SC design; in their
  WB data phase they *forward* from the youngest same-address entry of
  their own store buffer, else read the memory array.
* When the arbiter grants a core whose DX does not need the port, the
  core *drains* its store-buffer head instead: the entry pops at the
  grant cycle and commits to the array during the next cycle (the drain
  occupies the port's data-phase slot, so at most one memory event —
  a load's data phase or a store's commit — happens per cycle, which is
  what makes the µhb ``Memory`` stage events totally ordered and the
  generated SVA sequences well-formed).
* ``fence`` and ``halt`` stall in DX until the core's buffer has fully
  drained, so a drained machine has committed everything.

Signals added to trace frames: ``core[i].sb_count``,
``core[i].commit_valid`` / ``core[i].commit_pc`` (the Memory-stage event
of the committing store), and ``core[i].fwd_valid`` (the load in WB
forwarded from the store buffer).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import RtlError
from repro.isa import Fence, Halt, Lw, Sw, encode
from repro.litmus.test import CompiledTest
from repro.rtl.design import Design, Frame, FreeInput
from repro.vscale.arbiter import Arbiter
from repro.vscale.core import VScaleCore
from repro.vscale.params import DMEM_LOAD, DMEM_NONE, DMEM_STORE, NUM_CORES

#: Store-buffer capacity per core.
STORE_BUFFER_CAPACITY = 2

#: A store-buffer entry: (word address, data, absolute pc).
SbEntry = Tuple[int, int, int]

#: An in-flight port transaction: a load's data phase or a drain commit.
#: ("L", core, addr) or ("D", core, addr, data, pc)
Txn = Tuple


class MultiVScaleTSO(Design):
    """The four-core V-scale SoC with per-core store buffers (x86-TSO).

    ``drain_order`` selects ``"fifo"`` (correct) or ``"lifo"`` — a
    seeded bug where the buffer drains its *youngest* entry first,
    breaking the total-store-order guarantee; RTLCheck's
    Store_Buffer_FIFO / Read_Values assertions catch it (the TSO
    analogue of the paper's §7.1 case study).
    """

    def __init__(self, compiled: CompiledTest, drain_order: str = "fifo"):
        if compiled.num_cores != NUM_CORES:
            raise RtlError(f"expected {NUM_CORES}-core compile")
        if drain_order not in ("fifo", "lifo"):
            raise RtlError(f"unknown drain order {drain_order!r}")
        self.drain_order = drain_order
        self.compiled = compiled
        self.cores: List[VScaleCore] = []
        for core_id, program in enumerate(compiled.programs):
            if len(program) > compiled.imem_words_per_core:
                raise RtlError(f"core {core_id}: program too long for imem")
            self.cores.append(
                VScaleCore(
                    core_id,
                    [encode(i) for i in program],
                    base_pc=compiled.core_base_pc(core_id),
                )
            )
        self.arbiter = Arbiter(NUM_CORES)
        self.data_words = sorted(compiled.initial_data_memory)
        self.reset()

    # ------------------------------------------------------------------

    def reset(self) -> None:
        for core_id, core in enumerate(self.cores):
            core.reset(self.compiled.reg_init[core_id])
        self.arbiter.reset()
        self.array: Dict[int, int] = dict(self.compiled.initial_data_memory)
        self.buffers: List[List[SbEntry]] = [[] for _ in range(NUM_CORES)]
        self.pending: Optional[Txn] = None
        self._tick_plan = None

    def free_inputs(self) -> Sequence[FreeInput]:
        return (FreeInput("arb_select", NUM_CORES),)

    # ------------------------------------------------------------------

    def read_word(self, word: int) -> int:
        return self.array.get(word, 0)

    def _forward(self, core_id: int, word: int) -> Optional[int]:
        """Youngest same-address store-buffer entry of ``core_id``."""
        for addr, data, _pc in reversed(self.buffers[core_id]):
            if addr == word:
                return data
        return None

    def eval_comb(self, inputs) -> Frame:
        select = inputs.get("arb_select", 0)
        granted = self.arbiter.cur_core
        views = [core.dx_view() for core in self.cores]

        stall_dx = [False] * NUM_CORES
        for core_id, (core, view) in enumerate(zip(self.cores, views)):
            buffer = self.buffers[core_id]
            # A store currently in WB pushes into the buffer at the end
            # of this cycle; occupancy checks must count it.
            wb_store = int(core.wb_valid and core.wb_type == DMEM_STORE)
            if not view.valid:
                continue
            instr = view.instr
            if isinstance(instr, Lw):
                # Loads need the port's address phase.
                stall_dx[core_id] = core_id != granted
            elif isinstance(instr, Sw):
                # Stores need store-buffer space when they reach WB.
                stall_dx[core_id] = (
                    len(buffer) + wb_store >= STORE_BUFFER_CAPACITY
                )
            elif isinstance(instr, (Fence, Halt)):
                # Fences (and halt, which drains before stopping) wait
                # for every earlier store: still in WB, buffered, or
                # with an in-flight commit.
                in_flight = (
                    self.pending is not None
                    and self.pending[0] == "D"
                    and self.pending[1] == core_id
                )
                stall_dx[core_id] = bool(buffer) or in_flight or bool(wb_store)

        # The granted core uses the port: a DX load's address phase, or
        # a store-buffer drain.
        new_txn: Optional[Txn] = None
        granted_view = views[granted]
        if (
            granted_view.valid
            and isinstance(granted_view.instr, Lw)
            and not stall_dx[granted]
        ):
            new_txn = ("L", granted, granted_view.mem_addr >> 2)
        elif self.buffers[granted]:
            index = 0 if self.drain_order == "fifo" else -1
            addr, data, pc = self.buffers[granted][index]
            new_txn = ("D", granted, addr, data, pc)

        # Data phase of last cycle's transaction.
        load_out = 0
        fwd_valid = 0
        commit = None  # (core, addr, data, pc)
        if self.pending is not None:
            if self.pending[0] == "L":
                _kind, owner, word = self.pending
                forwarded = self._forward(owner, word)
                if forwarded is not None:
                    load_out = forwarded
                    fwd_valid = 1
                else:
                    load_out = self.read_word(word)
            else:
                _kind, owner, addr, data, pc = self.pending
                commit = (owner, addr, data, pc)

        frame: Frame = {}
        for core_id, core in enumerate(self.cores):
            view = views[core_id]
            prefix = f"core[{core_id}]."
            frame[prefix + "PC_IF"] = core.pc_if
            frame[prefix + "PC_DX"] = view.pc if view.valid else 0
            frame[prefix + "PC_WB"] = core.wb_pc if core.wb_valid else 0
            frame[prefix + "stall_IF"] = int(stall_dx[core_id] or core.fetch_stop)
            frame[prefix + "stall_DX"] = int(stall_dx[core_id])
            frame[prefix + "stall_WB"] = 0
            frame[prefix + "dmem_type_DX"] = view.wb_type if view.valid else 0
            frame[prefix + "dmem_type_WB"] = core.wb_type
            is_load_data_phase = (
                self.pending is not None
                and self.pending[0] == "L"
                and self.pending[1] == core_id
                and core.wb_type == DMEM_LOAD
            )
            frame[prefix + "load_data_WB"] = load_out if is_load_data_phase else 0
            frame[prefix + "fwd_valid"] = fwd_valid if is_load_data_phase else 0
            frame[prefix + "store_data_WB"] = core.wb_store_data
            frame[prefix + "halted"] = int(core.halted)
            frame[prefix + "sb_count"] = len(self.buffers[core_id])
            if commit is not None and commit[0] == core_id:
                frame[prefix + "commit_valid"] = 1
                frame[prefix + "commit_pc"] = commit[3]
            else:
                frame[prefix + "commit_valid"] = 0
                frame[prefix + "commit_pc"] = 0
        frame["arbiter.cur_core"] = self.arbiter.cur_core
        frame["arbiter.prev_core"] = self.arbiter.prev_core
        for word in self.data_words:
            frame[f"mem[{word}]"] = self.read_word(word)

        self._tick_plan = (select, views, stall_dx, new_txn, load_out, commit)
        return frame

    def tick(self) -> None:
        if self._tick_plan is None:
            raise RtlError("tick() called before eval_comb()")
        select, views, stall_dx, new_txn, load_out, commit = self._tick_plan
        self._tick_plan = None

        # Commit the in-flight drain to the array.
        if commit is not None:
            _owner, addr, data, _pc = commit
            self.array[addr] = data
        # The data phase that completed this cycle (for load routing).
        old_pending = self.pending
        # Pop the entry whose drain was scheduled this cycle.
        if new_txn is not None and new_txn[0] == "D":
            self.buffers[new_txn[1]].pop(0 if self.drain_order == "fifo" else -1)
        self.pending = new_txn
        self.arbiter.tick(select)

        for core_id, core in enumerate(self.cores):
            view = views[core_id]
            # Retiring store pushes into the store buffer (end of WB).
            if core.wb_valid and core.wb_type == DMEM_STORE:
                self.buffers[core_id].append(
                    (core.wb_mem_addr >> 2, core.wb_store_data, core.wb_pc)
                )
            core_load = 0
            if (
                old_pending is not None
                and old_pending[0] == "L"
                and old_pending[1] == core_id
            ):
                core_load = load_out
            core.tick(view, stall_dx[core_id], core_load)

    # ------------------------------------------------------------------

    def snapshot(self) -> Hashable:
        return (
            tuple(core.snapshot() for core in self.cores),
            self.arbiter.snapshot(),
            tuple(sorted(self.array.items())),
            tuple(tuple(buf) for buf in self.buffers),
            self.pending,
        )

    def restore(self, state: Hashable) -> None:
        core_states, arb_state, array, buffers, pending = state
        for core, core_state in zip(self.cores, core_states):
            core.restore(core_state)
        self.arbiter.restore(arb_state)
        self.array = dict(array)
        self.buffers = [list(buf) for buf in buffers]
        self.pending = pending
        self._tick_plan = None

    # ------------------------------------------------------------------

    def all_halted(self) -> bool:
        return all(core.halted for core in self.cores)

    def drained(self) -> bool:
        return (
            self.all_halted()
            and all(not c.dx_valid and not c.wb_valid for c in self.cores)
            and all(not buf for buf in self.buffers)
            and self.pending is None
        )

    def register_results(self) -> Dict[str, int]:
        results: Dict[str, int] = {}
        for op in self.compiled.ops:
            if op.op.is_load:
                results[op.op.out] = self.cores[op.core].regs[op.data_reg]
        return results

    def memory_results(self) -> Dict[str, int]:
        return {
            var: self.read_word(word)
            for var, word in self.compiled.address_map.items()
        }
