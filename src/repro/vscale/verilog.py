"""Verilog emission of the Multi-V-scale design.

The original RTLCheck consumes a Verilog design and concatenates the
generated properties with its top-level module (paper §6).  Our design
lives as a cycle-accurate Python model; this module emits the
*equivalent Verilog* — same module structure, same registers, same
hierarchical signal names the node/program mappings refer to — so the
repository produces the complete artifact a SystemVerilog flow would
take: one ``.sv`` file per litmus test holding the parameterized design
plus all generated assumptions and assertions.

The emitted code mirrors the Python semantics statement for statement:

* ``vscale_core`` — the three-stage pipeline, including Figure 3c's WB
  register update with its bubble-on-stall behaviour;
* ``vscale_memory_buggy`` — the shipped memory with the ``wdata``
  single-entry store buffer and its push-on-next-store bug (§7.1);
* ``vscale_memory_fixed`` — the paper's corrected memory;
* ``arbiter`` and ``multi_vscale`` — the four-core top level with the
  free ``arb_select`` input JasperGold sweeps (§5.2).

Instruction memory and initial register/data values are emitted as
``initial`` blocks derived from the compiled litmus test (the same
values the Figure 8 assumptions pin).
"""

from __future__ import annotations

from typing import List

from repro.isa import encode
from repro.litmus.test import CompiledTest, DATA_MEM_WORDS
from repro.vscale.params import (
    IMEM_WORDS_PER_CORE,
    NUM_CORES,
    core_base_pc,
    imem_base_word,
)

_CORE_MODULE = r"""
// One V-scale core: three-stage in-order pipeline (IF, DX, WB).
module vscale_core #(
    parameter [31:0] BASE_PC = 32'd4
) (
    input  wire        clk,
    input  wire        reset,
    // instruction memory (read-only, per-core window)
    output wire [31:0] imem_addr,
    input  wire [31:0] imem_rdata,
    // data memory request (address phase, through the arbiter)
    output wire        dmem_en,
    output wire        dmem_wen,
    output wire [31:0] dmem_addr,
    input  wire        granted,
    // data phase
    output wire [31:0] store_data_WB_out,
    input  wire [31:0] load_data,
    input  wire        load_valid,
    output wire        halted_out
);
    // ---- register file -------------------------------------------------
    reg [31:0] regs [0:31];

    // ---- IF stage --------------------------------------------------------
    reg [31:0] PC_IF;
    reg        fetch_stop;
    assign imem_addr = PC_IF;

    // ---- DX stage registers ---------------------------------------------
    reg        dx_valid;
    reg [31:0] instr_DX;
    reg [31:0] PC_DX;

    // decode
    wire [6:0] opcode  = instr_DX[6:0];
    wire [4:0] rd      = instr_DX[11:7];
    wire [4:0] rs1     = instr_DX[19:15];
    wire [4:0] rs2     = instr_DX[24:20];
    wire is_load  = dx_valid && (opcode == 7'b0000011);
    wire is_store = dx_valid && (opcode == 7'b0100011);
    wire is_halt  = dx_valid && (opcode == 7'b0001011);
    wire is_mem   = is_load || is_store;
    wire [11:0] imm_i = instr_DX[31:20];
    wire [11:0] imm_s = {instr_DX[31:25], instr_DX[11:7]};
    wire [31:0] mem_addr = regs[rs1] + {{20{instr_DX[31]}},
                                        (is_store ? imm_s : imm_i)};

    // stall: a memory op waits for the arbiter grant (paper 5.2)
    wire stall_DX = is_mem && !granted;
    wire stall_IF = stall_DX || fetch_stop;
    wire stall_WB = 1'b0;  // memory ready is hard-coded high

    assign dmem_en   = is_mem && granted;
    assign dmem_wen  = is_store;
    assign dmem_addr = mem_addr;

    // ---- WB stage registers -----------------------------------------------
    reg        wb_valid;
    reg [31:0] PC_WB;
    reg [1:0]  dmem_type_WB;   // 0 none, 1 load, 2 store
    reg [31:0] store_data_WB;
    reg [4:0]  load_dest_WB;
    reg        wb_is_halt;
    reg        halted;

    assign store_data_WB_out = store_data_WB;
    assign halted_out = halted;
    wire [31:0] load_data_WB = load_valid ? load_data : 32'b0;

    // Figure 3c: update the WB pipeline registers.
    always @(posedge clk) begin
        if (reset | (stall_DX & ~stall_WB)) begin
            // Pipeline bubble
            wb_valid      <= 1'b0;
            PC_WB         <= 32'b0;
            dmem_type_WB  <= 2'b0;
            store_data_WB <= 32'b0;
            load_dest_WB  <= 5'b0;
            wb_is_halt    <= 1'b0;
        end else if (~stall_WB) begin
            wb_valid      <= dx_valid;
            PC_WB         <= dx_valid ? PC_DX : 32'b0;
            dmem_type_WB  <= is_load ? 2'd1 : (is_store ? 2'd2 : 2'd0);
            store_data_WB <= is_store ? regs[rs2] : 32'b0;
            load_dest_WB  <= is_load ? rd : 5'b0;
            wb_is_halt    <= is_halt;
        end
    end

    // register-file writeback and halt latch
    always @(posedge clk) begin
        if (!reset && wb_valid) begin
            if (dmem_type_WB == 2'd1 && load_dest_WB != 5'b0)
                regs[load_dest_WB] <= load_data_WB;
            if (wb_is_halt)
                halted <= 1'b1;
        end
        if (reset) halted <= 1'b0;
    end

    // IF -> DX
    always @(posedge clk) begin
        if (reset) begin
            PC_IF      <= BASE_PC;
            fetch_stop <= 1'b0;
            dx_valid   <= 1'b0;
            instr_DX   <= 32'b0;
            PC_DX      <= 32'b0;
        end else if (~stall_DX) begin
            if (is_halt)
                fetch_stop <= 1'b1;
            if (fetch_stop || is_halt) begin
                dx_valid <= 1'b0;
                instr_DX <= 32'b0;
                PC_DX    <= 32'b0;
            end else begin
                dx_valid <= 1'b1;
                instr_DX <= imem_rdata;
                PC_DX    <= PC_IF;
                PC_IF    <= PC_IF + 32'd4;
            end
        end
    end
endmodule
"""

_ARBITER_MODULE = r"""
// The arbiter: one core may access data memory per cycle; the owner is
// dictated by the free top-level input arb_select (paper 5.2), so a
// property verifier explores every switching pattern.
module arbiter (
    input  wire       clk,
    input  wire       reset,
    input  wire [1:0] arb_select,
    output reg  [1:0] cur_core,
    output reg  [1:0] prev_core
);
    always @(posedge clk) begin
        if (reset) begin
            cur_core  <= 2'd0;
            prev_core <= 2'd0;
        end else begin
            prev_core <= cur_core;
            cur_core  <= arb_select;
        end
    end
endmodule
"""

_MEMORY_BUGGY = r"""
// The shipped V-scale memory: pipelined, with the wdata single-entry
// store buffer.  ready is hard-coded high; when a new store initiates a
// transaction, the buffered slot is pushed to the array using wdata's
// CURRENT value -- one cycle too early if the buffered store's data
// phase is only happening now.  That drops back-to-back stores (7.1).
module vscale_memory_buggy #(
    parameter WORDS = 48
) (
    input  wire        clk,
    input  wire        reset,
    // address phase
    input  wire        en,
    input  wire        wen,
    input  wire [31:0] addr,
    input  wire [1:0]  req_core,
    // data phase (cycle after the address phase)
    input  wire [31:0] store_data,
    output wire [31:0] load_data,
    output wire        load_valid,
    output wire [1:0]  data_core,
    output wire        ready
);
    reg [31:0] mem [0:WORDS-1];
    reg        pend_valid, pend_wen;
    reg [31:0] pend_addr;
    reg [1:0]  pend_core;
    reg        wvalid;
    reg [31:0] waddr;
    reg [31:0] wdata;

    assign ready = 1'b1;  // the lie that hides the bug
    wire [31:0] pend_word = pend_addr[31:2];
    assign load_valid = pend_valid && !pend_wen;
    assign data_core  = pend_core;
    // bypass from the store buffer
    assign load_data = (wvalid && waddr == pend_word) ? wdata
                                                      : mem[pend_word];

    always @(posedge clk) begin
        if (reset) begin
            pend_valid <= 1'b0;
            wvalid     <= 1'b0;
            waddr      <= 32'b0;
            wdata      <= 32'b0;
        end else begin
            if (en && wen) begin
                if (wvalid)
                    mem[waddr] <= wdata;   // BUG: wdata may be stale
                waddr  <= addr[31:2];
                wvalid <= 1'b1;
            end
            if (pend_valid && pend_wen)
                wdata <= store_data;       // the data phase lands here
            pend_valid <= en;
            pend_wen   <= wen;
            pend_addr  <= addr;
            pend_core  <= req_core;
        end
    end
endmodule
"""

_MEMORY_FIXED = r"""
// The corrected memory: the intermediate wdata register is eliminated;
// a store's data is clocked directly into the array one cycle after its
// WB stage, where the next cycle's loads can read it (7.1).
module vscale_memory_fixed #(
    parameter WORDS = 48
) (
    input  wire        clk,
    input  wire        reset,
    input  wire        en,
    input  wire        wen,
    input  wire [31:0] addr,
    input  wire [1:0]  req_core,
    input  wire [31:0] store_data,
    output wire [31:0] load_data,
    output wire        load_valid,
    output wire [1:0]  data_core,
    output wire        ready
);
    reg [31:0] mem [0:WORDS-1];
    reg        pend_valid, pend_wen;
    reg [31:0] pend_addr;
    reg [1:0]  pend_core;

    assign ready = 1'b1;
    wire [31:0] pend_word = pend_addr[31:2];
    assign load_valid = pend_valid && !pend_wen;
    assign data_core  = pend_core;
    assign load_data  = mem[pend_word];

    always @(posedge clk) begin
        if (reset) begin
            pend_valid <= 1'b0;
        end else begin
            if (pend_valid && pend_wen)
                mem[pend_word] <= store_data;
            pend_valid <= en;
            pend_wen   <= wen;
            pend_addr  <= addr;
            pend_core  <= req_core;
        end
    end
endmodule
"""


def _imem_initial_block(compiled: CompiledTest) -> List[str]:
    lines = ["    // litmus program (same words the Figure 8 assumptions pin)"]
    for core, program in enumerate(compiled.programs):
        base = imem_base_word(core)
        for offset, instr in enumerate(program):
            word = encode(instr)
            lines.append(
                f"    imem[{base + offset}] = 32'h{word:08x};  // core {core}: {instr}"
            )
    return lines


def _reg_initial_block(compiled: CompiledTest) -> List[str]:
    lines = ["    // address/data registers (Figure 8 register-init assumptions)"]
    for core, regs in enumerate(compiled.reg_init):
        for reg, value in sorted(regs.items()):
            lines.append(f"    core_gen[{core}].core.regs[{reg}] = 32'd{value};")
    return lines


def _dmem_initial_block(compiled: CompiledTest) -> List[str]:
    lines = ["    // litmus variables (initial data memory)"]
    for var, word in sorted(compiled.address_map.items(), key=lambda kv: kv[1]):
        value = compiled.test.initial_memory_map[var]
        lines.append(f"    mem.mem[{word}] = 32'd{value};  // {var}")
    return lines


def emit_top_module(compiled: CompiledTest, memory_variant: str = "fixed") -> str:
    """The ``multi_vscale`` top level, parameterized for one test."""
    memory_module = (
        "vscale_memory_buggy" if memory_variant == "buggy" else "vscale_memory_fixed"
    )
    base_pcs = ", ".join(
        f"32'd{core_base_pc(core)}" for core in range(NUM_CORES)
    )
    lines = [
        "// Multi-V-scale: four V-scale cores behind a memory arbiter",
        "// (paper Figure 1), programmed with litmus test "
        f"{compiled.test.name}.",
        "module multi_vscale (",
        "    input  wire       clk,",
        "    input  wire       reset,",
        "    input  wire [1:0] arb_select   // free input: next cycle's owner",
        ");",
        f"    localparam [32*{NUM_CORES}-1:0] BASE_PCS = {{{base_pcs}}};",
        "",
        "    // read-only instruction memory, concurrently accessed by all",
        "    // cores (paper section 2.1)",
        f"    reg [31:0] imem [0:{NUM_CORES * IMEM_WORDS_PER_CORE}];",
        "",
        "    wire [1:0] cur_core, prev_core;",
        "    arbiter arb (.clk(clk), .reset(reset), .arb_select(arb_select),",
        "                 .cur_core(cur_core), .prev_core(prev_core));",
        "",
        f"    wire        dmem_en   [0:{NUM_CORES - 1}];",
        f"    wire        dmem_wen  [0:{NUM_CORES - 1}];",
        f"    wire [31:0] dmem_addr [0:{NUM_CORES - 1}];",
        f"    wire [31:0] store_wb  [0:{NUM_CORES - 1}];",
        f"    wire [31:0] imem_addr [0:{NUM_CORES - 1}];",
        "",
        "    wire [31:0] load_data;",
        "    wire        load_valid;",
        "    wire [1:0]  data_core;",
        "",
        "    genvar g;",
        "    generate",
        f"    for (g = 0; g < {NUM_CORES}; g = g + 1) begin : core_gen",
        "        vscale_core #(.BASE_PC(BASE_PCS[32*g +: 32])) core (",
        "            .clk(clk), .reset(reset),",
        "            .imem_addr(imem_addr[g]),",
        "            .imem_rdata(imem[imem_addr[g][31:2]]),",
        "            .dmem_en(dmem_en[g]), .dmem_wen(dmem_wen[g]),",
        "            .dmem_addr(dmem_addr[g]),",
        "            .granted(cur_core == g[1:0]),",
        "            .store_data_WB_out(store_wb[g]),",
        "            .load_data(load_data),",
        "            .load_valid(load_valid && data_core == g[1:0]),",
        "            .halted_out()",
        "        );",
        "    end",
        "    endgenerate",
        "",
        f"    {memory_module} #(.WORDS({DATA_MEM_WORDS})) mem (",
        "        .clk(clk), .reset(reset),",
        "        .en(dmem_en[cur_core]), .wen(dmem_wen[cur_core]),",
        "        .addr(dmem_addr[cur_core]), .req_core(cur_core),",
        "        .store_data(store_wb[data_core]),",
        "        .load_data(load_data), .load_valid(load_valid),",
        "        .data_core(data_core), .ready()",
        "    );",
        "",
        "    initial begin",
    ]
    lines += _imem_initial_block(compiled)
    lines += _dmem_initial_block(compiled)
    lines += _reg_initial_block(compiled)
    lines += [
        "    end",
        "endmodule",
    ]
    return "\n".join(lines)


def emit_design(compiled: CompiledTest, memory_variant: str = "fixed") -> str:
    """The full design: core + arbiter + memory + top, as Verilog text."""
    memory = _MEMORY_BUGGY if memory_variant == "buggy" else _MEMORY_FIXED
    header = (
        "// Multi-V-scale Verilog emission (RTLCheck reproduction).\n"
        "// Structurally equivalent to the Python model in repro.vscale —\n"
        "// same pipeline registers, hierarchical names, and memory\n"
        f"// semantics ({memory_variant} variant).\n"
    )
    return "\n".join(
        [
            header,
            _CORE_MODULE.strip(),
            "",
            _ARBITER_MODULE.strip(),
            "",
            memory.strip(),
            "",
            emit_top_module(compiled, memory_variant),
            "",
        ]
    )


def emit_verification_bundle(
    compiled: CompiledTest,
    sva_text: str,
    memory_variant: str = "fixed",
) -> str:
    """Design plus generated properties: the complete per-test artifact
    the paper's flow hands to JasperGold (§6)."""
    return "\n".join(
        [
            emit_design(compiled, memory_variant),
            "// " + "-" * 68,
            "// Generated properties (concatenated into the top level, §6)",
            "// " + "-" * 68,
            sva_text,
        ]
    )
