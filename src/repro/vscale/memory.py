"""The V-scale pipelined data memory — buggy and fixed variants.

The memory accepts one transaction per cycle (*address phase*, issued by
the instruction in DX through the arbiter) and completes it the next
cycle (*data phase*, while the instruction is in WB): a load's data is
returned combinationally in the data phase; a store's data is presented
in the data phase and clocked in on the next rising edge (paper §5.1,
Figure 11).

:class:`BuggyMemory` reproduces the shipped V-scale implementation that
RTLCheck exposed (paper §7.1, Figure 12): store data is first staged in
a ``wdata`` register acting as a single-entry store buffer, and ``wdata``
is pushed to the array only when *another* store initiates a
transaction.  If two stores start in successive cycles, the push of the
first store's slot happens before ``wdata`` has been updated with the
first store's data, so the first store is dropped (the memory's
hard-coded ``ready`` signal claims it can accept a store every cycle).

:class:`FixedMemory` is the paper's fix: the intermediate ``wdata``
register is eliminated and a store's data is clocked directly into the
array one cycle after its WB stage, where the next cycle's loads can
read it.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import RtlError
from repro.vscale.params import DMEM_LOAD, DMEM_STORE

#: An in-flight transaction: (core, kind, word address).
Transaction = Tuple[int, int, int]


class MemoryBase:
    """Common state: the word array and the pipelined transaction."""

    #: Matches the V-scale implementation: ready is hard-coded high, so
    #: the pipeline believes a store can be accepted every cycle.
    ready = 1

    def __init__(self, initial: Optional[Dict[int, int]] = None):
        self.initial = dict(initial or {})
        #: The declared word addresses, in slot order.  Litmus-compiled
        #: programs only ever store to declared words, so the flat
        #: backend can lay the array out statically.
        self.slot_words: Tuple[int, ...] = tuple(sorted(self.initial))
        self.reset()

    def reset(self) -> None:
        self.array: Dict[int, int] = dict(self.initial)
        self.pending: Optional[Transaction] = None

    def read_word(self, word: int) -> int:
        return self.array.get(word, 0)

    # -- combinational -------------------------------------------------

    def load_output(self) -> int:
        """Data returned during the data phase of a pending load."""
        raise NotImplementedError

    # -- sequential ----------------------------------------------------

    def tick(self, new_txn: Optional[Transaction], store_data: int) -> None:
        """Clock edge: ``new_txn`` is this cycle's address phase (if any);
        ``store_data`` is the data presented by a pending store's WB."""
        raise NotImplementedError

    def snapshot(self) -> Hashable:
        raise NotImplementedError

    def restore(self, state: Hashable) -> None:
        raise NotImplementedError

    def _array_snapshot(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted(self.array.items()))

    # -- flat slot protocol (array state backend) ----------------------

    #: Pending-transaction encoding: (valid, core, kind, word address).
    PENDING_SLOTS = 4

    def slot_count(self) -> int:
        return self.PENDING_SLOTS + len(self.slot_words)

    def write_slots(self, buf: List[int], base: int) -> None:
        raise NotImplementedError

    def read_slots(self, vec, base: int) -> None:
        raise NotImplementedError

    def _write_base_slots(self, buf: List[int], base: int) -> None:
        pending = self.pending
        if pending is None:
            buf[base] = buf[base + 1] = buf[base + 2] = buf[base + 3] = 0
        else:
            buf[base] = 1
            buf[base + 1], buf[base + 2], buf[base + 3] = pending
        array = self.array
        if len(array) != len(self.slot_words):
            extras = sorted(set(array) - set(self.slot_words))
            raise RtlError(
                "memory grew words outside the declared data set "
                f"{extras}; the flat state layout is static, so every "
                "store target must appear in the initial data memory"
            )
        off = base + self.PENDING_SLOTS
        for index, word in enumerate(self.slot_words):
            buf[off + index] = array[word]

    def _read_base_slots(self, vec, base: int) -> None:
        if vec[base]:
            self.pending = (vec[base + 1], vec[base + 2], vec[base + 3])
        else:
            self.pending = None
        off = base + self.PENDING_SLOTS
        self.array = {
            word: vec[off + index]
            for index, word in enumerate(self.slot_words)
        }


class BuggyMemory(MemoryBase):
    """The shipped V-scale memory with the store-dropping bug."""

    def reset(self) -> None:
        super().reset()
        self.wvalid = 0
        self.waddr = 0
        self.wdata = 0

    def load_output(self) -> int:
        if self.pending is None or self.pending[1] != DMEM_LOAD:
            return 0
        addr = self.pending[2]
        # Bypass from the single-entry store buffer.
        if self.wvalid and self.waddr == addr:
            return self.wdata
        return self.read_word(addr)

    def tick(self, new_txn: Optional[Transaction], store_data: int) -> None:
        new_is_store = new_txn is not None and new_txn[1] == DMEM_STORE
        if new_is_store:
            if self.wvalid:
                # Push the buffered slot to the array to make room. The
                # bug: this uses wdata's CURRENT value, which has not yet
                # been updated if the buffered store's data phase is only
                # happening this cycle.
                self.array[self.waddr] = self.wdata
            self.waddr = new_txn[2]
            self.wvalid = 1
        if self.pending is not None and self.pending[1] == DMEM_STORE:
            # The pending store's data phase: clock its data into wdata.
            self.wdata = store_data
        self.pending = new_txn

    def snapshot(self) -> Hashable:
        return (self._array_snapshot(), self.pending, self.wvalid, self.waddr, self.wdata)

    def restore(self, state: Hashable) -> None:
        array, self.pending, self.wvalid, self.waddr, self.wdata = state
        self.array = dict(array)

    def slot_count(self) -> int:
        return super().slot_count() + 3

    def write_slots(self, buf: List[int], base: int) -> None:
        self._write_base_slots(buf, base)
        off = base + self.PENDING_SLOTS + len(self.slot_words)
        buf[off] = self.wvalid
        buf[off + 1] = self.waddr
        buf[off + 2] = self.wdata

    def read_slots(self, vec, base: int) -> None:
        self._read_base_slots(vec, base)
        off = base + self.PENDING_SLOTS + len(self.slot_words)
        self.wvalid = vec[off]
        self.waddr = vec[off + 1]
        self.wdata = vec[off + 2]


class FixedMemory(MemoryBase):
    """The corrected memory: stores commit directly to the array."""

    def load_output(self) -> int:
        if self.pending is None or self.pending[1] != DMEM_LOAD:
            return 0
        return self.read_word(self.pending[2])

    def tick(self, new_txn: Optional[Transaction], store_data: int) -> None:
        if self.pending is not None and self.pending[1] == DMEM_STORE:
            self.array[self.pending[2]] = store_data
        self.pending = new_txn

    def snapshot(self) -> Hashable:
        return (self._array_snapshot(), self.pending)

    def restore(self, state: Hashable) -> None:
        array, self.pending = state
        self.array = dict(array)

    def write_slots(self, buf: List[int], base: int) -> None:
        self._write_base_slots(buf, base)

    def read_slots(self, vec, base: int) -> None:
        self._read_base_slots(vec, base)
