"""The Multi-V-scale processor model (paper Figure 1, Section 5)."""

from repro.vscale.arbiter import Arbiter
from repro.vscale.core import VScaleCore, cached_decode
from repro.vscale.memory import BuggyMemory, FixedMemory, MemoryBase
from repro.vscale.params import (
    DMEM_LOAD,
    DMEM_NONE,
    DMEM_STORE,
    IMEM_WORDS_PER_CORE,
    NUM_CORES,
    core_base_pc,
    imem_base_word,
)
from repro.vscale.soc import MultiVScale
from repro.vscale.tso import STORE_BUFFER_CAPACITY, MultiVScaleTSO
from repro.vscale.verilog import emit_design, emit_top_module, emit_verification_bundle

__all__ = [
    "Arbiter",
    "BuggyMemory",
    "DMEM_LOAD",
    "DMEM_NONE",
    "DMEM_STORE",
    "FixedMemory",
    "IMEM_WORDS_PER_CORE",
    "MemoryBase",
    "MultiVScale",
    "MultiVScaleTSO",
    "STORE_BUFFER_CAPACITY",
    "NUM_CORES",
    "VScaleCore",
    "cached_decode",
    "emit_design",
    "emit_top_module",
    "emit_verification_bundle",
    "core_base_pc",
    "imem_base_word",
]
