"""The memory arbiter connecting the four cores to data memory.

Only one core may start a data-memory transaction per cycle.  The
switching pattern is dictated by a free top-level input — the paper sets
it up this way precisely so the property verifier explores *all*
switching scenarios (§5.2).  The arbiter is pipelined: while
``cur_core`` starts an address phase, ``prev_core`` (granted last cycle)
is completing its data phase (Figures 6, 11).
"""

from __future__ import annotations

from typing import Hashable


class Arbiter:
    """Registered grant: the select input names next cycle's owner."""

    def __init__(self, num_cores: int):
        self.num_cores = num_cores
        self.reset()

    def reset(self) -> None:
        self.cur_core = 0
        self.prev_core = 0

    def granted(self, core: int) -> bool:
        return self.cur_core == core

    def tick(self, select: int) -> None:
        self.prev_core = self.cur_core
        self.cur_core = select % self.num_cores

    def snapshot(self) -> Hashable:
        return (self.cur_core, self.prev_core)

    def restore(self, state: Hashable) -> None:
        self.cur_core, self.prev_core = state

    # -- flat slot protocol (array state backend) ----------------------

    #: ``cur_core`` (slot 0 — the only state a grant choice touches,
    #: which is what makes batched expansion a one-slot patch) and
    #: ``prev_core`` (slot 1).
    SLOT_COUNT = 2

    def write_slots(self, buf, base: int) -> None:
        buf[base] = self.cur_core
        buf[base + 1] = self.prev_core

    def read_slots(self, vec, base: int) -> None:
        self.cur_core = vec[base]
        self.prev_core = vec[base + 1]
