"""The Multi-V-scale SoC: four V-scale cores, an arbiter, data memory.

This is the paper's Figure 1 design as a simulatable
:class:`~repro.rtl.design.Design`.  The free input ``arb_select`` names
the core the arbiter grants next cycle; the property verifier branches
over it every cycle, exactly as JasperGold explored "all possibilities
for this input" (§5.2).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

from repro.errors import RtlError
from repro.isa import encode
from repro.litmus.test import CompiledTest
from repro.rtl.design import Design, Frame, FreeInput, SlotLayout
from repro.vscale.arbiter import Arbiter
from repro.vscale.core import VScaleCore
from repro.vscale.memory import BuggyMemory, FixedMemory, MemoryBase
from repro.vscale.params import DMEM_LOAD, DMEM_STORE, NUM_CORES


class MultiVScale(Design):
    """The four-core V-scale SoC, programmed with one compiled litmus test.

    ``memory_variant`` selects ``"buggy"`` (the shipped V-scale memory
    with the store-dropping bug of §7.1) or ``"fixed"`` (the paper's
    corrected memory).

    ``state_backend`` selects the snapshot representation: ``"array"``
    (the default — interned flat slot vectors with the batched
    expansion kernel, see ``docs/performance.md``), ``"kernel"`` (the
    array representation stepped by a compiled per-design function,
    :mod:`repro.vscale.kernel`), or ``"dict"`` (the original
    nested-tuple snapshots, kept for equivalence cross-checking).
    """

    def __init__(
        self,
        compiled: CompiledTest,
        memory_variant: str = "fixed",
        state_backend: str = "array",
    ):
        if compiled.num_cores != NUM_CORES:
            raise RtlError(f"expected {NUM_CORES}-core compile, got {compiled.num_cores}")
        self.compiled = compiled
        self.memory_variant = memory_variant
        self.cores: List[VScaleCore] = []
        for core_id, program in enumerate(compiled.programs):
            if len(program) > compiled.imem_words_per_core:
                raise RtlError(f"core {core_id}: program too long for imem")
            imem = [encode(instr) for instr in program]
            self.cores.append(
                VScaleCore(core_id, imem, base_pc=compiled.core_base_pc(core_id))
            )
        self.arbiter = Arbiter(NUM_CORES)
        if memory_variant == "buggy":
            self.memory: MemoryBase = BuggyMemory(compiled.initial_data_memory)
        elif memory_variant == "fixed":
            self.memory = FixedMemory(compiled.initial_data_memory)
        else:
            raise RtlError(f"unknown memory variant {memory_variant!r}")
        self.data_words = sorted(compiled.initial_data_memory)
        self._pending_tick = None
        self.reset()
        if state_backend == "array":
            self.enable_array_state()
        elif state_backend == "kernel":
            self.enable_kernel_state()
        elif state_backend != "dict":
            raise RtlError(f"unknown state backend {state_backend!r}")

    # ------------------------------------------------------------------

    def reset(self) -> None:
        for core_id, core in enumerate(self.cores):
            core.reset(self.compiled.reg_init[core_id])
        self.arbiter.reset()
        self.memory.reset()
        self._pending_tick = None

    def free_inputs(self) -> Sequence[FreeInput]:
        return (FreeInput("arb_select", NUM_CORES),)

    # ------------------------------------------------------------------

    def eval_comb(self, inputs) -> Frame:
        select = inputs.get("arb_select", 0)
        granted = self.arbiter.cur_core
        views = [core.dx_view() for core in self.cores]

        stall_dx = [
            view.is_mem and core_id != granted
            for core_id, view in enumerate(views)
        ]

        # Address phase: the granted core's DX memory op starts a txn.
        new_txn = None
        granted_view = views[granted]
        if granted_view.is_mem:
            new_txn = (granted, granted_view.wb_type, granted_view.mem_addr >> 2)

        # Data phase: the transaction started last cycle completes.
        pending = self.memory.pending
        store_data_in = 0
        load_out = 0
        if pending is not None:
            owner_core, kind, _addr = pending
            owner = self.cores[owner_core]
            if kind == DMEM_STORE:
                store_data_in = owner.wb_store_data
            else:
                load_out = self.memory.load_output()

        frame: Frame = {}
        for core_id, core in enumerate(self.cores):
            view = views[core_id]
            prefix = f"core[{core_id}]."
            frame[prefix + "PC_IF"] = core.pc_if
            frame[prefix + "PC_DX"] = view.pc if view.valid else 0
            frame[prefix + "PC_WB"] = core.wb_pc if core.wb_valid else 0
            frame[prefix + "stall_IF"] = int(stall_dx[core_id] or core.fetch_stop)
            frame[prefix + "stall_DX"] = int(stall_dx[core_id])
            frame[prefix + "stall_WB"] = 0
            frame[prefix + "dmem_type_DX"] = view.wb_type if view.valid else 0
            frame[prefix + "dmem_type_WB"] = core.wb_type
            is_load_data_phase = (
                pending is not None
                and pending[0] == core_id
                and pending[1] == DMEM_LOAD
                and core.wb_type == DMEM_LOAD
            )
            frame[prefix + "load_data_WB"] = load_out if is_load_data_phase else 0
            frame[prefix + "store_data_WB"] = core.wb_store_data
            frame[prefix + "halted"] = int(core.halted)
        frame["arbiter.cur_core"] = self.arbiter.cur_core
        frame["arbiter.prev_core"] = self.arbiter.prev_core
        for word in self.data_words:
            frame[f"mem[{word}]"] = self.memory.read_word(word)
        if isinstance(self.memory, BuggyMemory):
            frame["mem.wvalid"] = self.memory.wvalid
            frame["mem.waddr"] = self.memory.waddr
            frame["mem.wdata"] = self.memory.wdata

        self._pending_tick = (select, views, stall_dx, new_txn, store_data_in, load_out, pending)
        return frame

    def tick(self) -> None:
        if self._pending_tick is None:
            raise RtlError("tick() called before eval_comb()")
        select, views, stall_dx, new_txn, store_data_in, load_out, pending = self._pending_tick
        self._pending_tick = None
        self.memory.tick(new_txn, store_data_in)
        self.arbiter.tick(select)
        for core_id, core in enumerate(self.cores):
            load_data = 0
            if (
                pending is not None
                and pending[0] == core_id
                and pending[1] == DMEM_LOAD
            ):
                load_data = load_out
            core.tick(views[core_id], stall_dx[core_id], load_data)

    # ------------------------------------------------------------------
    # State protocol: dict backend (nested tuples) ...
    # ------------------------------------------------------------------

    def snapshot_state(self) -> Hashable:
        return (
            tuple(core.snapshot() for core in self.cores),
            self.arbiter.snapshot(),
            self.memory.snapshot(),
        )

    def restore_state(self, state: Hashable) -> None:
        core_states, arb_state, mem_state = state
        for core, core_state in zip(self.cores, core_states):
            core.restore(core_state)
        self.arbiter.restore(arb_state)
        self.memory.restore(mem_state)
        self._pending_tick = None

    # ------------------------------------------------------------------
    # ... and the flat slot layout (array backend)
    # ------------------------------------------------------------------

    def slot_layout(self) -> Optional[SlotLayout]:
        layout = SlotLayout()
        self._core_bases = [
            layout.block(f"core[{core.core_id}]", core.SLOT_COUNT)
            for core in self.cores
        ]
        self._arb_base = layout.block("arbiter", self.arbiter.SLOT_COUNT)
        self._mem_base = layout.block("memory", self.memory.slot_count())
        return layout

    def write_slots(self, buf: List[int]) -> None:
        for core, base in zip(self.cores, self._core_bases):
            core.write_slots(buf, base)
        self.arbiter.write_slots(buf, self._arb_base)
        self.memory.write_slots(buf, self._mem_base)

    def read_slots(self, vec) -> None:
        for core, base in zip(self.cores, self._core_bases):
            core.read_slots(vec, base)
        self.arbiter.read_slots(vec, self._arb_base)
        self.memory.read_slots(vec, self._mem_base)
        self._pending_tick = None

    def step_batch(self, state, input_space, frame_hook):
        """Batched expansion sharing one settled evaluation.

        ``arb_select`` feeds only the arbiter's clock edge — the settled
        frame and the core/memory next-state are identical for every
        grant choice — so one restore + ``eval_comb`` + ``tick`` covers
        the whole input space, and each choice's successor differs from
        its neighbours in exactly one slot (``arbiter.cur_core``).
        """
        backend = self.state_backend
        if backend == "kernel":
            n = len(input_space)
            interner = self._interner
            kern = self.__dict__.get("_kernel") or self.step_kernel
            frame, buf = kern.step(interner.state(state), frame_hook, n)
            self.batch_expansions += 1
            self.kernel_batched_steps += 1
            if buf is None:
                return [None] * n
            self.slots_copied += len(buf)
            cur_slot = self._arb_base
            intern = interner.intern
            edges = []
            append = edges.append
            for select in self._select_values(input_space):
                buf[cur_slot] = select
                append((frame, intern(tuple(buf))))
            return edges
        if backend != "array":
            return super().step_batch(state, input_space, frame_hook)
        n = len(input_space)
        self.restore(state)
        frame = self.eval_comb(input_space[0])
        self.batch_expansions += 1
        if not frame_hook(frame, n):
            return [None] * n
        self.tick()
        buf = self._slot_buf
        self.write_slots(buf)
        self.slots_copied += len(buf)
        cur_slot = self._arb_base  # the only select-dependent slot
        interner = self._interner
        num_cores = self.arbiter.num_cores
        edges = []
        for inputs in input_space:
            buf[cur_slot] = inputs.get("arb_select", 0) % num_cores
            edges.append((frame, interner.intern(tuple(buf))))
        return edges

    def _select_values(self, input_space):
        """``arb_select % num_cores`` per input choice, memoized on the
        caller's (stable) input-space object — the only slot that
        varies across a batch's successors."""
        cached = self.__dict__.get("_selects_cache")
        if cached is not None and cached[0] is input_space:
            return cached[1]
        num_cores = self.arbiter.num_cores
        selects = tuple(
            inputs.get("arb_select", 0) % num_cores for inputs in input_space
        )
        self._selects_cache = (input_space, selects)
        return selects

    def checked_step_kernel(self, checker):
        """The fused compiled step for ``checker`` (see
        :func:`repro.vscale.kernel.build_checked_step`), memoized per
        checker instance; ``None`` off the kernel backend or when the
        checker falls outside the compilable fragment."""
        if self.state_backend != "kernel":
            return None
        cache = self.__dict__.setdefault("_checked_steps", {})
        key = id(checker)
        if key not in cache:
            from repro.vscale.kernel import build_checked_step

            cache[key] = build_checked_step(self, checker)
        return cache[key]

    def step_batch_checked(self, state, input_space, checker, first):
        """Kernel-backend fast path: one fused comb-settle + compiled
        assumption check + tick, then the per-choice arbiter-grant
        patch; counter effects are identical to the hook path."""
        fused = self.checked_step_kernel(checker)
        if fused is None:
            return super().step_batch_checked(state, input_space, checker, first)
        n = len(input_space)
        interner = self._interner
        frame, buf = fused(interner.state(state), checker, first, n)
        self.batch_expansions += 1
        self.kernel_batched_steps += 1
        if frame is None:
            return [None] * n
        self.slots_copied += len(buf)
        cur_slot = self._arb_base
        intern = interner.intern
        edges = []
        append = edges.append
        for select in self._select_values(input_space):
            buf[cur_slot] = select
            append((frame, intern(tuple(buf))))
        return edges

    def successor_batch(self, states, input_space):
        """Frame-free frontier expansion; on the kernel backend with
        numpy available, the whole frontier steps as one
        ``(n_states, n_slots)`` slot matrix and only the per-choice
        arbiter-grant slot is patched per successor."""
        kern = (
            self.__dict__.get("_kernel") or self.step_kernel
            if self.state_backend == "kernel"
            else None
        )
        if kern is None or not kern.matrix_ready(len(states)):
            return super().successor_batch(states, input_space)
        np = kern.np
        interner = self._interner
        mat = np.array(
            [interner.state(s) for s in states], dtype=np.int64
        )
        out = kern.step_matrix(mat)
        self.kernel_batched_steps += 1
        self.batch_expansions += len(states)
        self.slots_copied += int(out.size)
        cur_slot = self._arb_base
        selects = self._select_values(input_space)
        results = []
        for row in out.tolist():
            successors = []
            for select in selects:
                row[cur_slot] = select
                successors.append(interner.intern(tuple(row)))
            results.append(successors)
        return results

    def build_step_kernel(self):
        from repro.vscale.kernel import build_multi_vscale_kernel

        return build_multi_vscale_kernel(self)

    # ------------------------------------------------------------------

    def all_halted(self) -> bool:
        """Every core has retired its halt (test instructions complete)."""
        return all(core.halted for core in self.cores)

    def drained(self) -> bool:
        """All halted with empty pipelines and no in-flight transaction:
        the architectural state can no longer change."""
        return (
            self.all_halted()
            and all(not c.dx_valid and not c.wb_valid for c in self.cores)
            and self.memory.pending is None
        )

    def register_results(self) -> Dict[str, int]:
        """Litmus output registers read back from the register files
        (meaningful once :meth:`drained`)."""
        results: Dict[str, int] = {}
        for op in self.compiled.ops:
            if op.op.is_load:
                results[op.op.out] = self.cores[op.core].regs[op.data_reg]
        return results

    def memory_results(self) -> Dict[str, int]:
        """Final litmus variable values read back from data memory."""
        return {
            var: self.memory.read_word(word)
            for var, word in self.compiled.address_map.items()
        }
