"""Compiled step kernel for the Multi-V-scale SoC.

:func:`build_multi_vscale_kernel` generates, per design instance, the
straight-line step functions described in :mod:`repro.rtl.kernel`.
Everything static is baked in at compile time: every slot index is a
literal in the generated source, each core's instruction memory becomes
a tuple constant plus a precomputed decode table (``word -> (kind, rs1,
rd/rs2, imm)``), and the declared data words become a ``word -> slot``
dict.  The generated scalar ``step`` mirrors
:meth:`MultiVScale.eval_comb` + :meth:`MultiVScale.tick` statement for
statement — including the frame's exact key insertion order, the
load->store writeback forwarding, the fetch-past-imem error, and the
memory word-set growth guard — so the kernel backend is bit-identical
to the interpreter by construction *and* by the differential tests.

The numpy matrix path (:func:`_build_matrix_kernel`) steps a whole
``(n_states, n_slots)`` int64 frontier per call with the same
semantics, unrolled per core with data-dependent register/word indices
resolved by fancy indexing.

Decode kind codes (``DMEM_LOAD``/``DMEM_STORE`` align with 1/2 on
purpose — the view's ``wb_type`` is just ``kind if kind <= 2 else 0``):

===== ==========
kind  instruction
===== ==========
0     nop / fence / bubble
1     lw
2     sw
3     halt
4     addi
5     lui
===== ==========
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import RtlError, SvaError
from repro.isa import Addi, Halt, Lui, Lw, Sw
from repro.rtl.kernel import StepKernel, compile_source, numpy_or_none
from repro.vscale.core import cached_decode
from repro.vscale.memory import BuggyMemory, MemoryBase

_M32 = 0xFFFFFFFF

#: Decode entry: (kind, rs1, rd-or-rs2, imm).  For ``lui`` the shifted
#: immediate is precomputed so the kernel never shifts at step time.
DecodeEntry = Tuple[int, int, int, int]


def decode_entry(word: int) -> DecodeEntry:
    if word == 0:
        # The bubble word: dx_valid is always clear alongside it, so the
        # interpreter never decodes it; the tables map it to "nothing".
        return (0, 0, 0, 0)
    instr = cached_decode(word)
    if isinstance(instr, Lw):
        return (1, instr.rs1, instr.rd, instr.imm)
    if isinstance(instr, Sw):
        return (2, instr.rs1, instr.rs2, instr.imm)
    if isinstance(instr, Halt):
        return (3, 0, 0, 0)
    if isinstance(instr, Addi):
        return (4, instr.rs1, instr.rd, instr.imm)
    if isinstance(instr, Lui):
        return (5, 0, instr.rd, (instr.imm20 << 12) & _M32)
    return (0, 0, 0, 0)  # Nop / Fence


def _extend_decode(table: Dict[int, DecodeEntry], word: int) -> DecodeEntry:
    entry = decode_entry(word)
    table[word] = entry
    return entry


def _fetch_error(core_id: int, pc: int) -> RtlError:
    return RtlError(
        f"core {core_id}: fetch past instruction memory "
        f"at PC {pc:#x} (missing halt?)"
    )


def _grow_error(word: int) -> RtlError:
    # Identical wording to MemoryBase._write_base_slots: the kernel hits
    # the guard during its fused tick, the interpreter at write_slots.
    return RtlError(
        "memory grew words outside the declared data set "
        f"{[word]}; the flat state layout is static, so every "
        "store target must appear in the initial data memory"
    )


class _KernelSpec:
    """Static parameters harvested from a MultiVScale instance."""

    def __init__(self, design):
        self.num_cores = design.arbiter.num_cores
        self.core_bases: List[int] = list(design._core_bases)
        self.base_pcs = [core.base_pc for core in design.cores]
        self.imems = [tuple(core.imem) for core in design.cores]
        self.arb = design._arb_base
        self.mem = design._mem_base
        memory = design.memory
        self.buggy = isinstance(memory, BuggyMemory)
        self.words: Tuple[int, ...] = tuple(memory.slot_words)
        self.mem_slot0 = self.mem + MemoryBase.PENDING_SLOTS
        #: word address -> absolute slot index of its memory cell.
        self.memidx = {
            word: self.mem_slot0 + i for i, word in enumerate(self.words)
        }
        self.woff = self.mem_slot0 + len(self.words)  # buggy-only wvalid
        #: owner core id -> absolute slot of its wb_store_data.
        self.sd_off = tuple(base + 8 for base in self.core_bases)
        self.size = design._slot_layout.size

    def key(self) -> Tuple:
        """Everything the generated source depends on — the compile
        cache key, so equal designs (same programs, same variant) share
        one compiled kernel across instances and runs."""
        return (
            self.num_cores,
            tuple(self.core_bases),
            tuple(self.base_pcs),
            tuple(self.imems),
            self.arb,
            self.mem,
            self.buggy,
            self.words,
            self.size,
        )


# ----------------------------------------------------------------------
# Scalar codegen
# ----------------------------------------------------------------------


def _emit_comb(spec: _KernelSpec, w) -> None:
    """The shared combinational phase: decode, stall, grant, memory
    data phase.  Binds per-core locals k/ma/ld/wr/alu/rs2x/ism/st and
    globals granted/g_ism/g_k/g_mw/pv/pc_/pk/pw/sdi/lo."""
    for i, B in enumerate(spec.core_bases):
        R = B + 15
        w(f"pcif{i} = vec[{B}]")
        w(f"fs{i} = vec[{B + 1}]")
        w(f"dxv{i} = vec[{B + 2}]")
        w(f"k{i} = 0; ma{i} = 0; ld{i} = 0; wr{i} = -1; alu{i} = 0; rs2x{i} = 0")
        w(f"if dxv{i}:")
        w(f"    t = DEC{i}.get(vec[{B + 3}])")
        w("    if t is None:")
        w(f"        t = _dec(DEC{i}, vec[{B + 3}])")
        w(f"    k{i} = t[0]")
        w(f"    if k{i} == 1:")
        w(f"        ma{i} = (vec[{R} + t[1]] + t[3]) & {_M32}")
        w(f"        ld{i} = t[2]")
        w(f"    elif k{i} == 2:")
        w(f"        ma{i} = (vec[{R} + t[1]] + t[3]) & {_M32}")
        w(f"        rs2x{i} = t[2]")
        w(f"    elif k{i} == 4:")
        w(f"        wr{i} = t[2]; alu{i} = (vec[{R} + t[1]] + t[3]) & {_M32}")
        w(f"    elif k{i} == 5:")
        w(f"        wr{i} = t[2]; alu{i} = t[3]")
        w(f"ism{i} = 1 <= k{i} <= 2")
    w(f"granted = vec[{spec.arb}]")
    for i in range(spec.num_cores):
        w(f"st{i} = ism{i} and granted != {i}")
    # The granted core's DX view opens this cycle's address phase.
    for i in range(spec.num_cores):
        head = "if" if i == 0 else "elif"
        cond = f"granted == {i}" if i < spec.num_cores - 1 else ""
        if cond:
            w(f"{head} {cond}:")
        else:
            w("else:")
        w(f"    g_ism = ism{i}; g_k = k{i}; g_mw = ma{i} >> 2")
    # Data phase of last cycle's transaction.
    m = spec.mem
    w(f"pv = vec[{m}]")
    w("sdi = 0; lo = 0; pc_ = -1; pk = 0; pw = 0")
    w("if pv:")
    w(f"    pc_ = vec[{m + 1}]; pk = vec[{m + 2}]; pw = vec[{m + 3}]")
    w("    if pk == 2:")
    w("        sdi = vec[SD_OFF[pc_]]")
    if spec.buggy:
        w(f"    elif vec[{spec.woff}] and vec[{spec.woff + 1}] == pw:")
        w(f"        lo = vec[{spec.woff + 2}]")
        w("    else:")
        w("        j = MEMIDX.get(pw)")
        w("        if j is not None:")
        w("            lo = vec[j]")
    else:
        w("    else:")
        w("        j = MEMIDX.get(pw)")
        w("        if j is not None:")
        w("            lo = vec[j]")


def _frame_pairs(spec: _KernelSpec) -> List[Tuple[str, str]]:
    """``(frame key, comb-local expression)`` pairs in exactly
    MultiVScale.eval_comb's insertion order — the frame dict literal
    and the fused assumption compiler both read from this one map."""
    pairs: List[Tuple[str, str]] = []
    for i, B in enumerate(spec.core_bases):
        p = f"core[{i}]."
        pairs.append((p + "PC_IF", f"pcif{i}"))
        pairs.append((p + "PC_DX", f"vec[{B + 4}] if dxv{i} else 0"))
        pairs.append((p + "PC_WB", f"vec[{B + 6}] if vec[{B + 5}] else 0"))
        pairs.append((p + "stall_IF", f"1 if (st{i} or fs{i}) else 0"))
        pairs.append((p + "stall_DX", f"1 if st{i} else 0"))
        pairs.append((p + "stall_WB", "0"))
        pairs.append((p + "dmem_type_DX", f"k{i} if k{i} <= 2 else 0"))
        pairs.append((p + "dmem_type_WB", f"vec[{B + 7}]"))
        pairs.append(
            (
                p + "load_data_WB",
                f"lo if (pc_ == {i} and pk == 1 and vec[{B + 7}] == 1) else 0",
            )
        )
        pairs.append((p + "store_data_WB", f"vec[{B + 8}]"))
        pairs.append((p + "halted", f"vec[{B + 14}]"))
    pairs.append(("arbiter.cur_core", "granted"))
    pairs.append(("arbiter.prev_core", f"vec[{spec.arb + 1}]"))
    for word in spec.words:
        pairs.append((f"mem[{word}]", f"vec[{spec.memidx[word]}]"))
    if spec.buggy:
        pairs.append(("mem.wvalid", f"vec[{spec.woff}]"))
        pairs.append(("mem.waddr", f"vec[{spec.woff + 1}]"))
        pairs.append(("mem.wdata", f"vec[{spec.woff + 2}]"))
    return pairs


def _emit_frame(spec: _KernelSpec, w, extra: str = "") -> None:
    """The settled frame as one dict literal — key order is exactly
    MultiVScale.eval_comb's insertion order.  ``extra`` appends
    trailing entries (the fused path stamps ``'first'`` here, matching
    the reach-graph hook that adds it after ``eval_comb``)."""
    w("frame = {")
    for key, expr in _frame_pairs(spec):
        w(f"    {key!r}: {expr},")
    if extra:
        w(f"    {extra},")
    w("}")


def _emit_tick(spec: _KernelSpec, w) -> None:
    """The sequential phase into a fresh ``buf`` (the successor vector,
    arbiter grant slot left for the caller to patch per choice)."""
    w("buf = list(vec)")
    m = spec.mem
    # Memory tick.
    if spec.buggy:
        wo = spec.woff
        w("if g_ism and g_k == 2:")
        w(f"    if vec[{wo}]:")
        w(f"        j = MEMIDX.get(vec[{wo + 1}])")
        w("        if j is None:")
        w(f"            raise _grow(vec[{wo + 1}])")
        w(f"        buf[j] = vec[{wo + 2}]")
        w(f"    buf[{wo}] = 1; buf[{wo + 1}] = g_mw")
        w("if pk == 2:")
        w(f"    buf[{wo + 2}] = sdi")
    else:
        w("if pk == 2:")
        w("    j = MEMIDX.get(pw)")
        w("    if j is None:")
        w("        raise _grow(pw)")
        w("    buf[j] = sdi")
    w("if g_ism:")
    w(f"    buf[{m}] = 1; buf[{m + 1}] = granted; buf[{m + 2}] = g_k; buf[{m + 3}] = g_mw")
    w("else:")
    w(f"    buf[{m}] = 0; buf[{m + 1}] = 0; buf[{m + 2}] = 0; buf[{m + 3}] = 0")
    # Arbiter tick (cur_core is the caller-patched free-input slot).
    w(f"buf[{spec.arb + 1}] = granted")
    # Core ticks.
    for i, B in enumerate(spec.core_bases):
        R = B + 15
        w(f"if vec[{B + 5}]:")
        w(f"    if vec[{B + 7}] == 1 and vec[{B + 9}]:")
        w(f"        buf[{R} + vec[{B + 9}]] = lo if (pc_ == {i} and pk == 1) else 0")
        w(f"    elif vec[{B + 11}] > 0:")
        w(f"        buf[{R} + vec[{B + 11}]] = vec[{B + 12}]")
        w(f"    if vec[{B + 10}]:")
        w(f"        buf[{B + 14}] = 1")
        w(f"if st{i} or not dxv{i}:")
        w(
            f"    buf[{B + 5}] = 0; buf[{B + 6}] = 0; buf[{B + 7}] = 0; "
            f"buf[{B + 8}] = 0; buf[{B + 9}] = 0"
        )
        w(
            f"    buf[{B + 10}] = 0; buf[{B + 11}] = -1; buf[{B + 12}] = 0; "
            f"buf[{B + 13}] = 0"
        )
        w("else:")
        w(f"    buf[{B + 5}] = 1")
        w(f"    buf[{B + 6}] = vec[{B + 4}]")
        w(f"    buf[{B + 7}] = k{i} if k{i} <= 2 else 0")
        # Store data reads the register file *after* writeback (the
        # load->store forwarding the interpreter gets from its phase
        # ordering), hence buf not vec.
        w(f"    buf[{B + 8}] = buf[{R} + rs2x{i}] if k{i} == 2 else 0")
        w(f"    buf[{B + 9}] = ld{i}")
        w(f"    buf[{B + 10}] = 1 if k{i} == 3 else 0")
        w(f"    buf[{B + 11}] = wr{i}")
        w(f"    buf[{B + 12}] = alu{i}")
        w(f"    buf[{B + 13}] = ma{i}")
        w(f"if not st{i}:")
        w(f"    if dxv{i} and k{i} == 3:")
        w(f"        fs{i} = 1")
        w(f"        buf[{B + 1}] = 1")
        w(f"    if fs{i}:")
        w(f"        buf[{B + 2}] = 0; buf[{B + 3}] = 0; buf[{B + 4}] = 0")
        w("    else:")
        w(f"        x = (pcif{i} - {spec.base_pcs[i]}) >> 2")
        w(f"        if 0 <= x < {len(spec.imems[i])}:")
        w(f"            buf[{B + 2}] = 1; buf[{B + 3}] = IMEM{i}[x]")
        w(f"            buf[{B + 4}] = pcif{i}; buf[{B}] = pcif{i} + 4")
        w("        else:")
        w(f"            raise _fetch({i}, pcif{i})")


def _generate_step_source(spec: _KernelSpec, with_frame: bool) -> str:
    lines: List[str] = []
    indent = [1]

    def w(line: str) -> None:
        lines.append("    " * indent[0] + line)

    if with_frame:
        lines.append("def step(vec, hook=None, repeats=1):")
    else:
        lines.append("def step_state(vec):")
    _emit_comb(spec, w)
    if with_frame:
        _emit_frame(spec, w)
        w("if hook is not None and not hook(frame, repeats):")
        w("    return frame, None")
    _emit_tick(spec, w)
    if with_frame:
        w("return frame, buf")
    else:
        w("return buf")
    return "\n".join(lines) + "\n"


def _generate_drained_source(spec: _KernelSpec) -> str:
    halted = " and ".join(f"vec[{B + 14}]" for B in spec.core_bases)
    busy = " or ".join(
        f"vec[{B + 2}] or vec[{B + 5}]" for B in spec.core_bases
    )
    return (
        "def drained(vec):\n"
        f"    return bool(({halted}) and not ({busy}) "
        f"and not vec[{spec.mem}])\n"
    )


# ----------------------------------------------------------------------
# numpy matrix path
# ----------------------------------------------------------------------


def _build_matrix_kernel(np, spec: _KernelSpec):
    """Vectorized step over a ``(n_states, n_slots)`` int64 matrix.

    Same semantics as the scalar kernel, unrolled per core; per-row
    register and memory-word indices resolve through fancy indexing,
    instruction decode through ``searchsorted`` on each core's sorted
    word table.  Returns ``(step_matrix, drained_matrix)``.
    """
    M32 = np.int64(_M32)
    C = spec.num_cores
    arb, mem = spec.arb, spec.mem
    buggy, woff = spec.buggy, spec.woff
    slot_words = np.asarray(spec.words, dtype=np.int64)
    nwords = len(spec.words)
    mem_slot0 = spec.mem_slot0
    sd_off = np.asarray(spec.sd_off, dtype=np.int64)
    core_ids = np.arange(C, dtype=np.int64)

    dec_tables = []
    for i in range(C):
        words = sorted(set(spec.imems[i]) | {0})
        entries = [decode_entry(word) for word in words]
        dec_tables.append(
            (
                np.asarray(words, dtype=np.int64),
                np.asarray([e[0] for e in entries], dtype=np.int64),
                np.asarray([e[1] for e in entries], dtype=np.int64),
                np.asarray([e[2] for e in entries], dtype=np.int64),
                np.asarray([e[3] for e in entries], dtype=np.int64),
            )
        )
    imems = [
        np.asarray(imem if imem else (0,), dtype=np.int64)
        for imem in spec.imems
    ]

    def _word_slots(addrs):
        """Map word addresses to memory-cell column offsets; returns
        (clipped offsets, found mask)."""
        if nwords == 0:
            zero = np.zeros(len(addrs), dtype=np.int64)
            return zero, zero != 0
        pos = np.searchsorted(slot_words, addrs)
        pos = np.minimum(pos, nwords - 1)
        return pos, slot_words[pos] == addrs

    def step_matrix(mat):
        n = mat.shape[0]
        rows = np.arange(n)
        out = mat.copy()

        kinds, mas, alus, lds, wrs, rs2s, isms = [], [], [], [], [], [], []
        for i, B in enumerate(spec.core_bases):
            dwords, dk, da1, da2, da3 = dec_tables[i]
            dxv = mat[:, B + 2] != 0
            dxw = mat[:, B + 3]
            pos = np.minimum(np.searchsorted(dwords, dxw), len(dwords) - 1)
            found = dxv & (dwords[pos] == dxw)
            k = np.where(found, dk[pos], 0)
            a1 = np.where(found, da1[pos], 0)
            a2 = np.where(found, da2[pos], 0)
            a3 = np.where(found, da3[pos], 0)
            addsum = (mat[rows, B + 15 + a1] + a3) & M32
            is_mem = (k == 1) | (k == 2)
            kinds.append(k)
            mas.append(np.where(is_mem, addsum, 0))
            alus.append(
                np.where(k == 4, addsum, np.where(k == 5, a3, 0))
            )
            lds.append(np.where(k == 1, a2, 0))
            wrs.append(np.where(k >= 4, a2, -1))
            rs2s.append(np.where(k == 2, a2, 0))
            isms.append(is_mem)

        ISM = np.stack(isms, axis=1)
        KK = np.stack(kinds, axis=1)
        MAS = np.stack(mas, axis=1)
        granted = mat[:, arb]
        g_ism = ISM[rows, granted]
        g_k = KK[rows, granted]
        g_mw = MAS[rows, granted] >> 2
        stall = ISM & (core_ids[None, :] != granted[:, None])

        pv = mat[:, mem] != 0
        pcore = mat[:, mem + 1]
        pk = np.where(pv, mat[:, mem + 2], 0)
        pw = mat[:, mem + 3]
        p_store = pv & (pk == 2)
        p_load = pv & (pk == 1)
        sdi = np.where(p_store, mat[rows, sd_off[pcore]], 0)
        wpos, wfound = _word_slots(pw)
        mem_val = np.where(wfound, mat[rows, mem_slot0 + wpos], 0)
        if buggy:
            wv = mat[:, woff] != 0
            wa = mat[:, woff + 1]
            wd = mat[:, woff + 2]
            lo = np.where(
                p_load, np.where(wv & (wa == pw), wd, mem_val), 0
            )
        else:
            lo = np.where(p_load, mem_val, 0)

        # -- memory tick -----------------------------------------------
        if buggy:
            new_store = g_ism & (g_k == 2)
            push = new_store & wv
            if push.any():
                ppos, pfound = _word_slots(wa)
                bad = push & ~pfound
                if bad.any():
                    raise _grow_error(int(wa[int(bad.argmax())]))
                out[rows[push], mem_slot0 + ppos[push]] = wd[push]
            out[:, woff] = np.where(new_store, 1, mat[:, woff])
            out[:, woff + 1] = np.where(new_store, g_mw, wa)
            out[:, woff + 2] = np.where(p_store, sdi, wd)
        else:
            if p_store.any():
                spos, sfound = _word_slots(pw)
                bad = p_store & ~sfound
                if bad.any():
                    raise _grow_error(int(pw[int(bad.argmax())]))
                out[rows[p_store], mem_slot0 + spos[p_store]] = sdi[p_store]
        gi = g_ism.astype(np.int64)
        out[:, mem] = gi
        out[:, mem + 1] = np.where(g_ism, granted, 0)
        out[:, mem + 2] = np.where(g_ism, g_k, 0)
        out[:, mem + 3] = np.where(g_ism, g_mw, 0)
        out[:, arb + 1] = granted

        # -- core ticks ------------------------------------------------
        for i, B in enumerate(spec.core_bases):
            k = kinds[i]
            stall_i = stall[:, i]
            dxv = mat[:, B + 2] != 0
            wbv = mat[:, B + 5] != 0
            wbt = mat[:, B + 7]
            wbld = mat[:, B + 9]
            wbwr = mat[:, B + 11]
            ld_data = np.where(pv & (pcore == i) & (pk == 1), lo, 0)
            is_load_wb = (wbt == 1) & (wbld != 0)
            c1 = wbv & is_load_wb
            if c1.any():
                out[rows[c1], B + 15 + wbld[c1]] = ld_data[c1]
            c2 = wbv & ~is_load_wb & (wbwr > 0)
            if c2.any():
                out[rows[c2], B + 15 + wbwr[c2]] = mat[c2, B + 12]
            out[:, B + 14] = np.where(
                wbv & (mat[:, B + 10] != 0), 1, mat[:, B + 14]
            )

            passing = ~(stall_i | ~dxv)
            out[:, B + 5] = passing.astype(np.int64)
            out[:, B + 6] = np.where(passing, mat[:, B + 4], 0)
            out[:, B + 7] = np.where(passing & (k <= 2), k, 0)
            # Post-writeback register read: store data forwards.
            sdval = out[rows, B + 15 + rs2s[i]]
            out[:, B + 8] = np.where(passing & (k == 2), sdval, 0)
            out[:, B + 9] = np.where(passing, lds[i], 0)
            out[:, B + 10] = np.where(passing & (k == 3), 1, 0)
            out[:, B + 11] = np.where(passing, wrs[i], -1)
            out[:, B + 12] = np.where(passing, alus[i], 0)
            out[:, B + 13] = np.where(passing, mas[i], 0)

            nostall = ~stall_i
            fs_new = (mat[:, B + 1] != 0) | (dxv & (k == 3))
            out[:, B + 1] = np.where(nostall, fs_new, mat[:, B + 1])
            fetch = nostall & ~fs_new
            drain = nostall & fs_new
            imem = imems[i]
            x = (mat[:, B] - spec.base_pcs[i]) >> 2
            bad = fetch & ((x < 0) | (x >= len(imem)))
            if bad.any():
                row = int(bad.argmax())
                raise _fetch_error(i, int(mat[row, B]))
            xc = np.clip(x, 0, len(imem) - 1)
            word = imem[xc]
            out[:, B + 2] = np.where(
                fetch, 1, np.where(drain, 0, mat[:, B + 2])
            )
            out[:, B + 3] = np.where(
                fetch, word, np.where(drain, 0, mat[:, B + 3])
            )
            out[:, B + 4] = np.where(
                fetch, mat[:, B], np.where(drain, 0, mat[:, B + 4])
            )
            out[:, B] = np.where(fetch, mat[:, B] + 4, mat[:, B])
        return out

    def drained_matrix(mat):
        quiet = mat[:, mem] == 0
        for B in spec.core_bases:
            quiet &= (
                (mat[:, B + 14] != 0)
                & (mat[:, B + 2] == 0)
                & (mat[:, B + 5] == 0)
            )
        return quiet

    return step_matrix, drained_matrix


# ----------------------------------------------------------------------
# Fused assumption checking
# ----------------------------------------------------------------------


def _bool_src(expr, sigs: Dict[str, str]) -> str:
    """Compile a :class:`~repro.sva.ast.BoolExpr` to a Python expression
    over the kernel's comb locals.  Truthiness, short-circuiting, and
    the missing-signal-reads-0 default all match ``evaluate(frame)``."""
    from repro.sva import ast

    if isinstance(expr, ast.BConst):
        return "True" if expr.value else "False"
    if isinstance(expr, ast.Sig):
        src = sigs.get(expr.name)
        return f"({src})" if src is not None else "False"
    if isinstance(expr, ast.SigEq):
        src = sigs.get(expr.name)
        if src is None:
            return repr(0 == expr.value)
        return f"(({src}) == {expr.value})"
    if isinstance(expr, ast.BNot):
        return f"(not {_bool_src(expr.body, sigs)})"
    if isinstance(expr, ast.BAnd):
        if not expr.operands:
            return "True"
        return "(" + " and ".join(_bool_src(op, sigs) for op in expr.operands) + ")"
    if isinstance(expr, ast.BOr):
        if not expr.operands:
            return "False"
        return "(" + " or ".join(_bool_src(op, sigs) for op in expr.operands) + ")"
    raise SvaError(f"cannot compile boolean expression {expr!r}")


def _prop_src(prop, sigs: Dict[str, str]) -> str:
    """Compile a single-cycle assumption consequent, mirroring
    ``repro.sva.monitor._bool_property``."""
    from repro.sva import ast

    if isinstance(prop, ast.PConst):
        return "True" if prop.value else "False"
    if isinstance(prop, ast.PSeq):
        if isinstance(prop.seq, ast.SBool):
            return _bool_src(prop.seq.expr, sigs)
        raise SvaError("assumption consequents must be single-cycle")
    if isinstance(prop, ast.PAnd):
        if not prop.operands:
            return "True"
        return "(" + " and ".join(_prop_src(op, sigs) for op in prop.operands) + ")"
    if isinstance(prop, ast.POr):
        if not prop.operands:
            return "False"
        return "(" + " or ".join(_prop_src(op, sigs) for op in prop.operands) + ")"
    if isinstance(prop, ast.PImpl):
        return (
            f"((not {_bool_src(prop.antecedent, sigs)}) "
            f"or {_prop_src(prop.consequent, sigs)})"
        )
    raise SvaError(f"assumption consequent too complex: {prop!r}")


def _generate_checked_source(spec: _KernelSpec, checks) -> str:
    """``step_checked(vec, checker, first, repeats)``: comb settle,
    compiled assumption check (exact ``frame_ok_repeated`` counter
    effects), then — only when the frame survives — the frame dict
    literal (with ``'first'`` stamped last, like the reach-graph hook)
    and the sequential phase.  Pruned cycles never materialize a frame
    and never raise sequential-phase errors, exactly like the
    interpreter, which only ticks after the hook passes."""
    sigs = {key: expr for key, expr in _frame_pairs(spec)}
    sigs["first"] = "first"
    lines: List[str] = []
    indent = [1]

    def w(line: str) -> None:
        lines.append("    " * indent[0] + line)

    lines.append("def step_checked(vec, checker, first, repeats):")
    _emit_comb(spec, w)
    w("_f = 0")
    for _name, antecedent, consequent in checks:
        w(f"if {_bool_src(antecedent, sigs)}:")
        w("    _f += 1")
        w(f"    if not {_prop_src(consequent, sigs)}:")
        w("        checker.antecedent_firings += _f * repeats")
        w("        checker.pruned_frames += repeats")
        w("        return None, None")
    w("if _f:")
    w("    checker.antecedent_firings += _f * repeats")
    _emit_frame(spec, w, extra="'first': first")
    _emit_tick(spec, w)
    w("return frame, buf")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------


def _make_namespace(spec: _KernelSpec) -> dict:
    namespace = {
        "_dec": _extend_decode,
        "_fetch": _fetch_error,
        "_grow": _grow_error,
        "MEMIDX": dict(spec.memidx),
        "SD_OFF": spec.sd_off,
    }
    for i, imem in enumerate(spec.imems):
        namespace[f"IMEM{i}"] = imem
        namespace[f"DEC{i}"] = {word: decode_entry(word) for word in imem}
    return namespace


#: spec.key() -> StepKernel.  Kernels are pure functions of the spec,
#: so equal designs (every benchmark repeat, every fuzz worker on the
#: same test) share one compiled kernel instead of recompiling.
_KERNEL_CACHE: Dict[Tuple, StepKernel] = {}

#: (spec.key(), checks) -> fused step_checked function (or None when
#: the checker's properties fall outside the compilable single-cycle
#: fragment and the interpreted path must run instead).
_CHECKED_CACHE: Dict[Tuple, Optional[object]] = {}


def build_multi_vscale_kernel(design) -> StepKernel:
    """Compile (or fetch from the cache) the design's step kernel; the
    design must already be on the array backend (slot layout bound)."""
    spec = _KernelSpec(design)
    cache_key = spec.key()
    kernel = _KERNEL_CACHE.get(cache_key)
    if kernel is not None:
        return kernel
    namespace = _make_namespace(spec)

    step_src = _generate_step_source(spec, with_frame=True)
    state_src = _generate_step_source(spec, with_frame=False)
    drained_src = _generate_drained_source(spec)
    step = compile_source(step_src, namespace, "step")
    step_state = compile_source(state_src, namespace, "step_state")
    drained = compile_source(drained_src, namespace, "drained")

    arb = spec.arb
    num_cores = spec.num_cores

    def apply_inputs(buf, inputs):
        buf[arb] = inputs.get("arb_select", 0) % num_cores

    np = numpy_or_none()
    step_matrix = drained_matrix = None
    if np is not None:
        step_matrix, drained_matrix = _build_matrix_kernel(np, spec)

    kernel = StepKernel(
        step=step,
        step_state=step_state,
        drained=drained,
        apply_inputs=apply_inputs,
        step_matrix=step_matrix,
        drained_matrix=drained_matrix,
        np=np,
        source=step_src + "\n" + state_src + "\n" + drained_src,
    )
    _KERNEL_CACHE[cache_key] = kernel
    return kernel


def build_checked_step(design, checker):
    """Compile (or fetch) the fused assumption-checked step for
    ``checker``'s checks against ``design``'s kernel spec.  Returns
    ``None`` when any check falls outside the compilable fragment —
    callers then run the interpreted ``frame_ok_repeated`` path, which
    also preserves the interpreter's lazy ``SvaError`` behavior."""
    spec = _KernelSpec(design)
    checks = tuple(checker.checks)
    cache_key = (spec.key(), checks)
    if cache_key in _CHECKED_CACHE:
        return _CHECKED_CACHE[cache_key]
    try:
        source = _generate_checked_source(spec, checks)
        fused = compile_source(source, _make_namespace(spec), "step_checked")
    except SvaError:
        fused = None
    _CHECKED_CACHE[cache_key] = fused
    return fused
