"""Node mapping for the Multi-V-scale-TSO design.

Identical to the SC mapping for the Fetch/DecodeExecute/Writeback
stages; the new ``Memory`` stage of a store maps to the cycle its
store-buffer entry commits to the array (``commit_valid`` with the
store's PC on ``commit_pc``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MappingError
from repro.mapping.node_mapping import MapNode, MultiVScaleNodeMapping
from repro.sva.ast import BoolExpr, SigEq, band


@dataclass
class MultiVScaleTsoNodeMapping(MultiVScaleNodeMapping):
    """Figure-9-style node mapping extended with the Memory stage."""

    def map_node(self, node: MapNode, load_constraint: Optional[int] = None) -> BoolExpr:
        uid, stage = node
        if stage != "Memory":
            return super().map_node(node, load_constraint)
        op = self.compiled.op_by_uid(uid)
        if not op.op.is_store:
            raise MappingError(
                f"only stores have a Memory (commit) stage; i{uid} is not one"
            )
        prefix = f"core[{op.core}]."
        return band(
            SigEq(prefix + "commit_valid", 1),
            SigEq(prefix + "commit_pc", self.absolute_pc(uid)),
        )
