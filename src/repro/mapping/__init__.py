"""User-provided mapping functions connecting µspec to RTL."""

from repro.mapping.node_mapping import MapNode, MultiVScaleNodeMapping, NodeMapping
from repro.mapping.program_mapping import MultiVScaleProgramMapping
from repro.mapping.tso_mapping import MultiVScaleTsoNodeMapping

__all__ = [
    "MapNode",
    "MultiVScaleNodeMapping",
    "MultiVScaleProgramMapping",
    "MultiVScaleTsoNodeMapping",
    "NodeMapping",
]
