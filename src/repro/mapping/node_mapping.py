"""Node mapping functions (paper §4.3, Figure 9).

A node mapping function translates a µhb node — a specific
microarchitectural event of a specific litmus instruction, such as
"(i4, Writeback)" — into the RTL boolean expression that is true exactly
in the cycle the event occurs.  It is the user-provided glue between the
abstract µspec world and concrete design signals.

The Multi-V-scale mapping mirrors Figure 9: an instruction is *at* a
stage when that stage's PC register holds the instruction's PC and the
stage is not stalled; a load-value constraint additionally pins
``load_data_WB`` at Writeback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Tuple

from repro.errors import MappingError
from repro.litmus.test import CompiledTest
from repro.sva.ast import BNot, BoolExpr, Sig, SigEq, band

#: A µhb node at the mapping interface: (microop uid, stage name).
MapNode = Tuple[int, str]


class NodeMapping(Protocol):
    """Interface RTLCheck requires from a user's node mapping."""

    def map_node(self, node: MapNode, load_constraint: Optional[int]) -> BoolExpr:
        """RTL expression for the occurrence of ``node``; when
        ``load_constraint`` is given and the node is a load's value-
        bearing stage, the expression also pins the returned data."""
        ...


@dataclass
class MultiVScaleNodeMapping:
    """Figure 9's node mapping for the Multi-V-scale processor."""

    compiled: CompiledTest

    def absolute_pc(self, uid: int) -> int:
        op = self.compiled.op_by_uid(uid)
        return self.compiled.core_base_pc(op.core) + op.pc

    def map_node(self, node: MapNode, load_constraint: Optional[int] = None) -> BoolExpr:
        uid, stage = node
        op = self.compiled.op_by_uid(uid)
        core = op.core
        pc = self.absolute_pc(uid)
        prefix = f"core[{core}]."
        if stage == "Fetch":
            return band(
                SigEq(prefix + "PC_IF", pc),
                BNot(Sig(prefix + "stall_IF")),
            )
        if stage == "DecodeExecute":
            return band(
                SigEq(prefix + "PC_DX", pc),
                BNot(Sig(prefix + "stall_DX")),
            )
        if stage == "Writeback":
            terms = [
                SigEq(prefix + "PC_WB", pc),
                BNot(Sig(prefix + "stall_WB")),
            ]
            if load_constraint is not None:
                if not op.op.is_load:
                    raise MappingError(
                        f"load constraint on non-load instruction i{uid}"
                    )
                terms.append(SigEq(prefix + "load_data_WB", load_constraint))
            return band(*terms)
        raise MappingError(f"unknown stage {stage!r} for Multi-V-scale mapping")
