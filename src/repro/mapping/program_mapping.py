"""Program mapping functions (paper §4.1, Figure 8).

A program mapping function links a litmus test's instructions, initial
conditions, and final values to RTL expressions, from which the
Assumption Generator produces SV assumptions that:

1. initialize instruction and data memory,
2. initialize the registers litmus instructions use for addresses and
   data, and
3. enforce load values and the final state of memory *as the offending
   events occur* (never by lookahead — §3.1).

Initialization assumptions (classes 1 and 2) are marked ``structural``:
the simulated design realizes them by construction in its reset state,
exactly as JasperGold realizes ``first |-> mem[i] == k`` by constraining
the initial-state assignment.  They are still emitted as SVA text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.isa import encode
from repro.litmus.test import CompiledTest
from repro.sva.ast import (
    BoolExpr,
    Directive,
    PImpl,
    PSeq,
    PConst,
    Property,
    SBool,
    Sig,
    SigEq,
    BNot,
    band,
)
def _implication(name: str, antecedent: BoolExpr, consequent: BoolExpr, structural: bool) -> Directive:
    return Directive(
        kind="assume",
        name=name,
        prop=PImpl(antecedent, PSeq(SBool(consequent))),
        structural=structural,
    )


@dataclass
class MultiVScaleProgramMapping:
    """Figure 8's program mapping for the Multi-V-scale processor."""

    compiled: CompiledTest

    # -- class 1: memory initialization --------------------------------

    def instruction_memory_assumptions(self) -> List[Directive]:
        """``first |-> mem[i] == <encoding>`` for every program word."""
        out = []
        first = Sig("first")
        for core, program in enumerate(self.compiled.programs):
            base = self.compiled.imem_base_word(core)
            for offset, instr in enumerate(program):
                out.append(
                    _implication(
                        f"init_imem_c{core}_{offset}",
                        first,
                        SigEq(f"mem[{base + offset}]", encode(instr)),
                        structural=True,
                    )
                )
        return out

    def data_memory_assumptions(self) -> List[Directive]:
        """``first |-> mem[w] == <initial value>`` for litmus variables.

        These are monitorable (data words appear in trace frames), so we
        leave them non-structural as a self-check of the reset state.
        """
        out = []
        first = Sig("first")
        for var, word in sorted(self.compiled.address_map.items()):
            value = self.compiled.test.initial_memory_map[var]
            out.append(
                _implication(
                    f"init_dmem_{var}",
                    first,
                    SigEq(f"mem[{word}]", value),
                    structural=False,
                )
            )
        return out

    # -- class 2: register initialization -------------------------------

    def register_assumptions(self) -> List[Directive]:
        out = []
        first = Sig("first")
        for core, regs in enumerate(self.compiled.reg_init):
            for reg, value in sorted(regs.items()):
                out.append(
                    _implication(
                        f"init_reg_c{core}_x{reg}",
                        first,
                        SigEq(f"core[{core}].regs[{reg}]", value),
                        structural=True,
                    )
                )
        return out

    # -- class 3: value assumptions --------------------------------------

    def load_value_assumptions(self) -> List[Directive]:
        """For each load whose outcome value is pinned: when the load is
        in WB, its returned data equals the outcome value."""
        out = []
        outcome = self.compiled.test.outcome.register_map
        for op in self.compiled.ops:
            if not op.op.is_load or op.op.out not in outcome:
                continue
            value = outcome[op.op.out]
            prefix = f"core[{op.core}]."
            at_wb = band(
                SigEq(prefix + "PC_WB", self.compiled.core_base_pc(op.core) + op.pc),
                BNot(Sig(prefix + "stall_WB")),
            )
            out.append(
                _implication(
                    f"load_value_i{op.uid}",
                    at_wb,
                    band(at_wb, SigEq(prefix + "load_data_WB", value)),
                    structural=False,
                )
            )
        return out

    def final_value_assumption(self) -> Directive:
        """All cores halted => any pinned final memory values hold.

        Even with no pinned finals the assumption is emitted with a
        trivially-true consequent: its covering trace *is* an execution
        of the whole litmus outcome, which lets the verifier discharge a
        test early when that outcome is unreachable (paper §4.1).
        """
        antecedent_terms = []
        for core in range(self.compiled.num_cores):
            prefix = f"core[{core}]."
            antecedent_terms.append(SigEq(prefix + "halted", 1))
            antecedent_terms.append(BNot(Sig(prefix + "stall_WB")))
        antecedent = band(*antecedent_terms)
        final = self.compiled.test.outcome.final_memory_map
        if final:
            consequent = band(
                *(
                    SigEq(f"mem[{self.compiled.address_map[var]}]", value)
                    for var, value in sorted(final.items())
                )
            )
            prop: Property = PImpl(antecedent, PSeq(SBool(consequent)))
        else:
            prop = PImpl(antecedent, PConst(True))
        return Directive(kind="assume", name="final_values", prop=prop, structural=False)

    # -- everything -------------------------------------------------------

    def all_assumptions(self) -> List[Directive]:
        return (
            self.instruction_memory_assumptions()
            + self.data_memory_assumptions()
            + self.register_assumptions()
            + self.load_value_assumptions()
            + [self.final_value_assumption()]
        )
