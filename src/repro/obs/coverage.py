"""Microarchitectural coverage maps (see ``docs/observability.md``).

A :class:`CoverageMap` records *which* microarchitectural behaviors a
verification run exercised, not just how many events fired.  Keys are
grouped into domains:

* ``state`` — interned reach-graph design states, keyed by a digest of
  the flat :class:`~repro.rtl.design.SlotLayout` slot vector, so the
  same physical state gets the same key across runs, processes, and
  interner id assignments.
* ``transition`` — reach-graph edges as ``<src-sig>><dst-sig>`` pairs
  over the same signatures.
* ``arbiter`` — arbiter-grant interleaving n-grams (2- and 3-grams of
  consecutive grant choices) observed by the trace oracle's seeded
  schedules.
* ``assumption`` — µspec assumption firing sites (``fired:<name>``)
  and per-assertion proof outcomes (``assert:<name>:<status>``).
* ``shape`` — litmus-test shape features: thread/op counts, per-thread
  load/store/fence signatures, fence placement classes, diy cycle
  families, generation mode.

Maps merge by per-key hit summation — commutative and associative, the
same discipline as :mod:`repro.obs` counters — so worker deltas fold
into a campaign map in any grouping and the result is deterministic in
``(seed, jobs)``.  Everything serializes to sorted plain-JSON dicts.

:class:`CoverageDB` is the schema-versioned on-disk database (atomic
temp+rename under the :mod:`repro.cache` directory); it accumulates
campaign maps across runs, keeps the novelty-producing test corpus for
replay, and backs ``python -m repro coverage {report,diff,merge}``.

This module is stdlib-only and imports nothing from the pipeline, so
:mod:`repro.obs.recorder` can attach maps to recorders without import
cycles.
"""

from __future__ import annotations

import json
import os
import tempfile
from array import array
from hashlib import blake2b
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

#: The coverage domains, in report order.
COVERAGE_DOMAINS = ("state", "transition", "arbiter", "assumption", "shape")

_DOMAIN_SET = frozenset(COVERAGE_DOMAINS)

COVERAGE_DB_KIND = "rtlcheck-coverage-db"
COVERAGE_REPORT_KIND = "rtlcheck-coverage-report"
COVERAGE_SCHEMA_VERSION = 1

#: Corpus entries the database keeps (highest-novelty first).
DB_CORPUS_CAP = 64
#: Campaign history entries the database keeps (most recent last).
DB_CAMPAIGN_CAP = 50


class CoverageMap:
    """Per-domain ``key -> hit count`` maps with summing merge."""

    __slots__ = ("domains",)

    def __init__(self, domains: Optional[Mapping[str, Mapping[str, int]]] = None):
        self.domains: Dict[str, Dict[str, int]] = {}
        if domains:
            for domain, keys in domains.items():
                if keys:
                    self.domains[domain] = dict(keys)

    # -- recording ------------------------------------------------------

    def add(self, domain: str, key: str, count: int = 1) -> None:
        keys = self.domains.get(domain)
        if keys is None:
            if domain not in _DOMAIN_SET:
                from repro.errors import ReproError

                raise ReproError(
                    f"unknown coverage domain {domain!r} "
                    f"(expected one of {COVERAGE_DOMAINS})"
                )
            keys = self.domains[domain] = {}
        keys[key] = keys.get(key, 0) + count

    def add_many(self, domain: str, keys: Iterable[str]) -> None:
        for key in keys:
            self.add(domain, key)

    # -- merging (commutative + associative: per-key summation) ---------

    def merge(self, other: "CoverageMap") -> None:
        self.merge_state(other.domains)

    def merge_state(self, state: Mapping[str, Mapping[str, int]]) -> None:
        for domain, other_keys in state.items():
            if not other_keys:
                continue
            keys = self.domains.get(domain)
            if keys is None:
                keys = self.domains[domain] = {}
            for key, count in other_keys.items():
                keys[key] = keys.get(key, 0) + count

    def count_new(self, delta: "CoverageMap") -> Dict[str, int]:
        """Per-domain count of ``delta``'s keys this map has never seen
        (the novelty signal for the guided scheduler)."""
        new: Dict[str, int] = {}
        for domain, keys in delta.domains.items():
            seen = self.domains.get(domain, {})
            fresh = sum(1 for key in keys if key not in seen)
            if fresh:
                new[domain] = fresh
        return new

    # -- views ----------------------------------------------------------

    def unique(self, domain: str) -> int:
        return len(self.domains.get(domain, {}))

    def hits(self, domain: str) -> int:
        return sum(self.domains.get(domain, {}).values())

    def total_unique(self) -> int:
        return sum(len(keys) for keys in self.domains.values())

    def __bool__(self) -> bool:
        return any(self.domains.values())

    def __eq__(self, other) -> bool:
        if not isinstance(other, CoverageMap):
            return NotImplemented
        return self.to_state() == other.to_state()

    # -- (de)serialization ----------------------------------------------

    def to_state(self) -> Dict[str, Dict[str, int]]:
        """Plain sorted JSON-safe snapshot (byte-stable when dumped with
        default dict ordering, since keys are inserted sorted)."""
        return {
            domain: {key: keys[key] for key in sorted(keys)}
            for domain, keys in sorted(self.domains.items())
            if keys
        }

    @classmethod
    def from_state(
        cls, state: Optional[Mapping[str, Mapping[str, int]]]
    ) -> "CoverageMap":
        return cls(state or {})


# ---------------------------------------------------------------------------
# Collection helpers
# ---------------------------------------------------------------------------


def state_signature(design, snap) -> str:
    """A run-stable signature for one design snapshot.

    On the vector backends (array and kernel share one flat-slot
    representation) the snapshot is an interner id; the signature
    digests the packed flat slot vector, so equal physical states hash
    equal across runs — and across those two backends — regardless of
    interning order.  On the dict backend (or any non-packable vector)
    the signature digests the snapshot's ``repr`` — still
    deterministic, but a different key space, so campaigns should not
    mix it with the vector backends.
    """
    data = None
    if getattr(design, "state_backend", "dict") in ("array", "kernel"):
        vector = design.state_vector(snap)
        if vector is not None:
            try:
                data = array("q", vector).tobytes()
            except (OverflowError, TypeError):
                data = None
    if data is None:
        data = repr(snap).encode()
    return blake2b(data, digest_size=8).hexdigest()


def collect_graph_coverage(coverage: CoverageMap, graph) -> None:
    """Fold one :class:`~repro.verifier.reach.ReachGraph`'s discovered
    states and expanded live edges into ``coverage``."""
    design = graph.design
    signatures: Dict[int, str] = {}

    def sig(node: int) -> str:
        out = signatures.get(node)
        if out is None:
            out = signatures[node] = state_signature(design, graph.snap(node))
        return out

    for node in range(graph.num_nodes):
        coverage.add("state", sig(node))
    for src, dst in graph.iter_edges():
        coverage.add("transition", sig(src) + ">" + sig(dst))


def grant_ngrams(schedules: Sequence[Sequence[int]]) -> Dict[str, int]:
    """2- and 3-gram counts over per-schedule arbiter grant sequences
    (keys like ``g2:0.1`` / ``g3:0.1.2``)."""
    ngrams: Dict[str, int] = {}
    for grants in schedules:
        for n in (2, 3):
            for i in range(len(grants) - n + 1):
                key = f"g{n}:" + ".".join(str(g) for g in grants[i : i + n])
                ngrams[key] = ngrams.get(key, 0) + 1
    return ngrams


def shape_key(test) -> str:
    """The canonical shape class of a litmus test: per-thread
    load/store/fence strings, sorted so thread order does not matter.
    The guided scheduler fatigues on this key."""
    sigs = [
        "".join(
            "S" if op.is_store else "L" if op.is_load else "F" for op in ops
        )
        for ops in test.threads
    ]
    return "|".join(sorted(sigs))


def shape_features(test) -> List[str]:
    """Shape-domain coverage keys for one litmus test."""
    features = [
        f"threads:{test.num_threads}",
        f"ops:{test.instruction_count()}",
        f"addrs:{len(test.addresses)}",
        f"kinds:{shape_key(test)}",
    ]
    fences = 0
    for ops in test.threads:
        for i, op in enumerate(ops):
            if not op.is_fence:
                continue
            fences += 1
            before = "^" if i == 0 else ("S" if ops[i - 1].is_store else "L" if ops[i - 1].is_load else "F")
            after = "$" if i == len(ops) - 1 else ("S" if ops[i + 1].is_store else "L" if ops[i + 1].is_load else "F")
            features.append(f"fence:{before}-{after}")
    features.append(f"fences:{fences}")
    outcome = test.outcome
    features.append(
        f"outcome:regs={len(outcome.register_map)}"
        f",mem={len(outcome.final_memory_map)}"
    )
    return features


# ---------------------------------------------------------------------------
# Closure reports
# ---------------------------------------------------------------------------


def saturation_curve(novelty: Sequence[int], window: int = 100) -> List[int]:
    """New coverage keys per ``window`` tests, in campaign order —
    the saturation curve (a healthy campaign decays, a saturated one
    flatlines at zero)."""
    curve: List[int] = []
    for start in range(0, len(novelty), window):
        curve.append(int(sum(novelty[start : start + window])))
    return curve


def closure_report(
    coverage: CoverageMap,
    tests: Optional[int] = None,
    novelty: Optional[Sequence[int]] = None,
    guided: Optional[bool] = None,
) -> Dict[str, Any]:
    """The JSON closure report for one campaign's coverage map."""
    report: Dict[str, Any] = {
        "kind": COVERAGE_REPORT_KIND,
        "schema_version": COVERAGE_SCHEMA_VERSION,
        "domains": {
            domain: {
                "unique": coverage.unique(domain),
                "hits": coverage.hits(domain),
            }
            for domain in sorted(coverage.domains)
        },
        "total_unique": coverage.total_unique(),
        "coverage": coverage.to_state(),
    }
    if tests is not None:
        report["tests"] = tests
    if novelty is not None:
        report["new_keys"] = int(sum(novelty))
        report["novelty_per_100"] = saturation_curve(novelty)
    if guided is not None:
        report["guided"] = bool(guided)
    return report


def validate_coverage_report(report: Mapping[str, Any]) -> List[str]:
    """Shape-check a closure report (empty list == valid)."""
    errors: List[str] = []
    for key in ("kind", "schema_version", "domains", "total_unique", "coverage"):
        if key not in report:
            errors.append(f"missing top-level key {key!r}")
    if errors:
        return errors
    if report["kind"] != COVERAGE_REPORT_KIND:
        errors.append(f"kind {report['kind']!r} != {COVERAGE_REPORT_KIND!r}")
    if report["schema_version"] != COVERAGE_SCHEMA_VERSION:
        errors.append(
            f"schema_version {report['schema_version']!r} != "
            f"{COVERAGE_SCHEMA_VERSION}"
        )
    recomputed = CoverageMap.from_state(report["coverage"])
    for domain, entry in report["domains"].items():
        want = {
            "unique": recomputed.unique(domain),
            "hits": recomputed.hits(domain),
        }
        if dict(entry) != want:
            errors.append(
                f"domain {domain!r} totals {dict(entry)!r} != map contents "
                f"{want!r}"
            )
    if report["total_unique"] != recomputed.total_unique():
        errors.append(
            f"total_unique {report['total_unique']} != "
            f"{recomputed.total_unique()}"
        )
    return errors


def render_closure(report: Mapping[str, Any]) -> str:
    """Human closure summary (deterministic text: sorted domains)."""
    lines = ["coverage closure:"]
    domains = report.get("domains", {})
    for domain in sorted(domains):
        entry = domains[domain]
        lines.append(
            f"  {domain:12s} {entry['unique']:>8d} unique "
            f"{entry['hits']:>10d} hits"
        )
    lines.append(f"  {'total':12s} {report.get('total_unique', 0):>8d} unique")
    if "new_keys" in report:
        lines.append(f"  new keys this campaign: {report['new_keys']}")
    if report.get("novelty_per_100"):
        curve = " ".join(str(v) for v in report["novelty_per_100"])
        lines.append(f"  novelty per 100 tests: {curve}")
    if "guided" in report:
        lines.append(f"  scheduler: {'coverage-guided' if report['guided'] else 'blind'}")
    return "\n".join(lines)


def coverage_diff(
    base: Mapping[str, Mapping[str, int]],
    other: Mapping[str, Mapping[str, int]],
) -> Dict[str, Any]:
    """Per-domain key-set diff of two coverage states: what ``other``
    reached that ``base`` did not, and vice versa."""
    domains = sorted(set(base) | set(other))
    out: Dict[str, Any] = {"domains": {}}
    total_new = total_lost = 0
    for domain in domains:
        base_keys = set(base.get(domain, {}))
        other_keys = set(other.get(domain, {}))
        new = len(other_keys - base_keys)
        lost = len(base_keys - other_keys)
        total_new += new
        total_lost += lost
        out["domains"][domain] = {
            "base_unique": len(base_keys),
            "other_unique": len(other_keys),
            "shared": len(base_keys & other_keys),
            "new_in_other": new,
            "only_in_base": lost,
        }
    out["new_in_other"] = total_new
    out["only_in_base"] = total_lost
    return out


def render_diff(diff: Mapping[str, Any]) -> str:
    lines = [
        f"{'domain':12s} {'base':>8s} {'other':>8s} {'shared':>8s} "
        f"{'+new':>6s} {'-lost':>6s}"
    ]
    for domain in sorted(diff["domains"]):
        entry = diff["domains"][domain]
        lines.append(
            f"{domain:12s} {entry['base_unique']:>8d} "
            f"{entry['other_unique']:>8d} {entry['shared']:>8d} "
            f"{entry['new_in_other']:>6d} {entry['only_in_base']:>6d}"
        )
    lines.append(
        f"total: +{diff['new_in_other']} new in other, "
        f"-{diff['only_in_base']} only in base"
    )
    return "\n".join(lines)


def write_coverage_json(path: str, document: Mapping[str, Any]) -> None:
    """Write a coverage document byte-stably (sorted keys)."""
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# The persistent coverage database
# ---------------------------------------------------------------------------


def default_coverage_db_path(cache_dir: Optional[str] = None) -> str:
    """``<cache root>/coverage/coverage.json`` (the cache root resolves
    like every other cache tier: ``$REPRO_CACHE_DIR``, else
    ``~/.cache/rtlcheck-repro``)."""
    from repro.cache import default_cache_dir

    root = cache_dir if cache_dir is not None else default_cache_dir()
    return os.path.join(root, "coverage", "coverage.json")


class CoverageDB:
    """Mergeable on-disk coverage accumulator.

    One JSON document: the union coverage map across every campaign
    merged in, a bounded campaign history, and the novelty-producing
    test corpus for replay.  Writes are atomic (temp file +
    ``os.replace``); a corrupt or schema-mismatched document is
    discarded and rebuilt from scratch — the database is an
    accumulator, never an oracle, so resetting it is always safe.
    """

    def __init__(self, path: str):
        self.path = path
        #: Set by :meth:`load` when the on-disk document was unreadable
        #: or stale and had to be reset.
        self.reset_reason: Optional[str] = None

    def _fresh(self) -> Dict[str, Any]:
        return {
            "kind": COVERAGE_DB_KIND,
            "schema_version": COVERAGE_SCHEMA_VERSION,
            "domains": {},
            "campaigns": [],
            "corpus": [],
        }

    def load(self) -> Dict[str, Any]:
        """The current document (a fresh one when missing / corrupt /
        schema-mismatched)."""
        self.reset_reason = None
        try:
            with open(self.path) as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return self._fresh()
        except (OSError, ValueError):
            self.reset_reason = "corrupt"
            return self._fresh()
        if (
            not isinstance(document, dict)
            or document.get("kind") != COVERAGE_DB_KIND
            or document.get("schema_version") != COVERAGE_SCHEMA_VERSION
        ):
            self.reset_reason = "stale"
            return self._fresh()
        return document

    def coverage_map(self) -> CoverageMap:
        return CoverageMap.from_state(self.load().get("domains", {}))

    def _write(self, document: Mapping[str, Any]) -> None:
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle, indent=1, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def merge(
        self,
        coverage: CoverageMap,
        campaign: Optional[Mapping[str, Any]] = None,
        corpus: Optional[List[Mapping[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """Fold one campaign into the database; returns the written
        document.  ``campaign`` is a small metadata record (seed,
        budget, new-key count, ...); ``corpus`` is the campaign's
        novelty-producing tests (``{"test": <to_dict>, "energy": n}``),
        merged with the stored corpus and truncated to the
        highest-energy :data:`DB_CORPUS_CAP` entries."""
        document = self.load()
        merged = CoverageMap.from_state(document.get("domains", {}))
        new_keys = merged.count_new(coverage)
        merged.merge(coverage)
        document["domains"] = merged.to_state()
        if campaign is not None:
            record = dict(campaign)
            record["new_keys"] = {k: new_keys[k] for k in sorted(new_keys)}
            document["campaigns"] = (
                list(document.get("campaigns", [])) + [record]
            )[-DB_CAMPAIGN_CAP:]
        if corpus:
            pool = {
                json.dumps(entry["test"], sort_keys=True): dict(entry)
                for entry in document.get("corpus", [])
            }
            for entry in corpus:
                key = json.dumps(entry["test"], sort_keys=True)
                held = pool.get(key)
                if held is None or entry.get("energy", 0) > held.get("energy", 0):
                    pool[key] = dict(entry)
            document["corpus"] = sorted(
                pool.values(),
                key=lambda e: (-e.get("energy", 0), json.dumps(e["test"], sort_keys=True)),
            )[:DB_CORPUS_CAP]
        self._write(document)
        return document
