"""Span tracer and metrics recorder (the `repro.obs` substrate).

The pipeline is instrumented with three primitives:

* **spans** — named, nestable timed regions opened with the
  :func:`span` context manager.  A span always measures its duration
  with monotonic clocks (the timing fields on
  :class:`~repro.core.results.TestVerification` are rolled up from
  span durations, so timing is never optional); whether the span is
  *recorded* depends on the installed recorder.
* **counters** — named monotonically-summed integers (cache hits,
  frames simulated, assumption firings, ...).  Counters merge across
  process-pool workers by summation, so suite aggregates equal the sum
  of per-test counters regardless of job count.
* **gauges** — named point-in-time values (graph sizes, NFA state
  counts).  Gauges merge by taking the maximum — summing point-in-time
  values (peak frontier size, graph node counts) across workers would
  fabricate a number no single process ever observed.  Gauges whose
  name ends in ``.last`` instead merge by last-write in merge order,
  for values where "most recent" is the meaningful aggregate.

Two recorders implement the sink:

* :class:`NullRecorder` (the default) drops everything.  Spans still
  time themselves — two ``perf_counter`` calls — but nothing is stored
  and counter/gauge calls are no-ops, so disabled overhead is
  negligible.
* :class:`TraceRecorder` stores finished spans, counters, and gauges.
  Its state round-trips through :meth:`TraceRecorder.to_state` /
  :meth:`TraceRecorder.merge_state` as plain picklable dicts, which is
  how worker processes ship their recordings back to the suite parent.

The current recorder is a module-level binding manipulated with
:func:`set_recorder` / :func:`use_recorder`; instrumented code reaches
it through the module-level :func:`span` / :func:`count` /
:func:`gauge` helpers or :func:`get_recorder`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional


class Span:
    """One timed region.  ``start`` / ``end`` are ``perf_counter``
    values; :attr:`seconds` is valid once the region has exited."""

    __slots__ = ("name", "args", "start", "end")

    def __init__(self, name: str, args: Dict[str, Any]):
        self.name = name
        self.args = args
        self.start = 0.0
        self.end: Optional[float] = None

    @property
    def seconds(self) -> float:
        if self.end is None:
            return time.perf_counter() - self.start
        return self.end - self.start

    def __repr__(self):
        return f"Span({self.name!r}, {self.seconds:.6f}s)"


class NullRecorder:
    """Recorder that stores nothing (the disabled-observability path)."""

    enabled = False
    #: Attached :class:`~repro.obs.coverage.CoverageMap`, or ``None``.
    #: Collection sites test this attribute, so coverage costs one
    #: attribute read when off.
    coverage = None

    @contextmanager
    def span(self, name: str, **args) -> Iterator[Span]:
        out = Span(name, args)
        out.start = time.perf_counter()
        try:
            yield out
        finally:
            out.end = time.perf_counter()

    def add_span(self, name: str, start: float, seconds: float, **args) -> None:
        pass

    def count(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass


class TraceRecorder:
    """Recorder that stores spans, counters, and gauges.

    Finished spans become event dicts ``{"name", "ts", "dur", "args"}``
    with ``ts`` in seconds relative to the recorder's creation and
    ``dur`` in seconds — the exact shape
    :func:`repro.obs.export.chrome_trace` consumes.
    """

    enabled = True

    def __init__(self, coverage=None):
        self.t0 = time.perf_counter()
        self.events: List[Dict[str, Any]] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        #: Optional :class:`~repro.obs.coverage.CoverageMap`; created
        #: lazily by :meth:`merge_state` when a snapshot carries one.
        self.coverage = coverage
        self._depth = 0

    # -- spans ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **args) -> Iterator[Span]:
        out = Span(name, args)
        self._depth += 1
        out.start = time.perf_counter()
        try:
            yield out
        finally:
            out.end = time.perf_counter()
            self._depth -= 1
            self.add_span(name, out.start, out.end - out.start, **args)

    def add_span(self, name: str, start: float, seconds: float, **args) -> None:
        """Record a pre-measured span (``start`` is a ``perf_counter``
        value).  Used for regions whose time is accumulated elsewhere,
        like the lazily-interleaved reachability-graph build."""
        self.events.append(
            {
                "name": name,
                "ts": start - self.t0,
                "dur": seconds,
                "args": dict(args),
            }
        )

    # -- metrics --------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    # -- (de)serialization for process-pool merging ---------------------

    def to_state(self) -> Dict[str, Any]:
        """A plain picklable snapshot of everything recorded."""
        state = {
            "events": list(self.events),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }
        if self.coverage is not None:
            state["coverage"] = self.coverage.to_state()
        return state

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold one :meth:`to_state` snapshot (typically from a worker
        process) into this recorder: counters sum, gauges take the max
        (``.last``-suffixed gauges take the incoming value), coverage
        maps sum per key, spans append."""
        self.events.extend(state.get("events", ()))
        for name, value in state.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in state.get("gauges", {}).items():
            current = self.gauges.get(name)
            if current is None or name.endswith(".last"):
                self.gauges[name] = value
            else:
                self.gauges[name] = max(current, value)
        coverage_state = state.get("coverage")
        if coverage_state:
            if self.coverage is None:
                from repro.obs.coverage import CoverageMap

                self.coverage = CoverageMap()
            self.coverage.merge_state(coverage_state)


class CoverageRecorder(NullRecorder):
    """Coverage-only sink: spans/counters/gauges stay no-ops
    (``enabled`` is False, so instrumented code skips its bookkeeping),
    but collection sites that test ``recorder.coverage`` record into
    the attached map.  This is what keeps ``--coverage`` without
    ``--metrics`` under the observability overhead bar."""

    def __init__(self, coverage=None):
        if coverage is None:
            from repro.obs.coverage import CoverageMap

            coverage = CoverageMap()
        self.coverage = coverage

    def to_state(self) -> Dict[str, Any]:
        return {
            "events": [],
            "counters": {},
            "gauges": {},
            "coverage": self.coverage.to_state(),
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        coverage_state = state.get("coverage")
        if coverage_state:
            self.coverage.merge_state(coverage_state)


def merge_states(states: Iterable[Mapping[str, Any]]) -> TraceRecorder:
    """Merge per-test recorder snapshots into one suite-level recorder."""
    merged = TraceRecorder()
    for state in states:
        merged.merge_state(state)
    return merged


# -- the current recorder ---------------------------------------------------

NULL_RECORDER = NullRecorder()
_current: Any = NULL_RECORDER


def get_recorder():
    """The recorder instrumentation is currently writing to."""
    return _current


def set_recorder(recorder) -> Any:
    """Install ``recorder``; returns the previously installed one."""
    global _current
    previous = _current
    _current = recorder
    return previous


@contextmanager
def use_recorder(recorder) -> Iterator[Any]:
    """Install ``recorder`` for the duration of a ``with`` block."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


def span(name: str, **args):
    """Open a span on the current recorder (context manager)."""
    return _current.span(name, **args)


def count(name: str, value: int = 1) -> None:
    """Bump a counter on the current recorder."""
    _current.count(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the current recorder."""
    _current.gauge(name, value)
