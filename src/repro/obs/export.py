"""Chrome trace-event export (loadable in Perfetto / chrome://tracing).

The exporter consumes per-test recorder snapshots
(:meth:`repro.obs.recorder.TraceRecorder.to_state`) keyed by a track
name — for a suite run, the litmus test name — and renders each as one
thread (track) of a single-process Chrome trace.  Span timestamps are
relative to each test's own recorder, so every track starts near zero,
which makes per-phase comparison across tests immediate.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

#: Chrome trace timestamps are integer-ish microseconds.
_US = 1e6


def chrome_trace(states: Mapping[str, Optional[Mapping[str, Any]]]) -> Dict[str, Any]:
    """Render recorder snapshots as a Chrome trace-event document.

    ``states`` maps track names to :meth:`TraceRecorder.to_state`
    snapshots (``None`` entries — tests run without observability — are
    skipped).  Each track gets a ``thread_name`` metadata event plus one
    complete (``"ph": "X"``) event per recorded span.
    """
    events = []
    for tid, (track, state) in enumerate(sorted(states.items()), start=1):
        if state is None:
            continue
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
        for event in state.get("events", ()):
            events.append(
                {
                    "name": event["name"],
                    "cat": "repro",
                    "ph": "X",
                    "ts": round(event["ts"] * _US, 3),
                    "dur": round(event["dur"] * _US, 3),
                    "pid": 1,
                    "tid": tid,
                    "args": event.get("args", {}),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, states: Mapping[str, Optional[Mapping[str, Any]]]
) -> None:
    """Write :func:`chrome_trace` output as JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(states), handle, indent=1)
        handle.write("\n")
