"""Structured JSON run reports (the machine-readable Figures 13/14).

A run report is a schema-versioned JSON document assembled from
:meth:`TestVerification.to_dict` snapshots plus suite-level aggregates
mirroring the paper's quantitative artifacts:

* **Figure 13** — modeled runtime-to-verification hours per test and in
  total;
* **Figure 14** — the proven / bounded property breakdown (overall
  proven fraction, the surviving bounded proofs' bounds);
* **observability counters** — suite totals that, by construction,
  equal the sum of the per-test counters regardless of how many worker
  processes produced them (:func:`validate_report` checks exactly that
  invariant).

``python -m repro suite --report FILE`` writes one; consumers load it
with :func:`json.load` and, to rehydrate result objects,
:meth:`TestVerification.from_dict`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional

#: Version of both the report document and the ``to_dict`` snapshots.
#: v2 added per-test ``gauges`` (max / ``.last``-merged) alongside the
#: summed counters.
SCHEMA_VERSION = 2

#: Top-level keys every report must carry.
_REPORT_KEYS = (
    "schema_version",
    "kind",
    "config",
    "memory_variant",
    "jobs",
    "tests",
    "aggregates",
)

#: Aggregate keys every report must carry.
_AGGREGATE_KEYS = (
    "num_tests",
    "bugs_found",
    "verified_by_cover",
    "properties_total",
    "properties_proven",
    "properties_bounded",
    "proven_fraction",
    "bounded_bounds",
    "modeled_hours_per_test",
    "modeled_hours_total",
    "wall_seconds_total",
    "counters",
    "gauges",
)

REPORT_KIND = "rtlcheck-run-report"

#: Report kind emitted by ``python -m repro fuzz`` (document shape is
#: owned by :mod:`repro.difftest.report`; the constant lives here so all
#: report kinds written by the toolchain are discoverable in one place).
DIFFTEST_REPORT_KIND = "rtlcheck-difftest-report"

#: Artifact kind of a single minimized discrepancy reproducer.
DIFFTEST_REPRODUCER_KIND = "rtlcheck-difftest-reproducer"

#: Finished-job records persisted by the job server under
#: ``<cache root>/serve/reports/`` (document shape is owned by
#: :mod:`repro.serve.jobs`; the constant lives here with the other
#: report kinds).
SERVE_JOB_KIND = "rtlcheck-serve-job"

#: One NDJSON progress event streamed from ``GET /v1/jobs/<id>/events``.
SERVE_EVENT_KIND = "rtlcheck-serve-event"


def merge_counters(test_dicts: Iterable[Mapping[str, Any]]) -> Dict[str, float]:
    """Sum the per-test counter maps into suite totals."""
    totals: Dict[str, float] = {}
    for test in test_dicts:
        for name, value in test.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + value
    return totals


def merge_gauges(test_dicts: Iterable[Mapping[str, Any]]) -> Dict[str, float]:
    """Merge the per-test gauge maps into suite values: max by default,
    last-write (in iteration order) for ``.last``-suffixed names — the
    same semantics :meth:`TraceRecorder.merge_state` applies to worker
    snapshots, so suite aggregates match regardless of job count."""
    merged: Dict[str, float] = {}
    for test in test_dicts:
        for name, value in test.get("gauges", {}).items():
            current = merged.get(name)
            if current is None or name.endswith(".last"):
                merged[name] = value
            else:
                merged[name] = max(current, value)
    return merged


def _aggregates(test_dicts: List[Mapping[str, Any]]) -> Dict[str, Any]:
    properties_total = sum(len(t["properties"]) for t in test_dicts)
    properties_proven = sum(t["proven_count"] for t in test_dicts)
    bounded_bounds: List[int] = []
    for t in test_dicts:
        bounded_bounds.extend(t["bounded_bounds"])
    return {
        "num_tests": len(test_dicts),
        "bugs_found": sum(1 for t in test_dicts if t["bug_found"]),
        "verified_by_cover": sum(1 for t in test_dicts if t["verified_by_cover"]),
        "properties_total": properties_total,
        "properties_proven": properties_proven,
        "properties_bounded": sum(t["bounded_count"] for t in test_dicts),
        "proven_fraction": (
            properties_proven / properties_total if properties_total else 1.0
        ),
        "bounded_bounds": bounded_bounds,
        "modeled_hours_per_test": {
            t["test"]: t["modeled_hours"] for t in test_dicts
        },
        "modeled_hours_total": sum(t["modeled_hours"] for t in test_dicts),
        "wall_seconds_total": sum(t["wall_seconds"] for t in test_dicts),
        "counters": merge_counters(test_dicts),
        "gauges": merge_gauges(test_dicts),
    }


def suite_report(
    results: Mapping[str, Any],
    config_name: Optional[str] = None,
    memory_variant: Optional[str] = None,
    jobs: Optional[int] = None,
    cache: Optional[Mapping[str, float]] = None,
    coverage: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the run report for ``results`` (name ->
    :class:`~repro.core.results.TestVerification`, as returned by
    :meth:`RTLCheck.verify_suite`).

    ``cache``, when given, is a cache-statistics snapshot
    (:meth:`repro.cache.CacheStats.snapshot`); it is recorded as a
    top-level ``"cache"`` key.  Cache statistics are run-relative (a
    warm run has hits where a cold run had misses), so they live
    *outside* ``aggregates`` and do not participate in the
    aggregate-equals-sum invariant — the ``tests`` array of a fully-warm
    run is byte-identical to the cold run that populated the cache.
    """
    ordered = list(results.values())
    test_dicts = [result.to_dict() for result in ordered]
    if config_name is None and ordered:
        config_name = ordered[0].config_name
    if memory_variant is None and ordered:
        memory_variant = ordered[0].memory_variant
    report = {
        "schema_version": SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "config": config_name,
        "memory_variant": memory_variant,
        "jobs": jobs,
        "tests": test_dicts,
        "aggregates": _aggregates(test_dicts),
    }
    if cache is not None:
        report["cache"] = dict(cache)
    if coverage is not None:
        # The closure report document; like "cache", it lives outside
        # ``aggregates`` and the aggregate-equals-sum invariant.
        report["coverage"] = dict(coverage)
    return report


def validate_report(report: Mapping[str, Any]) -> List[str]:
    """Check a report's shape and its aggregate-equals-sum invariants.

    Returns a list of problem descriptions; an empty list means the
    report is valid.  Used by the CI smoke run and the test suite.
    """
    errors: List[str] = []
    for key in _REPORT_KEYS:
        if key not in report:
            errors.append(f"missing top-level key {key!r}")
    if errors:
        return errors
    if report["schema_version"] != SCHEMA_VERSION:
        errors.append(
            f"schema_version {report['schema_version']!r} != {SCHEMA_VERSION}"
        )
    if report["kind"] != REPORT_KIND:
        errors.append(f"kind {report['kind']!r} != {REPORT_KIND!r}")
    tests = report["tests"]
    aggregates = report["aggregates"]
    for key in _AGGREGATE_KEYS:
        if key not in aggregates:
            errors.append(f"missing aggregate key {key!r}")
    if errors:
        return errors
    expected = _aggregates(tests)
    for key in _AGGREGATE_KEYS:
        got, want = aggregates[key], expected[key]
        if isinstance(want, float):
            ok = abs(got - want) <= 1e-9 * max(1.0, abs(want))
        elif key in ("counters", "gauges"):
            ok = dict(got) == dict(want)
        elif key == "modeled_hours_per_test":
            ok = set(got) == set(want) and all(
                abs(got[k] - want[k]) <= 1e-9 * max(1.0, abs(want[k]))
                for k in want
            )
        else:
            ok = got == want
        if not ok:
            errors.append(
                f"aggregate {key!r} != sum over tests ({got!r} vs {want!r})"
            )
    for test in tests:
        if test.get("schema_version") != SCHEMA_VERSION:
            errors.append(
                f"test {test.get('test')!r} snapshot schema_version "
                f"{test.get('schema_version')!r} != {SCHEMA_VERSION}"
            )
    return errors


def write_report(path: str, report: Mapping[str, Any]) -> None:
    """Write ``report`` as JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
