"""`repro.obs` — observability for the RTLCheck pipeline.

Span-based tracing, named counters/gauges, Chrome trace export, and
schema-versioned JSON run reports.  See ``docs/observability.md``.

The module-level :func:`span` / :func:`count` / :func:`gauge` helpers
write to the currently installed recorder (a no-op
:class:`NullRecorder` unless a caller installs a
:class:`TraceRecorder` via :func:`use_recorder`), so instrumented code
costs almost nothing when observability is off.
"""

from repro.obs.coverage import (
    COVERAGE_DOMAINS,
    CoverageDB,
    CoverageMap,
    closure_report,
    coverage_diff,
    default_coverage_db_path,
    render_closure,
    saturation_curve,
    validate_coverage_report,
)
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.recorder import (
    NULL_RECORDER,
    CoverageRecorder,
    NullRecorder,
    Span,
    TraceRecorder,
    count,
    gauge,
    get_recorder,
    merge_states,
    set_recorder,
    span,
    use_recorder,
)
from repro.obs.report import (
    DIFFTEST_REPORT_KIND,
    DIFFTEST_REPRODUCER_KIND,
    SCHEMA_VERSION,
    SERVE_EVENT_KIND,
    SERVE_JOB_KIND,
    merge_counters,
    merge_gauges,
    suite_report,
    validate_report,
    write_report,
)

__all__ = [
    "COVERAGE_DOMAINS",
    "CoverageDB",
    "CoverageMap",
    "CoverageRecorder",
    "DIFFTEST_REPORT_KIND",
    "DIFFTEST_REPRODUCER_KIND",
    "NULL_RECORDER",
    "NullRecorder",
    "SCHEMA_VERSION",
    "SERVE_EVENT_KIND",
    "SERVE_JOB_KIND",
    "Span",
    "TraceRecorder",
    "chrome_trace",
    "closure_report",
    "count",
    "coverage_diff",
    "default_coverage_db_path",
    "gauge",
    "get_recorder",
    "merge_counters",
    "merge_gauges",
    "merge_states",
    "render_closure",
    "saturation_curve",
    "set_recorder",
    "span",
    "suite_report",
    "use_recorder",
    "validate_coverage_report",
    "validate_report",
    "write_chrome_trace",
    "write_report",
]
