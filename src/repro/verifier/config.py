"""Verifier engine configurations (paper Table 1).

The paper evaluates two JasperGold configurations:

===========  ==========================  ==========================
Config       Covering-trace run          Proof engine runs
===========  ==========================  ==========================
Hybrid       1 hour                      Autoprover (1 hr), then
                                         K I N AM AD (9 hrs)
Full_Proof   1 hour                      I N AM AD (10 hrs)
===========  ==========================  ==========================

Engine allotments are modeled wall-clock hours; the mapping from our
explorer's work (explored transitions) onto modeled hours lives in
:mod:`repro.verifier.engines`.  The Hybrid configuration splits its
proof budget between full-proof engines and *bounded* engines that push
to deeper cycle bounds, while Full_Proof spends nearly everything on
full proofs — reproducing the paper's observed trade-off (§7.2):
Full_Proof completes more proofs (89% vs 81% overall) while Hybrid's
surviving bounded proofs reach deeper bounds (average 43 vs 22 cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.verifier.explorer import Budget

#: The paper's per-test wall-clock allotments (Table 1).
COVER_PHASE_HOURS = 1.0
PROOF_PHASE_HOURS = 10.0

#: Hard limits for the underlying explicit-state explorer (ground
#: truth); litmus-constrained Multi-V-scale never comes close.
EXPLORER_BUDGET = Budget(max_states=2_000_000, max_depth=2_000)

#: Default explorer backend: share one reachability graph across a
#: test's covering-trace run and every property walk
#: (:mod:`repro.verifier.reach`).  The per-property explorer remains
#: available (``RTLCheck(use_reach_graph=False)``) for cross-checking.
USE_REACH_GRAPH = True

#: Default worker-process count for suite verification; the ``suite``
#: subcommand's ``--jobs`` flag overrides it per run.
DEFAULT_SUITE_JOBS = 1


@dataclass(frozen=True)
class EngineSpec:
    """One proof engine: an allotment of modeled hours plus a style.

    ``kind`` is ``'full'`` (aims at complete proofs) or ``'bounded'``
    (pushes a cycle bound, capped at ``depth_cap``).  Engines with
    ``inductive_depth`` set (JasperGold's autoprover) can close a full
    proof by k-induction when the property's reachable product
    saturates within that many cycles.
    """

    name: str
    kind: str
    hours: float
    depth_cap: int = 10_000
    inductive_depth: int = None


@dataclass(frozen=True)
class VerifierConfig:
    """A JasperGold-style configuration (one Table 1 row)."""

    name: str
    cover_hours: float
    engines: Tuple[EngineSpec, ...]
    cores_per_test: int
    memory_gb_per_test: int

    @property
    def full_engines(self) -> List[EngineSpec]:
        return [e for e in self.engines if e.kind == "full"]

    @property
    def bounded_engines(self) -> List[EngineSpec]:
        return [e for e in self.engines if e.kind == "bounded"]

    @property
    def proof_hours(self) -> float:
        return sum(e.hours for e in self.engines)


#: Table 1, row "Hybrid": JasperGold's autoprover plus the K engine are
#: bounded-style and absorb part of the proof budget, pushing deep
#: cycle bounds; the remaining full-proof engines get what is left.
HYBRID = VerifierConfig(
    name="Hybrid",
    cover_hours=COVER_PHASE_HOURS,
    engines=(
        EngineSpec("Autoprover", "bounded", hours=1.0, depth_cap=43, inductive_depth=7),
        EngineSpec("K", "bounded", hours=2.0, depth_cap=43),
        EngineSpec("I_N_AM_AD", "full", hours=7.0),
    ),
    cores_per_test=5,
    memory_gb_per_test=64,
)

#: Table 1, row "Full_Proof": the I/N/AM/AD full-proof engines get the
#: whole 10 hours; only a shallow preprocessing pass produces bounds.
FULL_PROOF = VerifierConfig(
    name="Full_Proof",
    cover_hours=COVER_PHASE_HOURS,
    engines=(
        EngineSpec("preprocess", "bounded", hours=0.5, depth_cap=22),
        EngineSpec("I_N_AM_AD", "full", hours=9.5),
    ),
    cores_per_test=4,
    memory_gb_per_test=120,
)

CONFIGS = {"Hybrid": HYBRID, "Full_Proof": FULL_PROOF}
