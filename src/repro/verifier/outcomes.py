"""Architectural outcome enumeration for a compiled litmus design.

The explorer walks the design to decide *temporal* properties; this
module instead answers the *architectural* question behind differential
testing (:mod:`repro.difftest`): which final (register, memory) states
can the design reach at all, over every free-input schedule?

It is a plain breadth-first reachability walk over design snapshots —
no assumptions, no monitors — that harvests the architectural state of
every drained state it discovers.  A design state is *drained* when the
design reports its architectural results can no longer change
(:meth:`~repro.vscale.soc.MultiVScale.drained`); drained states are not
expanded further, so the walk terminates on any design whose
non-drained state space is finite (litmus-programmed Multi-V-scale
always is: unfair schedules cycle through a finite set of stalled
states and are deduplicated away).

The enumeration is exhaustive unless the ``max_states`` budget trips,
in which case ``complete`` is ``False`` and callers must treat the
outcome set as a lower bound (the differential harness skips — and
counts — comparisons against incomplete enumerations rather than
reporting spurious discrepancies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from repro import obs
from repro.errors import ReproError

#: One architectural final state: (sorted register values, sorted final
#: litmus-variable values) — the same shape as
#: :data:`repro.memodel.operational.FinalState`.
ArchOutcome = Tuple[Tuple[Tuple[str, int], ...], Tuple[Tuple[str, int], ...]]

#: Default budget: comfortably above the largest 4-core suite test
#: (amd3/buggy discovers ~57k states) while bounding runaway designs.
DEFAULT_MAX_STATES = 200_000


@dataclass
class ArchEnumeration:
    """Result of :func:`enumerate_design_outcomes`."""

    outcomes: FrozenSet[ArchOutcome]
    #: ``False`` when the state budget tripped before exhaustion; the
    #: outcome set is then only a lower bound.
    complete: bool
    states: int = 0
    transitions: int = 0
    drained_states: int = 0
    seconds: float = 0.0

    def observes(self, outcome) -> bool:
        """Is the litmus candidate ``outcome`` exhibited by any
        enumerated final state?  (Meaningful even when incomplete:
        ``True`` is then still a proof of observability.)"""
        want_regs = dict(outcome.registers)
        want_mem = dict(outcome.final_memory)
        for regs, memory in self.outcomes:
            rmap, mmap = dict(regs), dict(memory)
            if all(rmap.get(r) == v for r, v in want_regs.items()) and all(
                mmap.get(a) == v for a, v in want_mem.items()
            ):
                return True
        return False


def enumerate_design_outcomes(
    design, max_states: int = DEFAULT_MAX_STATES
) -> ArchEnumeration:
    """Enumerate every architectural final state ``design`` can reach.

    ``design`` must implement the :class:`~repro.rtl.design.Design`
    protocol plus the architectural-harvest trio ``drained()`` /
    ``register_results()`` / ``memory_results()`` (both Multi-V-scale
    SoCs do).
    """
    for method in ("drained", "register_results", "memory_results"):
        if not hasattr(design, method):
            raise ReproError(
                f"design {type(design).__name__} lacks {method}(); cannot "
                "enumerate architectural outcomes"
            )
    with obs.span("arch-enumeration") as span:
        result = _enumerate(design, max_states)
    result.seconds = span.seconds
    recorder = obs.get_recorder()
    if recorder.enabled:
        recorder.count("arch.states", result.states)
        recorder.count("arch.transitions", result.transitions)
        recorder.count("rtl.frames_simulated", result.transitions)
        if not result.complete:
            recorder.count("arch.budget_trips", 1)
    return result


def _harvest(design) -> ArchOutcome:
    return (
        tuple(sorted(design.register_results().items())),
        tuple(sorted(design.memory_results().items())),
    )


def _enumerate(design, max_states: int) -> ArchEnumeration:
    design.reset()
    root = design.snapshot()
    seen = {root}
    outcomes = set()
    transitions = 0
    drained_states = 0
    complete = True
    design.restore(root)
    if design.drained():
        outcomes.add(_harvest(design))
        frontier: List = []
    else:
        frontier = [root]
    input_space = design.input_space()

    while frontier and complete:
        next_frontier: List = []
        # No assumptions, no monitors: the walk needs only successor
        # snapshots, so the whole frontier expands through the
        # frame-free batch (one shared evaluation per state on batching
        # designs, one slot-matrix step per layer on the kernel
        # backend).  ``state_drained`` asks the compiled quiescence
        # predicate where one exists; the restore is paid only for the
        # drained states whose architectural results are harvested.
        for successors in design.successor_batch(frontier, input_space):
            for child in successors:
                transitions += 1
                if child in seen:
                    continue
                if len(seen) >= max_states:
                    complete = False
                    break
                seen.add(child)
                if design.state_drained(child):
                    drained_states += 1
                    design.restore(child)
                    outcomes.add(_harvest(design))
                else:
                    next_frontier.append(child)
            if not complete:
                break
        frontier = next_frontier

    return ArchEnumeration(
        outcomes=frozenset(outcomes),
        complete=complete,
        states=len(seen),
        transitions=transitions,
        drained_states=drained_states,
    )
