"""Explicit-state property exploration (the JasperGold substitute).

A commercial property verifier compiles the design and each SVA property
into automata and explores their product.  Litmus-test-constrained
Multi-V-scale has a small finite state space, so we do the same thing
explicitly: breadth-first exploration of

    (design state) x (assumption pruning) x (assertion monitor state)

with deduplication.  Per property the verifier reports exactly the three
JasperGold outcomes the paper describes (§6.1):

* **proven** — the reachable product space is exhausted with no failure;
* **counterexample** — a concrete input trace refutes the property;
* **bounded proof** — no failure up to N cycles, budget exhausted.

Assumptions prune a branch only in the cycle their consequent is
violated (no future-violation checking — §3.1), and the search over the
free arbiter input reproduces "JasperGold tries all possibilities for
this input" (§5.2).

Timing and metrics are routed through :mod:`repro.obs`: every public
walk runs inside a span whose duration becomes the result's
``seconds`` field, and walk-level counters (transitions, states,
frames simulated) are flushed to the active recorder — a no-op unless
a :class:`~repro.obs.TraceRecorder` is installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro import obs
from repro.rtl.design import Design, Frame, VECTOR_BACKENDS
from repro.sva.monitor import AssumptionChecker, PropertyMonitor

#: Verdicts.
PROVEN = "proven"
BOUNDED = "bounded"
FAILED = "cex"
UNREACHABLE = "unreachable"
REACHABLE = "reachable"
UNKNOWN = "unknown"


@dataclass
class Budget:
    """Exploration limits, standing in for a JasperGold engine's time
    allotment."""

    max_states: int = 2_000_000
    max_depth: int = 10_000

    def copy(self) -> "Budget":
        return Budget(self.max_states, self.max_depth)


@dataclass
class ExplorationResult:
    """Outcome of one exploration run."""

    verdict: str
    depth_completed: int = 0
    states_explored: int = 0
    transitions: int = 0
    counterexample: Optional[List[Tuple[Dict[str, int], Frame]]] = None
    fired_assumptions: Set[str] = field(default_factory=set)
    exhausted: bool = False
    #: Transitions evaluated per BFS layer (work profile for the engine
    #: model's bounded-proof depth accounting).  On early exits (cex or
    #: budget) the final entry records the interrupted layer's partial
    #: work, so ``sum(layer_transitions) == transitions`` always holds.
    layer_transitions: List[int] = field(default_factory=list)
    #: Wall-clock seconds this exploration took (phase profiling).
    seconds: float = 0.0

    @property
    def bound(self) -> int:
        return self.depth_completed

    # -- serialization (run reports) -----------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe snapshot (frames and inputs are str->int maps)."""
        return {
            "verdict": self.verdict,
            "depth_completed": self.depth_completed,
            "states_explored": self.states_explored,
            "transitions": self.transitions,
            "counterexample": (
                None
                if self.counterexample is None
                else [[dict(i), dict(f)] for i, f in self.counterexample]
            ),
            "fired_assumptions": sorted(self.fired_assumptions),
            "exhausted": self.exhausted,
            "layer_transitions": list(self.layer_transitions),
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExplorationResult":
        cex = data.get("counterexample")
        return cls(
            verdict=data["verdict"],
            depth_completed=data["depth_completed"],
            states_explored=data["states_explored"],
            transitions=data["transitions"],
            counterexample=(
                None if cex is None else [(dict(i), dict(f)) for i, f in cex]
            ),
            fired_assumptions=set(data["fired_assumptions"]),
            exhausted=data["exhausted"],
            layer_transitions=list(data["layer_transitions"]),
            seconds=data["seconds"],
        )


class InstrumentedExplorer:
    """Shared public API of the explorer backends.

    Wraps the walk bodies (``_check_property`` / ``_cover_assumptions``)
    in :mod:`repro.obs` spans — the span duration *is* the result's
    ``seconds`` field — and flushes walk-level counters.  Subclasses
    with ``_simulates_frames`` set evaluate the design once per
    transition, so their transition count doubles as the RTL kernel's
    frames-simulated counter; the graph-backed explorer reports its
    simulation work through its :class:`~repro.verifier.reach.ReachGraph`
    instead.
    """

    #: Does every walked transition simulate an RTL frame?
    _simulates_frames = True

    def check_property(
        self, monitor: PropertyMonitor, budget: Budget
    ) -> ExplorationResult:
        """Verify one assertion against all assumption-satisfying traces."""
        with obs.span("property", property=monitor.directive.name) as walk:
            result = self._check_property(monitor, budget)
        result.seconds = walk.seconds
        self._flush_walk_counters(result, kind="property")
        return result

    def cover_assumptions(self, budget: Budget) -> ExplorationResult:
        """Covering-trace search (paper §4.1): explore all assumption-
        satisfying traces, recording which assumptions' antecedents fire
        with their consequents enforceable.  If exploration exhausts and
        an assumption never fired, that assumption is *unreachable*."""
        with obs.span("cover") as walk:
            result = self._cover_assumptions(budget)
        result.seconds = walk.seconds
        self._flush_walk_counters(result, kind="cover")
        return result

    def _flush_walk_counters(self, result: ExplorationResult, kind: str) -> None:
        recorder = obs.get_recorder()
        if not recorder.enabled:
            return
        recorder.count(f"explorer.{kind}_walks", 1)
        recorder.count("explorer.transitions", result.transitions)
        recorder.count("explorer.states_explored", result.states_explored)
        if self._simulates_frames:
            recorder.count("rtl.frames_simulated", result.transitions)

    # -- subclass responsibilities -------------------------------------

    def _check_property(
        self, monitor: PropertyMonitor, budget: Budget
    ) -> ExplorationResult:
        raise NotImplementedError

    def _cover_assumptions(self, budget: Budget) -> ExplorationResult:
        raise NotImplementedError


class Explorer(InstrumentedExplorer):
    """Breadth-first product-space exploration for one design."""

    def __init__(self, design: Design, assumptions: AssumptionChecker):
        self.design = design
        self.assumptions = assumptions
        self.input_space = design.input_space()

    # ------------------------------------------------------------------

    def _reset_root(self) -> Hashable:
        self.design.reset()
        return self.design.snapshot()

    def _check_property(
        self, monitor: PropertyMonitor, budget: Budget
    ) -> ExplorationResult:
        if self.design.state_backend in VECTOR_BACKENDS:
            return self._check_property_batched(monitor, budget)
        root_rtl = self._reset_root()
        root = (root_rtl, monitor.initial())
        visited = {root}
        frontier: List[Tuple[Hashable, Tuple]] = [root]
        # Parent pointers for counterexample reconstruction:
        # child -> (parent, inputs, frame)
        parents: Dict[Tuple, Tuple] = {root: None}
        result = ExplorationResult(verdict=UNKNOWN)
        depth = 0

        while frontier:
            if depth >= budget.max_depth:
                result.verdict = BOUNDED
                result.depth_completed = depth
                result.states_explored = len(visited)
                return result
            next_frontier: List[Tuple[Hashable, Tuple]] = []
            first = 1 if depth == 0 else 0
            layer_start = result.transitions
            for rtl_state, mon_state in frontier:
                for inputs in self.input_space:
                    self.design.restore(rtl_state)
                    frame = self.design.eval_comb(inputs)
                    frame["first"] = first
                    result.transitions += 1
                    if not self.assumptions.frame_ok(frame):
                        continue
                    new_mon = monitor.step(mon_state, frame)
                    verdict = monitor.verdict(new_mon)
                    if verdict is False:
                        trace = self._rebuild_trace(
                            parents, (rtl_state, mon_state)
                        )
                        trace.append((dict(inputs), frame))
                        result.verdict = FAILED
                        result.depth_completed = depth + 1
                        result.states_explored = len(visited)
                        result.counterexample = trace
                        result.layer_transitions.append(
                            result.transitions - layer_start
                        )
                        return result
                    if verdict is True:
                        continue  # every extension satisfies the property
                    self.design.tick()
                    child = (self.design.snapshot(), new_mon)
                    if child not in visited:
                        # Budget check per expansion, not per layer: a
                        # wide layer must not blow past the state cap.
                        if len(visited) >= budget.max_states:
                            result.verdict = BOUNDED
                            result.depth_completed = depth
                            result.states_explored = len(visited)
                            result.layer_transitions.append(
                                result.transitions - layer_start
                            )
                            return result
                        visited.add(child)
                        parents[child] = ((rtl_state, mon_state), dict(inputs), frame)
                        next_frontier.append(child)
            result.layer_transitions.append(result.transitions - layer_start)
            frontier = next_frontier
            depth += 1

        result.verdict = PROVEN
        result.exhausted = True
        result.depth_completed = depth
        result.states_explored = len(visited)
        return result

    def _check_property_batched(
        self, monitor: PropertyMonitor, budget: Budget
    ) -> ExplorationResult:
        """Array-backend product walk: one :meth:`Design.step_batch`
        call per frontier pair expands every free-input choice at once.

        Verdicts, traces, transition counts, and budget behavior are
        identical to the per-input loop above; only the assumption
        checker's firing *counters* can run ahead on walks that return
        mid-node (the batch prices the whole input space up front).
        """
        design = self.design
        assumptions = self.assumptions
        input_space = self.input_space
        root_rtl = self._reset_root()
        root = (root_rtl, monitor.initial())
        visited = {root}
        frontier: List[Tuple[Hashable, Tuple]] = [root]
        parents: Dict[Tuple, Tuple] = {root: None}
        result = ExplorationResult(verdict=UNKNOWN)
        depth = 0

        while frontier:
            if depth >= budget.max_depth:
                result.verdict = BOUNDED
                result.depth_completed = depth
                result.states_explored = len(visited)
                return result
            next_frontier: List[Tuple[Hashable, Tuple]] = []
            first = 1 if depth == 0 else 0
            layer_start = result.transitions
            for rtl_state, mon_state in frontier:
                # ``step_batch_checked`` stamps ``first`` and applies the
                # assumption pruning — as a fused compiled check on the
                # kernel backend, via ``frame_ok_repeated`` elsewhere.
                steps = design.step_batch_checked(
                    rtl_state, input_space, assumptions, first
                )
                for index, step in enumerate(steps):
                    result.transitions += 1
                    if step is None:
                        continue
                    frame, child_rtl = step
                    new_mon = monitor.step(mon_state, frame)
                    verdict = monitor.verdict(new_mon)
                    if verdict is False:
                        trace = self._rebuild_trace(
                            parents, (rtl_state, mon_state)
                        )
                        trace.append((dict(input_space[index]), frame))
                        result.verdict = FAILED
                        result.depth_completed = depth + 1
                        result.states_explored = len(visited)
                        result.counterexample = trace
                        result.layer_transitions.append(
                            result.transitions - layer_start
                        )
                        return result
                    if verdict is True:
                        continue  # every extension satisfies the property
                    child = (child_rtl, new_mon)
                    if child not in visited:
                        if len(visited) >= budget.max_states:
                            result.verdict = BOUNDED
                            result.depth_completed = depth
                            result.states_explored = len(visited)
                            result.layer_transitions.append(
                                result.transitions - layer_start
                            )
                            return result
                        visited.add(child)
                        parents[child] = (
                            (rtl_state, mon_state),
                            dict(input_space[index]),
                            frame,
                        )
                        next_frontier.append(child)
            result.layer_transitions.append(result.transitions - layer_start)
            frontier = next_frontier
            depth += 1

        result.verdict = PROVEN
        result.exhausted = True
        result.depth_completed = depth
        result.states_explored = len(visited)
        return result

    # ------------------------------------------------------------------

    def _cover_assumptions(self, budget: Budget) -> ExplorationResult:
        if self.design.state_backend in VECTOR_BACKENDS:
            return self._cover_assumptions_batched(budget)
        root = self._reset_root()
        visited = {root}
        frontier = [root]
        result = ExplorationResult(verdict=UNKNOWN)
        depth = 0
        checks = self.assumptions.checks

        while frontier:
            if depth >= budget.max_depth:
                result.verdict = UNKNOWN
                result.depth_completed = depth
                result.states_explored = len(visited)
                return result
            next_frontier = []
            first = 1 if depth == 0 else 0
            layer_start = result.transitions
            for rtl_state in frontier:
                for inputs in self.input_space:
                    self.design.restore(rtl_state)
                    frame = self.design.eval_comb(inputs)
                    frame["first"] = first
                    result.transitions += 1
                    if not self.assumptions.frame_ok(frame):
                        continue
                    for name, antecedent, _consequent in checks:
                        if name not in result.fired_assumptions and antecedent.evaluate(frame):
                            result.fired_assumptions.add(name)
                    self.design.tick()
                    child = self.design.snapshot()
                    if child not in visited:
                        if len(visited) >= budget.max_states:
                            result.verdict = UNKNOWN
                            result.depth_completed = depth
                            result.states_explored = len(visited)
                            result.layer_transitions.append(
                                result.transitions - layer_start
                            )
                            return result
                        visited.add(child)
                        next_frontier.append(child)
            result.layer_transitions.append(result.transitions - layer_start)
            frontier = next_frontier
            depth += 1

        result.verdict = REACHABLE
        result.exhausted = True
        result.depth_completed = depth
        result.states_explored = len(visited)
        return result

    def _cover_assumptions_batched(self, budget: Budget) -> ExplorationResult:
        """Array-backend covering walk (see
        :meth:`_check_property_batched` for the equivalence contract)."""
        design = self.design
        assumptions = self.assumptions
        input_space = self.input_space
        root = self._reset_root()
        visited = {root}
        frontier = [root]
        result = ExplorationResult(verdict=UNKNOWN)
        depth = 0
        checks = self.assumptions.checks

        while frontier:
            if depth >= budget.max_depth:
                result.verdict = UNKNOWN
                result.depth_completed = depth
                result.states_explored = len(visited)
                return result
            next_frontier = []
            first = 1 if depth == 0 else 0
            layer_start = result.transitions
            for rtl_state in frontier:
                steps = design.step_batch_checked(
                    rtl_state, input_space, assumptions, first
                )
                for step in steps:
                    result.transitions += 1
                    if step is None:
                        continue
                    frame, child = step
                    for name, antecedent, _consequent in checks:
                        if name not in result.fired_assumptions and antecedent.evaluate(frame):
                            result.fired_assumptions.add(name)
                    if child not in visited:
                        if len(visited) >= budget.max_states:
                            result.verdict = UNKNOWN
                            result.depth_completed = depth
                            result.states_explored = len(visited)
                            result.layer_transitions.append(
                                result.transitions - layer_start
                            )
                            return result
                        visited.add(child)
                        next_frontier.append(child)
            result.layer_transitions.append(result.transitions - layer_start)
            frontier = next_frontier
            depth += 1

        result.verdict = REACHABLE
        result.exhausted = True
        result.depth_completed = depth
        result.states_explored = len(visited)
        return result

    # ------------------------------------------------------------------

    @staticmethod
    def _rebuild_trace(parents: Dict, state: Tuple) -> List[Tuple[Dict[str, int], Frame]]:
        trace = []
        cursor = state
        while parents.get(cursor) is not None:
            parent, inputs, frame = parents[cursor]
            trace.append((inputs, frame))
            cursor = parent
        trace.reverse()
        return trace
