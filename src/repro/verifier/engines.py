"""Engine modeling: mapping exploration work to JasperGold-style results.

Our explicit-state explorer exhausts the (litmus-constrained) state
space of every test in well under a second, so it always knows the
ground-truth verdict.  A commercial property verifier does not: its
SAT/BDD engines pay super-linearly for state-space size, and the paper
gives each test fixed wall-clock allotments (Table 1: 1 cover hour +
10 proof hours), inside which some properties only achieve *bounded*
proofs.

The :class:`EngineModel` reproduces that behaviour honestly:

* exploration cost (transitions) maps to modeled hours through
  exponentials — one anchored for the covering-trace phase (so the
  paper's quick tests discharge their cover run in modeled minutes
  while larger tests exhaust the phase budget) and one for the proof
  phase (anchored on the per-property work distribution so the overall
  proven fractions land at the paper's 81% / 89%);
* a deterministic per-property jitter models SAT-engine heuristic
  variance, which is why the paper occasionally sees Hybrid beat
  Full_Proof on individual tests (§7.2: n2, n6, rfi013);
* JasperGold's autoprover (Hybrid only) can converge by induction on
  properties whose reachable product saturates at shallow depth,
  independent of raw state-space size;
* a property with no full proof inside the allotment is reported as a
  bounded proof, whose bound comes from the bounded engines' depth caps
  (BMC unrolling is cheap once the reachable set has saturated).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.verifier.config import VerifierConfig
from repro.verifier.explorer import (
    BOUNDED,
    ExplorationResult,
    FAILED,
    PROVEN,
)

# -- covering-trace phase cost model ----------------------------------------
#: Anchors: exploring ~550 transitions costs one modeled hour, and mp's
#: 404-transition covering run costs ~3 modeled minutes (Figure 13's
#: fastest bars are "under 4 minutes").
COVER_HOURS_SCALE = 48.7
COVER_ONE_HOUR_TRANSITIONS = 550.0

# -- proof phase cost model ---------------------------------------------------
#: Anchors fitted to the per-property work distribution of the 56-test
#: suite so that properties provable inside Hybrid's 7 full-proof hours
#: are ~81% of all properties and those inside Full_Proof's 9.5 hours
#: are ~89% (the paper's §7.2 overall fractions).
PROOF_HOURS_SCALE = 995.48
PROOF_HOURS_OFFSET = -909.11

#: Deterministic engine-heuristic variance (fraction of the allotment).
JITTER_AMPLITUDE = 0.20


def modeled_hours(transitions: int) -> float:
    """Covering-trace phase: modeled hours for ``transitions``."""
    return math.exp((transitions - COVER_ONE_HOUR_TRANSITIONS) / COVER_HOURS_SCALE)


def proof_hours(transitions: int) -> float:
    """Proof phase: modeled hours to fully prove a property whose
    product exploration takes ``transitions``."""
    return math.exp((transitions - PROOF_HOURS_OFFSET) / PROOF_HOURS_SCALE)


def transitions_within(hours: float) -> float:
    """Inverse of :func:`proof_hours` (transitions affordable)."""
    if hours <= 0:
        return 0.0
    return PROOF_HOURS_OFFSET + PROOF_HOURS_SCALE * math.log(hours)


def engine_jitter(config_name: str, engine_name: str, property_name: str) -> float:
    """Deterministic multiplicative jitter in
    ``[1 - JITTER_AMPLITUDE, 1 + JITTER_AMPLITUDE]`` — a stand-in for
    SAT/BDD heuristic variance, stable across runs."""
    seed = f"{config_name}:{engine_name}:{property_name}".encode()
    unit = (zlib.crc32(seed) & 0xFFFF) / 0xFFFF
    return 1.0 + JITTER_AMPLITUDE * (2.0 * unit - 1.0)


@dataclass
class EngineVerdict:
    """One property's reported result under an engine configuration."""

    status: str  # 'proven', 'bounded', or 'cex'
    bound: Optional[int] = None  # cycles, for bounded proofs
    engine: str = ""
    modeled_hours: float = 0.0
    transitions: int = 0

    @property
    def proven(self) -> bool:
        return self.status == PROVEN

    @property
    def failed(self) -> bool:
        return self.status == FAILED


class EngineModel:
    """Applies one :class:`VerifierConfig` to exploration ground truth."""

    def __init__(self, config: VerifierConfig):
        self.config = config

    # -- covering-trace phase -------------------------------------------

    def cover_hours(self, result: ExplorationResult) -> float:
        return min(modeled_hours(result.transitions), self.config.cover_hours)

    def cover_conclusive(self, result: ExplorationResult) -> bool:
        """Did the covering-trace run finish inside its hour?"""
        return (
            result.exhausted
            and modeled_hours(result.transitions) <= self.config.cover_hours
        )

    # -- proof phase -------------------------------------------------------

    def judge_property(
        self, result: ExplorationResult, property_name: str = ""
    ) -> EngineVerdict:
        """Report one property's verdict under this configuration.

        ``result`` is the explorer's ground truth (it exhausted the
        product space or found a counterexample).
        """
        verdict = self._judge_property(result, property_name)
        obs.count(f"engine.verdict.{verdict.status}")
        return verdict

    def _judge_property(
        self, result: ExplorationResult, property_name: str
    ) -> EngineVerdict:
        if result.verdict == FAILED:
            # Counterexamples live at shallow depth; every engine finds
            # them quickly.  Price only the transitions actually spent
            # up to the failing layer (the explorer stopped there), not
            # a hypothetical full exploration.
            spent = _transitions_spent(result)
            return EngineVerdict(
                status=FAILED,
                bound=result.depth_completed,
                engine=self.config.engines[0].name,
                modeled_hours=min(proof_hours(spent), self.config.proof_hours),
                transitions=result.transitions,
            )
        cost = proof_hours(result.transitions)
        # Inductive convergence (autoprover-style engines): a shallow
        # saturation diameter lets k-induction close the proof outright.
        for engine in self.config.engines:
            if (
                engine.inductive_depth is not None
                and result.exhausted
                and result.depth_completed <= engine.inductive_depth
            ):
                return EngineVerdict(
                    status=PROVEN,
                    engine=engine.name,
                    modeled_hours=min(cost, engine.hours),
                    transitions=result.transitions,
                )
        for engine in self.config.full_engines:
            allotment = engine.hours * engine_jitter(
                self.config.name, engine.name, property_name
            )
            if cost <= allotment:
                return EngineVerdict(
                    status=PROVEN,
                    engine=engine.name,
                    modeled_hours=cost,
                    transitions=result.transitions,
                )
        # No full proof inside the allotment: report the deepest bounded
        # proof any bounded engine achieves.
        bound = 0
        engine_name = "bounded"
        for engine in self.config.bounded_engines:
            if result.exhausted:
                # Once the reachable space saturates, a BMC-style engine
                # keeps unrolling cheaply up to its depth cap.
                depth = engine.depth_cap
            else:
                affordable = transitions_within(engine.hours)
                depth = min(_depth_within(result, affordable), engine.depth_cap)
            if depth > bound:
                bound = depth
                engine_name = engine.name
        return EngineVerdict(
            status=BOUNDED,
            bound=max(bound, 1),
            engine=engine_name,
            modeled_hours=self.config.proof_hours,
            transitions=result.transitions,
        )


def _transitions_spent(result: ExplorationResult) -> int:
    """Transitions the explorer actually evaluated through
    ``depth_completed``, from the per-layer work profile (which includes
    the interrupted final layer's partial work).  Falls back to the raw
    total when no profile was recorded."""
    if result.layer_transitions:
        return sum(result.layer_transitions[: result.depth_completed])
    return result.transitions


def _depth_within(result: ExplorationResult, affordable_transitions: float) -> int:
    """Deepest BFS layer completable within the transition budget, from
    the explorer's per-layer work profile."""
    profile = result.layer_transitions
    if not profile:
        if result.transitions <= 0:
            return result.depth_completed
        fraction = min(1.0, affordable_transitions / max(result.transitions, 1))
        return max(1, int(result.depth_completed * fraction))
    total = 0
    depth = 0
    for layer_cost in profile:
        if total + layer_cost > affordable_transitions:
            break
        total += layer_cost
        depth += 1
    return max(depth, 1)
