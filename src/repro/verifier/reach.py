"""Shared reachability-graph cache for the property verifier.

:class:`repro.verifier.explorer.Explorer` re-simulates the design for
every property it checks, even though the assumption-constrained RTL
transition relation is identical across all properties of one
(test, memory variant) pair — only the monitor component of the product
differs.  :class:`ReachGraph` explores the design side **once**,
memoizing each state's per-input ``(frame, successor)`` transitions
into an explicit graph, and :class:`GraphExplorer` then verifies every
:class:`~repro.sva.monitor.PropertyMonitor` as a product walk over the
cached edges — no ``restore`` / ``eval_comb`` / ``tick`` calls after a
node's first expansion, and ``cover_assumptions`` is a free read of the
same graph once it has been built.

Equivalence guarantee
---------------------

``GraphExplorer`` reproduces :class:`Explorer` *bit for bit*: the same
verdicts, ``depth_completed`` bounds, ``states_explored``,
``transitions``, per-layer work profiles, fired assumptions, and
counterexample traces.  This matters because the engine model
(:mod:`repro.verifier.engines`) consumes ``transitions`` and
``layer_transitions`` to model JasperGold hours, so the cached path
replays the walk's would-be transition counts — including the pruned
branches the per-property explorer pays for — keeping the Figure 13/14
numbers identical.  ``tests/test_reach_equivalence.py`` cross-checks
the two explorers over the full 56-test suite.

Three details make the replay exact:

* Nodes are keyed by ``(snapshot, first)`` because the auto-generated
  ``first`` signal makes the root cycle's frames (and hence assumption
  pruning) differ from any later visit to the same snapshot.  Only the
  root carries ``first=1``; child lookups always use ``first=0``, so a
  re-reached reset snapshot becomes a distinct ``first=0`` node.
* Product-walk ``visited`` sets are keyed by the *snapshot* (not the
  node id), matching the per-property explorer's deduplication.
* Expansion is lazy: a node's edges are simulated on first access, so
  a budget-truncated walk expands exactly the design states it touches
  and budgets behave identically.

Cached frames are shared between the graph and every result that
references them (counterexample traces included); treat them as
read-only.

The graph's cache economics are observable: ``sim_transitions`` counts
the design evaluations actually paid (cache misses), ``cache_hits``
counts node-successor lookups served without simulation, and both are
flushed to :mod:`repro.obs` counters by the RTLCheck flow.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Tuple

from repro.rtl.design import Design, Frame
from repro.sva.monitor import AssumptionChecker, PropertyMonitor
from repro.verifier.explorer import (
    BOUNDED,
    Budget,
    ExplorationResult,
    Explorer,
    FAILED,
    InstrumentedExplorer,
    PROVEN,
    REACHABLE,
    UNKNOWN,
)

#: One outgoing transition: ``None`` when the assumptions prune the
#: input this cycle, else the settled frame and the successor node id.
Edge = Optional[Tuple[Frame, int]]


class ReachGraph:
    """Lazily-built graph of the assumption-satisfying design states.

    Nodes are ``(snapshot, first)`` pairs; node 0 is the reset state
    with ``first=1``.  :meth:`successors` simulates a node's per-input
    transitions on first access and caches them, so the design work for
    one (test, memory variant) is paid at most once no matter how many
    property walks run on top.
    """

    root = 0

    def __init__(self, design: Design, assumptions: AssumptionChecker):
        self.design = design
        self.assumptions = assumptions
        self.input_space = design.input_space()
        design.reset()
        root_key = (design.snapshot(), 1)
        self._keys: List[Tuple[Hashable, int]] = [root_key]
        self._ids: Dict[Tuple[Hashable, int], int] = {root_key: 0}
        self._edges: List[Optional[List[Edge]]] = [None]
        self._live: List[Optional[List[Tuple[int, Dict[str, int], Frame, int]]]] = [
            None
        ]
        #: Design evaluations actually simulated (cache misses only).
        self.sim_transitions = 0
        #: Node-successor lookups served from the cache (no simulation).
        self.cache_hits = 0
        #: Wall-clock seconds spent simulating (graph-build time).
        self.build_seconds = 0.0

    # ------------------------------------------------------------------

    def snap(self, node: int) -> Hashable:
        """The design snapshot of ``node`` (the dedup key)."""
        return self._keys[node][0]

    @property
    def num_nodes(self) -> int:
        """Design states discovered so far (expanded or frontier)."""
        return len(self._keys)

    @property
    def expanded_nodes(self) -> int:
        """Design states whose transitions have been simulated."""
        return sum(1 for edges in self._edges if edges is not None)

    def iter_edges(self):
        """Yield ``(src, dst)`` node-id pairs over every expanded,
        non-pruned transition — the coverage layer's walk.  Unexpanded
        nodes are skipped, not expanded: coverage reports what a run
        actually explored."""
        for src, edges in enumerate(self._edges):
            if edges is None:
                continue
            for edge in edges:
                if edge is not None:
                    yield src, edge[1]

    def successors(self, node: int) -> List[Edge]:
        """Per-input transitions of ``node``, simulated once then cached."""
        edges = self._edges[node]
        if edges is None:
            edges = self._expand(node)
        return edges

    def live_successors(
        self, node: int
    ) -> List[Tuple[int, Dict[str, int], Frame, int]]:
        """The non-pruned transitions of ``node`` as
        ``(input_index, inputs, frame, child)`` — the walk's fast path.
        Input indices let callers account for the pruned edges in
        between without iterating them."""
        live = self._live[node]
        if live is None:
            inputs = self.input_space
            live = [
                (index, inputs[index], edge[0], edge[1])
                for index, edge in enumerate(self.successors(node))
                if edge is not None
            ]
            self._live[node] = live
        else:
            self.cache_hits += 1
        return live

    # ------------------------------------------------------------------

    def _expand(self, node: int) -> List[Edge]:
        start = time.perf_counter()
        snapshot, first = self._keys[node]

        # ``sim_transitions`` stays in logical per-input units on every
        # backend (the engine model prices walks in transitions, and
        # serialized verdicts must not depend on the state backend);
        # the *physical* evaluations saved by batching are visible via
        # the design's ``batch_expansions``/``slots_copied`` counters.
        # ``step_batch_checked`` stamps ``first`` into kept frames and
        # applies the assumption pruning — on the kernel backend as a
        # fused compiled check, elsewhere via ``frame_ok_repeated``.
        steps = self.design.step_batch_checked(
            snapshot, self.input_space, self.assumptions, first
        )
        self.sim_transitions += len(self.input_space)
        edges: List[Edge] = []
        for step in steps:
            if step is None:
                edges.append(None)
                continue
            frame, child_state = step
            child_key = (child_state, 0)
            child = self._ids.get(child_key)
            if child is None:
                child = len(self._keys)
                self._ids[child_key] = child
                self._keys.append(child_key)
                self._edges.append(None)
                self._live.append(None)
            edges.append((frame, child))
        self._edges[node] = edges
        self.build_seconds += time.perf_counter() - start
        return edges


class GraphExplorer(InstrumentedExplorer):
    """Drop-in replacement for :class:`Explorer` backed by a shared
    :class:`ReachGraph`.

    Exposes the same ``check_property`` / ``cover_assumptions`` API and
    produces identical :class:`ExplorationResult` values; the design is
    simulated only on graph cache misses — which is why walked
    transitions are *not* reported as simulated frames here (the graph
    reports its own ``sim_transitions``).
    """

    _simulates_frames = False

    def __init__(
        self,
        design: Design,
        assumptions: AssumptionChecker,
        graph: Optional[ReachGraph] = None,
    ):
        self.graph = graph if graph is not None else ReachGraph(design, assumptions)
        self.assumptions = self.graph.assumptions
        self.input_space = self.graph.input_space

    # ------------------------------------------------------------------

    def _check_property(
        self, monitor: PropertyMonitor, budget: Budget
    ) -> ExplorationResult:
        """Verify one assertion as a product walk over the cached graph."""
        graph = self.graph
        root_key = (graph.snap(graph.root), monitor.initial())
        visited = {root_key}
        frontier: List[Tuple[int, Tuple]] = [(graph.root, monitor.initial())]
        parents: Dict[Tuple, Tuple] = {root_key: None}
        result = ExplorationResult(verdict=UNKNOWN)
        depth = 0

        while frontier:
            if depth >= budget.max_depth:
                result.verdict = BOUNDED
                result.depth_completed = depth
                result.states_explored = len(visited)
                return result
            next_frontier: List[Tuple[int, Tuple]] = []
            layer_start = result.transitions
            for node, mon_state in frontier:
                node_key = (graph.snap(node), mon_state)
                # Fast path: iterate only the live edges; the input index
                # recovers the per-property explorer's transition count,
                # which includes the pruned edges in between.
                base = result.transitions
                for index, inputs, frame, child_node in graph.live_successors(node):
                    result.transitions = base + index + 1
                    new_mon = monitor.step(mon_state, frame)
                    verdict = monitor.verdict(new_mon)
                    if verdict is False:
                        trace = Explorer._rebuild_trace(parents, node_key)
                        trace.append((dict(inputs), frame))
                        result.verdict = FAILED
                        result.depth_completed = depth + 1
                        result.states_explored = len(visited)
                        result.counterexample = trace
                        result.layer_transitions.append(
                            result.transitions - layer_start
                        )
                        return result
                    if verdict is True:
                        continue  # every extension satisfies the property
                    child_key = (graph.snap(child_node), new_mon)
                    if child_key not in visited:
                        if len(visited) >= budget.max_states:
                            result.verdict = BOUNDED
                            result.depth_completed = depth
                            result.states_explored = len(visited)
                            result.layer_transitions.append(
                                result.transitions - layer_start
                            )
                            return result
                        visited.add(child_key)
                        parents[child_key] = (node_key, dict(inputs), frame)
                        next_frontier.append((child_node, new_mon))
                result.transitions = base + len(self.input_space)
            result.layer_transitions.append(result.transitions - layer_start)
            frontier = next_frontier
            depth += 1

        result.verdict = PROVEN
        result.exhausted = True
        result.depth_completed = depth
        result.states_explored = len(visited)
        return result

    # ------------------------------------------------------------------

    def _cover_assumptions(self, budget: Budget) -> ExplorationResult:
        """Covering-trace search (paper §4.1) as a read of the graph."""
        graph = self.graph
        root_key = graph.snap(graph.root)
        visited = {root_key}
        frontier = [graph.root]
        result = ExplorationResult(verdict=UNKNOWN)
        depth = 0
        checks = self.assumptions.checks

        while frontier:
            if depth >= budget.max_depth:
                result.verdict = UNKNOWN
                result.depth_completed = depth
                result.states_explored = len(visited)
                return result
            next_frontier = []
            layer_start = result.transitions
            for node in frontier:
                base = result.transitions
                for index, _inputs, frame, child_node in graph.live_successors(node):
                    result.transitions = base + index + 1
                    for name, antecedent, _consequent in checks:
                        if name not in result.fired_assumptions and antecedent.evaluate(frame):
                            result.fired_assumptions.add(name)
                    child_key = graph.snap(child_node)
                    if child_key not in visited:
                        if len(visited) >= budget.max_states:
                            result.verdict = UNKNOWN
                            result.depth_completed = depth
                            result.states_explored = len(visited)
                            result.layer_transitions.append(
                                result.transitions - layer_start
                            )
                            return result
                        visited.add(child_key)
                        next_frontier.append(child_node)
                result.transitions = base + len(self.input_space)
            result.layer_transitions.append(result.transitions - layer_start)
            frontier = next_frontier
            depth += 1

        result.verdict = REACHABLE
        result.exhausted = True
        result.depth_completed = depth
        result.states_explored = len(visited)
        return result
