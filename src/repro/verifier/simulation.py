"""Simulation-based assertion checking (dynamic ABV).

The paper motivates formal RTL checking by noting that "dynamic testing
of a design in simulation will by definition be incomplete and not
capture all possible interleavings, even for the tested programs" (§1).
This module provides that baseline: drive the design with random
arbiter schedules, enforce the generated assumptions as trace filters,
and monitor the generated assertions on each concrete trace.

It uses the same monitors as the formal explorer, so a violation found
in simulation is exactly a (lucky) counterexample — and the benchmark
harness quantifies the luck: the explorer finds the V-scale bug
deterministically, while random simulation needs hundreds to thousands
of schedules to stumble on an exposing interleaving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.rtl.design import Design, Frame
from repro.sva.ast import Directive
from repro.sva.monitor import AssumptionChecker, PropertyMonitor


@dataclass
class SimulationReport:
    """Outcome of a random-simulation campaign."""

    schedules_run: int = 0
    cycles_simulated: int = 0
    #: Traces truncated because an assumption's consequent failed (the
    #: run up to that cycle is still a valid constrained trace).
    truncated_traces: int = 0
    #: assertion name -> number of schedules on which it was violated.
    violations: Dict[str, int] = field(default_factory=dict)
    #: First schedule index (0-based) that violated any assertion.
    first_violation_schedule: Optional[int] = None
    #: The violating trace, for replay/diagnosis.
    first_violation_trace: Optional[List[Frame]] = None

    @property
    def bug_found(self) -> bool:
        return bool(self.violations)

    def summary(self) -> str:
        if not self.bug_found:
            return (
                f"{self.schedules_run} random schedules, "
                f"{self.cycles_simulated} cycles: no assertion violated"
            )
        names = ", ".join(sorted(self.violations))
        return (
            f"{self.schedules_run} random schedules: violations of [{names}] "
            f"(first on schedule {self.first_violation_schedule})"
        )


def simulate_check(
    design: Design,
    assumptions: Sequence[Directive],
    assertions: Sequence[Directive],
    num_schedules: int = 100,
    max_cycles: int = 60,
    seed: int = 0,
    stop_on_violation: bool = True,
) -> SimulationReport:
    """Run a random-schedule simulation campaign.

    Each schedule draws the free inputs uniformly per cycle.  A frame
    that violates an assumption truncates the trace at that cycle (the
    prefix is still a legal constrained execution).  Every assertion is
    then monitored over the trace; pending verdicts at the end of a
    finite trace count as passes (weak semantics).
    """
    rng = random.Random(seed)
    checker = AssumptionChecker(assumptions)
    monitors = [PropertyMonitor(d) for d in assertions]
    input_space = design.input_space()
    report = SimulationReport()

    # Kernel backend: drive the fused compiled step over raw slot
    # vectors instead of eval_comb/tick on the design object, and
    # memoize each distinct (state, first) transition — random
    # schedules revisit the same few hundred design states thousands
    # of times, so after the first visit a cycle is a dict lookup plus
    # the exact counter replay (``fired`` antecedents, one pruned
    # frame).  Frames appended to traces are fresh copies, the rng
    # draw sequence is untouched (``choice`` over the index range
    # consumes the same ``_randbelow`` call as ``choice`` over the
    # input list), so reports, traces, and monitor verdicts are
    # identical to the interpreted loop bit for bit.
    fused = design.checked_step_kernel(checker)
    root_sid = None
    kern = None
    step_cache: Dict = {}
    indices = range(len(input_space))
    if fused is not None:
        kern = design.step_kernel
        design.reset()
        root_sid = design.snapshot()

    for schedule_index in range(num_schedules):
        trace: List[Frame] = []
        if fused is not None:
            sid = root_sid
            cache_get = step_cache.get
            for cycle in range(max_cycles):
                idx = rng.choice(indices)
                report.cycles_simulated += 1
                first = 1 if cycle == 0 else 0
                key = (sid, first)
                hit = cache_get(key)
                if hit is None:
                    fired_before = checker.antecedent_firings
                    frame, buf = fused(
                        design.state_vector(sid), checker, first, 1
                    )
                    fired = checker.antecedent_firings - fired_before
                    if frame is None:
                        step_cache[key] = (None, fired, None)
                        report.truncated_traces += 1
                        break
                    successors = []
                    for inputs in input_space:
                        kern.apply_inputs(buf, inputs)
                        successors.append(design.intern_vector(buf))
                    step_cache[key] = (frame, fired, successors)
                else:
                    frame, fired, successors = hit
                    checker.antecedent_firings += fired
                    if frame is None:
                        checker.pruned_frames += 1
                        report.truncated_traces += 1
                        break
                if monitors:
                    trace.append(dict(frame))
                sid = successors[idx]
        else:
            design.reset()
            for cycle in range(max_cycles):
                inputs = rng.choice(input_space)
                frame = design.eval_comb(inputs)
                frame["first"] = 1 if cycle == 0 else 0
                report.cycles_simulated += 1
                if not checker.frame_ok(frame):
                    report.truncated_traces += 1
                    break
                design.tick()
                trace.append(frame)
        report.schedules_run += 1

        violated_here = False
        for monitor in monitors:
            state = monitor.initial()
            verdict = None
            for frame in trace:
                state = monitor.step(state, frame)
                verdict = monitor.verdict(state)
                if verdict is not None:
                    break
            if verdict is False:
                name = monitor.directive.name
                report.violations[name] = report.violations.get(name, 0) + 1
                violated_here = True
        if violated_here and report.first_violation_schedule is None:
            report.first_violation_schedule = schedule_index
            report.first_violation_trace = trace
            if stop_on_violation:
                break
    return report
