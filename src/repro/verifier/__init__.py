"""The property verifier (JasperGold substitute) and its configurations."""

from repro.verifier.simulation import SimulationReport, simulate_check
from repro.verifier.explorer import (
    BOUNDED,
    Budget,
    ExplorationResult,
    Explorer,
    FAILED,
    PROVEN,
    REACHABLE,
    UNKNOWN,
    UNREACHABLE,
)

__all__ = [
    "BOUNDED",
    "Budget",
    "ExplorationResult",
    "Explorer",
    "FAILED",
    "PROVEN",
    "REACHABLE",
    "UNKNOWN",
    "UNREACHABLE",
    "SimulationReport",
    "simulate_check",
]
