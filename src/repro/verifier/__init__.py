"""The property verifier (JasperGold substitute) and its configurations."""

from repro.verifier.simulation import SimulationReport, simulate_check
from repro.verifier.explorer import (
    BOUNDED,
    Budget,
    ExplorationResult,
    Explorer,
    FAILED,
    PROVEN,
    REACHABLE,
    UNKNOWN,
    UNREACHABLE,
)
from repro.verifier.reach import GraphExplorer, ReachGraph

__all__ = [
    "BOUNDED",
    "Budget",
    "ExplorationResult",
    "Explorer",
    "FAILED",
    "GraphExplorer",
    "PROVEN",
    "REACHABLE",
    "ReachGraph",
    "UNKNOWN",
    "UNREACHABLE",
    "SimulationReport",
    "simulate_check",
]
