"""Compiled per-design step kernels (the ``kernel`` state backend).

The array backend (:mod:`repro.rtl.design`) made design state a flat
interned slot vector, but every step still runs the design's
``eval_comb``/``tick`` methods: per-object Python attribute code, one
dispatch per signal.  A *step kernel* removes that interpreter from the
hot path.  At ``enable_kernel_state()`` time the design compiles — from
its static :class:`~repro.rtl.design.SlotLayout` and read-only
parameters (instruction memories, decode tables, declared data words) —
a specialized straight-line step function that reads the current slot
vector and writes the successor slot vector directly, with every slot
index a constant baked into the generated source.  No ``Frame`` objects
or attribute dispatch survive on the hot path; the settled frame is
emitted as a single dict literal in exactly the interpreter's key
order, so downstream consumers (assumption checks, property monitors,
VCD rendering) observe byte-identical values.

A kernel optionally also provides a *matrix* path: with numpy
available, an entire frontier steps as one 2-D ``(n_states, n_slots)``
int64 slot matrix per call.  Frame-free consumers (outcome
enumeration, trace harvesting) use it when the frontier is at least
:data:`MATRIX_MIN_ROWS` rows; below that the scalar kernel wins.

Determinism contract: a kernel is a pure function of the slot vector.
It must reproduce the interpreter bit for bit — same frames, same
successor vectors, same error raises (fetch past instruction memory,
memory-word growth guard) at the same logical points — so serialized
verdicts, reach graphs, VCDs, and coverage maps are identical across
the ``dict``/``array``/``kernel`` backends.  The differential harness
in ``tests/test_kernel_equivalence.py`` enforces this.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.rtl.design import Frame, Inputs

#: Minimum frontier size before the numpy matrix path engages; under
#: this the per-call numpy overhead (array build, masks) costs more
#: than the scalar kernel's straight-line Python.
MATRIX_MIN_ROWS = 16


def numpy_or_none():
    """The numpy module, or ``None`` when unavailable (the kernel
    backend then runs scalar-only; results are identical either way)."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is an optional dep
        return None
    return numpy


class StepKernel:
    """A design's compiled step functions over flat slot vectors.

    ``step(vec, hook, repeats)`` settles one cycle from ``vec`` and
    returns ``(frame, successor)``; when ``hook`` is given and rejects
    the frame, the successor is ``None`` and — exactly like the
    interpreter, which only ticks after the hook passes — no
    sequential-phase errors are raised for the pruned cycle.  The
    returned successor is a fresh mutable list with the free-input
    slot(s) *unapplied*; callers patch them via :meth:`apply_inputs`
    (or directly) before interning, mirroring the array backend's
    one-slot-per-choice expansion.

    ``step_state(vec)`` is the frame-free variant for consumers that
    never look at signals.  ``drained(vec)`` answers quiescence without
    restoring the design object.  ``step_matrix``/``drained_matrix``
    are the optional numpy paths (``None`` without numpy).
    """

    __slots__ = (
        "step",
        "step_state",
        "drained",
        "apply_inputs",
        "step_matrix",
        "drained_matrix",
        "np",
        "source",
    )

    def __init__(
        self,
        step: Callable[..., Tuple[Frame, Optional[List[int]]]],
        step_state: Callable[[Sequence[int]], List[int]],
        drained: Callable[[Sequence[int]], bool],
        apply_inputs: Callable[[List[int], Inputs], None],
        step_matrix: Optional[Callable[[Any], Any]] = None,
        drained_matrix: Optional[Callable[[Any], Any]] = None,
        np: Any = None,
        source: str = "",
    ):
        self.step = step
        self.step_state = step_state
        self.drained = drained
        self.apply_inputs = apply_inputs
        self.step_matrix = step_matrix
        self.drained_matrix = drained_matrix
        self.np = np
        self.source = source

    def matrix_ready(self, rows: int) -> bool:
        """True when the numpy path exists and ``rows`` states amortize
        its per-call overhead."""
        return self.step_matrix is not None and rows >= MATRIX_MIN_ROWS

    def __reduce__(self):
        raise TypeError(
            "StepKernel holds compiled closures and cannot be pickled; "
            "designs drop their kernel on serialization and recompile "
            "on first use"
        )


def compile_source(source: str, namespace: dict, entry: str):
    """Exec generated kernel source in ``namespace`` and return the
    named entry point (kept separate so tests can compile fragments)."""
    code = compile(source, f"<step-kernel:{entry}>", "exec")
    exec(code, namespace)  # noqa: S102 - the source is generated here
    return namespace[entry]
