"""Execution traces and ASCII timing diagrams.

The paper illustrates executions as waveform timing diagrams (Figures 6,
11, 12); :func:`render_timing_diagram` reproduces that presentation from
a recorded trace so counterexamples can be inspected the same way the
authors diagnosed the V-scale store-dropping bug.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.rtl.design import Frame

#: Optional pretty-printer for a signal's value (for example decoding a
#: pipeline PC into the litmus instruction it holds).
Formatter = Callable[[int], str]


def signal_values(trace: Sequence[Frame], name: str) -> List[int]:
    """The per-cycle values of one signal across ``trace``."""
    return [frame.get(name, 0) for frame in trace]


def render_timing_diagram(
    trace: Sequence[Frame],
    signals: Sequence[str],
    formatters: Optional[Dict[str, Formatter]] = None,
    first_cycle: int = 0,
    last_cycle: Optional[int] = None,
    cell_width: int = 9,
) -> str:
    """Render selected ``signals`` of ``trace`` as an ASCII timing diagram.

    Constant-0 stretches render as blanks so events stand out, mirroring
    the paper's waveform figures.
    """
    formatters = formatters or {}
    if last_cycle is None:
        last_cycle = len(trace) - 1
    cycles = range(first_cycle, min(last_cycle, len(trace) - 1) + 1)
    label_width = max((len(s) for s in signals), default=0) + 2

    def fmt(name: str, value: int) -> str:
        if name in formatters:
            return formatters[name](value)
        return str(value) if value else ""

    lines = []
    header = " " * label_width + "".join(f"{c:^{cell_width}}" for c in cycles)
    lines.append(header)
    lines.append(" " * label_width + ("-" * cell_width) * len(list(cycles)))
    for name in signals:
        cells = []
        for cycle in cycles:
            text = fmt(name, trace[cycle].get(name, 0))
            cells.append(f"{text[:cell_width - 1]:^{cell_width}}")
        lines.append(f"{name:<{label_width}}" + "".join(cells))
    return "\n".join(lines)


def changed_signals(before: Frame, after: Frame) -> List[Tuple[str, int, int]]:
    """Signals whose value differs between two frames (debug helper)."""
    names = set(before) | set(after)
    out = []
    for name in sorted(names):
        a, b = before.get(name, 0), after.get(name, 0)
        if a != b:
            out.append((name, a, b))
    return out
