"""Cycle-accurate RTL simulation kernel."""

from repro.rtl.design import Design, Frame, FreeInput, Inputs, Simulator
from repro.rtl.trace import changed_signals, render_timing_diagram, signal_values
from repro.rtl.vcd import render_vcd, write_vcd

__all__ = [
    "Design",
    "Frame",
    "FreeInput",
    "Inputs",
    "Simulator",
    "changed_signals",
    "render_timing_diagram",
    "signal_values",
    "render_vcd",
    "write_vcd",
]
