"""The RTL simulation kernel.

Designs are synchronous, single-clock machines with explicit state.
Each cycle has two phases, the standard simulator discipline:

1. :meth:`Design.eval_comb` — settle all combinational logic for the
   current cycle given the free top-level inputs, and return the cycle's
   *frame*: a flat mapping from hierarchical signal name (for example
   ``core[1].PC_WB``) to integer value.  Generated SVA properties and
   mapping functions refer to signals through these names.
2. :meth:`Design.tick` — commit the next-state values computed during
   ``eval_comb`` (the rising clock edge).

Designs also expose :meth:`Design.snapshot` / :meth:`Design.restore`,
returning hashable states; the property verifier uses these for
explicit-state exploration with deduplication.

Three state backends implement that protocol (``docs/performance.md``):

* ``dict`` — the original nested-tuple snapshots, built by each
  subclass's :meth:`Design.snapshot_state` / :meth:`Design.restore_state`
  (or a direct ``snapshot``/``restore`` override).
* ``array`` — a flat slot vector.  The design declares a static
  :class:`SlotLayout` once; ``snapshot()`` writes every slot into a
  reused buffer and hash-conses the resulting tuple through a
  :class:`StateInterner`, so a snapshot is just a dense integer id and
  ``restore()`` a bulk slot copy.  Enabled via
  :meth:`Design.enable_array_state` on designs that provide a layout.
* ``kernel`` — the array representation plus a compiled per-design
  step function (:mod:`repro.rtl.kernel`) that maps slot vector to
  successor slot vector without touching the design object at all.
  Enabled via :meth:`Design.enable_kernel_state` on designs that
  implement :meth:`Design.build_step_kernel`; falls back to the array
  backend otherwise.  Bit-identical to the interpreter by contract.

On top of either backend, :meth:`Design.step_batch` expands *all* free
input choices of one state in a single call; designs whose settled
frame does not depend on a free input (Multi-V-scale's arbiter grant)
override it to share one combinational evaluation across every choice.

Free inputs (for Multi-V-scale: the arbiter's grant select, paper §5.2)
are declared via :meth:`Design.free_inputs`; a formal verifier explores
every combination, a simulator picks one per cycle.
"""

from __future__ import annotations

import itertools
import time
from array import array
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs
from repro.errors import ReproError, RtlError

#: Backends whose snapshots are interned flat slot vectors.
VECTOR_BACKENDS = ("array", "kernel")

#: A settled cycle's signal values.
Frame = Dict[str, int]
#: One assignment of the design's free inputs.
Inputs = Mapping[str, int]


class FreeInput:
    """A nondeterministic top-level input: ``name`` ranges over
    ``0 .. cardinality-1`` each cycle."""

    def __init__(self, name: str, cardinality: int):
        if cardinality < 1:
            raise RtlError(f"free input {name!r} needs cardinality >= 1")
        self.name = name
        self.cardinality = cardinality

    def __repr__(self):
        return f"FreeInput({self.name!r}, {self.cardinality})"


class SlotLayout:
    """A design's static flat-state declaration: named blocks of
    consecutive integer slots.  Built once per design instance; the
    total :attr:`size` fixes the length of every state vector."""

    def __init__(self):
        self._blocks: List[Tuple[str, int, int]] = []
        self._size = 0

    def block(self, name: str, count: int) -> int:
        """Append ``count`` slots named ``name``; returns their base
        index."""
        if count < 0:
            raise RtlError(f"slot block {name!r} needs count >= 0")
        base = self._size
        self._blocks.append((name, base, count))
        self._size += count
        return base

    @property
    def size(self) -> int:
        return self._size

    @property
    def blocks(self) -> List[Tuple[str, int, int]]:
        """``(name, base, count)`` triples in declaration order."""
        return list(self._blocks)

    def describe(self) -> str:
        lines = [f"{base:5d}..{base + count - 1:<5d} {name} ({count})"
                 for name, base, count in self._blocks if count]
        return "\n".join(lines)


class StateInterner:
    """Hash-consing of flat state tuples into dense integer ids.

    Equal state vectors always intern to the same id, so snapshot
    equality and set membership degrade to integer comparisons, and a
    reachability graph holds each distinct state's storage exactly once
    no matter how many nodes reference it.

    Pickling uses a compact packed form: all slot values fit signed
    64-bit, so the whole table serializes as one ``array('q')`` plus
    the vector width (the id ordering — and therefore every consumer's
    node numbering — survives the round trip bit for bit).
    """

    def __init__(self):
        self._ids: Dict[Tuple[int, ...], int] = {}
        self._states: List[Tuple[int, ...]] = []

    def intern(self, state: Tuple[int, ...]) -> int:
        sid = self._ids.get(state)
        if sid is None:
            sid = len(self._states)
            self._ids[state] = sid
            self._states.append(state)
        return sid

    def state(self, sid: int) -> Tuple[int, ...]:
        return self._states[sid]

    def __len__(self) -> int:
        return len(self._states)

    # -- compact pickling ----------------------------------------------

    def __getstate__(self):
        states = self._states
        width = len(states[0]) if states else 0
        flat = array("q")
        for state in states:
            flat.extend(state)
        return {"width": width, "count": len(states), "packed": flat.tobytes()}

    def __setstate__(self, data):
        flat = array("q")
        flat.frombytes(data["packed"])
        width, count = data["width"], data["count"]
        if len(flat) != width * count:
            raise ReproError(
                f"corrupt StateInterner pickle: {len(flat)} packed slots "
                f"cannot hold {count} states of width {width}"
            )
        states = [
            tuple(flat[i * width:(i + 1) * width]) for i in range(count)
        ]
        ids = {state: sid for sid, state in enumerate(states)}
        if len(ids) != len(states):
            # A duplicate vector would silently renumber every later id
            # (the dict keeps only the last), breaking the dense-id
            # invariant each consumer's node numbering relies on.
            raise ReproError(
                "corrupt StateInterner pickle: duplicate state vectors "
                "would silently renumber interned ids"
            )
        self._states = states
        self._ids = ids


#: ``frame_hook(frame, repeats) -> keep``: called by ``step_batch`` once
#: per distinct settled frame, with ``repeats`` the number of input
#: choices sharing it; returning False prunes all of them.
FrameHook = Callable[[Frame, int], bool]


def _keep_all(frame: Frame, repeats: int) -> bool:
    return True


class Design:
    """Base class for simulatable designs. Subclasses implement the
    two-phase protocol plus snapshot/restore (directly, or via the
    ``snapshot_state``/``restore_state`` + slot-layout backends)."""

    #: Active snapshot representation: ``"dict"`` (nested tuples),
    #: ``"array"`` (interned flat vectors), or ``"kernel"`` (interned
    #: flat vectors stepped by compiled code — see module docstring).
    state_backend = "dict"
    #: Slots moved through the flat buffer (vector backends only).
    slots_copied = 0
    #: ``step_batch`` calls that shared one settled evaluation.
    batch_expansions = 0
    #: Calls that went through the compiled kernel (kernel backend).
    kernel_batched_steps = 0
    #: Wall seconds spent compiling the step kernel.
    kernel_compile_seconds = 0.0

    def reset(self) -> None:
        raise NotImplementedError

    def free_inputs(self) -> Sequence[FreeInput]:
        return ()

    def eval_comb(self, inputs: Inputs) -> Frame:
        raise NotImplementedError

    def tick(self) -> None:
        raise NotImplementedError

    # -- state protocol ------------------------------------------------

    def snapshot(self) -> Hashable:
        if self.state_backend in VECTOR_BACKENDS:
            buf = self._slot_buf
            self.write_slots(buf)
            self.slots_copied += len(buf)
            return self._interner.intern(tuple(buf))
        return self.snapshot_state()

    def restore(self, state: Hashable) -> None:
        if self.state_backend in VECTOR_BACKENDS:
            vec = self._interner.state(state)
            self.read_slots(vec)
            self.slots_copied += len(vec)
        else:
            self.restore_state(state)

    def snapshot_state(self) -> Hashable:
        """Dict-backend snapshot (nested hashable tuples)."""
        raise NotImplementedError

    def restore_state(self, state: Hashable) -> None:
        raise NotImplementedError

    # -- array backend (opt-in per design) -----------------------------

    def slot_layout(self) -> Optional[SlotLayout]:
        """The design's flat-state declaration, or ``None`` when the
        design only supports the dict backend."""
        return None

    def write_slots(self, buf: List[int]) -> None:
        """Serialize the current state into ``buf`` (length
        ``slot_layout().size``)."""
        raise NotImplementedError

    def read_slots(self, vec: Sequence[int]) -> None:
        """Deserialize ``vec`` into the design's state."""
        raise NotImplementedError

    def enable_array_state(self) -> bool:
        """Switch to interned flat-vector snapshots; returns False (and
        stays on the dict backend) when the design declares no slot
        layout.  Snapshots taken under one backend are meaningless to
        the other, so switch only between explorations."""
        layout = self.slot_layout()
        if layout is None:
            return False
        self._slot_layout = layout
        self._interner = StateInterner()
        self._slot_buf = [0] * layout.size
        self.slots_copied = 0
        self.batch_expansions = 0
        self.state_backend = "array"
        return True

    def disable_array_state(self) -> None:
        """Fall back to the dict backend (``snapshot_state`` et al.)."""
        self.state_backend = "dict"

    # -- kernel backend (opt-in per design, see repro.rtl.kernel) ------

    def build_step_kernel(self):
        """Compile and return this design's
        :class:`~repro.rtl.kernel.StepKernel`, or ``None`` when the
        design has no compiled step path.  Called with the slot layout
        already bound (array backend enabled)."""
        return None

    def enable_kernel_state(self) -> bool:
        """Switch to the compiled-kernel backend; returns False when
        the design supports no kernel.  On False the design is left on
        the best backend it does support (array when it declares a slot
        layout, dict otherwise) — requesting ``kernel`` never loses the
        vector representation that is already available."""
        if not self.enable_array_state():
            return False
        start = time.perf_counter()
        kernel = self.build_step_kernel()
        if kernel is None:
            return False
        self.kernel_compile_seconds = time.perf_counter() - start
        self.kernel_batched_steps = 0
        self._kernel = kernel
        self.state_backend = "kernel"
        return True

    @property
    def step_kernel(self):
        """The design's compiled kernel, recompiled on demand after
        unpickling (compiled closures never serialize — see
        :meth:`__getstate__`)."""
        kernel = self.__dict__.get("_kernel")
        if kernel is None and self.state_backend == "kernel":
            start = time.perf_counter()
            kernel = self.build_step_kernel()
            self.kernel_compile_seconds += time.perf_counter() - start
            self._kernel = kernel
        return kernel

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_kernel", None)
        state.pop("_checked_steps", None)
        return state

    @property
    def states_interned(self) -> int:
        """Distinct states the interner holds (0 on the dict backend)."""
        if self.state_backend not in VECTOR_BACKENDS:
            return 0
        return len(self._interner)

    def state_vector(self, state: Hashable) -> Optional[Tuple[int, ...]]:
        """The flat slot vector behind a vector-backend snapshot id, or
        ``None`` on the dict backend (where snapshots carry their own
        structure).  Coverage signatures digest this vector so state
        identity is stable across runs and interning orders."""
        if self.state_backend in VECTOR_BACKENDS:
            return self._interner.state(state)
        return None

    def intern_vector(self, vec: Sequence[int]) -> Optional[int]:
        """Intern a raw slot vector (vector backends), or ``None`` on
        the dict backend.  Lets kernel consumers turn stepped vectors
        back into snapshot ids without a restore."""
        if self.state_backend in VECTOR_BACKENDS:
            return self._interner.intern(tuple(vec))
        return None

    def state_drained(self, state: Hashable) -> bool:
        """Whether ``state`` is quiescent, without the caller paying a
        restore on the kernel backend (the compiled predicate reads the
        slot vector directly).  The interpreter backends restore and
        ask the design, bit-for-bit the code path they always ran."""
        if self.state_backend == "kernel":
            return self.step_kernel.drained(self._interner.state(state))
        self.restore(state)
        return self.drained()

    def drained(self) -> bool:
        """Whether the architectural state can no longer change (the
        default design never drains; subclasses override)."""
        return False

    # -- batched expansion ---------------------------------------------

    def step_batch(
        self,
        state: Hashable,
        input_space: Sequence[Inputs],
        frame_hook: FrameHook,
    ) -> List[Optional[Tuple[Frame, Hashable]]]:
        """Expand every free-input assignment of ``state`` in one call.

        Returns a list parallel to ``input_space``: ``None`` where
        ``frame_hook`` pruned the choice, else ``(frame, successor)``.
        The generic implementation replays the classic per-input
        restore/eval/tick loop exactly (same operation order, same
        hook-observable effects); designs whose settled frame is
        independent of a free input override this to evaluate once and
        fan the cheap part — successor state construction — out over
        the choices.
        """
        results: List[Optional[Tuple[Frame, Hashable]]] = []
        for inputs in input_space:
            self.restore(state)
            frame = self.eval_comb(inputs)
            if not frame_hook(frame, 1):
                results.append(None)
                continue
            self.tick()
            results.append((frame, self.snapshot()))
        return results

    def checked_step_kernel(self, checker):
        """A fused ``(vec, checker, first, repeats) -> (frame, buf)``
        step function with ``checker``'s assumption predicates compiled
        into the kernel's combinational locals, or ``None`` when the
        design has no compiled path for this checker (kernel-capable
        subclasses override; ``None`` always falls back to the
        interpreted :meth:`step_batch_checked`)."""
        return None

    def step_batch_checked(
        self,
        state: Hashable,
        input_space: Sequence[Inputs],
        checker,
        first: int,
    ) -> List[Optional[Tuple[Frame, Hashable]]]:
        """:meth:`step_batch` with the reach graph's standard hook —
        stamp ``first`` into the frame, then let ``checker`` (an
        :class:`~repro.sva.monitor.AssumptionChecker`) accept or prune
        the settled frame.  Counter effects (``antecedent_firings``,
        ``pruned_frames``) stay in per-input logical units on every
        backend; kernel-backed designs override this with a fused
        compiled check that never materializes pruned frames."""

        def hook(frame: Frame, repeats: int) -> bool:
            frame["first"] = first
            return checker.frame_ok_repeated(frame, repeats)

        return self.step_batch(state, input_space, hook)

    def successor_batch(
        self,
        states: Sequence[Hashable],
        input_space: Sequence[Inputs],
    ) -> List[List[Hashable]]:
        """Frame-free expansion of a whole frontier: for each state, the
        successor snapshots of every input choice (no pruning hook, no
        frames).  The generic implementation loops :meth:`step_batch`;
        kernel-backed designs override it to step the entire frontier
        as one slot matrix when numpy is available."""
        results: List[List[Hashable]] = []
        for state in states:
            edges = self.step_batch(state, input_space, _keep_all)
            results.append([edge[1] for edge in edges])
        return results

    def input_space(self) -> List[Dict[str, int]]:
        """Every assignment of the free inputs (the verifier's branching
        choices for one cycle)."""
        free = list(self.free_inputs())
        assignments = []
        for combo in itertools.product(*(range(f.cardinality) for f in free)):
            assignments.append({f.name: v for f, v in zip(free, combo)})
        return assignments


class Simulator:
    """Drives one :class:`Design` along a single trace.

    The simulator inserts the auto-generated ``first`` signal into every
    frame: 1 on the first cycle after reset, 0 afterwards — the signal
    RTLCheck's Assumption Generator creates to anchor initialization
    assumptions and filter assertion match attempts (paper §4.1, §4.4).
    """

    def __init__(self, design: Design):
        self.design = design
        self.cycle = 0
        self.trace: List[Frame] = []
        design.reset()

    def step(self, inputs: Optional[Inputs] = None) -> Frame:
        """Run one clock cycle; returns the settled frame."""
        frame = self.design.eval_comb(inputs or {})
        frame["first"] = 1 if self.cycle == 0 else 0
        self.design.tick()
        self.trace.append(frame)
        self.cycle += 1
        obs.count("rtl.frames_simulated")
        return frame

    def run(
        self,
        cycles: int,
        input_schedule: Optional[Iterable[Inputs]] = None,
    ) -> List[Frame]:
        """Run ``cycles`` cycles, drawing inputs from ``input_schedule``
        (missing entries default to all-zero inputs)."""
        schedule = iter(input_schedule or ())
        for _ in range(cycles):
            self.step(next(schedule, None))
        return self.trace

    def run_until_quiescent(self, max_cycles: int = 10_000) -> List[Frame]:
        """Run with default inputs until the architectural state stops
        changing (or ``max_cycles`` elapse)."""
        previous = self.design.snapshot()
        for _ in range(max_cycles):
            self.step()
            current = self.design.snapshot()
            if current == previous:
                return self.trace
            previous = current
        raise RtlError(f"design did not quiesce within {max_cycles} cycles")
