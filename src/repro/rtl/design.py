"""The RTL simulation kernel.

Designs are synchronous, single-clock machines with explicit state.
Each cycle has two phases, the standard simulator discipline:

1. :meth:`Design.eval_comb` — settle all combinational logic for the
   current cycle given the free top-level inputs, and return the cycle's
   *frame*: a flat mapping from hierarchical signal name (for example
   ``core[1].PC_WB``) to integer value.  Generated SVA properties and
   mapping functions refer to signals through these names.
2. :meth:`Design.tick` — commit the next-state values computed during
   ``eval_comb`` (the rising clock edge).

Designs also expose :meth:`Design.snapshot` / :meth:`Design.restore`,
returning hashable state tuples; the property verifier uses these for
explicit-state exploration with deduplication.

Free inputs (for Multi-V-scale: the arbiter's grant select, paper §5.2)
are declared via :meth:`Design.free_inputs`; a formal verifier explores
every combination, a simulator picks one per cycle.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

from repro import obs
from repro.errors import RtlError

#: A settled cycle's signal values.
Frame = Dict[str, int]
#: One assignment of the design's free inputs.
Inputs = Mapping[str, int]


class FreeInput:
    """A nondeterministic top-level input: ``name`` ranges over
    ``0 .. cardinality-1`` each cycle."""

    def __init__(self, name: str, cardinality: int):
        if cardinality < 1:
            raise RtlError(f"free input {name!r} needs cardinality >= 1")
        self.name = name
        self.cardinality = cardinality

    def __repr__(self):
        return f"FreeInput({self.name!r}, {self.cardinality})"


class Design:
    """Base class for simulatable designs. Subclasses implement the
    two-phase protocol plus snapshot/restore."""

    def reset(self) -> None:
        raise NotImplementedError

    def free_inputs(self) -> Sequence[FreeInput]:
        return ()

    def eval_comb(self, inputs: Inputs) -> Frame:
        raise NotImplementedError

    def tick(self) -> None:
        raise NotImplementedError

    def snapshot(self) -> Hashable:
        raise NotImplementedError

    def restore(self, state: Hashable) -> None:
        raise NotImplementedError

    def input_space(self) -> List[Dict[str, int]]:
        """Every assignment of the free inputs (the verifier's branching
        choices for one cycle)."""
        free = list(self.free_inputs())
        assignments = []
        for combo in itertools.product(*(range(f.cardinality) for f in free)):
            assignments.append({f.name: v for f, v in zip(free, combo)})
        return assignments


class Simulator:
    """Drives one :class:`Design` along a single trace.

    The simulator inserts the auto-generated ``first`` signal into every
    frame: 1 on the first cycle after reset, 0 afterwards — the signal
    RTLCheck's Assumption Generator creates to anchor initialization
    assumptions and filter assertion match attempts (paper §4.1, §4.4).
    """

    def __init__(self, design: Design):
        self.design = design
        self.cycle = 0
        self.trace: List[Frame] = []
        design.reset()

    def step(self, inputs: Optional[Inputs] = None) -> Frame:
        """Run one clock cycle; returns the settled frame."""
        frame = self.design.eval_comb(inputs or {})
        frame["first"] = 1 if self.cycle == 0 else 0
        self.design.tick()
        self.trace.append(frame)
        self.cycle += 1
        obs.count("rtl.frames_simulated")
        return frame

    def run(
        self,
        cycles: int,
        input_schedule: Optional[Iterable[Inputs]] = None,
    ) -> List[Frame]:
        """Run ``cycles`` cycles, drawing inputs from ``input_schedule``
        (missing entries default to all-zero inputs)."""
        schedule = iter(input_schedule or ())
        for _ in range(cycles):
            self.step(next(schedule, None))
        return self.trace

    def run_until_quiescent(self, max_cycles: int = 10_000) -> List[Frame]:
        """Run with default inputs until the architectural state stops
        changing (or ``max_cycles`` elapse)."""
        previous = self.design.snapshot()
        for _ in range(max_cycles):
            self.step()
            current = self.design.snapshot()
            if current == previous:
                return self.trace
            previous = current
        raise RtlError(f"design did not quiesce within {max_cycles} cycles")
