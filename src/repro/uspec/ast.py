"""Abstract syntax for the µspec modeling language.

µspec is the first-order logic language the Check suite uses to describe
microarchitectural happens-before orderings (paper Figures 3b and 5).
A model is a list of stage declarations, macro definitions, and axioms;
formulas quantify over the microops of a litmus test and constrain µhb
graph edges through ``AddEdge`` / ``EdgeExists`` atoms plus data
predicates (``SameData``, ``DataFromInitialStateAtPA``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A quantified variable reference (microop or core)."""

    name: str


@dataclass(frozen=True)
class NodeRef:
    """A µhb node: ``(microop_var, StageName)``."""

    microop: Var
    stage: str


@dataclass(frozen=True)
class EdgeRef:
    """A µhb edge between two nodes, with optional label and colour
    (labels/colours are cosmetic, kept for graph rendering)."""

    src: NodeRef
    dst: NodeRef
    label: str = ""
    colour: str = ""


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class for µspec formulas."""


@dataclass(frozen=True)
class Truth(Formula):
    value: bool


@dataclass(frozen=True)
class Not(Formula):
    body: Formula


@dataclass(frozen=True)
class And(Formula):
    operands: Tuple[Formula, ...]


@dataclass(frozen=True)
class Or(Formula):
    operands: Tuple[Formula, ...]


@dataclass(frozen=True)
class Implies(Formula):
    premise: Formula
    conclusion: Formula


@dataclass(frozen=True)
class Quantifier(Formula):
    """``forall``/``exists`` over microops or cores."""

    kind: str  # 'forall' or 'exists'
    domain: str  # 'microop' or 'core'
    names: Tuple[str, ...]
    body: Formula


@dataclass(frozen=True)
class Predicate(Formula):
    """A built-in predicate applied to variables, e.g. ``SameData w i``."""

    name: str
    args: Tuple[Var, ...]


@dataclass(frozen=True)
class AddEdge(Formula):
    edge: EdgeRef


@dataclass(frozen=True)
class AddEdges(Formula):
    edges: Tuple[EdgeRef, ...]


@dataclass(frozen=True)
class EdgeExists(Formula):
    edge: EdgeRef


@dataclass(frozen=True)
class EdgesExist(Formula):
    edges: Tuple[EdgeRef, ...]


@dataclass(frozen=True)
class NodeExists(Formula):
    node: NodeRef


@dataclass(frozen=True)
class ExpandMacro(Formula):
    """Macro call; unbound macro-body variables capture the call site's
    bindings (the paper's macros use this, Figure 5)."""

    name: str
    args: Tuple[Var, ...] = ()


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Macro:
    name: str
    params: Tuple[str, ...]
    body: Formula


@dataclass(frozen=True)
class Axiom:
    name: str
    body: Formula


@dataclass
class Model:
    """A parsed µspec model."""

    stages: List[str] = field(default_factory=list)
    macros: List[Macro] = field(default_factory=list)
    axioms: List[Axiom] = field(default_factory=list)

    def macro(self, name: str) -> Macro:
        for macro in self.macros:
            if macro.name == name:
                return macro
        raise KeyError(name)

    def axiom(self, name: str) -> Axiom:
        for axiom in self.axioms:
            if axiom.name == name:
                return axiom
        raise KeyError(name)

    def stage_index(self, name: str) -> int:
        return self.stages.index(name)


def _canonical(operands: List[Formula]) -> Tuple[Formula, ...]:
    """Deduplicate and sort for a canonical operand tuple, so that e.g.
    the two groundings of a symmetric total-order axiom (pair (a,b) and
    pair (b,a)) collapse to a single formula."""
    unique = list(dict.fromkeys(operands))
    return tuple(sorted(unique, key=repr))


def conjunction(operands: Sequence[Formula]) -> Formula:
    """n-ary ``And`` with flattening, deduplication, and canonical
    operand order."""
    flat: List[Formula] = []
    for op in operands:
        if isinstance(op, Truth) and op.value:
            continue
        if isinstance(op, Truth):
            return Truth(False)
        if isinstance(op, And):
            flat.extend(op.operands)
        else:
            flat.append(op)
    canon = _canonical(flat)
    if not canon:
        return Truth(True)
    if len(canon) == 1:
        return canon[0]
    return And(canon)


def disjunction(operands: Sequence[Formula]) -> Formula:
    """n-ary ``Or`` with flattening, deduplication, and canonical
    operand order."""
    flat: List[Formula] = []
    for op in operands:
        if isinstance(op, Truth) and not op.value:
            continue
        if isinstance(op, Truth):
            return Truth(True)
        if isinstance(op, Or):
            flat.extend(op.operands)
        else:
            flat.append(op)
    canon = _canonical(flat)
    if not canon:
        return Truth(False)
    if len(canon) == 1:
        return canon[0]
    return Or(canon)
