"""Tokenizer for µspec source text."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import UspecSyntaxError

#: Multi-character symbols, longest first.
_SYMBOLS = ["/\\", "\\/", "=>", "(", ")", "[", "]", ",", ";", ".", ":", "~"]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'string', 'symbol', 'eof'
    text: str
    line: int
    column: int

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into tokens; ``%`` and ``//`` start line comments."""
    tokens: List[Token] = []
    line, column = 1, 1
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "%" or source.startswith("//", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if ch == '"':
            end = source.find('"', i + 1)
            if end == -1:
                raise UspecSyntaxError("unterminated string", line, column)
            text = source[i + 1 : end]
            if "\n" in text:
                raise UspecSyntaxError("newline in string", line, column)
            tokens.append(Token("string", text, line, column))
            column += end - i + 1
            i = end + 1
            continue
        for symbol in _SYMBOLS:
            if source.startswith(symbol, i):
                tokens.append(Token("symbol", symbol, line, column))
                i += len(symbol)
                column += len(symbol)
                break
        else:
            if ch.isalnum() or ch == "_":
                j = i
                while j < length and (source[j].isalnum() or source[j] in "_'"):
                    j += 1
                tokens.append(Token("ident", source[i:j], line, column))
                column += j - i
                i = j
            else:
                raise UspecSyntaxError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens
